"""Fleet substrate throughput: events/sec vs partition count and plan.

Measures the crash-tolerant fleet substrate end to end -- worker spawn,
conservative time-sync rounds over OS pipes, merge -- for the same drive
at 1, 2, and 4 partitions, plus the in-process single-simulator reference.
Two throughput figures per row: raw kernel events per wall second, and
the capacity metric that actually matters for scaling studies,
vehicle-simulation-seconds per wall second.

The skewed section is the planner's payoff demo: under the ``skewed``
workload style two vehicles carry 7 service stacks each, and round-robin
sharding at 4 partitions lands both on partition 0.  The static planner
(``repro.analysis.plan``) isolates each heavy vehicle, which must cut
the busiest partition's event load (the per-round critical path) by
>=20% -- asserted on the deterministic per-partition event counts, so
the check holds on any hardware.  The wall-clock speedup is additionally
asserted when the host has a core per partition; on narrower machines
every shard timeshares one core and balance cannot move wall time.

The bench doubles as an equality audit: every partitioning (and every
plan) must produce the reference's per-vehicle trace hashes, or the
numbers are measuring two different workloads.
"""

import os
import time  # vdaplint: disable=DET001

import pytest

from conftest import persist_report
from repro.analysis.plan import plan_for_config
from repro.fleet import FleetConfig, FleetCoordinator, run_single_process
from repro.obs import Report

PARTITIONS = (1, 2, 4)
VEHICLES = 8
DURATION_S = 30.0
PLAN_SPEEDUP_FLOOR = 1.2


def fleet_config(partitions: int, workload: str = "uniform",
                 plan=None) -> FleetConfig:
    return FleetConfig(
        seed=17,
        vehicles=VEHICLES,
        partitions=partitions,
        duration_s=DURATION_S,
        barrier_deadline_s=120.0,
        workload=workload,
        plan=plan,
    )


def _timed(config):
    start = time.perf_counter()  # vdaplint: disable=DET001
    with FleetCoordinator(config) as coordinator:
        result = coordinator.run()
    return time.perf_counter() - start, result  # vdaplint: disable=DET001


def run_all():
    rows = []
    start = time.perf_counter()  # vdaplint: disable=DET001
    inline = run_single_process(fleet_config(1))
    rows.append(("inline", time.perf_counter() - start, inline))  # vdaplint: disable=DET001
    reference = inline
    for partitions in PARTITIONS:
        wall_s, result = _timed(fleet_config(partitions))
        assert result.vehicle_hashes == reference.vehicle_hashes, (
            f"{partitions}-partition run diverged from the reference"
        )
        rows.append((f"{partitions}p", wall_s, result))
    return rows


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux fallback
        return os.cpu_count() or 1


def run_skewed():
    """Round-robin vs planned shards under the skewed workload."""
    skew_reference = run_single_process(fleet_config(1, workload="skewed"))
    rr_config = fleet_config(4, workload="skewed")
    rr_wall_s, rr = _timed(rr_config)
    assert rr.vehicle_hashes == skew_reference.vehicle_hashes, (
        "skewed round-robin run diverged from the reference"
    )
    plan = plan_for_config(rr_config)
    planned_config = fleet_config(
        4, workload="skewed", plan=plan.shards_for(rr_config)
    )
    plan_wall_s, planned = _timed(planned_config)
    assert planned.vehicle_hashes == skew_reference.vehicle_hashes, (
        "planned run diverged from the reference: the plan changed traces"
    )
    capacity_gain = rr.stats.critical_events() / planned.stats.critical_events()
    assert capacity_gain >= PLAN_SPEEDUP_FLOOR, (
        f"planned shards cut the critical partition only {capacity_gain:.2f}x "
        f"(floor {PLAN_SPEEDUP_FLOOR}x); plan: {plan.shards}"
    )
    if _usable_cores() >= rr_config.partitions:
        speedup = rr_wall_s / plan_wall_s
        assert speedup >= PLAN_SPEEDUP_FLOOR, (
            f"planned shards only {speedup:.2f}x over round-robin "
            f"(floor {PLAN_SPEEDUP_FLOOR}x); plan: {plan.shards}"
        )
    return [("skew-rr", rr_wall_s, rr), ("skew-plan", plan_wall_s, planned)]


@pytest.mark.benchmark(group="fleet")
def test_fleet_throughput(benchmark):
    rows = benchmark.pedantic(
        lambda: run_all() + run_skewed(), rounds=1, iterations=1
    )

    report = Report(
        "BENCH_fleet",
        f"Fleet throughput: {VEHICLES} vehicles, {DURATION_S:g}s drive, "
        f"partitioned vs inline, round-robin vs planned shards",
    )
    report.add_column("mode", 9, align="left")
    report.add_column("wall_s", 9, ".2f")
    report.add_column("events", 9, "d")
    report.add_column("events_per_s", 14, ".0f", header="events/s")
    report.add_column("vsim_per_wall", 16, ".1f", header="veh*sim-s/wall-s")
    report.add_column("crit_events", 12, "d", header="crit-events")
    report.add_column("spread_s", 10, ".2f", header="busy-spread")
    for mode, wall_s, result in rows:
        events = result.stats.events_fired
        report.add_row(
            mode=mode,
            wall_s=wall_s,
            events=events,
            events_per_s=events / wall_s,
            vsim_per_wall=VEHICLES * DURATION_S / wall_s,
            crit_events=result.stats.critical_events(),
            spread_s=result.stats.busy_spread_s(),
        )
    reference = rows[0][2]
    report.note(
        f"all uniform modes hash-identical over "
        f"{len(reference.vehicle_hashes)} vehicles "
        f"({reference.stats.events_fired} events)"
    )
    report.note(
        f"rounds per run: {reference.stats.rounds}; "
        f"envelopes routed: {reference.stats.envelopes_routed}"
    )
    by_mode = {mode: result for mode, _wall_s, result in rows}
    gain = (by_mode["skew-rr"].stats.critical_events()
            / by_mode["skew-plan"].stats.critical_events())
    report.note(
        f"skewed workload, 4 partitions: planned shards cut the critical "
        f"partition {gain:.2f}x vs round-robin (floor {PLAN_SPEEDUP_FLOOR}x); "
        f"wall-clock speedup additionally asserted with >=1 core/partition "
        f"(this host: {_usable_cores()})"
    )
    persist_report(report)

"""Fleet substrate throughput: events/sec vs partition count.

Measures the crash-tolerant fleet substrate end to end -- worker spawn,
conservative time-sync rounds over OS pipes, merge -- for the same drive
at 1, 2, and 4 partitions, plus the in-process single-simulator reference.
Two throughput figures per row: raw kernel events per wall second, and
the capacity metric that actually matters for scaling studies,
vehicle-simulation-seconds per wall second.

The bench doubles as an equality audit: every partitioning must produce
the reference's per-vehicle trace hashes, or the numbers are measuring
two different workloads.
"""

import time  # vdaplint: disable=DET001

import pytest

from conftest import persist_report
from repro.fleet import FleetConfig, FleetCoordinator, run_single_process
from repro.obs import Report

PARTITIONS = (1, 2, 4)
VEHICLES = 8
DURATION_S = 30.0


def fleet_config(partitions: int) -> FleetConfig:
    return FleetConfig(
        seed=17,
        vehicles=VEHICLES,
        partitions=partitions,
        duration_s=DURATION_S,
        barrier_deadline_s=120.0,
    )


def run_all():
    rows = []
    reference = None
    start = time.perf_counter()  # vdaplint: disable=DET001
    inline = run_single_process(fleet_config(1))
    rows.append(("inline", time.perf_counter() - start, inline))  # vdaplint: disable=DET001
    reference = inline
    for partitions in PARTITIONS:
        start = time.perf_counter()  # vdaplint: disable=DET001
        with FleetCoordinator(fleet_config(partitions)) as coordinator:
            result = coordinator.run()
        wall_s = time.perf_counter() - start  # vdaplint: disable=DET001
        assert result.vehicle_hashes == reference.vehicle_hashes, (
            f"{partitions}-partition run diverged from the reference"
        )
        rows.append((f"{partitions}p", wall_s, result))
    return rows


@pytest.mark.benchmark(group="fleet")
def test_fleet_throughput(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report = Report(
        "BENCH_fleet",
        f"Fleet throughput: {VEHICLES} vehicles, {DURATION_S:g}s drive, "
        f"partitioned vs inline",
    )
    report.add_column("mode", 8, align="left")
    report.add_column("wall_s", 9, ".2f")
    report.add_column("events", 9, "d")
    report.add_column("events_per_s", 14, ".0f", header="events/s")
    report.add_column("vsim_per_wall", 16, ".1f", header="veh*sim-s/wall-s")
    for mode, wall_s, result in rows:
        events = result.stats.events_fired
        report.add_row(
            mode=mode,
            wall_s=wall_s,
            events=events,
            events_per_s=events / wall_s,
            vsim_per_wall=VEHICLES * DURATION_S / wall_s,
        )
    reference = rows[0][2]
    report.note(
        f"all modes hash-identical over {len(reference.vehicle_hashes)} "
        f"vehicles ({reference.stats.events_fired} events)"
    )
    report.note(
        f"rounds per run: {reference.stats.rounds}; "
        f"envelopes routed: {reference.stats.envelopes_routed}"
    )
    persist_report(report)

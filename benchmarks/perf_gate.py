"""CI perf-floor gate over the fleet throughput bench.

Snapshots the *committed* ``results/BENCH_fleet.json`` (the baseline the
repo promises), reruns ``bench_fleet_throughput.py`` -- which refreshes
that JSON in place and re-audits every partitioning against the
single-process trace hashes -- and fails if any mode's events/sec fell
more than the allowed regression (default 20%) below its committed
number.  A passing run also copies the refreshed JSON to the repo root
``BENCH_fleet.json`` -- the headline numbers the README links -- so a
passing run's numbers become reviewable in the PR diff in both places.

Usage::

    python perf_gate.py [--max-regression 0.20] [--results PATH] [--skip-run]

``--skip-run`` compares an already-refreshed results file against a
baseline snapshot taken with ``--baseline`` (for local what-if checks).
"""

import argparse
import json
import os
import shutil
import subprocess
import sys

RESULTS = os.path.join(os.path.dirname(__file__), "results", "BENCH_fleet.json")

#: The headline copy at the repo root, kept in lockstep by passing runs.
ROOT_RESULTS = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_fleet.json"
)


def load_events_per_s(path: str) -> dict[str, float]:
    """Map of bench mode -> events/sec from a BENCH_fleet report."""
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    return {row["mode"]: row["events_per_s"] for row in report["rows"]}


def run_bench() -> int:
    """Rerun the fleet bench (refreshes results/ in place).

    The bench runs with ``cwd=benchmarks/``, so any relative PYTHONPATH
    entries (CI uses ``PYTHONPATH=src``) are absolutized first.
    """
    here = os.path.dirname(os.path.abspath(__file__)) or "."
    env = dict(os.environ)
    entries = [os.path.abspath(e)
               for e in env.get("PYTHONPATH", "").split(os.pathsep) if e]
    src = os.path.abspath(os.path.join(here, os.pardir, "src"))
    if src not in entries:
        entries.append(src)
    env["PYTHONPATH"] = os.pathsep.join(entries)
    return subprocess.call(
        [sys.executable, "-m", "pytest", "-x", "-q", "bench_fleet_throughput.py"],
        cwd=here,
        env=env,
    )


def check(baseline: dict[str, float], fresh: dict[str, float],
          max_regression: float) -> list[str]:
    """Per-mode verdicts; raises SystemExit on any floor breach."""
    failures, lines = [], []
    for mode, committed in sorted(baseline.items()):
        measured = fresh.get(mode)
        if measured is None:
            failures.append(f"mode {mode!r} vanished from the fresh run")
            continue
        floor = committed * (1.0 - max_regression)
        ratio = measured / committed
        verdict = "ok" if measured >= floor else "REGRESSION"
        lines.append(
            f"{mode:>10}: {measured:12.0f} ev/s vs committed {committed:12.0f}"
            f"  ({ratio:5.2f}x, floor {floor:.0f})  {verdict}"
        )
        if measured < floor:
            failures.append(
                f"{mode}: {measured:.0f} ev/s is below the {floor:.0f} floor "
                f"({ratio:.2f}x of committed {committed:.0f})"
            )
    for extra in sorted(set(fresh) - set(baseline)):
        lines.append(f"{extra:>10}: {fresh[extra]:12.0f} ev/s (new mode, no floor)")
    print("\n".join(lines))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional events/sec drop per mode")
    parser.add_argument("--results", default=RESULTS,
                        help="BENCH_fleet.json path (committed + refreshed)")
    parser.add_argument("--baseline", default=None,
                        help="explicit baseline JSON (default: snapshot of "
                             "--results before the run)")
    parser.add_argument("--skip-run", action="store_true",
                        help="compare existing files; do not rerun the bench")
    parser.add_argument("--root-copy", default=ROOT_RESULTS,
                        help="where a passing run publishes the refreshed "
                             "results (default: repo-root BENCH_fleet.json; "
                             "empty string disables)")
    args = parser.parse_args(argv)

    baseline = load_events_per_s(args.baseline or args.results)
    if not args.skip_run:
        status = run_bench()
        if status != 0:
            print(f"perf gate: bench run failed (exit {status})", file=sys.stderr)
            return status
    fresh = load_events_per_s(args.results)

    failures = check(baseline, fresh, args.max_regression)
    if failures:
        print("perf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"perf gate passed (max regression allowed: "
          f"{args.max_regression:.0%})")
    if args.root_copy:
        shutil.copyfile(args.results, args.root_copy)
        print(f"refreshed results copied to {os.path.normpath(args.root_copy)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""A4 -- DDI two-tier storage: cache TTL vs hit rate and response latency.

Paper SIV-D: requests hit the in-memory database first and fall back to
disk.  This ablation replays a drive's worth of uploads plus a recency-
skewed query mix for several cache TTLs and reports hit rate and mean
modelled response latency, plus the disk-only baseline.
"""

import numpy as np
import pytest

from conftest import persist_report
from repro.ddi import DDIService, DiskDB, Record
from repro.obs import Report

TTLS = (5.0, 30.0, 120.0, 600.0)
DRIVE_SECONDS = 600
QUERIES = 300


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def replay(ttl_s: float, tmpdir: str) -> tuple[float, float]:
    clock = Clock()
    service = DDIService(clock, DiskDB(f"{tmpdir}/ttl-{ttl_s}"), cache_ttl_s=ttl_s)
    rng = np.random.default_rng(0)
    latencies = []
    hits = 0
    query_times = iter(sorted(rng.uniform(60, DRIVE_SECONDS, QUERIES)))
    next_query = next(query_times)
    for t in range(DRIVE_SECONDS):
        clock.now = float(t)
        service.upload(Record("obd", float(t), 0.0, 0.0, {"speed": 10.0}))
        while next_query is not None and next_query <= t:
            # Recency-skewed: most queries ask about the recent past.
            span = float(rng.choice([10.0, 30.0, 120.0], p=[0.6, 0.3, 0.1]))
            result = service.download("obd", max(0.0, t - span), float(t))
            latencies.append(result.modelled_latency_s)
            hits += result.from_cache
            next_query = next(query_times, None)
    return hits / len(latencies), float(np.mean(latencies))


def test_ddi_cache_sweep(benchmark, tmp_path):
    rows = benchmark.pedantic(
        lambda: [(ttl, *replay(ttl, str(tmp_path))) for ttl in TTLS],
        rounds=1, iterations=1,
    )

    report = Report(
        "ablate_ddi",
        "A4 -- DDI two-tier storage: cache TTL sweep "
        f"({DRIVE_SECONDS}s drive, {QUERIES} recency-skewed queries)",
    )
    report.add_column("ttl", 12, ".0f", header="cache TTL s")
    report.add_column("hit_rate", 10, ".2f", header="hit rate")
    report.add_column("latency_ms", 17, ".2f", header="mean latency ms")
    for ttl, hit_rate, latency in rows:
        report.add_row(ttl=ttl, hit_rate=hit_rate, latency_ms=latency * 1e3)
    report.add_row(ttl="disk only", hit_rate=0.0, latency_ms=20.0)
    persist_report(report)

    hit_rates = [hit for _ttl, hit, _lat in rows]
    latencies = [lat for _ttl, _hit, lat in rows]
    assert hit_rates == sorted(hit_rates), "longer TTL, higher hit rate"
    assert latencies == sorted(latencies, reverse=True), "higher hit rate, lower latency"
    # The architectural claim: the cache tier pays for itself.
    assert latencies[-1] < 0.020 / 2, "two-tier beats disk-only by >2x at long TTL"

"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table/figure) or one ablation.
Besides the pytest-benchmark timing of a representative unit of work, each
bench declares its paper-style table as a :class:`repro.obs.Report` and
hands it to :func:`persist_report`, which writes the fixed-width text to
``benchmarks/results/<name>.txt`` (the committed, diff-reviewed artifact)
and the same data as stable JSON to ``results/<name>.json``, then prints
the table so the numbers survive quiet pytest runs.
"""

import os

from repro.obs import Report

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def persist_report(report: Report) -> tuple[str, str]:
    """Persist and echo a bench's Report; returns (txt_path, json_path)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    txt_path = os.path.join(RESULTS_DIR, f"{report.name}.txt")
    text = report.to_text() + "\n"
    with open(txt_path, "w", encoding="utf-8") as fh:
        fh.write(text)
    json_path = os.path.join(RESULTS_DIR, f"{report.name}.json")
    with open(json_path, "w", encoding="utf-8") as fh:
        fh.write(report.to_json() + "\n")
    print(f"\n{text}")
    return txt_path, json_path

"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table/figure) or one ablation.
Besides the pytest-benchmark timing of a representative unit of work, each
bench writes its full paper-style table to ``benchmarks/results/<name>.txt``
and prints it, so the numbers survive quiet pytest runs.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_report(name: str, lines: list[str]) -> str:
    """Persist and echo a bench's result table; returns the file path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    text = "\n".join(lines) + "\n"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"\n{text}")
    return path

"""A10 -- resilience ablation under a seeded fault storm (paper SIII-A).

A 120-second drive ships one edge-placed perception job per second while a
deterministic fault plan knocks processors, links and the cloud path in
and out.  Two executors face the *same* storm (same seed, same plan):

* ``resilience=off`` -- fault-aware but fail-fast: any fault that touches
  a job's transfer or compute kills the job;
* ``resilience=on`` -- retry with exponential backoff, park-until-recovery
  on dead links, and cross-tier failover after repeated same-tier failures.

Reported: job completion rate, deadline hits, retries/failovers.  The
resilient executor must strictly beat fail-fast on completions -- and
because the plan is seed-deterministic, this table reproduces exactly.
"""

import pytest

from conftest import persist_report
from repro.analysis import DeterminismSanitizer
from repro.obs import Report
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRates,
    RetryPolicy,
    world_fault_targets,
)
from repro.hw import WorkloadClass
from repro.offload import DistributedExecutor, Placement, Task, TaskGraph
from repro.sim import Simulator
from repro.topology import Tier, build_default_world

SEED = 2018
DRIVE_SECONDS = 120
JOB_PERIOD_S = 1.0
DEADLINE_S = 4.0

#: An intense storm: every component fails a few times over the drive.
STORM_RATES = {
    FaultKind.PROCESSOR_DOWN: FaultRates(mtbf_s=25.0, mttr_s=4.0),
    FaultKind.PROCESSOR_SLOW: FaultRates(mtbf_s=30.0, mttr_s=8.0,
                                         severity=(2.0, 5.0)),
    FaultKind.LINK_DOWN: FaultRates(mtbf_s=20.0, mttr_s=3.0),
    FaultKind.LINK_DEGRADED: FaultRates(mtbf_s=25.0, mttr_s=6.0,
                                        severity=(0.1, 0.5)),
    FaultKind.CLOUD_UNREACHABLE: FaultRates(mtbf_s=40.0, mttr_s=6.0),
}

RETRY = RetryPolicy(max_attempts=6, base_delay_s=0.1, multiplier=2.0,
                    max_delay_s=2.0, same_tier_attempts=2)


def perception_graph(index: int) -> TaskGraph:
    return TaskGraph.chain(
        f"frame-{index:03d}",
        [
            Task("detect", 400.0, WorkloadClass.DNN, output_bytes=2_000,
                 source_bytes=400_000),
        ],
    )


def storm_plan() -> FaultPlan:
    processors, links = world_fault_targets(build_default_world())
    return FaultPlan.generate(
        seed=SEED,
        horizon_s=float(DRIVE_SECONDS),
        processors=processors,
        links=links,
        rates=STORM_RATES,
    )


def run_drive(plan: FaultPlan, resilient: bool) -> dict:
    world = build_default_world()
    sim = Simulator()
    sanitizer = DeterminismSanitizer(sim, keep_records=False)
    injector = FaultInjector(sim, plan, world=world)
    executor = DistributedExecutor(
        sim, world, faults=injector, retry=RETRY if resilient else None
    )

    procs = []

    def spawner(sim):
        for i in range(DRIVE_SECONDS):
            graph = perception_graph(i)
            placement = Placement.uniform(graph, Tier.EDGE)
            procs.append(executor.submit(graph, placement,
                                         deadline_s=DEADLINE_S))
            yield sim.timeout(JOB_PERIOD_S)

    sim.process(spawner(sim))
    sim.run()

    results = [p.value for p in procs]
    completed = [r for r in results if not r.failed]
    return {
        "jobs": len(results),
        "completed": len(completed),
        "deadline_hits": sum(1 for r in completed if not r.missed_deadline),
        "retries": sum(r.retries for r in results),
        "failovers": sum(r.replacements for r in results),
        "mean_latency_s": (
            sum(r.latency_s for r in completed) / len(completed)
            if completed else float("nan")
        ),
        "trace_hash": sanitizer.trace_hash,
    }


def test_resilience_ablation(benchmark):
    plan = storm_plan()
    assert len(plan) > 10, "the storm must actually storm"

    off = run_drive(plan, resilient=False)
    on = benchmark(run_drive, plan, resilient=True)

    report = Report(
        "ablate_faults",
        f"A10 -- resilience ablation under one seeded fault storm "
        f"(seed {SEED}, {DRIVE_SECONDS}s, {len(plan)} fault windows, "
        f"deadline {DEADLINE_S:.0f}s)",
    )
    report.add_column("policy", 18)
    report.add_column("completed", 10, align="right")
    report.add_column("rate", 8, ".0%")
    report.add_column("deadline_hits", 14, "d", header="deadline-hit")
    report.add_column("retries", 9, "d")
    report.add_column("failovers", 11, "d")
    report.add_column("mean_latency_s", 12, ".3f", header="mean lat s")
    for name, row in (("fail-fast", off), ("resilient", on)):
        report.add_row(
            policy=name,
            completed=f"{row['completed']}/{row['jobs']}",
            rate=row["completed"] / row["jobs"],
            deadline_hits=row["deadline_hits"],
            retries=row["retries"],
            failovers=row["failovers"],
            mean_latency_s=row["mean_latency_s"],
        )
    report.note(
        f"event-loop trace hashes: fail-fast {off['trace_hash']}, "
        f"resilient {on['trace_hash']}"
    )
    persist_report(report)

    # The storm must actually hurt the fail-fast executor...
    assert off["completed"] < off["jobs"]
    # ...and resilience must strictly improve the completion rate.
    assert on["completed"] > off["completed"]
    assert on["retries"] > 0
    # Deterministic: the same plan replays to the same numbers.
    assert run_drive(plan, resilient=True) == on
    assert on["deadline_hits"] >= off["deadline_hits"]
    assert on["mean_latency_s"] == pytest.approx(on["mean_latency_s"])

"""A2 -- Elastic Management adaptivity (paper SIV-C).

A 10-minute drive with DSRC quality cycling good/degraded/dead.  We
compare three policies for the ADAS polymorphic service:

* pinned-onboard / pinned-edge -- static pipelines;
* elastic -- the ElasticManager re-tuning every second.

Reported: mean achieved latency over the drive, deadline violations, and
pipeline switches.  The elastic policy should dominate both static pins.
"""

import numpy as np
import pytest

from conftest import persist_report
from repro.apps import make_adas_service
from repro.obs import Report
from repro.edgeos import ElasticManager
from repro.hw import catalog
from repro.offload.placement import evaluate_placement
from repro.topology import build_default_world

DEADLINE_S = 0.5
DRIVE_SECONDS = 600


def bandwidth_cycle(t: int) -> float:
    phase = (t // 30) % 3
    return (27.0, 2.0, 0.02)[phase]


def run_drive():
    world = build_default_world(
        vehicle_processors=[catalog.intel_i7_6700(), catalog.intel_mncs()]
    )
    manager = ElasticManager()
    service = make_adas_service(deadline_s=DEADLINE_S)
    manager.register(service)
    graph = service.graph_factory()

    stats = {}
    # Static pins.
    for pipeline in service.pipelines:
        latencies, violations = [], 0
        for t in range(DRIVE_SECONDS):
            world.links.vehicle_edge.bandwidth_mbps = bandwidth_cycle(t)
            ev = evaluate_placement(graph, pipeline.placement(), world)
            latencies.append(ev.latency_s)
            violations += ev.latency_s > DEADLINE_S
        stats[f"pinned:{pipeline.name}"] = (
            float(np.mean(latencies)), violations, 0
        )

    # Elastic.
    latencies, violations = [], 0
    for t in range(DRIVE_SECONDS):
        world.links.vehicle_edge.bandwidth_mbps = bandwidth_cycle(t)
        choice = manager.choose(service, world)
        if choice.hung:
            violations += 1  # nothing can serve the frame this second
        else:
            latencies.append(choice.evaluation.latency_s)
            violations += choice.evaluation.latency_s > DEADLINE_S
    switch_count = sum(1 for c in manager.switch_log if c.switched)
    stats["elastic"] = (float(np.mean(latencies)), violations, switch_count)
    return stats


def test_elastic_adaptivity(benchmark):
    stats = benchmark(run_drive)

    report = Report(
        "ablate_elastic",
        "A2 -- Elastic Management vs pinned pipelines "
        f"({DRIVE_SECONDS}s drive, deadline {DEADLINE_S * 1e3:.0f} ms)",
    )
    report.add_column("policy", 26)
    report.add_column("mean_ms", 16, ".1f", header="mean latency ms")
    report.add_column("violations", 12, "d")
    report.add_column("switches", 10, "d")
    for name, (mean_latency, violations, switches) in stats.items():
        report.add_row(
            policy=name, mean_ms=mean_latency * 1e3, violations=violations,
            switches=switches,
        )
    persist_report(report)

    elastic = stats["elastic"]
    for name, row in stats.items():
        if name != "elastic":
            assert elastic[1] <= row[1], f"elastic must not violate more than {name}"
    assert elastic[2] > 2, "the drive forces multiple pipeline switches"
    # Elastic achieves (near-)best mean latency among all policies.
    best_pinned = min(row[0] for name, row in stats.items() if name != "elastic")
    assert elastic[0] <= best_pinned * 1.05

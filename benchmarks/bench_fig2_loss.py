"""E2 -- Figure 2: packet and frame loss streaming video over LTE while driving.

The paper drove at 0 / 35 / 70 MPH uploading 5-minute 720P and 1080P
H.264/RTP streams and reported:

    packet loss: 0.002, 0.006 | 0.021, 0.070 | 0.535, 0.617
    frame  loss: 0.012, 0.027 | 0.390, 0.763 | 0.911, 0.980

Our substrate reproduces the mechanisms (speed-dependent handoff
interruptions, grant ramps, cell-edge degradation, speed-decorrelated
burst loss, GOP-aware frame counting).  The full 5-minute procedure runs
for the table; the timed unit is a 30-second stream.
"""

import numpy as np
import pytest

from conftest import persist_report
from repro.net import VIDEO_1080P, VIDEO_720P, run_drive_stream
from repro.obs import Report

PAPER = {
    (0, "720P"): (0.002, 0.012),
    (0, "1080P"): (0.006, 0.027),
    (35, "720P"): (0.021, 0.390),
    (35, "1080P"): (0.070, 0.763),
    (70, "720P"): (0.535, 0.911),
    (70, "1080P"): (0.617, 0.980),
}


@pytest.fixture(scope="module")
def results():
    out = {}
    for speed in (0, 35, 70):
        for profile in (VIDEO_720P, VIDEO_1080P):
            out[(speed, profile.name)] = run_drive_stream(
                profile, speed, duration_s=300.0, rng=np.random.default_rng(42)
            )
    return out


def test_fig2_report(results, benchmark):
    benchmark(
        run_drive_stream, VIDEO_720P, 35, 30.0, None, np.random.default_rng(0)
    )

    report = Report(
        "fig2_loss",
        "E2 / Figure 2 -- loss rates streaming video over LTE while driving",
    )
    report.add_column("scenario", 16)
    report.add_column("packet", 10, ".3f")
    report.add_column("paper_packet", 10, ".3f", header="(paper)")
    report.add_column("frame", 10, ".3f")
    report.add_column("paper_frame", 10, ".3f", header="(paper)")
    report.add_column("handoffs", 10, "d")
    for (speed, name), result in results.items():
        paper_packet, paper_frame = PAPER[(speed, name)]
        label = "Static" if speed == 0 else f"{speed}MPH"
        report.add_row(
            scenario=f"{label} {name}",
            packet=result.packet_loss_rate,
            paper_packet=paper_packet,
            frame=result.frame_loss_rate,
            paper_frame=paper_frame,
            handoffs=result.handoffs,
        )
    persist_report(report)

    # Shape assertions straight from the paper's narrative.
    for profile_name in ("720P", "1080P"):
        losses = [results[(s, profile_name)].packet_loss_rate for s in (0, 35, 70)]
        assert losses[0] < losses[1] < losses[2], "loss must grow with speed"
    for speed in (0, 35, 70):
        assert (
            results[(speed, "1080P")].packet_loss_rate
            > results[(speed, "720P")].packet_loss_rate
        ), "higher resolution must lose more"
        for profile_name in ("720P", "1080P"):
            result = results[(speed, profile_name)]
            assert result.frame_loss_rate > result.packet_loss_rate, (
                "frame loss rate is bigger than packet loss rate for all cases"
            )
    # The 70 MPH cliff: the majority of high-resolution frames are lost.
    assert results[(70, "1080P")].frame_loss_rate > 0.8

"""E1 -- Table I: latency of autonomous-driving algorithms on a 2.4 GHz vCPU.

Paper values: Lane Detection 13.57 ms, Vehicle Detection (Haar) 269.46 ms,
Vehicle Detection (TensorFlow) 13 971.98 ms -- the Haar detector ~51x
faster than the deep one.

Our rows come from mechanistic op counts of real from-scratch kernels
(Sobel+Hough, integral-image Haar cascade, sliding-window numpy CNN)
divided by the vCPU's sustained throughput.  The timed unit is the actual
lane-detection kernel on a real 640x480 synthetic frame.
"""

import numpy as np
import pytest

from conftest import persist_report
from repro.obs import Report
from repro.vision import detect_lanes, road_scene, table1_rows

PAPER_MS = {
    "Lane Detection": 13.57,
    "Vehicle Detection (Haar)": 269.46,
    "Vehicle Detection (CNN)": 13971.98,
}


@pytest.fixture(scope="module")
def rows():
    return table1_rows(rng=np.random.default_rng(0))


def test_table1_report(rows, benchmark):
    scene, _ = road_scene(rng=np.random.default_rng(1))
    benchmark(detect_lanes, scene)

    report = Report(
        "table1_algorithms",
        "E1 / Table I -- algorithm latency on AWS EC2 2.4 GHz vCPU",
    )
    report.add_column("algorithm", 28)
    report.add_column("ops", 12, ".3g")
    report.add_column("measured_ms", 14, ".2f", header="measured ms")
    report.add_column("paper_ms", 12, ".2f", header="paper ms")
    for row in rows:
        report.add_row(
            algorithm=row.name, ops=row.ops, measured_ms=row.latency_ms,
            paper_ms=PAPER_MS[row.name],
        )
    lane, haar, cnn = (r.latency_ms for r in rows)
    report.note()
    report.note(f"CNN/Haar ratio: measured {cnn / haar:.1f}x, paper "
                f"{PAPER_MS['Vehicle Detection (CNN)'] / PAPER_MS['Vehicle Detection (Haar)']:.1f}x")
    report.note(f"Haar/Lane ratio: measured {haar / lane:.1f}x, paper "
                f"{PAPER_MS['Vehicle Detection (Haar)'] / PAPER_MS['Lane Detection']:.1f}x")
    persist_report(report)

    # Shape assertions: ordering and the headline ~51x gap.
    assert lane < haar < cnn
    assert 20 < cnn / haar < 110

"""A5 -- V2V collaboration: compute saved vs platoon size and overlap.

Paper SIII-C: collaboration "can save computing power by avoiding
executing unnecessary repeating operations".  This ablation sweeps the
platoon size and the sighting-overlap fraction and reports the fraction
of recognition compute saved against non-collaborating vehicles.
"""

import numpy as np
import pytest

from conftest import persist_report
from repro.apps import Platoon, PlateSighting, generate_sightings
from repro.obs import Report

SIZES = (2, 3, 5)
OVERLAPS = (0.3, 0.6, 0.9)


def shared_streams(vehicles: int, overlap: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    base = generate_sightings(80, "TARGET-1", rng)
    lists = []
    for v in range(vehicles):
        mine = []
        for s in base:
            if rng.random() < overlap:
                mine.append(PlateSighting(s.time_s + 0.1 * v, s.position_m,
                                          s.plate, s.quality))
            else:
                mine.append(PlateSighting(s.time_s + 0.1 * v,
                                          float(rng.uniform(0, 10_000)),
                                          f"UNIQ-{v}-{len(mine)}", s.quality))
        lists.append(mine)
    return lists


def sweep():
    rows = []
    for size in SIZES:
        for overlap in OVERLAPS:
            streams = shared_streams(size, overlap)
            solo = Platoon(size, collaborate=False).run(
                [list(s) for s in streams]
            )
            collab = Platoon(size, collaborate=True).run(streams)
            saved = 1.0 - collab.gops_spent / solo.gops_spent
            rows.append((size, overlap, collab.reuse_rate, saved))
    return rows


def test_collaboration_sweep(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = Report("ablate_collab", "A5 -- V2V collaboration: recognition compute saved")
    report.add_column("platoon", 8, "d")
    report.add_column("overlap", 9, ".1f")
    report.add_column("reuse_rate", 12, ".2f", header="reuse rate")
    report.add_column("saved", 15, ".1%", header="compute saved")
    for size, overlap, reuse, saved in rows:
        report.add_row(platoon=size, overlap=overlap, reuse_rate=reuse, saved=saved)
    persist_report(report)

    # Savings grow with overlap at fixed size...
    for size in SIZES:
        saved_by_overlap = [s for sz, _o, _r, s in rows if sz == size]
        assert saved_by_overlap == sorted(saved_by_overlap)
    # ...and with platoon size at high overlap.
    high = [s for _sz, o, _r, s in rows if o == 0.9]
    assert high == sorted(high)
    assert max(s for *_x, s in rows) > 0.4

"""A6 -- DSF scheduling policies on the heterogeneous mHEP (paper SIV-B2).

A burst of mixed tasks (DNN inference, classic vision, signal processing,
control logic) hits the VCU.  The paper's profile-driven matching ("match
the tasks with the computing resources according to their computing
characteristics", accounting for dynamic device state) is compared against
a static fastest-device policy and blind round-robin.  Metric: makespan of
the burst and energy drawn.
"""

import pytest

from conftest import persist_report
from repro.hw import WorkloadClass, catalog
from repro.obs import Report
from repro.offload import Task, TaskGraph
from repro.sim import Simulator
from repro.vcu import DSF, MHEP

POLICIES = ("eft", "fastest", "round-robin")


def burst():
    """A 24-task mixed burst as independent single-task jobs."""
    jobs = []
    specs = [
        ("dnn", 40.0, WorkloadClass.DNN),
        ("vision", 8.0, WorkloadClass.VISION),
        ("signal", 10.0, WorkloadClass.SIGNAL),
        ("control", 1.5, WorkloadClass.CONTROL),
    ]
    for i in range(6):
        for name, gops, workload in specs:
            jobs.append(
                TaskGraph.chain(f"{name}-{i}", [Task(f"{name}-{i}-t", gops, workload)])
            )
    return jobs


def run_policy(policy: str) -> tuple[float, float]:
    sim = Simulator()
    mhep = MHEP(sim)
    mhep.register(catalog.intel_i7_6700())
    mhep.register(catalog.jetson_tx2_maxp())
    mhep.register(catalog.intel_mncs())
    dsf = DSF(sim, mhep, policy=policy)
    procs = [dsf.submit(job) for job in burst()]
    sim.run()
    makespan = max(p.value.finished_at for p in procs)
    return makespan, dsf.energy.busy_joules()


def test_dsf_policies(benchmark):
    rows = benchmark.pedantic(
        lambda: [(policy, *run_policy(policy)) for policy in POLICIES],
        rounds=1, iterations=1,
    )

    report = Report(
        "ablate_dsf", "A6 -- DSF scheduling policy on a 24-task heterogeneous burst"
    )
    report.add_column("policy", 14)
    report.add_column("makespan_s", 12, ".2f", header="makespan s")
    report.add_column("energy_j", 10, ".1f", header="energy J")
    for policy, makespan, energy in rows:
        report.add_row(policy=policy, makespan_s=makespan, energy_j=energy)
    persist_report(report)

    makespans = {policy: makespan for policy, makespan, _e in rows}
    assert makespans["eft"] <= makespans["fastest"], (
        "queue-aware matching beats static fastest-device affinity"
    )
    assert makespans["eft"] < makespans["round-robin"], (
        "heterogeneity-aware matching beats blind spreading"
    )

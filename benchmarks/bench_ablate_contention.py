"""A9 -- analytic model vs distributed execution: validation and contention.

Two questions the platform must answer honestly:

1. Is the closed-form placement model *right*?  Executed uncontended
   latency must equal the analytic prediction for every placement.
2. What does the analytic model *miss*?  Under load (many vehicles sharing
   one XEdge), queueing pushes the executed tail far above the single-job
   prediction -- the capacity-planning signal an operator needs.
"""

import pytest

from conftest import persist_report
from repro.hw import WorkloadClass
from repro.obs import Report
from repro.offload import DistributedExecutor, Placement, Task, TaskGraph, evaluate_placement
from repro.sim import Simulator
from repro.topology import Tier, build_default_world

LOADS = (1, 4, 16)


def job(name="job"):
    return TaskGraph.chain(
        name,
        [
            Task("motion", 0.05, WorkloadClass.VISION, output_bytes=200_000,
                 source_bytes=1_000_000),
            Task("detect", 5.0, WorkloadClass.DNN, output_bytes=20_000),
            Task("recognize", 2.0, WorkloadClass.DNN, output_bytes=100),
        ],
    )


PLACEMENT = {"motion": Tier.VEHICLE, "detect": Tier.EDGE, "recognize": Tier.EDGE}


def sweep():
    analytic = evaluate_placement(
        job(), Placement(dict(PLACEMENT)), build_default_world()
    ).latency_s
    rows = []
    for load in LOADS:
        world = build_default_world()
        sim = Simulator()
        executor = DistributedExecutor(sim, world)
        procs = [
            executor.submit(job(f"job-{i}"), Placement(dict(PLACEMENT)))
            for i in range(load)
        ]
        sim.run()
        latencies = sorted(p.value.latency_s for p in procs)
        p95 = latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]
        rows.append((load, analytic, latencies[0], p95))
    return rows


def test_contention_validation(benchmark):
    rows = benchmark(sweep)

    report = Report(
        "ablate_contention",
        "A9 -- analytic placement model vs distributed execution "
        "(vehicle->edge split pipeline)",
    )
    report.add_column("load", 16, "d", header="concurrent jobs")
    report.add_column("analytic_ms", 13, ".1f", header="analytic ms")
    report.add_column("best_ms", 9, ".1f", header="best ms")
    report.add_column("p95_ms", 8, ".1f", header="p95 ms")
    for load, analytic, best, p95 in rows:
        report.add_row(
            load=load, analytic_ms=analytic * 1e3, best_ms=best * 1e3,
            p95_ms=p95 * 1e3,
        )
    persist_report(report)

    # Validation: a lone job executes exactly at the analytic prediction.
    load1 = rows[0]
    assert load1[2] == pytest.approx(load1[1], rel=1e-9)
    # Contention: the p95 grows monotonically with load and leaves the
    # single-job prediction far behind at 16x.
    p95s = [p95 for _l, _a, _b, p95 in rows]
    assert p95s == sorted(p95s)
    assert p95s[-1] > 3 * rows[0][1]

"""E3 -- Figure 3: Inception v3 latency and max power across processors.

Paper values (ms): DSP (Intel MNCS) 334.5, GPU#1 (TX2 Max-Q) 242.8,
GPU#2 (TX2 Max-P) 114.3, CPU (i7-6700) 153.9, GPU#3 (V100) 26.8; power
bars rise from the ~2.5 W USB stick to the 250 W datacenter GPU.

Our rows: the Inception v3 FLOP model through the calibrated processor
catalog.  The timed unit is the whole five-device sweep.
"""

import pytest

from conftest import persist_report
from repro.hw.catalog import FIGURE3_DEVICES
from repro.nn import INCEPTION_V3
from repro.obs import Report

PAPER_MS = {
    "DSP-based": 334.5,
    "GPU#1": 242.8,
    "GPU#2": 114.3,
    "CPU-based": 153.9,
    "GPU#3": 26.8,
}


def sweep():
    rows = []
    for label, factory in FIGURE3_DEVICES:
        device = factory()
        rows.append(
            (label, device.name, INCEPTION_V3.inference_time_s(device) * 1e3,
             device.tdp_watts)
        )
    return rows


def test_fig3_report(benchmark):
    rows = benchmark(sweep)

    report = Report(
        "fig3_processors",
        "E3 / Figure 3 -- Inception v3 per-image latency and max power",
    )
    report.add_column("label", 12)
    report.add_column("device", 24)
    report.add_column("measured_ms", 13, ".1f", header="measured ms")
    report.add_column("paper_ms", 10, ".1f", header="paper ms")
    report.add_column("power_w", 9, ".1f", header="power W")
    for label, name, ms, watts in rows:
        report.add_row(
            label=label, device=name, measured_ms=ms,
            paper_ms=PAPER_MS[label], power_w=watts,
        )
    persist_report(report)

    times = {label: ms for label, _n, ms, _w in rows}
    powers = [watts for _l, _n, _ms, watts in rows]
    # The paper's speed ranking and its power staircase.
    assert times["GPU#3"] < times["GPU#2"] < times["CPU-based"] < times["GPU#1"] < times["DSP-based"]
    assert powers == sorted(powers)
    # Each latency within 15% of the paper's bar.
    for label, expected in PAPER_MS.items():
        assert times[label] == pytest.approx(expected, rel=0.15)

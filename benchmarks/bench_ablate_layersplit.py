"""A7 -- layer-wise DNN split: the cut point migrates with bandwidth.

The paper's open problem (SIV-C, citing Neurosurgeon): "how to dynamically
divide workload on the edges is still a problem."  Two model families show
the two characteristic behaviours:

* **Inception v3** (CNN) -- early activations are *larger* than the input,
  so the optimum sits at the extremes and flips from all-remote to
  all-local as the link degrades;
* **speech encoder** -- activations shrink monotonically, so genuine
  partial splits win, and the cut slides layer by layer toward the
  vehicle as bandwidth falls.
"""

import pytest

from conftest import persist_report
from repro.hw import catalog
from repro.obs import Report
from repro.offload import best_split, inception_v3_layers, speech_encoder_layers
from repro.topology import build_default_world

BANDWIDTHS = (27.0, 10.0, 5.0, 1.0, 0.1)
INCEPTION_INPUT = 299 * 299 * 3.0  # compressed-ish camera frame
SPEECH_INPUT = 320_000.0           # 2 s of fp32 audio features


def sweep():
    world = build_default_world(vehicle_processors=[catalog.intel_mncs()])
    rows = []
    for model_name, layers, input_bytes in (
        ("inception_v3", inception_v3_layers(), INCEPTION_INPUT),
        ("speech_encoder", speech_encoder_layers(), SPEECH_INPUT),
    ):
        for bandwidth in BANDWIDTHS:
            world.links.vehicle_edge.bandwidth_mbps = bandwidth
            split = best_split(layers, world, input_bytes)
            rows.append(
                (model_name, bandwidth, split.cut, len(layers),
                 split.latency_s, split.uplink_bytes)
            )
    return rows


def test_layersplit_crossover(benchmark):
    rows = benchmark(sweep)

    report = Report(
        "ablate_layersplit",
        "A7 -- latency-optimal layer split vs vehicle<->edge bandwidth "
        "(weak on-board VPU)",
    )
    report.add_column("model", 16)
    report.add_column("bandwidth", 15, ".2f", header="bandwidth Mbps")
    report.add_column("cut", 7, align="right")
    report.add_column("latency_ms", 12, ".1f", header="latency ms")
    report.add_column("uplink_kb", 11, ".0f", header="uplink KB")
    for model, bandwidth, cut, n, latency, uplink in rows:
        report.add_row(
            model=model, bandwidth=bandwidth, cut=f"{cut}/{n}",
            latency_ms=latency * 1e3, uplink_kb=uplink / 1e3,
        )
    persist_report(report)

    inception = [(bw, cut) for m, bw, cut, *_r in rows if m == "inception_v3"]
    speech = [(bw, cut) for m, bw, cut, *_r in rows if m == "speech_encoder"]

    # Both families: the cut moves monotonically toward the vehicle as
    # bandwidth degrades, ending fully local on a dead link.
    for series, n in ((inception, 7), (speech, 5)):
        cuts = [cut for _bw, cut in series]
        assert cuts == sorted(cuts)
        assert cuts[0] < cuts[-1]
        assert cuts[-1] == n
    # Inception flips at the extremes (no partial split is ever optimal)...
    assert all(cut in (0, 7) for _bw, cut in inception)
    # ...while the speech encoder exhibits genuine partial splits.
    assert any(0 < cut < 5 for _bw, cut in speech)

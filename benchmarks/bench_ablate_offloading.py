"""A1 -- Offloading architectures: in-vehicle vs cloud vs edge (paper SIII).

The paper's central argument: in-vehicle-only burns watts and saturates
on-board silicon; cloud-only dies on the WAN; the edge-based strategy
meets deadlines with bounded bandwidth.  This ablation runs the standard
service mix through every strategy and reports latency / uplink / vehicle
energy, plus deadline hit rates.
"""

import pytest

from conftest import persist_report
from repro.hw import catalog
from repro.obs import Report
from repro.offload import CloudOnly, DynamicVDAP, EdgeOnly, Greedy, LocalOnly
from repro.topology import build_default_world
from repro.workloads import STANDARD_MIX

STRATEGIES = (LocalOnly(), CloudOnly(), EdgeOnly(), Greedy(), DynamicVDAP())


def build_world():
    # A mid-range vehicle so the on-board/edge tension is visible.
    return build_default_world(
        vehicle_processors=[catalog.intel_i7_6700(), catalog.intel_mncs()]
    )


def run_mix(world):
    table = {}
    for strategy in STRATEGIES:
        total_latency = 0.0
        total_uplink = 0.0
        total_energy = 0.0
        met = 0
        for factory, deadline in STANDARD_MIX:
            decision = strategy.decide(factory(), world, deadline_s=deadline)
            total_latency += decision.evaluation.latency_s
            total_uplink += decision.evaluation.uplink_bytes
            total_energy += decision.evaluation.vehicle_energy_j
            met += decision.meets_deadline
        table[strategy.name] = (total_latency, total_uplink, total_energy, met)
    return table


def test_offloading_architectures(benchmark):
    world = build_world()
    table = benchmark(run_mix, world)

    report = Report(
        "ablate_offloading",
        "A1 -- offloading architecture comparison (standard 4-service mix)",
    )
    report.add_column("strategy", 14)
    report.add_column("latency_s", 14, ".3f", header="sum latency s")
    report.add_column("uplink_kb", 11, ".0f", header="uplink KB")
    report.add_column("energy_j", 15, ".1f", header="veh. energy J")
    report.add_column("deadlines", 11, align="right")
    for name, (latency, uplink, energy, met) in table.items():
        report.add_row(
            strategy=name, latency_s=latency, uplink_kb=uplink / 1e3,
            energy_j=energy, deadlines=f"{met}/{len(STANDARD_MIX)}",
        )
    persist_report(report)

    local = table["local-only"]
    cloud = table["cloud-only"]
    vdap = table["dynamic-vdap"]
    # The paper's qualitative claims:
    assert vdap[3] == len(STANDARD_MIX), "the dynamic strategy meets every deadline"
    assert vdap[0] < cloud[0], "edge beats the WAN on latency"
    assert vdap[2] < local[2], "offloading spares vehicle energy"
    assert local[1] == 0.0, "local-only uses no uplink"
    assert vdap[1] <= cloud[1], "deadline-aware placement never ships more than cloud-only"

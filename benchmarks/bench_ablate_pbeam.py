"""A3 -- the pBEAM pipeline: compression sweep and personalization gain.

Paper SIV-E builds pBEAM by Deep-Compressing a cloud-trained cBEAM and
transfer-learning it on local data.  This ablation sweeps the pruning
level and reports download size, accuracy of the compressed common model
on an idiosyncratic driver, and accuracy after personalization.
"""

import numpy as np
import pytest

from conftest import write_report
from repro.libvdap import build_pbeam, train_cbeam
from repro.workloads import DriverProfile, fleet_dataset

SPARSITIES = (0.0, 0.4, 0.65, 0.8, 0.9)


def sweep():
    rng = np.random.default_rng(0)
    fleet_x, fleet_y = fleet_dataset(15, 120, rng)
    driver = DriverProfile("outlier", aggressiveness=2.5,
                           speed_preference_mps=4.0, smoothness=0.7)
    rows = []
    for sparsity in SPARSITIES:
        cbeam = train_cbeam(fleet_x, fleet_y, epochs=12, seed=0)
        result = build_pbeam(
            cbeam, driver, sparsity=sparsity, bits=5,
            rng=np.random.default_rng(1),
        )
        rows.append(
            (sparsity, result.download_bytes, result.compression.compression_ratio,
             result.cbeam_accuracy_on_driver, result.pbeam_accuracy_on_driver)
        )
    return rows


def test_pbeam_compression_sweep(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["A3 -- pBEAM: Deep-Compression sweep + personalization gain",
             f"{'sparsity':>9s}{'download B':>12s}{'ratio':>8s}{'cBEAM acc':>11s}{'pBEAM acc':>11s}"]
    for sparsity, nbytes, ratio, common, personal in rows:
        lines.append(
            f"{sparsity:>9.2f}{nbytes:>12.0f}{ratio:>8.1f}{common:>11.3f}{personal:>11.3f}"
        )
    write_report("ablate_pbeam", lines)

    downloads = [row[1] for row in rows]
    assert downloads == sorted(downloads, reverse=True), "more pruning, smaller download"
    for _s, _b, _r, common, personal in rows[:-1]:  # extreme pruning may crater
        assert personal >= common - 0.02, "personalization never hurts materially"
    # At the default operating point the gain is real.
    default = rows[2]
    assert default[4] > default[3]

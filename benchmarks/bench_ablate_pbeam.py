"""A3 -- the pBEAM pipeline: compression sweep and personalization gain.

Paper SIV-E builds pBEAM by Deep-Compressing a cloud-trained cBEAM and
transfer-learning it on local data.  This ablation sweeps the pruning
level and reports download size, accuracy of the compressed common model
on an idiosyncratic driver, and accuracy after personalization.
"""

import numpy as np
import pytest

from conftest import persist_report
from repro.libvdap import build_pbeam, train_cbeam
from repro.obs import Report
from repro.workloads import DriverProfile, fleet_dataset

SPARSITIES = (0.0, 0.4, 0.65, 0.8, 0.9)


def sweep():
    rng = np.random.default_rng(0)
    fleet_x, fleet_y = fleet_dataset(15, 120, rng)
    driver = DriverProfile("outlier", aggressiveness=2.5,
                           speed_preference_mps=4.0, smoothness=0.7)
    rows = []
    for sparsity in SPARSITIES:
        cbeam = train_cbeam(fleet_x, fleet_y, epochs=12, seed=0)
        result = build_pbeam(
            cbeam, driver, sparsity=sparsity, bits=5,
            rng=np.random.default_rng(1),
        )
        rows.append(
            (sparsity, result.download_bytes, result.compression.compression_ratio,
             result.cbeam_accuracy_on_driver, result.pbeam_accuracy_on_driver)
        )
    return rows


def test_pbeam_compression_sweep(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = Report(
        "ablate_pbeam", "A3 -- pBEAM: Deep-Compression sweep + personalization gain"
    )
    report.add_column("sparsity", 9, ".2f")
    report.add_column("download_b", 12, ".0f", header="download B")
    report.add_column("ratio", 8, ".1f")
    report.add_column("cbeam_acc", 11, ".3f", header="cBEAM acc")
    report.add_column("pbeam_acc", 11, ".3f", header="pBEAM acc")
    for sparsity, nbytes, ratio, common, personal in rows:
        report.add_row(
            sparsity=sparsity, download_b=nbytes, ratio=ratio,
            cbeam_acc=common, pbeam_acc=personal,
        )
    persist_report(report)

    downloads = [row[1] for row in rows]
    assert downloads == sorted(downloads, reverse=True), "more pruning, smaller download"
    for _s, _b, _r, common, personal in rows[:-1]:  # extreme pruning may crater
        assert personal >= common - 0.02, "personalization never hurts materially"
    # At the default operating point the gain is real.
    default = rows[2]
    assert default[4] > default[3]

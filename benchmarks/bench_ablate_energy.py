"""A8 -- the paper's SIII-B power argument: compute draw costs EV range.

"Deploying the power-hungry processors locally will affect the mileage per
discharge cycle."  This ablation runs a continuous ADAS perception load
for a one-hour drive under three on-board configurations (V100-class GPU,
Jetson-class GPU, DSP stick + edge offload) and reports compute energy and
the EV range given up.
"""

import pytest

from conftest import persist_report
from repro.hw import EVBattery, WorkloadClass, catalog
from repro.obs import Report
from repro.workloads import adas_frame_graph

DRIVE_HOURS = 1.0
FPS = 10.0  # perception invocations per second


def scenario_energy(processor, offload_detect: bool) -> tuple[float, float, float]:
    """(energy J, duty cycle, max sustainable fps) for the drive.

    If the device cannot sustain the target rate it saturates: duty pins
    at 1.0 and it simply drops frames (the paper's SI example of the
    second application not producing a timely decision).
    """
    graph = adas_frame_graph()
    detect = graph.task("vehicle-detect")
    lane = graph.task("lane-detect")
    per_frame_s = lane.work_gop / processor.effective_gops(WorkloadClass.VISION)
    if not offload_detect:
        per_frame_s += detect.work_gop / processor.effective_gops(WorkloadClass.DNN)
    wall_s = DRIVE_HOURS * 3600.0
    busy_s = min(wall_s, wall_s * FPS * per_frame_s)
    duty = busy_s / wall_s
    joules = processor.tdp_watts * busy_s + processor.idle_watts * (wall_s - busy_s)
    return joules, duty, 1.0 / per_frame_s


def sweep():
    rows = []
    configs = (
        ("V100 on board", catalog.tesla_v100(), False),
        ("Jetson TX2 on board", catalog.jetson_tx2_maxp(), False),
        ("i7 CPU on board", catalog.intel_i7_6700(), False),
        ("DSP + edge offload", catalog.intel_mncs(), True),
    )
    for label, processor, offload in configs:
        joules, duty, max_fps = scenario_energy(processor, offload)
        battery = EVBattery()
        range_cost = battery.range_cost_km(joules)
        rows.append((label, joules, duty, max_fps, range_cost))
    return rows


def test_energy_and_range(benchmark):
    rows = benchmark(sweep)

    report = Report(
        "ablate_energy",
        "A8 -- on-board compute energy over a 1 h drive at 10 ADAS fps",
    )
    report.add_column("configuration", 22)
    report.add_column("energy_kj", 11, ".1f", header="energy kJ")
    report.add_column("duty", 7, ".2f")
    report.add_column("max_fps", 9, ".1f", header="max fps")
    report.add_column("range_km", 15, ".3f", header="range cost km")
    report.add_column("sustains", 12, header="sustains?", align="right")
    for label, joules, duty, max_fps, range_cost in rows:
        report.add_row(
            configuration=label, energy_kj=joules / 1e3, duty=duty,
            max_fps=max_fps, range_km=range_cost,
            sustains="yes" if max_fps >= FPS else "NO",
        )
    persist_report(report)

    by_label = {label: (joules, duty, fps, km) for label, joules, duty, fps, km in rows}
    v100 = by_label["V100 on board"]
    offload = by_label["DSP + edge offload"]
    # The paper's SIII-B dilemma, quantified: only the power-hungry GPU
    # sustains the perception rate on board -- at real range cost -- while
    # the mid-tier devices saturate and drop frames.
    assert v100[2] >= FPS and offload[2] >= FPS
    assert by_label["Jetson TX2 on board"][2] < FPS
    assert by_label["i7 CPU on board"][2] < FPS
    assert v100[0] > 10 * offload[0]
    assert v100[3] > 0.1  # tenths of km per driving hour
    assert offload[3] < 0.05

"""Unit tests for the SSD model and energy accounting."""

import pytest

from repro.hw import EnergyMeter, EVBattery, ProcessorKind, ProcessorModel, SSDModel


def test_ssd_requires_a_channel():
    with pytest.raises(ValueError):
        SSDModel(channels=0)


def test_ssd_read_time_scales_with_size():
    ssd = SSDModel(channels=4, read_mbps=100.0, base_latency_s=0.0)
    # 4 channels x 100 MB/s = 400 MB/s -> 400 MB in 1 s.
    assert ssd.read_time(400e6) == pytest.approx(1.0)


def test_ssd_random_access_is_slower():
    ssd = SSDModel()
    assert ssd.read_time(1e6, sequential=False) > ssd.read_time(1e6, sequential=True)


def test_ssd_write_accounts_space():
    ssd = SSDModel(capacity_gb=1)
    ssd.write_time(5e8)
    assert ssd.used_bytes == pytest.approx(5e8)
    assert ssd.free_bytes == pytest.approx(5e8)


def test_ssd_write_beyond_capacity_raises():
    ssd = SSDModel(capacity_gb=1)
    with pytest.raises(ValueError):
        ssd.write_time(2e9)


def test_ssd_delete_releases_space():
    ssd = SSDModel(capacity_gb=1)
    ssd.write_time(5e8)
    ssd.delete(5e8)
    assert ssd.used_bytes == 0.0


def test_ssd_negative_sizes_raise():
    ssd = SSDModel()
    with pytest.raises(ValueError):
        ssd.read_time(-1)
    with pytest.raises(ValueError):
        ssd.write_time(-1)


def _proc(watts=100.0):
    return ProcessorModel(name="p", kind=ProcessorKind.CPU, peak_gops=10, tdp_watts=watts)


def test_energy_meter_accumulates_busy_joules():
    meter = EnergyMeter()
    proc = _proc(watts=100.0)
    meter.record_busy(proc, 2.0)
    meter.record_busy(proc, 1.0)
    assert meter.busy_joules("p") == pytest.approx(300.0)
    assert meter.busy_joules() == pytest.approx(300.0)
    assert meter.busy_seconds("p") == pytest.approx(3.0)


def test_energy_meter_idle_joules():
    meter = EnergyMeter()
    proc = _proc(watts=100.0)  # idle = 10 W
    meter.record_busy(proc, 2.0)
    # 10 s wall, 2 s busy -> 8 s idle at 10 W.
    assert meter.idle_joules(proc, wall_s=10.0) == pytest.approx(80.0)


def test_energy_meter_negative_time_raises():
    with pytest.raises(ValueError):
        EnergyMeter().record_busy(_proc(), -1.0)


def test_battery_draw_reduces_range():
    battery = EVBattery(capacity_kwh=10.0, drive_efficiency_wh_per_km=100.0)
    assert battery.remaining_range_km == pytest.approx(100.0)
    battery.draw(3600.0 * 1000.0)  # 1 kWh
    assert battery.remaining_kwh == pytest.approx(9.0)
    assert battery.remaining_range_km == pytest.approx(90.0)


def test_battery_depletion_raises():
    battery = EVBattery(capacity_kwh=0.001)
    with pytest.raises(ValueError):
        battery.draw(1e9)


def test_battery_range_cost():
    battery = EVBattery(drive_efficiency_wh_per_km=160.0)
    # A 250 W GPU for an hour: 250 Wh -> ~1.56 km of range.
    assert battery.range_cost_km(250.0 * 3600.0) == pytest.approx(250.0 / 160.0)

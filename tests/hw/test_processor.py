"""Unit tests for processor models."""

import pytest

from repro.hw import ProcessorKind, ProcessorModel, WorkloadClass
from repro.hw import catalog


def make_cpu(**kwargs):
    defaults = dict(name="cpu", kind=ProcessorKind.CPU, peak_gops=100.0, tdp_watts=50.0)
    defaults.update(kwargs)
    return ProcessorModel(**defaults)


def test_peak_must_be_positive():
    with pytest.raises(ValueError):
        make_cpu(peak_gops=0.0)


def test_idle_power_defaults_to_ten_percent_of_tdp():
    assert make_cpu().idle_watts == pytest.approx(5.0)


def test_explicit_idle_power_respected():
    assert make_cpu(idle_watts=2.0).idle_watts == 2.0


def test_efficiency_override_merges_with_defaults():
    cpu = make_cpu(efficiency={WorkloadClass.DNN: 0.5})
    assert cpu.efficiency[WorkloadClass.DNN] == 0.5
    # Non-overridden classes keep their defaults.
    assert cpu.efficiency[WorkloadClass.CONTROL] > 0.0


def test_effective_gops_is_peak_times_efficiency():
    cpu = make_cpu(efficiency={WorkloadClass.DNN: 0.2})
    assert cpu.effective_gops(WorkloadClass.DNN) == pytest.approx(20.0)


def test_execution_time_formula():
    cpu = make_cpu(efficiency={WorkloadClass.DNN: 0.2}, launch_overhead_s=0.001)
    # 10 Gops at 20 Gop/s = 0.5 s plus overhead.
    assert cpu.execution_time(10.0, WorkloadClass.DNN) == pytest.approx(0.501)


def test_execution_time_negative_work_raises():
    with pytest.raises(ValueError):
        make_cpu().execution_time(-1.0, WorkloadClass.DNN)


def test_unsupported_workload_raises():
    asic = ProcessorModel(
        name="npu", kind=ProcessorKind.ASIC, peak_gops=1000.0, tdp_watts=10.0
    )
    assert not asic.supports(WorkloadClass.CONTROL)
    with pytest.raises(ValueError):
        asic.execution_time(1.0, WorkloadClass.CONTROL)


def test_energy_is_tdp_times_time():
    assert make_cpu().energy(2.0) == pytest.approx(100.0)


def test_gpu_beats_cpu_on_dnn_but_not_control():
    cpu = catalog.intel_i7_6700()
    gpu = catalog.tesla_v100()
    assert gpu.effective_gops(WorkloadClass.DNN) > cpu.effective_gops(WorkloadClass.DNN)
    assert cpu.effective_gops(WorkloadClass.CONTROL) > gpu.effective_gops(
        WorkloadClass.CONTROL
    )


def test_figure3_catalog_ordering_matches_paper():
    """The paper's Figure 3 speed ranking: V100 < TX2-MaxP < i7 < TX2-MaxQ < MNCS."""
    work_gop = 11.4  # unit: gop -- Inception v3 forward pass op count
    times = {
        label: factory().execution_time(work_gop, WorkloadClass.DNN)
        for label, factory in catalog.FIGURE3_DEVICES
    }
    order = sorted(times, key=times.get)
    assert order == ["GPU#3", "GPU#2", "CPU-based", "GPU#1", "DSP-based"]


def test_figure3_power_ordering():
    powers = [factory().tdp_watts for _label, factory in catalog.FIGURE3_DEVICES]
    # DSP < TX2 Max-Q < TX2 Max-P < CPU < V100, exactly the paper's bars.
    assert powers == sorted(powers)

"""Elastic Management under an oscillating link: no thrash, no stuck-hang.

The DSRC link flapping around a QoS threshold is the paper's SIII-A
"unstable connection" scenario.  These tests pin the two resilience
properties layered onto :class:`~repro.edgeos.elastic.ElasticManager`:

* hysteresis (``switch_margin``) keeps a marginal challenger from
  bouncing the service between pipelines on every flap;
* hang-up is never sticky -- a service hung during a bad phase resumes
  as soon as a good phase returns, and ``degrade_before_hang`` keeps it
  serving (best-effort) right through the bad phases.
"""

from repro.edgeos import ElasticManager, ServiceState
from repro.hw import catalog
from repro.topology import build_default_world

from .test_elastic import a3_service

GOOD_BW = 27.0  # split pipeline wins (barely)
SOFT_BW = 10.0  # onboard pipeline wins (barely)
DEAD_BW = 0.01  # nothing involving the link meets any deadline


def oscillate(manager, service, world, cycles, low_bw):
    """Alternate the v2x links between GOOD_BW and ``low_bw``."""
    choices = []
    for _ in range(cycles):
        for bw in (GOOD_BW, low_bw):
            world.links.vehicle_edge.bandwidth_mbps = bw
            world.links.vehicle_cloud.bandwidth_mbps = bw
            choices.append(manager.choose(service, world))
    return choices


def test_margin_suppresses_switch_thrash():
    cycles = 20
    world = build_default_world()

    thrashy = ElasticManager(switch_margin=0.0)
    service = a3_service(deadline=4.0)
    thrashy.register(service)
    flappy = oscillate(thrashy, service, world, cycles, SOFT_BW)
    thrash_switches = sum(c.switched for c in flappy)
    # Without hysteresis the best pipeline flips on every half-cycle.
    assert thrash_switches > cycles

    steady = ElasticManager(switch_margin=0.3)
    service2 = a3_service(deadline=4.0)
    steady.register(service2)
    calm = oscillate(steady, service2, world, cycles, SOFT_BW)
    calm_switches = sum(c.switched for c in calm)
    # The ~8% score wobble never clears a 30% margin: after settling,
    # the incumbent survives every subsequent flap.
    assert calm_switches <= 2
    assert calm_switches < thrash_switches / 10
    assert service2.state is ServiceState.RUNNING
    assert not calm[-1].hung


def test_hang_is_never_sticky_across_link_flaps():
    cycles = 5
    # A weak vehicle: the deadline is only attainable with edge help, so
    # the dead phases genuinely force a hang-up.
    world = build_default_world(vehicle_processors=[catalog.onboard_controller()])
    manager = ElasticManager()
    service = a3_service(deadline=0.7)
    manager.register(service)

    choices = oscillate(manager, service, world, cycles, DEAD_BW)
    good_phases = choices[0::2]
    dead_phases = choices[1::2]
    assert all(not c.hung for c in good_phases)  # every recovery resumes
    assert all(c.hung for c in dead_phases)
    assert service.state is ServiceState.HUNG  # sequence ends on a dead phase

    world.links.vehicle_edge.bandwidth_mbps = GOOD_BW
    world.links.vehicle_cloud.bandwidth_mbps = GOOD_BW
    final = manager.choose(service, world)
    assert not final.hung and final.switched
    assert service.state is ServiceState.RUNNING
    assert service.hang_count == cycles  # one hang per dead phase, no extras


def test_degraded_mode_serves_through_the_bad_phases():
    cycles = 5
    world = build_default_world(vehicle_processors=[catalog.onboard_controller()])
    manager = ElasticManager(degrade_before_hang=True)
    service = a3_service(deadline=0.7)
    manager.register(service)

    choices = oscillate(manager, service, world, cycles, DEAD_BW)
    assert all(not c.hung for c in choices)  # never goes dark
    assert service.hang_count == 0
    dead_phases = choices[1::2]
    assert all(c.degraded and c.pipeline == "onboard" for c in dead_phases)
    good_phases = choices[0::2]
    assert all(not c.degraded for c in good_phases)
    # The oscillation ended on a dead phase; one good retune fully restores.
    world.links.vehicle_edge.bandwidth_mbps = GOOD_BW
    world.links.vehicle_cloud.bandwidth_mbps = GOOD_BW
    (restored,) = manager.retune(world)
    assert not restored.degraded and not restored.hung
    assert service.state is ServiceState.RUNNING

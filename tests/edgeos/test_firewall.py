"""Tests for the wireless-interface firewall."""

import pytest

from repro.edgeos import Direction, Firewall, Interface, PacketMeta, Rule


def pkt(interface=Interface.DSRC, direction=Direction.IN, peer="cav-9",
        service="safety-beacon"):
    return PacketMeta(interface=interface, direction=direction, peer=peer,
                      service=service)


def test_rule_validation():
    with pytest.raises(ValueError):
        Rule("drop")
    with pytest.raises(ValueError):
        Rule("allow", interface="carrier-pigeon")
    with pytest.raises(ValueError):
        Rule("allow", direction="sideways")


def test_default_deny_inbound_wireless():
    firewall = Firewall()
    assert not firewall.permits(pkt())
    assert firewall.dropped == [pkt()]


def test_outbound_defaults_to_allow():
    firewall = Firewall()
    assert firewall.permits(pkt(direction=Direction.OUT))


def test_stateful_reply_to_established_flow():
    firewall = Firewall()
    out = pkt(interface=Interface.CELLULAR, direction=Direction.OUT,
              peer="api.weather.com", service="weather")
    assert firewall.permits(out)
    reply = pkt(interface=Interface.CELLULAR, direction=Direction.IN,
                peer="api.weather.com", service="weather")
    assert firewall.permits(reply)
    # But unsolicited inbound from another peer on the same service: denied.
    assert not firewall.permits(pkt(interface=Interface.CELLULAR,
                                    peer="evil.example.com", service="weather"))


def test_first_match_wins():
    firewall = Firewall(rules=[
        Rule("deny", Interface.DSRC, Direction.IN, peer="cav-9"),
        Rule("allow", Interface.DSRC, Direction.IN),
    ])
    assert not firewall.permits(pkt(peer="cav-9"))
    assert firewall.permits(pkt(peer="cav-7"))
    assert firewall.hits(0) == 1 and firewall.hits(1) == 1


def test_glob_patterns_match_peers_and_services():
    firewall = Firewall(rules=[
        Rule("allow", Interface.BLUETOOTH, Direction.IN, peer="paired:*",
             service="obd-*"),
    ])
    assert firewall.permits(pkt(interface=Interface.BLUETOOTH,
                                peer="paired:phone-1", service="obd-diagnostics"))
    assert not firewall.permits(pkt(interface=Interface.BLUETOOTH,
                                    peer="random-device", service="obd-diagnostics"))


def test_rule_insertion_position():
    firewall = Firewall(rules=[Rule("allow", Interface.DSRC, Direction.IN)])
    firewall.add_rule(Rule("deny", Interface.DSRC, Direction.IN, peer="cav-9"),
                      position=0)
    assert not firewall.permits(pkt(peer="cav-9"))


def test_vehicle_default_policy():
    firewall = Firewall.vehicle_default()
    # V2V safety beacons come in over DSRC.
    assert firewall.permits(pkt(service="safety-beacon"))
    # Shared plate results too (the collaboration topic).
    assert firewall.permits(pkt(service="recognized-plates"))
    # Remote attacker poking the diagnostics port over cellular: denied.
    assert not firewall.permits(pkt(interface=Interface.CELLULAR,
                                    peer="attacker", service="obd-diagnostics"))
    # Paired phone over Bluetooth may use diagnostics.
    assert firewall.permits(pkt(interface=Interface.BLUETOOTH,
                                peer="paired:owner-phone",
                                service="obd-diagnostics"))
    # Model updates only from the platform cloud.
    assert firewall.permits(pkt(interface=Interface.CELLULAR,
                                peer="cloud.openvdap.org", service="model-update"))
    assert not firewall.permits(pkt(interface=Interface.CELLULAR,
                                    peer="mitm.example", service="model-update"))

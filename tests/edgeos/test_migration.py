"""Tests for V2V service migration with admission control."""

import pytest

from repro.edgeos import MigrationManager, MigrationOffer, PseudonymManager
from repro.net import LinkModel

IMAGE = b"a3-service-v2"


def trusted_manager():
    manager = MigrationManager()
    manager.trust_image("a3", IMAGE)
    peer = PseudonymManager("cav-neighbor", b"shared-secret")
    manager.trust_peer(peer)
    return manager, peer


def offer_from(peer: PseudonymManager, image: bytes = IMAGE, t: float = 10.0,
               state: dict | None = None):
    return MigrationOffer(
        service_name="a3",
        image=image,
        state=state or {"/data/progress": b"sector-7"},
        sender_pseudonym=peer.pseudonym(t),
        sent_at_s=t,
    )


def test_trusted_migration_is_admitted_with_state():
    manager, peer = trusted_manager()
    result = manager.receive(offer_from(peer))
    assert result.accepted
    assert result.container is not None
    assert result.container.read_file("/data/progress") == b"sector-7"
    assert ("a3", True, "admitted") in manager.audit


def test_tampered_image_is_quarantined():
    manager, peer = trusted_manager()
    result = manager.receive(offer_from(peer, image=b"a3-service-v2-TROJAN"))
    assert not result.accepted
    assert result.reason == "image tampered"
    assert result.container is None
    assert len(manager.quarantine) == 1


def test_unknown_service_is_rejected():
    manager, peer = trusted_manager()
    offer = MigrationOffer("unknown-svc", b"img", {}, peer.pseudonym(0.0), 0.0)
    result = manager.receive(offer)
    assert not result.accepted and result.reason == "unknown image"


def test_untrusted_sender_is_rejected():
    manager, _peer = trusted_manager()
    stranger = PseudonymManager("cav-stranger", b"other-secret")
    result = manager.receive(offer_from(stranger))
    assert not result.accepted and result.reason == "untrusted sender"


def test_stale_pseudonym_is_rejected():
    """A pseudonym from a long-past epoch no longer verifies (replay)."""
    manager, peer = trusted_manager()
    old = MigrationOffer(
        "a3", IMAGE, {}, sender_pseudonym=peer.pseudonym(0.0), sent_at_s=5_000.0
    )
    result = manager.receive(old)
    assert not result.accepted and result.reason == "untrusted sender"


def test_transfer_cost_is_accounted_over_v2v_link():
    manager, peer = trusted_manager()
    wifi = LinkModel(name="wifi", bandwidth_mbps=80.0, rtt_s=0.003)
    result = manager.receive(offer_from(peer), link=wifi)
    assert result.accepted
    assert result.transfer_s > 0.0


def test_rejected_migration_still_costs_the_transfer():
    """You pay for the bytes before you can inspect them."""
    manager, peer = trusted_manager()
    wifi = LinkModel(name="wifi", bandwidth_mbps=80.0, rtt_s=0.003)
    result = manager.receive(offer_from(peer, image=b"evil"), link=wifi)
    assert not result.accepted
    assert result.transfer_s > 0.0

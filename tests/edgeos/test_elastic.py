"""Tests for polymorphic services and Elastic Management."""

import pytest

from repro.edgeos import ElasticManager, Pipeline, PolymorphicService, ServiceState
from repro.hw import WorkloadClass
from repro.offload import Task, TaskGraph
from repro.topology import Tier, build_default_world
from repro.vcu import QoSClass


def a3_graph():
    """The kidnapper-search service: motion detect -> plate recognize."""
    return TaskGraph.chain(
        "a3",
        [
            Task("motion", 0.05, WorkloadClass.VISION, output_bytes=150_000,
                 source_bytes=1_500_000),
            Task("recognize", 8.0, WorkloadClass.DNN, output_bytes=200),
        ],
    )


def a3_service(deadline=2.0):
    return PolymorphicService(
        name="kidnapper-search",
        qos=QoSClass.LATENCY_SENSITIVE,
        deadline_s=deadline,
        graph_factory=a3_graph,
        pipelines=[
            Pipeline("onboard", {"motion": Tier.VEHICLE, "recognize": Tier.VEHICLE}),
            Pipeline("offload-all", {"motion": Tier.EDGE, "recognize": Tier.EDGE}),
            Pipeline("split", {"motion": Tier.VEHICLE, "recognize": Tier.EDGE}),
        ],
    )


def test_service_validation():
    with pytest.raises(ValueError):
        PolymorphicService("x", qos=99, deadline_s=1.0, graph_factory=a3_graph,
                           pipelines=[Pipeline("p", {})])
    with pytest.raises(ValueError):
        PolymorphicService("x", qos=QoSClass.INTERACTIVE, deadline_s=1.0,
                           graph_factory=a3_graph, pipelines=[])
    with pytest.raises(ValueError):
        PolymorphicService(
            "x", qos=QoSClass.INTERACTIVE, deadline_s=1.0, graph_factory=a3_graph,
            pipelines=[Pipeline("p", {}), Pipeline("p", {})],
        )


def test_service_pipeline_lookup():
    service = a3_service()
    assert service.pipeline("split").assignment["recognize"] == Tier.EDGE
    with pytest.raises(KeyError):
        service.pipeline("nope")


def test_manager_register_duplicates():
    manager = ElasticManager()
    manager.register(a3_service())
    with pytest.raises(ValueError):
        manager.register(a3_service())
    manager.unregister("kidnapper-search")
    with pytest.raises(KeyError):
        manager.unregister("kidnapper-search")


def test_manager_goal_validation():
    with pytest.raises(ValueError):
        ElasticManager(goal="vibes")


def test_choose_picks_deadline_meeting_pipeline():
    world = build_default_world()
    manager = ElasticManager()
    service = a3_service(deadline=5.0)
    manager.register(service)
    choice = manager.choose(service, world)
    assert not choice.hung
    assert service.state is ServiceState.RUNNING
    assert choice.evaluation.latency_s <= 5.0


def test_hang_up_when_no_pipeline_meets_deadline():
    world = build_default_world()
    manager = ElasticManager()
    service = a3_service(deadline=1e-6)
    manager.register(service)
    choice = manager.choose(service, world)
    assert choice.hung
    assert service.state is ServiceState.HUNG
    assert service.active_pipeline is None
    assert service.hang_count == 1


def test_degraded_network_switches_pipeline_onboard():
    """The paper's narrative: good network -> offload; bad network -> the
    pipeline moves (partly) on board."""
    world = build_default_world()
    manager = ElasticManager()
    service = a3_service(deadline=4.0)
    manager.register(service)

    first = manager.choose(service, world)
    assert first.pipeline in ("offload-all", "split")

    # Network collapses: DSRC drops to dial-up quality.
    world.links.vehicle_edge.bandwidth_mbps = 0.05
    world.links.vehicle_cloud.bandwidth_mbps = 0.05
    second = manager.choose(service, world)
    assert second.pipeline == "onboard"
    assert second.switched


def test_service_resumes_when_network_recovers():
    from repro.hw import catalog

    # A weak vehicle: the deadline is only attainable with edge help.
    world = build_default_world(vehicle_processors=[catalog.onboard_controller()])
    manager = ElasticManager()
    service = a3_service(deadline=0.7)
    manager.register(service)
    assert not manager.choose(service, world).hung

    world.links.vehicle_edge.bandwidth_mbps = 0.01
    world.links.vehicle_cloud.bandwidth_mbps = 0.01
    assert manager.choose(service, world).hung

    world.links.vehicle_edge.bandwidth_mbps = 27.0
    world.links.vehicle_cloud.bandwidth_mbps = 10.0
    resumed = manager.choose(service, world)
    assert not resumed.hung
    assert service.state is ServiceState.RUNNING
    assert resumed.switched  # resume counts as a switch


def test_energy_goal_prefers_offloading():
    world = build_default_world()
    latency_mgr = ElasticManager(goal="latency")
    energy_mgr = ElasticManager(goal="energy")
    service = a3_service(deadline=10.0)  # generous: all pipelines qualify
    energy_choice = energy_mgr.choose(service, world)
    # Offloading burns zero vehicle joules.
    assert energy_choice.evaluation.vehicle_energy_j == 0.0
    assert energy_choice.pipeline == "offload-all"
    latency_choice = latency_mgr.choose(service, world)
    assert latency_choice.evaluation.latency_s <= energy_choice.evaluation.latency_s


def test_retune_covers_all_services():
    world = build_default_world()
    manager = ElasticManager()
    manager.register(a3_service())
    other = PolymorphicService(
        name="diagnostics",
        qos=QoSClass.BACKGROUND,
        deadline_s=30.0,
        graph_factory=lambda: TaskGraph.chain(
            "diag", [Task("analyze", 0.5, WorkloadClass.CONTROL, output_bytes=1_000)]
        ),
        pipelines=[Pipeline("onboard", {"analyze": Tier.VEHICLE})],
    )
    manager.register(other)
    choices = manager.retune(world)
    assert {c.service for c in choices} == {"kidnapper-search", "diagnostics"}

"""Tests for automatic pipeline generation."""

import pytest

from repro.edgeos.pipelines import downward_closed_cuts, generate_pipelines
from repro.hw import WorkloadClass
from repro.offload import Placement, Task, TaskGraph, evaluate_placement
from repro.topology import Tier, build_default_world
from repro.workloads import amber_search_graph


def chain3():
    return TaskGraph.chain(
        "c",
        [
            Task("a", 1.0, WorkloadClass.DNN, output_bytes=100, source_bytes=1000),
            Task("b", 1.0, WorkloadClass.DNN, output_bytes=100),
            Task("c", 1.0, WorkloadClass.DNN, output_bytes=100),
        ],
    )


def test_downward_closed_cuts_of_a_chain():
    """A chain of n tasks has exactly n+1 downward-closed cuts (prefixes)."""
    cuts = downward_closed_cuts(chain3())
    assert len(cuts) == 4
    assert frozenset() in cuts and frozenset({"a", "b", "c"}) in cuts
    assert frozenset({"a"}) in cuts and frozenset({"a", "b"}) in cuts
    # Non-prefix subsets are excluded.
    assert frozenset({"b"}) not in cuts


def test_downward_closed_cuts_of_a_diamond():
    graph = TaskGraph("d")
    for name in "abcd":
        graph.add_task(Task(name, 1.0, WorkloadClass.DNN))
    graph.add_edge("a", "b")
    graph.add_edge("a", "c")
    graph.add_edge("b", "d")
    graph.add_edge("c", "d")
    cuts = {tuple(sorted(c)) for c in downward_closed_cuts(graph)}
    assert cuts == {
        (), ("a",), ("a", "b"), ("a", "c"), ("a", "b", "c"), ("a", "b", "c", "d"),
    }


def test_cut_enumeration_size_guard():
    graph = TaskGraph("big")
    for i in range(17):
        graph.add_task(Task(f"t{i}", 1.0, WorkloadClass.DNN))
    with pytest.raises(ValueError):
        downward_closed_cuts(graph)


def test_generate_pipelines_pins_sensor_tasks_to_vehicle():
    pipelines = generate_pipelines(chain3())
    assert pipelines
    for pipeline in pipelines:
        assert pipeline.assignment["a"] == Tier.VEHICLE  # a has source bytes


def test_generate_pipelines_without_pinning_includes_all_remote():
    pipelines = generate_pipelines(chain3(), pin_sources_local=False)
    names = {p.name for p in pipelines}
    assert "all-edge" in names and "onboard" in names


def test_generate_pipelines_names_are_unique():
    pipelines = generate_pipelines(
        amber_search_graph(), remote_tiers=(Tier.EDGE, Tier.CLOUD)
    )
    names = [p.name for p in pipelines]
    assert len(names) == len(set(names))


def test_generated_pipelines_cover_hand_written_ones():
    """For the amber graph, the generator reproduces the paper's three
    pipelines (onboard / all-remote / split-after-motion)."""
    graph = amber_search_graph()
    pipelines = generate_pipelines(graph, pin_sources_local=False)
    assignments = {tuple(sorted(p.assignment.items())) for p in pipelines}

    def as_key(mapping):
        return tuple(sorted(mapping.items()))

    onboard = {name: Tier.VEHICLE for name in graph.task_names}
    all_edge = {name: Tier.EDGE for name in graph.task_names}
    split = dict(onboard)
    split["plate-detect"] = Tier.EDGE
    split["plate-recognize"] = Tier.EDGE
    for expected in (onboard, all_edge, split):
        assert as_key(expected) in assignments


def test_generated_pipelines_are_all_evaluable():
    world = build_default_world()
    graph = chain3()
    for pipeline in generate_pipelines(graph, remote_tiers=(Tier.EDGE, Tier.CLOUD)):
        evaluation = evaluate_placement(graph, pipeline.placement(), world)
        assert evaluation.feasible


def test_generate_pipelines_invalid_tier():
    with pytest.raises(ValueError):
        generate_pipelines(chain3(), remote_tiers=(Tier.VEHICLE,))


def test_service_from_graph_end_to_end():
    """A third-party graph becomes a fully managed service: pipelines are
    generated, the elastic manager schedules it, and tightening the
    network moves it on board."""
    from repro.edgeos import ElasticManager, service_from_graph
    from repro.vcu import QoSClass

    service = service_from_graph(
        "thirdparty-analytics",
        qos=QoSClass.LATENCY_SENSITIVE,
        deadline_s=5.0,
        graph_factory=chain3,
        remote_tiers=(Tier.EDGE, Tier.CLOUD),
    )
    assert len(service.pipelines) >= 3
    world = build_default_world()
    manager = ElasticManager()
    manager.register(service)
    assert not manager.choose(service, world).hung
    world.links.vehicle_edge.bandwidth_mbps = 0.001
    world.links.vehicle_cloud.bandwidth_mbps = 0.001
    choice = manager.choose(service, world)
    assert choice.pipeline == "onboard"

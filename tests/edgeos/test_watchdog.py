"""Tests for the EdgeOS health watchdog."""

import pytest

from repro.edgeos import ElasticManager, HealthWatchdog
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.sim import Simulator
from repro.topology import Tier, build_default_world

from .test_elastic import a3_service


def test_validation():
    with pytest.raises(ValueError):
        HealthWatchdog(heartbeat_interval_s=0.0)
    with pytest.raises(ValueError):
        HealthWatchdog(miss_threshold=0)


def test_silence_marks_down_heartbeat_revives():
    dog = HealthWatchdog(heartbeat_interval_s=1.0, miss_threshold=3)
    dog.register("tier:edge", now_s=0.0)
    assert dog.sweep(2.0) == []  # within the allowance
    assert dog.sweep(3.5) == ["tier:edge"]
    assert not dog.healthy("tier:edge")
    assert not dog.tier_healthy(Tier.EDGE)
    assert dog.down_components == ["tier:edge"]

    dog.heartbeat("tier:edge", 5.0)
    assert dog.healthy("tier:edge")
    comp = dog.component("tier:edge")
    assert comp.flaps == 1
    assert comp.total_down_s == pytest.approx(1.5)
    assert [t[1] for t in dog.transitions] == ["down", "up"]


def test_unknown_components_count_healthy():
    dog = HealthWatchdog()
    assert dog.healthy("never-registered")
    assert dog.tier_healthy(Tier.CLOUD)


def test_drive_observes_fault_plan_through_missed_heartbeats():
    sim = Simulator()
    plan = FaultPlan(
        seed=0,
        horizon_s=60.0,
        events=(FaultEvent(FaultKind.PROCESSOR_DOWN, "edge/gpu", 10.0, 20.0),),
    )
    injector = FaultInjector(sim, plan)
    dog = HealthWatchdog(heartbeat_interval_s=1.0, miss_threshold=3)
    dog.drive(sim, injector, {"tier:edge": "proc:edge/gpu"}, horizon_s=60.0)
    sim.run()
    transitions = [(t, what) for t, what, _ in dog.transitions]
    # Down is detected a few missed beats after onset; up on first beat back.
    assert transitions[0][1] == "down"
    assert 10.0 < transitions[0][0] <= 15.0
    assert transitions[1][1] == "up"
    assert 30.0 <= transitions[1][0] <= 32.0
    assert dog.component("tier:edge").flaps == 1


def test_elastic_failover_excludes_unhealthy_tier():
    world = build_default_world()
    manager = ElasticManager()
    service = a3_service(deadline=5.0)
    manager.register(service)
    dog = HealthWatchdog()
    dog.register("tier:edge", now_s=0.0)

    healthy_choice = manager.choose(service, world, health=dog)
    assert healthy_choice.pipeline in ("offload-all", "split")

    dog.sweep(100.0)  # edge went silent
    failover = manager.choose(service, world, health=dog)
    assert failover.pipeline == "onboard"
    assert failover.switched

    dog.heartbeat("tier:edge", 101.0)
    recovered = manager.choose(service, world, health=dog)
    assert recovered.pipeline in ("offload-all", "split")

"""Tests for the Security, Privacy and Data Sharing modules."""

import pytest

from repro.edgeos import (
    AccessDenied,
    AttestationError,
    DataSharingBus,
    LocationFuzzer,
    Pipeline,
    PolymorphicService,
    PseudonymManager,
    SecurityModule,
    ServiceState,
)
from repro.hw import WorkloadClass
from repro.offload import Task, TaskGraph
from repro.topology import Tier
from repro.vcu import QoSClass


def make_service(name="svc", tee=False):
    return PolymorphicService(
        name=name,
        qos=QoSClass.LATENCY_SENSITIVE,
        deadline_s=1.0,
        graph_factory=lambda: TaskGraph.chain(
            name, [Task(f"{name}-t", 0.1, WorkloadClass.CONTROL)]
        ),
        pipelines=[Pipeline("onboard", {f"{name}-t": Tier.VEHICLE})],
        requires_tee=tee,
    )


# -- TEE ----------------------------------------------------------------------


def test_enclave_roundtrip_with_session_key():
    module = SecurityModule()
    enclave = module.deploy(make_service("ad", tee=True), b"autonomous-driving-v1")
    enclave.write("state", b"secret plan")
    assert enclave.read("state", enclave.session_key) == b"secret plan"


def test_enclave_memory_is_encrypted_at_rest():
    module = SecurityModule()
    enclave = module.deploy(make_service("ad", tee=True), b"code")
    enclave.write("state", b"secret plan")
    assert enclave.raw_memory("state") != b"secret plan"


def test_enclave_wrong_key_never_reveals_plaintext():
    module = SecurityModule()
    enclave = module.deploy(make_service("ad", tee=True), b"code")
    enclave.write("state", b"secret plan")
    leaked = enclave.read("state", b"0" * 32)
    assert leaked != b"secret plan"


def test_attestation_accepts_pristine_code_and_rejects_tampered():
    module = SecurityModule()
    enclave = module.deploy(make_service("ad", tee=True), b"genuine code")
    enclave.verify_quote(b"genuine code")  # no raise
    with pytest.raises(AttestationError):
        enclave.verify_quote(b"trojaned code")


def test_two_enclaves_have_distinct_session_keys():
    module = SecurityModule()
    a = module.deploy(make_service("a", tee=True), b"code-a")
    b = module.deploy(make_service("b", tee=True), b"code-b")
    assert a.session_key != b.session_key
    # Service b's key cannot read a's memory.
    a.write("x", b"private to a")
    assert b.session_key != a.session_key
    assert a.read("x", b.session_key) != b"private to a"


# -- containers & recovery ------------------------------------------------------


def test_duplicate_deploy_rejected():
    module = SecurityModule()
    service = make_service("svc")
    module.deploy(service, b"img")
    with pytest.raises(ValueError):
        module.deploy(service, b"img")


def test_container_isolation_and_reinstall():
    module = SecurityModule()
    service = make_service("thirdparty")
    container = module.deploy(service, b"pristine-image")
    container.write_file("/data/creds", b"stolen")
    module.report_compromise(service)
    assert service.state is ServiceState.COMPROMISED
    assert container.compromised

    recovered = module.monitor([service])
    assert recovered == ["thirdparty"]
    assert service.state is ServiceState.RUNNING
    assert service.reinstall_count == 1
    assert container.generation == 1
    assert container.filesystem == {}  # wiped


def test_monitor_ignores_healthy_services():
    module = SecurityModule()
    service = make_service("ok")
    module.deploy(service, b"img")
    assert module.monitor([service]) == []
    assert module.reinstalls == 0


def test_tee_service_recovery_rebuilds_enclave():
    module = SecurityModule()
    service = make_service("critical", tee=True)
    enclave = module.deploy(service, b"pristine")
    enclave.write("state", b"dirty")
    module.report_compromise(service)
    module.monitor([service])
    fresh = module.enclave("critical")
    assert fresh is not enclave
    fresh.verify_quote(b"pristine")  # fresh enclave attests to pristine code


# -- privacy ---------------------------------------------------------------------


def test_pseudonym_stable_within_epoch_and_rotates_across():
    manager = PseudonymManager("VIN-123", b"secret", rotation_period_s=300.0)
    assert manager.pseudonym(10.0) == manager.pseudonym(290.0)
    assert manager.pseudonym(10.0) != manager.pseudonym(310.0)


def test_pseudonym_differs_between_vehicles():
    a = PseudonymManager("VIN-A", b"secret", rotation_period_s=300.0)
    b = PseudonymManager("VIN-B", b"secret", rotation_period_s=300.0)
    assert a.pseudonym(0.0) != b.pseudonym(0.0)


def test_pseudonym_verify_with_clock_skew():
    manager = PseudonymManager("VIN-123", b"secret", rotation_period_s=300.0)
    token = manager.pseudonym(10.0)
    assert manager.verify(token, 10.0)
    assert manager.verify(token, 350.0)  # one epoch of skew allowed
    assert not manager.verify(token, 2000.0)
    assert not manager.verify("f" * 16, 10.0)


def test_pseudonym_validation():
    with pytest.raises(ValueError):
        PseudonymManager("v", b"", rotation_period_s=300.0)
    with pytest.raises(ValueError):
        PseudonymManager("v", b"s", rotation_period_s=0.0)


def test_location_fuzzer_snaps_to_cell_centre():
    fuzzer = LocationFuzzer(grid_m=500.0)
    assert fuzzer.generalize(10.0, 10.0) == (250.0, 250.0)
    assert fuzzer.generalize(499.0, 10.0) == (250.0, 250.0)
    assert fuzzer.generalize(501.0, 10.0) == (750.0, 250.0)


def test_location_fuzzer_error_bound():
    fuzzer = LocationFuzzer(grid_m=500.0)
    gx, gy = fuzzer.generalize(499.9, 499.9)
    displacement = ((gx - 499.9) ** 2 + (gy - 499.9) ** 2) ** 0.5
    assert displacement <= fuzzer.error_bound_m() + 1e-9


# -- data sharing -----------------------------------------------------------------


def test_sharing_requires_authentication():
    bus = DataSharingBus()
    bus.register_service("adas")
    bus.create_topic("camera", readers=["adas"], writers=["adas"])
    with pytest.raises(AccessDenied):
        bus.publish("adas", "wrong-token", "camera", b"frame")


def test_sharing_enforces_topic_acl():
    bus = DataSharingBus()
    cam_token = bus.register_service("camera-driver")
    spy_token = bus.register_service("spyware")
    bus.create_topic("camera", readers=["adas"], writers=["camera-driver"])
    bus.publish("camera-driver", cam_token, "camera", b"frame-0")
    with pytest.raises(AccessDenied):
        bus.read("spyware", spy_token, "camera")
    # The denial is audited.
    assert ("spyware", "read", "camera", False) in bus.audit


def test_sharing_read_and_grant_flow():
    bus = DataSharingBus()
    cam = bus.register_service("camera-driver")
    a3 = bus.register_service("a3")
    bus.create_topic("camera", readers=[], writers=["camera-driver"])
    bus.publish("camera-driver", cam, "camera", b"frame-0")
    with pytest.raises(AccessDenied):
        bus.read("a3", a3, "camera")
    bus.grant("camera", "a3", read=True)
    records = bus.read("a3", a3, "camera")
    assert [r.payload for r in records] == [b"frame-0"]


def test_sharing_revoke_cuts_access():
    bus = DataSharingBus()
    cam = bus.register_service("cam")
    bus.create_topic("t", readers=["cam"], writers=["cam"])
    bus.revoke("t", "cam")
    with pytest.raises(AccessDenied):
        bus.read("cam", cam, "t")


def test_sharing_subscription_delivers_only_to_authorized():
    bus = DataSharingBus()
    cam = bus.register_service("cam")
    a3 = bus.register_service("a3")
    recorder = bus.register_service("recorder")
    bus.create_topic("plates", readers=["recorder"], writers=["a3"])
    bus.register_service  # no-op

    seen = []
    bus.subscribe("recorder", recorder, "plates", lambda rec: seen.append(rec.payload))
    with pytest.raises(AccessDenied):
        bus.subscribe("cam", cam, "plates", lambda rec: None)
    bus.publish("a3", a3, "plates", "ABC-123")
    assert seen == ["ABC-123"]


def test_sharing_read_since_sequence():
    bus = DataSharingBus()
    w = bus.register_service("w")
    bus.create_topic("t", readers=["w"], writers=["w"])
    bus.publish("w", w, "t", "one")
    second = bus.publish("w", w, "t", "two")
    records = bus.read("w", w, "t", since=second.sequence)
    assert [r.payload for r in records] == ["two"]


def test_sharing_duplicate_registration_and_topic():
    bus = DataSharingBus()
    bus.register_service("s")
    with pytest.raises(ValueError):
        bus.register_service("s")
    bus.create_topic("t", readers=[], writers=[])
    with pytest.raises(ValueError):
        bus.create_topic("t", readers=[], writers=[])

"""Tests for workload generators and metrics helpers."""

import numpy as np
import pytest

from repro.obs import Summary, Timeline
from repro.topology import Tier
from repro.workloads import (
    FEATURES,
    MANEUVERS,
    STANDARD_MIX,
    DriverProfile,
    adas_frame_graph,
    amber_search_graph,
    diagnostics_graph,
    driver_dataset,
    fleet_dataset,
    infotainment_chunk_graph,
    maneuver_window,
    random_profile,
)


def test_driver_profile_validation():
    with pytest.raises(ValueError):
        DriverProfile("d", aggressiveness=0.0)
    with pytest.raises(ValueError):
        DriverProfile("d", smoothness=-1.0)


def test_maneuver_window_shape_and_unknown():
    profile = DriverProfile("d")
    window = maneuver_window("cruise", profile, np.random.default_rng(0))
    assert window.shape == (len(FEATURES),)
    with pytest.raises(ValueError):
        maneuver_window("teleport", profile, np.random.default_rng(0))


def test_aggressive_driver_has_hotter_dynamics():
    rng = np.random.default_rng(0)
    calm = DriverProfile("calm", aggressiveness=0.8)
    hot = DriverProfile("hot", aggressiveness=2.0)
    calm_accel = np.mean(
        [maneuver_window("accelerate", calm, rng)[2] for _ in range(50)]
    )
    hot_accel = np.mean(
        [maneuver_window("accelerate", hot, rng)[2] for _ in range(50)]
    )
    assert hot_accel > calm_accel + 1.0


def test_driver_dataset_shapes_and_labels():
    x, y = driver_dataset(DriverProfile("d"), 80, np.random.default_rng(0))
    assert x.shape == (80, len(FEATURES))
    assert set(np.unique(y)) <= set(range(len(MANEUVERS)))
    with pytest.raises(ValueError):
        driver_dataset(DriverProfile("d"), 0, np.random.default_rng(0))


def test_fleet_dataset_pools_drivers():
    x, y = fleet_dataset(5, 20, np.random.default_rng(0))
    assert x.shape == (100, len(FEATURES))


def test_random_profile_is_reproducible():
    a = random_profile("d", np.random.default_rng(3))
    b = random_profile("d", np.random.default_rng(3))
    assert a == b


def test_service_graphs_are_valid_dags():
    for factory in (adas_frame_graph, amber_search_graph,
                    infotainment_chunk_graph, diagnostics_graph):
        graph = factory()
        assert len(graph) >= 2
        assert graph.roots and graph.sinks
        # Source data enters at a root.
        assert any(graph.task(r).source_bytes > 0 for r in graph.roots)


def test_adas_graph_fans_out_and_joins():
    graph = adas_frame_graph()
    assert set(graph.successors("capture")) == {"lane-detect", "vehicle-detect"}
    assert set(graph.predecessors("fuse-alert")) == {"lane-detect", "vehicle-detect"}


def test_standard_mix_deadlines_ordered_by_criticality():
    deadlines = [deadline for _f, deadline in STANDARD_MIX]
    assert deadlines == sorted(deadlines)


def test_summary_statistics():
    summary = Summary("lat")
    for v in (1.0, 2.0, 3.0, 4.0, 100.0):
        summary.record(v)
    assert summary.count == 5
    assert summary.mean == pytest.approx(22.0)
    assert summary.p50 == pytest.approx(3.0)
    assert summary.maximum == 100.0
    row = summary.row()
    assert row["name"] == "lat" and row["p95"] > row["p50"]


def test_summary_empty_and_validation():
    summary = Summary("x")
    assert summary.mean == 0.0 and summary.p99 == 0.0
    with pytest.raises(ValueError):
        summary.percentile(101)


def test_timeline_records_and_queries():
    timeline = Timeline("pipeline")
    timeline.record(0.0, "onboard")
    timeline.record(10.0, "split")
    timeline.record(20.0, "onboard")
    assert timeline.value_at(5.0) == "onboard"
    assert timeline.value_at(10.0) == "split"
    assert timeline.value_at(-1.0) is None
    assert timeline.changes() == 2
    with pytest.raises(ValueError):
        timeline.record(5.0, "late")


def _unused(tier=Tier.VEHICLE):
    return tier

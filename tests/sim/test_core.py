"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    # The kernel promises an exact 0.0 start; epsilon would weaken the test.
    assert Simulator().now == 0.0  # vdaplint: disable=FLT001


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    assert sim.run() == 5.0


def test_run_until_advances_clock_past_last_event():
    sim = Simulator()
    sim.timeout(1.0)
    assert sim.run(until=10.0) == 10.0


def test_run_until_does_not_fire_later_events():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(5.0)
        fired.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=2.0)
    assert fired == []
    sim.run(until=10.0)
    assert fired == [5.0]


def test_run_backwards_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_negative_timeout_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_sequencing_and_return_value():
    sim = Simulator()
    log = []

    def child(sim):
        yield sim.timeout(2.0)
        log.append(("child", sim.now))
        return 42

    def parent(sim):
        log.append(("parent-start", sim.now))
        result = yield sim.process(child(sim))
        log.append(("parent-resume", sim.now, result))

    sim.process(parent(sim))
    sim.run()
    assert log == [
        ("parent-start", 0.0),
        ("child", 2.0),
        ("parent-resume", 2.0, 42),
    ]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def mk(tag):
        def proc(sim):
            yield sim.timeout(1.0)
            order.append(tag)

        return proc

    for tag in "abcde":
        sim.process(mk(tag)(sim))
    sim.run()
    assert order == list("abcde")


def test_event_succeed_wakes_waiter_with_value():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def waiter(sim):
        value = yield gate
        seen.append((sim.now, value))

    def opener(sim):
        yield sim.timeout(3.0)
        gate.succeed("open")

    sim.process(waiter(sim))
    sim.process(opener(sim))
    sim.run()
    assert seen == [(3.0, "open")]


def test_event_double_trigger_raises():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_fail_propagates_into_process():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield gate
        except ValueError as err:
            caught.append(str(err))

    sim.process(waiter(sim))
    gate.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_process_exception_propagates_to_joiner():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise KeyError("broken")

    def joiner(sim):
        with pytest.raises(KeyError):
            yield sim.process(bad(sim))

    sim.process(joiner(sim))
    sim.run()


def test_yield_already_triggered_event_resumes_immediately():
    sim = Simulator()
    evt = sim.event()
    evt.succeed("early")
    seen = []

    def proc(sim):
        value = yield evt
        seen.append((sim.now, value))

    sim.process(proc(sim))
    sim.run()
    assert seen == [(0.0, "early")]


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 123

    proc = sim.process(bad(sim))
    sim.run()
    assert proc.triggered and not proc.ok


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(sim, target):
        yield sim.timeout(2.0)
        target.interrupt("wake up")

    target = sim.process(sleeper(sim))
    sim.process(interrupter(sim, target))
    sim.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.0)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        log.append(sim.now)

    target = sim.process(sleeper(sim))

    def interrupter(sim):
        yield sim.timeout(5.0)
        target.interrupt()

    sim.process(interrupter(sim))
    sim.run()
    assert log == [6.0]


def test_any_of_fires_on_first():
    sim = Simulator()
    seen = []

    def proc(sim):
        t1 = sim.timeout(5.0, value="slow")
        t2 = sim.timeout(2.0, value="fast")
        results = yield sim.any_of([t1, t2])
        seen.append((sim.now, results))

    sim.process(proc(sim))
    sim.run()
    assert seen == [(2.0, {1: "fast"})]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    seen = []

    def proc(sim):
        t1 = sim.timeout(5.0, value="a")
        t2 = sim.timeout(2.0, value="b")
        results = yield sim.all_of([t1, t2])
        seen.append((sim.now, results))

    sim.process(proc(sim))
    sim.run()
    assert seen == [(5.0, {0: "a", 1: "b"})]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    cond = sim.all_of([])
    assert cond.triggered


def test_stop_halts_run():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(1.0)
        fired.append(1)
        sim.stop()
        yield sim.timeout(1.0)
        fired.append(2)

    sim.process(proc(sim))
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 2]


def test_step_processes_single_event():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(2.0)
    assert sim.step() == 1.0
    assert sim.peek() == 2.0


def test_step_empty_queue_raises():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_peek_empty_queue_is_infinite():
    assert Simulator().peek() == float("inf")


def test_nested_processes_three_deep():
    sim = Simulator()

    def level3(sim):
        yield sim.timeout(1.0)
        return 3

    def level2(sim):
        value = yield sim.process(level3(sim))
        return value + 10

    def level1(sim):
        value = yield sim.process(level2(sim))
        return value + 100

    proc = sim.process(level1(sim))
    sim.run()
    assert proc.value == 113

"""Kernel fleet hooks: try_interrupt, trace taps, checkpoints, barriers."""

import pytest

from repro.sim import (
    Interrupt,
    KernelCheckpoint,
    SimulationError,
    Simulator,
)


def sleeper(sim, delay_s=10.0):
    try:
        yield sim.timeout(delay_s)
        return "finished"
    except Interrupt as interrupt:
        return f"interrupted:{interrupt.cause}"


# -- try_interrupt ----------------------------------------------------------

def test_try_interrupt_delivers_to_live_process():
    sim = Simulator()
    proc = sim.process(sleeper(sim))
    sim.run(until=1.0)
    assert proc.try_interrupt("deadline") is True
    sim.run()
    assert proc.value == "interrupted:deadline"


def test_try_interrupt_is_noop_on_finished_process():
    sim = Simulator()
    proc = sim.process(sleeper(sim, delay_s=1.0))
    sim.run()
    assert proc.value == "finished"
    assert proc.try_interrupt("too late") is False
    assert proc.value == "finished"


def test_plain_interrupt_on_finished_process_still_raises():
    sim = Simulator()
    proc = sim.process(sleeper(sim, delay_s=1.0))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt("too late")


def test_supervisor_racing_natural_completion():
    # The watchdog pattern try_interrupt exists for: a supervisor whose
    # deadline fires in the same round the work completes must not crash.
    sim = Simulator()
    worker = sim.process(sleeper(sim, delay_s=2.0))

    def supervisor(sim):
        yield sim.timeout(2.0)
        delivered = worker.try_interrupt("watchdog")
        return delivered

    sup = sim.process(supervisor(sim))
    sim.run()
    assert worker.value == "finished"
    assert sup.value is False


# -- trace taps -------------------------------------------------------------

def test_trace_tap_sees_every_fired_event_in_order():
    sim = Simulator()
    seen = []
    sim.add_trace_tap(lambda event, when: seen.append(when))
    sim.timeout(1.0)
    sim.timeout(3.0)
    sim.timeout(2.0)
    sim.run()
    assert seen == [1.0, 2.0, 3.0]
    assert sim.events_fired == 3


def test_remove_trace_tap():
    sim = Simulator()
    seen = []
    tap = lambda event, when: seen.append(when)  # noqa: E731
    sim.add_trace_tap(tap)
    sim.timeout(1.0)
    sim.run()
    sim.remove_trace_tap(tap)
    sim.timeout(1.0)
    sim.run()
    assert seen == [1.0]
    assert sim.events_fired == 2


# -- checkpoints and barriers -----------------------------------------------

def test_checkpoint_reflects_loop_state():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(5.0)
    sim.run(until=2.0)
    checkpoint = sim.checkpoint()
    assert checkpoint == KernelCheckpoint(
        time=2.0, events_fired=1, queue_depth=1, next_event_s=5.0
    )


def test_run_to_barrier_pins_clock_and_returns_checkpoint():
    sim = Simulator()
    sim.timeout(1.0)
    checkpoint = sim.run_to_barrier(3.0)
    assert sim.now == 3.0  # vdaplint: disable=FLT001
    assert checkpoint.time == 3.0
    assert checkpoint.events_fired == 1
    assert checkpoint.next_event_s == float("inf")


def test_run_to_barrier_rejects_the_past():
    sim = Simulator()
    sim.run_to_barrier(2.0)
    with pytest.raises(SimulationError, match="behind the clock"):
        sim.run_to_barrier(1.0)


def test_barrier_sequence_equals_single_run():
    def ticker(sim, acc):
        while sim.now < 10.0:
            yield sim.timeout(1.0)
            acc.append(sim.now)

    solid_acc, barrier_acc = [], []
    solid = Simulator()
    solid.process(ticker(solid, solid_acc))
    solid.run(until=10.0)

    barriered = Simulator()
    barriered.process(ticker(barriered, barrier_acc))
    for barrier in (2.5, 5.0, 7.5, 10.0):
        barriered.run_to_barrier(barrier)

    assert barrier_acc == solid_acc
    assert barriered.events_fired == solid.events_fired

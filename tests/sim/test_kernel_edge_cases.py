"""Additional kernel edge cases: failures in composites, priorities, timing."""

import pytest

from repro.hw import WorkloadClass, catalog
from repro.offload import Task, TaskGraph
from repro.sim import Resource, SimulationError, Simulator
from repro.vcu import DSF, MHEP


def test_any_of_fails_when_a_child_fails_first():
    sim = Simulator()
    bad = sim.event()
    slow = sim.timeout(10.0)

    def proc(sim):
        with pytest.raises(RuntimeError):
            yield sim.any_of([bad, slow])

    sim.process(proc(sim))
    bad.fail(RuntimeError("child died"))
    sim.run()


def test_all_of_fails_fast_on_child_failure():
    sim = Simulator()
    bad = sim.event()
    never = sim.event()
    caught_at = []

    def proc(sim):
        try:
            yield sim.all_of([bad, never])
        except RuntimeError:
            caught_at.append(sim.now)

    sim.process(proc(sim))

    def failer(sim):
        yield sim.timeout(2.0)
        bad.fail(RuntimeError("nope"))

    sim.process(failer(sim))
    sim.run()
    assert caught_at == [2.0]


def test_run_until_fires_events_exactly_at_boundary():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(5.0)
        fired.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=5.0)
    assert fired == [5.0]


def test_interrupt_while_waiting_on_resource_detaches_cleanly():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder_req = res.request()
    state = []

    def waiter(sim):
        req = res.request()
        try:
            yield req
            state.append("granted")
        # Deliberately broad: the test must catch Interrupt (a BaseException
        # subclass here) however the kernel delivers it, and records it below.
        except BaseException:  # vdaplint: disable=RES001
            res.release(req)  # cancel the queued claim
            state.append("cancelled")

    target = sim.process(waiter(sim))

    def interrupter(sim):
        yield sim.timeout(1.0)
        target.interrupt()

    sim.process(interrupter(sim))
    sim.run()
    assert state == ["cancelled"]
    assert res.queue_length == 0
    # The original holder still owns the resource.
    assert res.count == 1
    res.release(holder_req)
    assert res.count == 0


def test_zero_delay_timeout_fires_at_current_time():
    sim = Simulator()
    times = []

    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(0.0)
        times.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert times == [1.0]


def test_process_value_before_completion_raises():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)
        return "done"

    p = sim.process(proc(sim))
    with pytest.raises(SimulationError):
        _ = p.value
    sim.run()
    assert p.value == "done"


def test_dsf_priority_jumps_device_queue():
    """A safety-critical job submitted later overtakes queued background
    jobs on the contended device."""
    sim = Simulator()
    mhep = MHEP(sim)
    mhep.register(catalog.jetson_tx2_maxp())  # single DNN device
    dsf = DSF(sim, mhep)

    def job(name):
        return TaskGraph.chain(name, [Task(f"{name}-t", 99.75, WorkloadClass.DNN)])

    running = dsf.submit(job("running"), priority=3)
    queued_bg = dsf.submit(job("background"), priority=3)
    critical = dsf.submit(job("critical"), priority=0)
    sim.run()
    assert critical.value.finished_at < queued_bg.value.finished_at
    assert running.value.finished_at <= critical.value.finished_at

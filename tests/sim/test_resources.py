"""Unit tests for Resource, Container, Store, PriorityStore."""

import pytest

from repro.sim import Container, PriorityStore, Resource, SimulationError, Simulator, Store


def test_resource_capacity_validation():
    with pytest.raises(SimulationError):
        Resource(Simulator(), capacity=0)


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    sim.run()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.count == 2 and res.queue_length == 1


def test_resource_release_grants_next_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    sim.run()
    assert not r2.triggered
    res.release(r1)
    sim.run()
    assert r2.triggered


def test_resource_priority_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    low = res.request(priority=5)
    high = res.request(priority=1)
    sim.run()
    res.release(holder)
    sim.run()
    assert high.triggered and not low.triggered


def test_resource_fifo_within_same_priority():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    first = res.request(priority=3)
    second = res.request(priority=3)
    res.release(holder)
    sim.run()
    assert first.triggered and not second.triggered


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    queued = res.request()
    res.release(queued)  # cancel before grant
    res.release(holder)
    sim.run()
    assert res.count == 0 and res.queue_length == 0


def test_resource_usage_pattern_in_processes():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def worker(sim, tag):
        req = res.request()
        yield req
        start = sim.now
        yield sim.timeout(2.0)
        res.release(req)
        spans.append((tag, start, sim.now))

    sim.process(worker(sim, "a"))
    sim.process(worker(sim, "b"))
    sim.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0)]


def test_container_initial_level_validation():
    with pytest.raises(SimulationError):
        Container(Simulator(), capacity=5, init=6)


def test_container_put_get_levels():
    sim = Simulator()
    tank = Container(sim, capacity=10, init=5)
    tank.get(3)
    tank.put(6)
    sim.run()
    assert tank.level == 8


def test_container_get_blocks_until_available():
    sim = Simulator()
    tank = Container(sim, capacity=10, init=0)
    got = tank.get(4)
    sim.run()
    assert not got.triggered
    tank.put(4)
    sim.run()
    assert got.triggered and tank.level == 0


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    tank = Container(sim, capacity=5, init=5)
    put = tank.put(1)
    sim.run()
    assert not put.triggered
    tank.get(2)
    sim.run()
    assert put.triggered and tank.level == 4


def test_container_negative_amounts_raise():
    tank = Container(Simulator(), capacity=5)
    with pytest.raises(SimulationError):
        tank.put(-1)
    with pytest.raises(SimulationError):
        tank.get(-1)


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    store.put("y")
    g1, g2 = store.get(), store.get()
    sim.run()
    assert g1.value == "x" and g2.value == "y"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = store.get()
    assert not got.triggered
    store.put("item")
    assert got.triggered and got.value == "item"


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put("a")
    blocked = store.put("b")
    assert not blocked.triggered
    store.get()
    assert blocked.triggered and len(store) == 1


def test_priority_store_orders_items():
    sim = Simulator()
    store = PriorityStore(sim)
    store.put((3, "low"))
    store.put((1, "high"))
    store.put((2, "mid"))
    got = [store.get().value for _ in range(3)]
    assert got == [(1, "high"), (2, "mid"), (3, "low")]


def test_resource_double_release_is_a_noop():
    """Releasing the same token twice must not free a second slot."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    waiter_a = res.request()
    waiter_b = res.request()
    sim.run()
    res.release(holder)
    res.release(holder)  # vdaplint: disable=RES102 -- exercising the no-op
    sim.run()
    assert waiter_a.triggered and not waiter_b.triggered
    assert res.count == 1 and res.queue_length == 1


def test_resource_release_before_grant_unwinds_queue_accounting():
    """Cancelling a queued request must not leave ghosts in the heap."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    doomed = res.request(priority=1)
    survivor = res.request(priority=5)
    res.release(doomed)  # cancel while still queued
    assert res.queue_length == 1
    res.release(holder)
    sim.run()
    assert survivor.triggered and res.count == 1


def test_resource_priority_grants_survive_cancellation():
    """Heap order stays correct after the best-priority waiter cancels."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    best = res.request(priority=0)
    mid = res.request(priority=2)
    worst = res.request(priority=7)
    res.release(best)  # cancel the head of the priority heap
    res.release(holder)
    sim.run()
    assert mid.triggered and not worst.triggered


def test_container_zero_amount_put_get_succeed_immediately():
    sim = Simulator()
    tank = Container(sim, capacity=5.0, init=0.0)
    assert tank.put(0.0).triggered
    assert tank.get(0.0).triggered
    assert tank.level == 0.0


def test_container_zero_get_does_not_jump_blocked_getters():
    """A zero-amount get behind a blocked getter waits its turn (FIFO)."""
    sim = Simulator()
    tank = Container(sim, capacity=5.0, init=0.0)
    blocked = tank.get(2.0)
    zero = tank.get(0.0)
    assert not blocked.triggered and not zero.triggered
    tank.put(2.0)
    assert blocked.triggered and zero.triggered

"""CalendarQueue edge cases: lazy bucket cleanup, resize paths, and
pop-for-pop equivalence with the HeapQueue reference."""

import numpy as np
import pytest

from repro.sim.queues import CalendarQueue, HeapQueue


def drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


class TestMinBucketRemoval:
    def test_remove_sole_entry_of_min_bucket_then_pop(self):
        """remove() leaves a stale number in the bucket heap; the next
        pop must lazily skip it and surface the following bucket."""
        queue = CalendarQueue(width=1.0)
        queue.push(0.5, 0, 1, "a")
        queue.push(5.5, 0, 2, "b")
        assert queue.remove(0.5, 0, 1)
        assert len(queue) == 1
        assert queue.peek() == 5.5
        assert queue.pop() == (5.5, 0, 2, "b")
        assert len(queue) == 0

    def test_remove_sole_entry_then_pop_empty_raises(self):
        queue = CalendarQueue(width=1.0)
        queue.push(0.5, 0, 1, "a")
        assert queue.remove(0.5, 0, 1)
        assert queue.peek() == float("inf")
        with pytest.raises(IndexError):
            queue.pop()

    def test_pop_sole_entry_of_min_bucket_advances_to_next(self):
        """pop() itself empties the min bucket eagerly: the bucket and
        its heap number go together, and the calendar moves on."""
        queue = CalendarQueue(width=1.0)
        queue.push(0.25, 0, 1, "a")
        queue.push(3.75, 0, 2, "b")
        assert queue.pop() == (0.25, 0, 1, "a")
        assert queue.peek() == 3.75
        assert queue.pop() == (3.75, 0, 2, "b")

    def test_remove_missing_key_leaves_queue_intact(self):
        queue = CalendarQueue(width=1.0)
        queue.push(0.5, 0, 1, "a")
        assert not queue.remove(0.5, 0, 2)
        assert not queue.remove(7.5, 0, 1)
        assert len(queue) == 1
        assert queue.pop() == (0.5, 0, 1, "a")


class TestOccupancyResize:
    def test_overfull_bucket_triggers_width_shrink(self):
        """RESIZE_CHECK pushes into one bucket blow the occupancy cap;
        the rebuild re-derives a much smaller width from the time span."""
        queue = CalendarQueue(width=1000.0)
        count = CalendarQueue.RESIZE_CHECK
        for seq in range(count):
            queue.push(seq * 0.25, 0, seq, None)
        assert queue._width < 1000.0
        assert len(queue._buckets) > 1
        assert len(queue) == count

    def test_single_instant_pileup_widens_instead(self):
        """All entries at one instant have zero span: the resize cannot
        split them, so the width doubles to keep them in one bucket."""
        queue = CalendarQueue(width=0.5)
        count = CalendarQueue.RESIZE_CHECK
        for seq in range(count):
            queue.push(42.0, 0, seq, None)
        assert queue._width > 0.5
        assert len(queue._buckets) == 1
        assert [e[2] for e in drain(queue)] == list(range(count))

    def test_resize_preserves_pop_order(self):
        queue = CalendarQueue(width=500.0)
        reference = HeapQueue()
        rng = np.random.default_rng(1234)
        for seq in range(3 * CalendarQueue.RESIZE_CHECK):
            when = float(rng.uniform(0.0, 50.0))
            priority = int(rng.integers(0, 3))
            queue.push(when, priority, seq, seq)
            reference.push(when, priority, seq, seq)
        assert drain(queue) == drain(reference)


class TestHeapEquivalence:
    def test_pop_for_pop_identical_under_mixed_operations(self):
        """Interleaved push/pop/remove keep both backends in lockstep,
        entry for entry -- the contract that makes the scheduler
        swappable without touching a trace hash."""
        rng = np.random.default_rng(99)
        calendar = CalendarQueue(width=2.0)
        heap = HeapQueue()
        live = []
        seq = 0
        for _step in range(2000):
            action = float(rng.random())
            if action < 0.55 or not live:
                when = round(float(rng.uniform(0.0, 100.0)), 3)
                priority = int(rng.integers(0, 4))
                calendar.push(when, priority, seq, seq)
                heap.push(when, priority, seq, seq)
                live.append((when, priority, seq))
                seq += 1
            elif action < 0.8:
                assert calendar.pop() == heap.pop()
                live.remove(min(live))
            else:
                victim = live[int(rng.integers(len(live)))]
                assert calendar.remove(*victim) == heap.remove(*victim)
                live.remove(victim)
            assert len(calendar) == len(heap)
            assert calendar.peek() == heap.peek()
        assert drain(calendar) == drain(heap)

    def test_same_time_same_priority_fifo_tiebreak(self):
        calendar = CalendarQueue(width=1.0)
        heap = HeapQueue()
        for seq in (5, 6, 7, 8):
            calendar.push(1.0, 0, seq, f"e{seq}")
            heap.push(1.0, 0, seq, f"e{seq}")
        assert drain(calendar) == drain(heap)

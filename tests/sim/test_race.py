"""Tests for the first-wins Race event and the timeout-race helper."""

import pytest

from repro.sim import Simulator, SimulationError


def test_race_identifies_the_winner():
    sim = Simulator()
    seen = {}

    def proc(sim):
        winner, value = yield sim.race(
            sim.timeout(5.0, value="slow"), sim.timeout(1.0, value="fast")
        )
        seen["winner"] = winner
        seen["value"] = value

    sim.process(proc(sim))
    sim.run()
    assert seen == {"winner": 1, "value": "fast"}
    # Exact: the losing timeout still fires (into the void).
    assert sim.now == 5.0  # vdaplint: disable=FLT001


def test_with_timeout_event_wins():
    sim = Simulator()
    seen = {}

    def worker(sim):
        yield sim.timeout(1.0)
        return 42

    def proc(sim):
        winner, value = yield sim.with_timeout(sim.process(worker(sim)), 10.0)
        seen["winner"], seen["value"] = winner, value

    sim.process(proc(sim))
    sim.run()
    assert seen == {"winner": 0, "value": 42}


def test_with_timeout_deadline_wins():
    sim = Simulator()
    seen = {}

    def worker(sim):
        yield sim.timeout(100.0)
        return "too late"

    def proc(sim):
        winner, value = yield sim.with_timeout(sim.process(worker(sim)), 2.0)
        seen["winner"], seen["value"] = winner, value
        seen["at"] = sim.now

    sim.process(proc(sim))
    sim.run()
    assert seen["winner"] == 1
    assert seen["value"] is None
    assert seen["at"] == 2.0


def test_race_with_already_fired_event_resolves_immediately():
    sim = Simulator()
    done = sim.event()
    done.succeed("early")
    sim.run()  # fire the event's callbacks so it is processed
    seen = {}

    def proc(sim):
        winner, value = yield sim.race(done, sim.timeout(50.0))
        seen["winner"], seen["value"], seen["at"] = winner, value, sim.now

    sim.process(proc(sim))
    sim.run()
    assert seen["winner"] == 0
    assert seen["value"] == "early"
    assert seen["at"] == 0.0


def test_race_propagates_failure_of_the_winner():
    sim = Simulator()

    def failing(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def proc(sim):
        yield sim.race(sim.process(failing(sim)), sim.timeout(10.0))

    proc_event = sim.process(proc(sim))
    sim.run()
    assert proc_event.triggered and not proc_event.ok
    with pytest.raises(ValueError):
        proc_event.value


def test_race_requires_events():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.race()


def test_ties_resolve_to_the_first_listed_event():
    sim = Simulator()
    seen = {}

    def proc(sim):
        winner, _ = yield sim.race(sim.timeout(1.0), sim.timeout(1.0))
        seen["winner"] = winner

    sim.process(proc(sim))
    sim.run()
    assert seen["winner"] == 0

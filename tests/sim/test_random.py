"""Tests for deterministic named RNG streams."""

from repro.sim import RngRegistry


def test_same_seed_same_name_gives_identical_streams():
    a = RngRegistry(seed=7).stream("channel")
    b = RngRegistry(seed=7).stream("channel")
    assert list(a.integers(0, 1000, 10)) == list(b.integers(0, 1000, 10))


def test_different_names_give_independent_streams():
    reg = RngRegistry(seed=7)
    a = list(reg.stream("alpha").integers(0, 10**9, 8))
    b = list(reg.stream("beta").integers(0, 10**9, 8))
    assert a != b


def test_different_seeds_differ():
    a = list(RngRegistry(seed=1).stream("x").integers(0, 10**9, 8))
    b = list(RngRegistry(seed=2).stream("x").integers(0, 10**9, 8))
    assert a != b


def test_stream_is_cached_not_restarted():
    reg = RngRegistry(seed=3)
    first = reg.stream("s").integers(0, 10**9)
    second = reg.stream("s").integers(0, 10**9)
    fresh = RngRegistry(seed=3).stream("s")
    assert first == fresh.integers(0, 10**9)
    assert second == fresh.integers(0, 10**9)


def test_fork_produces_independent_registry():
    reg = RngRegistry(seed=5)
    forked = reg.fork(salt=1)
    a = list(reg.stream("x").integers(0, 10**9, 8))
    b = list(forked.stream("x").integers(0, 10**9, 8))
    assert a != b
    # Forking is itself deterministic.
    again = RngRegistry(seed=5).fork(salt=1)
    assert b == list(again.stream("x").integers(0, 10**9, 8))

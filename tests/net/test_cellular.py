"""Unit tests for the cellular uplink model and the drive-stream experiment."""

import numpy as np
import pytest

from repro.net import (
    VIDEO_1080P,
    VIDEO_720P,
    CellularUplink,
    LTEParams,
    mph_to_mps,
    run_drive_stream,
)


def make_uplink(**overrides):
    params = LTEParams(**overrides) if overrides else LTEParams()
    return CellularUplink(params, np.random.default_rng(0))


def test_cell_boundaries_at_midpoints():
    uplink = make_uplink(bs_spacing_m=100.0)
    assert uplink.cell_of(0.0) == 0
    assert uplink.cell_of(49.0) == 0
    assert uplink.cell_of(51.0) == 1
    assert uplink.cell_of(149.0) == 1


def test_edge_fraction_zero_at_centre_one_at_edge():
    uplink = make_uplink(bs_spacing_m=100.0)
    assert uplink.edge_fraction(0.0) == 0.0
    assert uplink.edge_fraction(50.0) == pytest.approx(1.0)


def test_capacity_degrades_toward_edge():
    uplink = make_uplink(bs_spacing_m=100.0, uplink_capacity_mbps=10.0)
    assert uplink.local_capacity_mbps(0.0) == pytest.approx(10.0)
    assert uplink.local_capacity_mbps(49.9) < 4.0


def test_handoff_interruption_grows_with_speed():
    uplink = make_uplink()
    slow = uplink.handoff_interruption_s(mph_to_mps(35))
    fast = uplink.handoff_interruption_s(mph_to_mps(70))
    assert fast > 5 * slow


def test_burst_length_shrinks_with_speed():
    params = LTEParams()
    assert params.burst_length(0.0) == params.burst_base_packets
    assert params.burst_length(30.0) < 2.0
    assert params.burst_length(1e9) == 1.0


def test_packets_lost_during_handoff():
    uplink = make_uplink(bs_spacing_m=100.0)
    # Attach at cell 0 centre, then jump across the boundary.
    assert uplink.send_packet(0.0, 0.0, 30.0, 5.0) in (True, False)
    delivered = uplink.send_packet(1.0, 60.0, 30.0, 5.0)
    assert uplink.handoff_count == 1
    assert not delivered  # inside the interruption window


def test_service_restored_after_interruption_and_ramp():
    uplink = make_uplink(bs_spacing_m=100.0, base_loss=0.0, congestion_loss_coeff=0.0,
                         fading_loss_coeff=0.0)
    uplink.send_packet(0.0, 0.0, 10.0, 1.0)
    uplink.send_packet(1.0, 60.0, 10.0, 1.0)  # triggers handoff
    gap = uplink.handoff_interruption_s(10.0)
    ramp = uplink.params.grant_ramp_s
    # Well after outage + ramp, at low utilization the packet must survive.
    t = 1.0 + gap + ramp + 1.0
    assert uplink.send_packet(t, 100.0, 10.0, 1.0)


def test_static_vehicle_never_hands_off():
    uplink = make_uplink()
    for i in range(1000):
        uplink.send_packet(i * 0.01, 0.0, 0.0, 3.8)
    assert uplink.handoff_count == 0


def test_offered_bitrate_must_be_positive():
    with pytest.raises(ValueError):
        make_uplink().send_packet(0.0, 0.0, 0.0, 0.0)


def test_drive_stream_loss_increases_with_speed():
    results = [
        run_drive_stream(VIDEO_720P, mph, duration_s=120,
                         rng=np.random.default_rng(7))
        for mph in (0, 35, 70)
    ]
    losses = [r.packet_loss_rate for r in results]
    assert losses[0] < losses[1] < losses[2]


def test_drive_stream_loss_increases_with_resolution():
    r720 = run_drive_stream(VIDEO_720P, 35, duration_s=120, rng=np.random.default_rng(9))
    r1080 = run_drive_stream(VIDEO_1080P, 35, duration_s=120, rng=np.random.default_rng(9))
    assert r1080.packet_loss_rate > r720.packet_loss_rate
    assert r1080.frame_loss_rate > r720.frame_loss_rate


def test_drive_stream_frame_loss_exceeds_packet_loss():
    """The paper: 'the frame loss rate is bigger than the packet loss rate
    for all the cases'."""
    for mph in (0, 35, 70):
        result = run_drive_stream(
            VIDEO_720P, mph, duration_s=120, rng=np.random.default_rng(11)
        )
        assert result.frame_loss_rate > result.packet_loss_rate


def test_drive_stream_counts_handoffs():
    result = run_drive_stream(VIDEO_720P, 70, duration_s=300, rng=np.random.default_rng(1))
    travelled = mph_to_mps(70) * 300
    expected = int(travelled / LTEParams().bs_spacing_m)
    assert abs(result.handoffs - expected) <= 1


def test_mph_conversion():
    assert mph_to_mps(70) == pytest.approx(31.29, abs=0.01)

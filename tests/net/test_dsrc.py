"""Tests for DSRC beaconing and neighbour discovery."""

import pytest

from repro.edgeos import PseudonymManager
from repro.net import Beacon, DsrcMedium, DsrcRadio, NeighborTable


def make_radio(vehicle_id: str, secret: bytes = b"fleet") -> DsrcRadio:
    pseudonyms = PseudonymManager(vehicle_id, secret)
    return DsrcRadio(vehicle_id=vehicle_id, pseudonym_fn=pseudonyms.pseudonym)


def test_neighbor_table_expiry():
    table = NeighborTable(expiry_s=1.0)
    table.update(Beacon("p1", 0.0, 0.0, 10.0))
    table.update(Beacon("p2", 0.5, 50.0, 12.0))
    assert len(table.neighbors(0.9)) == 2
    live = table.neighbors(1.2)
    assert [n.pseudonym for n in live] == ["p2"]
    assert len(table) == 1


def test_neighbor_table_validation():
    with pytest.raises(ValueError):
        NeighborTable(expiry_s=0.0)


def test_beacon_reaches_only_radios_in_range():
    medium = DsrcMedium(range_m=300.0)
    a, b, c = make_radio("a"), make_radio("b"), make_radio("c")
    medium.join(a, lambda t: 0.0)
    medium.join(b, lambda t: 200.0)
    medium.join(c, lambda t: 1000.0)
    medium.broadcast(a, time_s=0.0, speed_mps=15.0)
    assert b.beacons_received == 1
    assert c.beacons_received == 0
    assert a.beacons_sent == 1


def test_unjoined_sender_rejected():
    medium = DsrcMedium()
    with pytest.raises(ValueError):
        medium.broadcast(make_radio("ghost"), 0.0, 0.0)


def test_medium_validation():
    with pytest.raises(ValueError):
        DsrcMedium(range_m=0.0)


def test_beacons_carry_pseudonyms_not_identities():
    medium = DsrcMedium()
    a, b = make_radio("VIN-A"), make_radio("VIN-B")
    medium.join(a, lambda t: 0.0)
    medium.join(b, lambda t: 100.0)
    medium.beacon_round(0.0)
    neighbor = b.table.neighbors(0.0)[0]
    assert neighbor.pseudonym != "VIN-A"


def test_moving_vehicles_discover_and_lose_each_other():
    medium = DsrcMedium(range_m=300.0)
    a = make_radio("a")
    b = make_radio("b")
    medium.join(a, lambda t: 0.0)            # parked
    medium.join(b, lambda t: 30.0 * t)       # driving away at 30 m/s
    # t=0..10: b within the (inclusive) 300 m range; afterwards out.
    for t in range(20):
        medium.beacon_round(float(t), speeds={"b": 30.0})
    assert a.beacons_received == 11  # t = 0..10 (exactly 300 m at t=10)
    # After expiry a's table no longer lists b.
    assert a.table.neighbors(25.0) == []


def test_beacon_round_everybody_hears_everybody_in_platoon():
    medium = DsrcMedium(range_m=300.0)
    radios = [make_radio(f"v{i}") for i in range(4)]
    for i, radio in enumerate(radios):
        medium.join(radio, lambda t, offset=i * 50.0: offset)
    medium.beacon_round(0.0)
    for radio in radios:
        assert len(radio.table.neighbors(0.0)) == 3

"""Tests for the network-quality estimator."""

import pytest

from repro.net import LinkEstimator, LinkModel


def test_estimator_validation():
    with pytest.raises(ValueError):
        LinkEstimator(alpha=0.0)
    estimator = LinkEstimator()
    with pytest.raises(ValueError):
        estimator.observe(0.0, 1000, -1.0, 0.01)
    with pytest.raises(ValueError):
        estimator.observe(0.0, 1000, 1.0, 0.01, lost_fraction=2.0)
    with pytest.raises(RuntimeError):
        estimator.estimate(0.0)


def test_first_observation_seeds_estimate():
    estimator = LinkEstimator()
    # 1 MB in 1 s = 8 Mbps.
    estimator.observe(0.0, 1e6, 1.0, rtt_s=0.05, lost_fraction=0.01)
    estimate = estimator.estimate(0.0)
    assert estimate.bandwidth_mbps == pytest.approx(8.0)
    assert estimate.rtt_s == pytest.approx(0.05)
    assert estimate.loss_rate == pytest.approx(0.01)
    assert estimate.samples == 1 and not estimate.confident


def test_ewma_converges_to_stable_link():
    estimator = LinkEstimator(alpha=0.3)
    for t in range(20):
        estimator.observe(float(t), 1e6, 0.8, rtt_s=0.02)  # 10 Mbps
    estimate = estimator.estimate(20.0)
    assert estimate.bandwidth_mbps == pytest.approx(10.0, rel=0.01)
    assert estimate.confident


def test_estimator_tracks_bandwidth_change():
    estimator = LinkEstimator(alpha=0.3)
    for t in range(10):
        estimator.observe(float(t), 1e6, 0.8, rtt_s=0.02)  # 10 Mbps
    for t in range(10, 25):
        estimator.observe(float(t), 1e6, 8.0, rtt_s=0.1)  # 1 Mbps
    estimate = estimator.estimate(25.0)
    assert estimate.bandwidth_mbps < 2.0
    assert estimate.rtt_s > 0.05


def test_staleness_breaks_confidence():
    estimator = LinkEstimator()
    for t in range(5):
        estimator.observe(float(t), 1e6, 1.0, rtt_s=0.02)
    assert estimator.estimate(5.0).confident
    assert not estimator.estimate(100.0).confident


def test_rtt_variance_reflects_jitter():
    steady = LinkEstimator()
    jittery = LinkEstimator()
    for t in range(30):
        steady.observe(float(t), 1e5, 0.1, rtt_s=0.05)
        jittery.observe(float(t), 1e5, 0.1, rtt_s=0.05 if t % 2 else 0.25)
    assert jittery.estimate(30.0).rtt_var_s > steady.estimate(30.0).rtt_var_s


def test_estimate_as_link_is_usable():
    estimator = LinkEstimator()
    estimator.observe(0.0, 1e6, 1.0, rtt_s=0.04, lost_fraction=0.02)
    link = estimator.estimate(0.0).as_link("probe")
    assert isinstance(link, LinkModel)
    assert link.transfer_time(1e6) > 0


def test_probe_link_roundtrip_recovers_truth():
    truth = LinkModel(name="dsrc", bandwidth_mbps=27.0, rtt_s=0.004, loss_rate=0.01)
    estimator = LinkEstimator(alpha=0.5)
    for t in range(10):
        estimator.probe_link(float(t), truth, probe_bytes=500_000)
    estimate = estimator.estimate(10.0)
    assert estimate.bandwidth_mbps == pytest.approx(27.0, rel=0.15)
    assert estimate.loss_rate == pytest.approx(0.01, abs=0.005)

"""Unit tests for link models and the Gilbert-Elliott channel."""

import numpy as np
import pytest

from repro.net import GilbertElliott, LinkModel


def test_link_validation():
    with pytest.raises(ValueError):
        LinkModel(name="x", bandwidth_mbps=0.0)
    with pytest.raises(ValueError):
        LinkModel(name="x", bandwidth_mbps=1.0, loss_rate=1.0)
    with pytest.raises(ValueError):
        LinkModel(name="x", bandwidth_mbps=1.0, rtt_s=-0.1)


def test_link_transfer_time_components():
    link = LinkModel(name="x", bandwidth_mbps=8.0, rtt_s=0.020)
    # 1 MB at 8 Mbps = 1 s serialization + 10 ms propagation.
    assert link.transfer_time(1e6) == pytest.approx(1.010)


def test_link_zero_bytes_costs_propagation_only():
    link = LinkModel(name="x", bandwidth_mbps=8.0, rtt_s=0.020)
    assert link.transfer_time(0) == pytest.approx(0.010)


def test_link_loss_inflates_reliable_transfer():
    clean = LinkModel(name="a", bandwidth_mbps=8.0)
    lossy = LinkModel(name="b", bandwidth_mbps=8.0, loss_rate=0.5)
    assert lossy.transfer_time(1e6) == pytest.approx(2 * clean.transfer_time(1e6))
    assert lossy.transfer_time(1e6, reliable=False) == pytest.approx(
        clean.transfer_time(1e6)
    )


def test_link_round_trip_time():
    link = LinkModel(name="x", bandwidth_mbps=8.0, rtt_s=0.020)
    expected = link.transfer_time(1e6) + link.transfer_time(2e6)
    assert link.round_trip_time(1e6, 2e6) == pytest.approx(expected)


def test_link_negative_size_raises():
    with pytest.raises(ValueError):
        LinkModel(name="x", bandwidth_mbps=1.0).transfer_time(-1)


def test_ge_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        GilbertElliott(rng, loss_rate=1.0)
    with pytest.raises(ValueError):
        GilbertElliott(rng, loss_rate=0.1, burst_length=0.5)


def test_ge_zero_loss_never_drops():
    channel = GilbertElliott(np.random.default_rng(0), loss_rate=0.0)
    assert not any(channel.step() for _ in range(10_000))


def test_ge_stationary_loss_rate_converges():
    channel = GilbertElliott(np.random.default_rng(1), loss_rate=0.2, burst_length=4.0)
    n = 200_000
    losses = sum(channel.step() for _ in range(n))
    assert losses / n == pytest.approx(0.2, abs=0.02)


def test_ge_losses_are_bursty():
    """Mean run length of consecutive losses should be near the burst length."""
    channel = GilbertElliott(np.random.default_rng(2), loss_rate=0.1, burst_length=8.0)
    outcomes = [channel.step() for _ in range(200_000)]
    runs = []
    current = 0
    for lost in outcomes:
        if lost:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    mean_run = sum(runs) / len(runs)
    assert mean_run == pytest.approx(8.0, rel=0.2)


def test_ge_retune_changes_rate_and_burst():
    channel = GilbertElliott(np.random.default_rng(3), loss_rate=0.01, burst_length=2.0)
    channel.retune(0.3, burst_length=5.0)
    assert channel.loss_rate == 0.3
    assert channel.p_bg == pytest.approx(0.2)
    n = 100_000
    losses = sum(channel.step() for _ in range(n))
    assert losses / n == pytest.approx(0.3, abs=0.03)


def test_ge_retune_validation():
    channel = GilbertElliott(np.random.default_rng(0), loss_rate=0.1)
    with pytest.raises(ValueError):
        channel.retune(1.5)
    with pytest.raises(ValueError):
        channel.retune(0.1, burst_length=0.0)

"""Unit tests for video stream modelling and RTP packetization."""

import pytest

from repro.net import (
    VIDEO_1080P,
    VIDEO_720P,
    FrameLossAccounting,
    RtpPacketizer,
    VideoProfile,
    VideoStream,
)
from repro.net.video import I_TO_P_SIZE_RATIO


def test_profile_gop_frames():
    assert VIDEO_720P.gop_frames == 60  # 30 fps x 2 s


def test_profile_bitrate_budget_is_conserved():
    prof = VIDEO_1080P
    gop_bytes = prof.i_frame_bytes + (prof.gop_frames - 1) * prof.p_frame_bytes
    expected = prof.bitrate_mbps * 1e6 / 8.0 * prof.gop_seconds
    assert gop_bytes == pytest.approx(expected)


def test_key_frames_are_bigger():
    assert VIDEO_720P.i_frame_bytes == pytest.approx(
        I_TO_P_SIZE_RATIO * VIDEO_720P.p_frame_bytes
    )


def test_stream_frame_count_and_key_placement():
    stream = VideoStream(VIDEO_720P, duration_s=10.0)
    frames = list(stream.frames())
    assert len(frames) == 300
    keys = [f.index for f in frames if f.is_key]
    assert keys == [0, 60, 120, 180, 240]


def test_stream_timestamps_are_uniform():
    stream = VideoStream(VIDEO_720P, duration_s=1.0)
    frames = list(stream.frames())
    assert frames[1].timestamp_s - frames[0].timestamp_s == pytest.approx(1 / 30)


def test_stream_duration_validation():
    with pytest.raises(ValueError):
        VideoStream(VIDEO_720P, duration_s=0.0)


def test_packetizer_splits_at_mtu():
    packetizer = RtpPacketizer(mtu=1000)
    packets = packetizer.packetize(0, 2500)
    assert [p.payload_bytes for p in packets] == [1000, 1000, 500]
    assert [p.marker for p in packets] == [False, False, True]


def test_packetizer_sequence_is_monotonic_across_frames():
    packetizer = RtpPacketizer(mtu=1000)
    first = packetizer.packetize(0, 1500)
    second = packetizer.packetize(1, 500)
    sequences = [p.sequence for p in first + second]
    assert sequences == list(range(len(sequences)))


def test_packetizer_tiny_frame_gets_one_packet():
    packets = RtpPacketizer().packetize(0, 10)
    assert len(packets) == 1 and packets[0].marker


def test_packetizer_validation():
    with pytest.raises(ValueError):
        RtpPacketizer(mtu=0)
    with pytest.raises(ValueError):
        RtpPacketizer().packetize(0, -5)


def _frames(profile=VIDEO_720P, duration=4.0):
    return list(VideoStream(profile, duration).frames())


def test_accounting_no_loss():
    acc = FrameLossAccounting()
    for frame in _frames():
        acc.record_frame(frame, [True] * 5)
    assert acc.packet_loss_rate == 0.0
    assert acc.frame_loss_rate == 0.0


def test_accounting_direct_frame_loss():
    acc = FrameLossAccounting()
    frames = _frames(duration=2.0)  # one GOP of 60 frames
    for frame in frames:
        # Lose one packet of frame 5 only (a P frame).
        results = [True] * 5 if frame.index != 5 else [True, False, True, True, True]
        acc.record_frame(frame, results)
    assert acc.frame_loss_rate == pytest.approx(1 / 60)
    assert acc.packet_loss_rate == pytest.approx(1 / 300)


def test_accounting_key_frame_loss_kills_whole_gop():
    """The paper's counting policy: key frame lost => all GOP frames lost."""
    acc = FrameLossAccounting()
    frames = _frames(duration=4.0)  # two GOPs
    for frame in frames:
        lost_key = frame.is_key and frame.gop_index == 0
        results = [not lost_key] * 5
        acc.record_frame(frame, results)
    # First GOP entirely lost, second intact.
    assert acc.frame_loss_rate == pytest.approx(0.5)
    # Packet loss only counts the actually-lost packets.
    assert acc.packet_loss_rate == pytest.approx(5 / (120 * 5))


def test_accounting_frame_loss_never_below_its_direct_share():
    acc = FrameLossAccounting()
    frames = _frames(duration=2.0)
    for frame in frames:
        acc.record_frame(frame, [frame.index % 7 != 0])
    direct = sum(1 for f in frames if f.index % 7 == 0) / len(frames)
    assert acc.frame_loss_rate >= direct


def test_accounting_empty_is_zero():
    acc = FrameLossAccounting()
    assert acc.packet_loss_rate == 0.0
    assert acc.frame_loss_rate == 0.0

"""Report: declared-column tables, byte-stable text, stable JSON."""

import json

import pytest

from repro.obs import Report


def make_report() -> Report:
    report = Report("demo", "Demo -- a small table")
    report.add_column("name", 10)
    report.add_column("value", 8, ".2f")
    report.add_column("count", 7, "d")
    report.add_row(name="alpha", value=1.5, count=3)
    report.add_row(name="beta", value=22.125, count=40)
    return report


def test_to_text_layout_matches_hand_rolled_format():
    text = make_report().to_text()
    assert text == (
        "Demo -- a small table\n"
        f"{'name':10s}{'value':>8s}{'count':>7s}\n"
        f"{'alpha':10s}{1.5:>8.2f}{3:>7d}\n"
        f"{'beta':10s}{22.125:>8.2f}{40:>7d}"
    )


def test_lines_have_no_trailing_whitespace():
    report = make_report()
    report.add_column("tail", 12)  # a left-aligned last column pads right
    report.rows.clear()
    report.add_row(name="x", value=0.0, count=0, tail="t")
    for line in report.to_lines():
        assert line == line.rstrip()


def test_notes_render_after_the_table():
    report = make_report()
    report.note()
    report.note("ratio: 2.0x")
    assert report.to_text().endswith("\n\nratio: 2.0x")


def test_string_cell_bypasses_numeric_format():
    report = Report("r", "t")
    report.add_column("ttl", 12, ".0f")
    report.add_row(ttl=5.0)
    report.add_row(ttl="disk only")
    lines = report.to_lines()
    assert lines[-2].endswith("5")
    assert lines[-1] == f"{'disk only':>12s}"


def test_row_validation():
    report = Report("r", "t")
    report.add_column("a", 4)
    with pytest.raises(ValueError):
        report.add_row()  # missing 'a'
    with pytest.raises(ValueError):
        report.add_row(a=1, b=2)  # undeclared 'b'
    with pytest.raises(ValueError):
        report.add_column("a", 4)  # duplicate key
    with pytest.raises(ValueError):
        report.add_column("c", 4, align="center")


def test_header_defaults_to_key_and_align_follows_fmt():
    report = Report("r", "t")
    report.add_column("word", 6)            # no fmt: left
    report.add_column("num", 6, ".1f")      # fmt: right
    report.add_row(word="ab", num=1.0)
    header, row = report.to_lines()[1:]
    assert header == f"{'word':6s}{'num':>6s}"
    assert row == f"{'ab':6s}{1.0:>6.1f}"


def test_to_json_is_stable_and_keyed_by_column():
    payload = json.loads(make_report().to_json())
    assert payload["name"] == "demo"
    assert payload["columns"] == ["name", "value", "count"]
    assert payload["rows"][0] == {"name": "alpha", "value": 1.5, "count": 3}
    assert make_report().to_json() == make_report().to_json()


def test_to_json_casts_numpy_scalars():
    import numpy as np

    report = Report("r", "t")
    report.add_column("x", 6, ".1f")
    report.add_row(x=np.float64(2.5))
    assert json.loads(report.to_json())["rows"][0]["x"] == 2.5

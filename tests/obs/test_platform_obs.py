"""Platform-level observability: one collector across every subsystem.

Covers the single-wiring-point contract (``DriveScenario(observe=...)`` /
``Simulator(obs=...)``), byte-identical exports across identical-seed
runs, and non-perturbation (instrumentation must not change simulated
results).
"""

import pytest

from repro.apps import make_adas_service
from repro.hw import catalog
from repro.obs import Collector, Summary
from repro.scenario import DriveScenario
from repro.sim import Simulator
from repro.topology import build_default_world


def _drive(observe=None):
    world = build_default_world(
        speed_mps=10.0, edge_count=2, edge_spacing_m=600.0,
        vehicle_processors=[catalog.intel_i7_6700(), catalog.intel_mncs()],
    )
    for edge in world.edges:
        edge.coverage_radius_m = 220.0
    scenario = DriveScenario(world=world, observe=observe)
    scenario.add_service(make_adas_service(deadline_s=0.6), period_s=1.0)
    return scenario.run(duration_s=40.0)


def test_scenario_wires_one_collector_across_subsystems():
    collector = Collector()
    _drive(observe=collector)
    snap = collector.snapshot()
    # Kernel, VCU, and scenario hooks all landed in the same registry.
    assert snap["counters"]["sim.events_fired"] > 0
    assert any(k.startswith("vcu.tasks_completed") for k in snap["counters"])
    assert any(k.startswith("scenario.invocations") for k in snap["counters"])
    assert "scenario.dsrc_mbps" in snap["histograms"]
    assert snap["gauges"]["scenario.vehicle_energy_j"]["last"] > 0
    # The kernel exported process lifetimes as async span pairs.
    phases = {e["ph"] for e in collector.tracer.events}
    assert {"b", "e", "M"} <= phases


def test_identical_seed_runs_export_byte_identical_json():
    a, b = Collector(), Collector()
    _drive(observe=a)
    _drive(observe=b)
    assert a.metrics_json() == b.metrics_json()
    assert a.trace_json() == b.trace_json()


def test_observation_does_not_perturb_the_simulation():
    plain = _drive(observe=None)
    observed = _drive(observe=Collector())
    assert plain.vehicle_energy_j == observed.vehicle_energy_j
    for name in plain.services:
        assert plain.services[name].invocations == observed.services[name].invocations
        assert (plain.services[name].latency.samples
                == observed.services[name].latency.samples)


def test_simulator_obs_defaults_to_null_recorder():
    sim = Simulator()
    assert sim.obs.enabled is False
    sim.timeout(1.0)
    sim.run()  # no recorder installed: runs clean


def test_simulator_binds_collector_clock():
    collector = Collector()
    sim = Simulator(obs=collector)

    def proc(sim):
        yield sim.timeout(2.0)
        collector.instant("mark", track="t")

    sim.process(proc(sim))
    sim.run()
    (mark,) = [e for e in collector.tracer.events if e["ph"] == "i"]
    assert mark["ts"] == pytest.approx(2e6)


# -- Summary cache (the perf fix) ------------------------------------------


def test_summary_cache_invalidates_on_record():
    summary = Summary("lat")
    summary.record(1.0)
    assert summary.mean == 1.0
    summary.record(3.0)
    assert summary.mean == 2.0 and summary.p50 == 2.0


def test_summary_cache_detects_direct_sample_mutation():
    summary = Summary("lat", samples=[1.0, 2.0])
    assert summary.mean == 1.5
    summary.samples.append(6.0)  # legacy callers mutate the list directly
    assert summary.mean == 3.0

"""Span tracer: nesting, async pairs, instants, Chrome-trace JSON schema."""

import json

import pytest

from repro.obs import SpanTracer
from repro.obs.trace import TRACE_PID


class FakeClock:
    """A hand-cranked sim clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_nested_spans_emit_complete_events_with_containment():
    clock = FakeClock()
    tracer = SpanTracer(clock)
    with tracer.span("outer", track="vcu"):
        clock.now = 1.0
        with tracer.span("inner", track="vcu"):
            clock.now = 3.0
        clock.now = 4.0
    xs = [e for e in tracer.events if e["ph"] == "X"]
    assert [e["name"] for e in xs] == ["inner", "outer"]  # closed inner-first
    inner, outer = xs
    assert outer["ts"] == 0.0 and outer["dur"] == pytest.approx(4e6)
    assert inner["ts"] == pytest.approx(1e6) and inner["dur"] == pytest.approx(2e6)
    # Containment: the inner span lies inside the outer one on the same tid.
    assert inner["tid"] == outer["tid"]
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]


def test_span_records_exception_type_in_args():
    tracer = SpanTracer(FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    (event,) = [e for e in tracer.events if e["ph"] == "X"]
    assert event["args"]["error"] == "RuntimeError"


def test_traced_decorator_preserves_name_and_times_calls():
    clock = FakeClock()
    tracer = SpanTracer(clock)

    @tracer.traced(track="nn")
    def infer(x):
        """Docstring survives."""
        clock.now += 0.25
        return x * 2

    assert infer(21) == 42
    assert infer.__name__ == "infer" and "survives" in infer.__doc__
    (event,) = [e for e in tracer.events if e["ph"] == "X"]
    assert event["name"] == "infer" and event["dur"] == pytest.approx(0.25e6)


def test_async_spans_pair_begin_end_with_matching_ids():
    tracer = SpanTracer()
    tracer.async_span("proc-a", 0.0, 2.0, track="sim.process")
    tracer.async_span("proc-b", 1.0, 3.0, track="sim.process")  # overlaps a
    pairs = [e for e in tracer.events if e["ph"] in ("b", "e")]
    assert [e["ph"] for e in pairs] == ["b", "e", "b", "e"]
    assert pairs[0]["id"] == pairs[1]["id"] != pairs[2]["id"]
    assert pairs[2]["id"] == pairs[3]["id"]


def test_instant_uses_clock_unless_given_ts():
    clock = FakeClock()
    clock.now = 7.0
    tracer = SpanTracer(clock)
    tracer.instant("handoff", track="net")
    tracer.instant("fault", ts=2.0, track="net")
    instants = [e for e in tracer.events if e["ph"] == "i"]
    assert instants[0]["ts"] == pytest.approx(7e6)
    assert instants[1]["ts"] == pytest.approx(2e6)
    assert all(e["s"] == "t" for e in instants)


def test_track_metadata_emitted_once_per_track():
    tracer = SpanTracer()
    tracer.complete("a", 0.0, 1.0, track="vcu")
    tracer.complete("b", 1.0, 2.0, track="vcu")
    tracer.complete("c", 0.0, 1.0, track="net")
    metas = [e for e in tracer.events if e["ph"] == "M"]
    assert [m["args"]["name"] for m in metas] == ["vcu", "net"]
    assert all(m["name"] == "thread_name" for m in metas)
    tids = {m["args"]["name"]: m["tid"] for m in metas}
    assert tids["vcu"] != tids["net"]


def test_chrome_trace_document_schema():
    tracer = SpanTracer(FakeClock())
    with tracer.span("work", track="vcu", device="gpu"):
        pass
    tracer.async_span("job", 0.0, 1.0)
    tracer.instant("mark")
    doc = json.loads(tracer.to_json())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    assert doc["displayTimeUnit"] == "ms"
    for event in doc["traceEvents"]:
        assert event["pid"] == TRACE_PID
        assert {"ph", "tid", "name"} <= set(event)
        if event["ph"] != "M":
            assert "ts" in event and "cat" in event
        if event["ph"] == "X":
            assert event["dur"] >= 0.0
        if event["ph"] in ("b", "e"):
            assert event["id"].startswith("0x")


def test_trace_json_is_deterministic():
    def build():
        tracer = SpanTracer()
        tracer.async_span("p", 0.5, 1.5, track="t", k="v")
        tracer.complete("c", 0.0, 0.25, track="t")
        tracer.instant("i", ts=2.0)
        return tracer.to_json()

    assert build() == build()

"""Tests for the deterministic observability layer (repro.obs)."""

"""Metric primitives: counters, gauges, histograms, registry, snapshots."""

import json

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    P2Quantile,
    diff_snapshots,
    merge_snapshots,
)


def test_counter_accumulates_and_rejects_negative():
    counter = Counter("jobs")
    counter.inc()
    counter.inc(4.5)
    assert counter.value == pytest.approx(5.5)
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_gauge_tracks_last_min_max():
    gauge = Gauge("depth")
    for value in (3.0, 1.0, 7.0):
        gauge.set(value)
    snap = gauge.to_snapshot()
    assert snap == {"last": 7.0, "min": 1.0, "max": 7.0, "sets": 3}


def test_gauge_empty_snapshot_is_zeros():
    assert Gauge("x").to_snapshot() == {"last": 0.0, "min": 0.0, "max": 0.0, "sets": 0}


def test_registry_label_sets_are_distinct_series():
    registry = MetricRegistry()
    registry.counter("net.packets", link="lte").inc()
    registry.counter("net.packets", link="dsrc").inc(2)
    registry.counter("net.packets", link="lte").inc()
    snap = registry.snapshot()
    assert snap["counters"]["net.packets{link=lte}"] == 2.0
    assert snap["counters"]["net.packets{link=dsrc}"] == 2.0


def test_registry_label_order_is_canonical():
    registry = MetricRegistry()
    registry.counter("m", b="2", a="1").inc()
    registry.counter("m", a="1", b="2").inc()
    assert len(registry) == 1
    assert registry.snapshot()["counters"]["m{a=1,b=2}"] == 2.0


def test_registry_kind_conflict_raises():
    registry = MetricRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x", )


def test_snapshot_is_json_round_trippable():
    registry = MetricRegistry()
    registry.counter("a").inc(3)
    registry.gauge("b").set(1.5)
    registry.histogram("c").observe(0.2)
    text = registry.to_json()
    assert json.loads(text) == registry.snapshot()


# -- histograms ------------------------------------------------------------


def test_histogram_empty_snapshot():
    snap = Histogram("h").to_snapshot()
    assert snap["count"] == 0
    assert snap["min"] == 0.0 and snap["max"] == 0.0 and snap["mean"] == 0.0
    assert sum(snap["buckets"]) == 0
    assert snap["p50"] == 0.0


def test_histogram_single_sample():
    hist = Histogram("h", bounds=(0.1, 1.0, 10.0))
    hist.observe(0.5)
    snap = hist.to_snapshot()
    assert snap["count"] == 1
    assert snap["buckets"] == [0, 1, 0, 0]
    assert snap["min"] == snap["max"] == 0.5
    assert hist.quantile(0.5) == pytest.approx(0.5)


def test_histogram_out_of_range_goes_to_overflow_bucket():
    hist = Histogram("h", bounds=(0.1, 1.0))
    hist.observe(50.0)
    hist.observe(-3.0)  # below every bound: lands in the first bucket
    assert hist.bucket_counts == [1, 0, 1]
    assert hist.minimum == -3.0 and hist.maximum == 50.0


def test_histogram_bucket_edges_are_inclusive_upper():
    hist = Histogram("h", bounds=(1.0, 2.0))
    hist.observe(1.0)  # exactly on a bound: belongs to that bucket
    hist.observe(2.0)
    hist.observe(2.0001)
    assert hist.bucket_counts == [1, 1, 1]


def test_histogram_unsorted_bounds_rejected():
    with pytest.raises(ValueError):
        Histogram("h", bounds=(1.0, 0.5))


def test_histogram_default_buckets_cover_platform_latencies():
    hist = Histogram("h")
    assert hist.bounds == DEFAULT_BUCKETS
    hist.observe(0.003)
    hist.observe(45.0)
    assert hist.count == 2 and sum(hist.bucket_counts) == 2


def test_histogram_quantile_from_buckets_interpolates():
    hist = Histogram("h", bounds=(1.0, 2.0, 3.0, 4.0))
    for value in (0.5, 1.5, 2.5, 3.5):
        hist.observe(value)
    q = hist.quantile_from_buckets(0.5)
    assert 0.5 <= q <= 3.5
    assert hist.quantile_from_buckets(1.0) == pytest.approx(3.5)
    with pytest.raises(ValueError):
        hist.quantile_from_buckets(1.5)


def test_p2_quantile_matches_numpy_on_smooth_data():
    rng = np.random.default_rng(0)
    samples = rng.normal(10.0, 2.0, 4000)
    estimator = P2Quantile(0.95)
    for x in samples:
        estimator.add(float(x))
    assert estimator.value == pytest.approx(float(np.quantile(samples, 0.95)), rel=0.05)


def test_p2_quantile_exact_under_five_samples():
    estimator = P2Quantile(0.5)
    for x in (3.0, 1.0, 2.0):
        estimator.add(x)
    assert estimator.value == 2.0
    assert P2Quantile(0.5).value == 0.0
    with pytest.raises(ValueError):
        P2Quantile(1.0)


# -- snapshot algebra ------------------------------------------------------


def _loaded_registry(extra: float = 0.0) -> MetricRegistry:
    registry = MetricRegistry()
    registry.counter("jobs", tier="edge").inc(3 + extra)
    registry.gauge("depth").set(2.0 + extra)
    hist = registry.histogram("lat", bounds=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value + extra)
    return registry


def test_diff_snapshots_subtracts_counters_and_buckets():
    registry = _loaded_registry()
    earlier = registry.snapshot()
    registry.counter("jobs", tier="edge").inc(2)
    registry.histogram("lat").observe(0.5)
    registry.gauge("depth").set(9.0)
    delta = diff_snapshots(registry.snapshot(), earlier)
    assert delta["counters"]["jobs{tier=edge}"] == 2.0
    assert delta["histograms"]["lat"]["count"] == 1
    assert sum(delta["histograms"]["lat"]["buckets"]) == 1
    # Gauges are spot values: the later reading wins.
    assert delta["gauges"]["depth"]["last"] == 9.0


def test_diff_against_empty_earlier_is_identity_for_counters():
    registry = _loaded_registry()
    snap = registry.snapshot()
    delta = diff_snapshots(snap, {"counters": {}, "gauges": {}, "histograms": {}})
    assert delta["counters"] == snap["counters"]


def test_merge_snapshots_round_trip():
    a = _loaded_registry().snapshot()
    b = _loaded_registry(extra=1.0).snapshot()
    merged = merge_snapshots(a, b)
    assert merged["counters"]["jobs{tier=edge}"] == 7.0
    hist = merged["histograms"]["lat"]
    assert hist["count"] == 6
    assert hist["sum"] == pytest.approx(a["histograms"]["lat"]["sum"]
                                        + b["histograms"]["lat"]["sum"])
    assert hist["min"] == 0.05 and hist["max"] == 6.0
    assert sum(hist["buckets"]) == 6
    # Quantiles are re-estimated from the combined buckets.
    assert hist["p50"] > 0.0
    gauge = merged["gauges"]["depth"]
    assert gauge == {"last": 3.0, "min": 2.0, "max": 3.0, "sets": 2}


def test_merge_disjoint_series_unions():
    a = MetricRegistry()
    a.counter("only.a").inc()
    b = MetricRegistry()
    b.counter("only.b").inc(5)
    merged = merge_snapshots(a.snapshot(), b.snapshot())
    assert merged["counters"] == {"only.a": 1.0, "only.b": 5.0}


def test_merge_mismatched_bucket_layouts_raises():
    a = MetricRegistry()
    a.histogram("h", bounds=(1.0,)).observe(0.5)
    b = MetricRegistry()
    b.histogram("h", bounds=(2.0,)).observe(0.5)
    with pytest.raises(ValueError):
        merge_snapshots(a.snapshot(), b.snapshot())


def test_snapshot_json_is_stable_across_insertion_order():
    a = MetricRegistry()
    a.counter("z").inc()
    a.counter("a").inc()
    b = MetricRegistry()
    b.counter("a").inc()
    b.counter("z").inc()
    assert a.to_json() == b.to_json()

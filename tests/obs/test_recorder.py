"""Recorder facade: null sink semantics, Collector wiring, file export."""

import json
import timeit

from repro.obs import NULL_RECORDER, Collector, Recorder


def test_null_recorder_is_disabled_and_silent():
    recorder = Recorder()
    assert recorder.enabled is False
    recorder.count("x")
    recorder.gauge("y", 1.0)
    recorder.observe("z", 0.5, device="gpu")
    recorder.async_span("p", 0.0, 1.0)
    recorder.instant("i")
    with recorder.span("nested") as span:
        with recorder.span("deeper"):
            pass
    assert span is not None  # the shared null span is a usable context manager
    assert NULL_RECORDER.enabled is False


def test_null_span_swallows_nothing():
    import pytest

    with pytest.raises(ValueError):
        with NULL_RECORDER.span("s"):
            raise ValueError("must propagate")


def test_noop_recorder_overhead_is_negligible():
    """The no-op hook must stay cheap enough to leave enabled everywhere.

    Smoke bound, not a benchmark: one guarded no-op call must cost well
    under a microsecond on any plausible machine (CI boxes included).
    """
    recorder = NULL_RECORDER

    def hook():
        if recorder.enabled:
            recorder.count("hot.path", n=1.0, device="gpu")

    per_call = min(timeit.repeat(hook, number=100_000, repeat=3)) / 100_000
    assert per_call < 5e-6


def test_collector_records_through_the_same_facade():
    collector = Collector()
    assert collector.enabled is True
    collector.count("jobs", n=2.0, tier="edge")
    collector.gauge("depth", 4.0)
    collector.observe("lat", 0.3)
    snap = collector.snapshot()
    assert snap["counters"]["jobs{tier=edge}"] == 2.0
    assert snap["gauges"]["depth"]["last"] == 4.0
    assert snap["histograms"]["lat"]["count"] == 1


def test_collector_bind_clock_feeds_tracer():
    times = iter([1.0, 3.5])
    collector = Collector()
    collector.bind_clock(lambda: next(times))
    with collector.span("step", track="sim"):
        pass
    (event,) = [e for e in collector.tracer.events if e["ph"] == "X"]
    assert event["ts"] == 1e6 and event["dur"] == 2.5e6


def test_collector_write_exports_both_artifacts(tmp_path):
    collector = Collector()
    collector.count("a")
    collector.instant("mark", ts=0.5)
    metrics_path, trace_path = collector.write(str(tmp_path / "obs"))
    with open(metrics_path, encoding="utf-8") as fh:
        metrics = json.load(fh)
    with open(trace_path, encoding="utf-8") as fh:
        trace = json.load(fh)
    assert metrics["counters"]["a"] == 1.0
    assert any(e["ph"] == "i" for e in trace["traceEvents"])
    # Both files end with exactly one newline (byte-stable artifacts).
    for path in (metrics_path, trace_path):
        with open(path, "rb") as fh:
            raw = fh.read()
        assert raw.endswith(b"\n") and not raw.endswith(b"\n\n")

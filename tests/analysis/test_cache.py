"""Incremental-analysis cache: correctness of invalidation, identity of output.

The contract under test (DESIGN.md section 7): a warm run re-analyzes only
changed files plus their dependents, and its findings are byte-identical
to a cold run's.  Speed is the point of the cache, so one test also holds
the warm/cold ratio to a conservative floor on the real source tree.
"""

import os
import time

import repro
from repro.analysis import IncrementalAnalyzer, semantic_rules_by_id
from repro.analysis.reporter import render_text


def _analyzer(tmp_path, semantic=None):
    # File rules are PR 2's single-file tier; these tests exercise the
    # semantic tier and the cache plumbing, so the pack stays empty.
    return IncrementalAnalyzer(
        [],
        semantic_rules_by_id() if semantic is None else semantic,
        cache_dir=str(tmp_path / ".vdaplint-cache"),
    )


def _corpus(tmp_path):
    root = tmp_path / "proj"
    root.mkdir()
    (root / "lib.py").write_text(
        "def eta(payload_bytes):\n"
        "    return payload_bytes / 1e6\n"
    )
    (root / "app.py").write_text(
        "from lib import eta\n"
        "\n"
        "def f(window_s):\n"
        "    return eta(window_s)\n"
    )
    (root / "other.py").write_text(
        "def g(count):\n"
        "    return count + 1\n"
    )
    return [str(root / n) for n in ("app.py", "lib.py", "other.py")]


def test_warm_run_replays_everything_byte_identically(tmp_path):
    files = _corpus(tmp_path)
    cold = _analyzer(tmp_path).run(files)
    warm = _analyzer(tmp_path).run(files)
    assert len(cold.analyzed) == 3 and not cold.replayed
    assert not warm.analyzed and len(warm.replayed) == 3
    assert render_text(warm.findings) == render_text(cold.findings)
    assert [f.rule for f in cold.findings] == ["UNIT002"]


def test_comment_edit_reanalyzes_only_that_file(tmp_path):
    files = _corpus(tmp_path)
    _analyzer(tmp_path).run(files)
    lib = files[1]
    with open(lib, "a", encoding="utf-8") as fh:
        fh.write("# a trailing comment\n")
    warm = _analyzer(tmp_path).run(files)
    # The edit changes lib.py's content hash but not its interface, so the
    # dependent app.py replays from cache.
    assert len(warm.analyzed) == 1 and len(warm.replayed) == 2


def test_interface_change_reanalyzes_dependents(tmp_path):
    files = _corpus(tmp_path)
    cold = _analyzer(tmp_path).run(files)
    assert [f.rule for f in cold.findings] == ["UNIT002"]
    lib = files[1]
    with open(lib, "w", encoding="utf-8") as fh:
        fh.write("def eta(window_s):\n    return window_s\n")
    warm = _analyzer(tmp_path).run(files)
    # lib.py changed and app.py depends on its signatures; other.py does not.
    assert len(warm.analyzed) == 2 and len(warm.replayed) == 1
    assert warm.findings == []


def test_rule_set_change_invalidates_the_whole_cache(tmp_path):
    files = _corpus(tmp_path)
    _analyzer(tmp_path).run(files)
    trimmed = {
        rid: rule
        for rid, rule in semantic_rules_by_id().items()
        if rid != "UNIT002"
    }
    warm = _analyzer(tmp_path, semantic=trimmed).run(files)
    assert len(warm.analyzed) == 3 and not warm.replayed
    assert warm.findings == []


def test_adding_a_file_keeps_unrelated_replays(tmp_path):
    files = _corpus(tmp_path)
    _analyzer(tmp_path).run(files)
    extra = os.path.join(os.path.dirname(files[0]), "fresh.py")
    with open(extra, "w", encoding="utf-8") as fh:
        fh.write("def h(x):\n    return x\n")
    warm = _analyzer(tmp_path).run(files + [extra])
    # The module set changed, which invalidates cross-module resolution;
    # the cache must never replay stale interprocedural results.
    assert len(warm.analyzed) == 4 and not warm.replayed


def test_syntax_error_is_cached_and_replayed(tmp_path):
    files = _corpus(tmp_path)
    broken = os.path.join(os.path.dirname(files[0]), "broken.py")
    with open(broken, "w", encoding="utf-8") as fh:
        fh.write("def oops(:\n")
    cold = _analyzer(tmp_path).run(files + [broken])
    warm = _analyzer(tmp_path).run(files + [broken])
    assert [f.rule for f in cold.findings if f.path == broken] == ["E999"]
    assert render_text(warm.findings) == render_text(cold.findings)
    assert not warm.analyzed


def test_warm_run_is_much_faster_on_the_real_tree(tmp_path):
    root = os.path.dirname(os.path.abspath(repro.__file__))
    files = sorted(
        os.path.join(dirpath, name)
        for dirpath, _dirs, names in os.walk(root)
        for name in names
        if name.endswith(".py")
    )
    # Wall-clock reads are the point here: we are timing the analyzer
    # itself, not simulated work.
    t0 = time.perf_counter()  # vdaplint: disable=DET001
    cold = _analyzer(tmp_path).run(files)
    t1 = time.perf_counter()  # vdaplint: disable=DET001
    warm = _analyzer(tmp_path).run(files)
    t2 = time.perf_counter()  # vdaplint: disable=DET001
    assert not warm.analyzed and len(warm.replayed) == len(files)
    assert render_text(warm.findings) == render_text(cold.findings)
    # The acceptance bar is 5x; assert a conservative 3x so the test stays
    # robust on loaded CI machines.
    assert (t1 - t0) > 3.0 * (t2 - t1), (t1 - t0, t2 - t1)

"""Unit/protocol corpus: each semantic rule catches a seeded cross-module bug.

Each directory under ``unit_fixtures/`` is a miniature multi-module
project with one class of bug the UNIT/RES/PROTO tier must catch.  Lines
carry ``# expect-unit: RULE`` or ``# expect-res: RULE`` annotations; the
semantic tier must report exactly those (file, line, rule) triples --
and the PR 2 single-file rule pack must report *nothing* at those
coordinates, which is the point.
"""

import os
import re

import pytest

from repro.analysis import (
    IncrementalAnalyzer,
    LintEngine,
    default_rules,
    semantic_rules_by_id,
)

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "unit_fixtures")
CASES = sorted(
    name
    for name in os.listdir(FIXTURE_DIR)
    if os.path.isdir(os.path.join(FIXTURE_DIR, name))
)
EXPECT_RE = re.compile(
    r"#\s*expect-(?:unit|res):\s*([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
)


def _case_files(case):
    root = os.path.join(FIXTURE_DIR, case)
    return sorted(
        os.path.join(root, name)
        for name in os.listdir(root)
        if name.endswith(".py")
    )


def _expected(case):
    triples = set()
    for path in _case_files(case):
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                match = EXPECT_RE.search(line)
                if match:
                    for rule in re.split(r"\s*,\s*", match.group(1)):
                        triples.add((os.path.basename(path), lineno, rule))
    return triples


def _semantic_findings(case):
    analyzer = IncrementalAnalyzer([], semantic_rules_by_id(), cache_dir=None)
    return analyzer.run(_case_files(case)).findings


def test_corpus_covers_every_semantic_rule():
    assert CASES == sorted(CASES)
    fired = {rule for case in CASES for (_, _, rule) in _expected(case)}
    assert fired == {
        "UNIT001",
        "UNIT002",
        "UNIT003",
        "RES101",
        "RES102",
        "PROTO001",
    }


@pytest.mark.parametrize("case", CASES)
def test_findings_match_annotations_exactly(case):
    actual = {
        (os.path.basename(f.path), f.line, f.rule)
        for f in _semantic_findings(case)
    }
    assert actual == _expected(case)


@pytest.mark.parametrize("case", CASES)
def test_single_file_rules_miss_every_annotated_site(case):
    engine = LintEngine(default_rules())
    for path in _case_files(case):
        flagged_lines = {f.line for f in engine.lint_file(path)}
        annotated = {
            line
            for (fname, line, _) in _expected(case)
            if fname == os.path.basename(path)
        }
        assert not (flagged_lines & annotated), path


def test_unit002_names_the_callee():
    findings = [
        f for f in _semantic_findings("unit002_wrong_arg") if f.rule == "UNIT002"
    ]
    assert findings and all("transmit" in f.message for f in findings)


def test_res101_carries_request_witness():
    findings = [
        f for f in _semantic_findings("res101_leak") if f.rule == "RES101"
    ]
    assert findings and all("requested at line" in f.message for f in findings)


def test_pragma_suppresses_semantic_findings(tmp_path):
    (tmp_path / "mix.py").write_text(
        "def budget(latency_s, payload_bytes):\n"
        "    return latency_s + payload_bytes  # vdaplint: disable=UNIT001\n"
    )
    analyzer = IncrementalAnalyzer([], semantic_rules_by_id(), cache_dir=None)
    assert analyzer.run([str(tmp_path / "mix.py")]).findings == []

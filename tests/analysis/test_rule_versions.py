"""The incremental cache must invalidate when any rule pack changes.

Regression for the stale-catalogue hazard: before rule versions existed,
editing a rule's logic without renaming its id left ``.vdaplint-cache``
replaying findings from the old catalogue.  The env key now embeds
``id@version`` for every enabled rule *plus* a fingerprint over every
shipped pack (including PERF/MP, which bypass the incremental analyzer),
so a version bump anywhere forces re-analysis.
"""

from repro.analysis import IncrementalAnalyzer, catalogue_fingerprint
from repro.analysis.perf import HotLoopAllocRule
from repro.analysis.plan import BarrierExceedsLookahead, FLEET_RULE_CLASSES
from repro.analysis.rules import RULE_CLASSES


def _analyzer(rules, cache_dir=None):
    return IncrementalAnalyzer(rules, {}, cache_dir=cache_dir)


def test_env_key_embeds_rule_versions():
    rule = RULE_CLASSES[0]()
    bumped = RULE_CLASSES[0]()
    bumped.version = rule.version + 1
    assert _analyzer([rule])._env_key() != _analyzer([bumped])._env_key()


def test_catalogue_fingerprint_tracks_pack_versions(monkeypatch):
    before = catalogue_fingerprint()
    monkeypatch.setattr(HotLoopAllocRule, "version", HotLoopAllocRule.version + 1)
    assert catalogue_fingerprint() != before


def test_catalogue_fingerprint_tracks_fleet_pack(monkeypatch):
    """The FLEET pack rides the same invalidation channel as PERF/MP: a
    planner rule edit must flush warm ``--plan --cache`` runs."""
    before = catalogue_fingerprint()
    monkeypatch.setattr(
        BarrierExceedsLookahead, "version", BarrierExceedsLookahead.version + 1
    )
    assert catalogue_fingerprint() != before


def test_fleet_rules_carry_versioned_ids():
    for cls in FLEET_RULE_CLASSES:
        rule = cls()
        assert rule.id.startswith("FLEET")
        assert isinstance(rule.version, int) and rule.version >= 1


def test_pack_version_bump_invalidates_warm_cache(tmp_path, monkeypatch):
    """A PERF-pack edit re-analyzes even though the enabled rules are
    unchanged -- the pack fingerprint is part of the env key."""
    source = tmp_path / "mod.py"
    source.write_text("x = 1\n", encoding="utf-8")
    cache_dir = str(tmp_path / "cache")
    rules = [RULE_CLASSES[0]()]

    cold = _analyzer(rules, cache_dir).run([str(source)])
    assert cold.analyzed == [str(source)]
    warm = _analyzer(rules, cache_dir).run([str(source)])
    assert warm.analyzed == []
    assert warm.replayed == [str(source)]

    monkeypatch.setattr(HotLoopAllocRule, "version", HotLoopAllocRule.version + 1)
    invalidated = _analyzer(rules, cache_dir).run([str(source)])
    assert invalidated.analyzed == [str(source)]
    assert invalidated.replayed == []
    assert invalidated.findings == cold.findings

"""FLEET003 seed: a sim process drains and delivers the bus itself.

``deliver``/``drain_outbox`` must only run between rounds, with the sim
clock parked at a barrier; calling them from inside a process loop
bypasses the coordinator's canonical envelope exchange.
"""

__all__ = ["greedy_loop", "main"]

import sim

from bus import V2VBus


def greedy_loop(simulator):
    bus = V2VBus()
    while True:
        bus.send(1, "beacon")
        bus.deliver(bus.drain_outbox())  # expect-fleet: FLEET003, FLEET003
        yield simulator.timeout(1.0)


def main():
    simulator = sim.Simulator()
    simulator.process(greedy_loop(simulator))

"""Shared link geometry for the barrier-overrun fixture (cross-module).

The seeded bug lives in ``runner.py``: it imports this latency constant
but configures a barrier step larger than it.
"""

__all__ = ["DEFAULT_LATENCY_S"]

DEFAULT_LATENCY_S = 2.0

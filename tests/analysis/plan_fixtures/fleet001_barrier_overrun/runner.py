"""FLEET001 seed: barrier step exceeds the link latency it ships with."""

__all__ = ["launch", "bad_geometry", "good_geometry"]

from geometry import DEFAULT_LATENCY_S


def launch(barrier_s, v2v_latency_s):
    return barrier_s + v2v_latency_s


def bad_geometry():
    # 5s barrier over a 2s link: round k traffic is due inside round k.
    return launch(barrier_s=5.0, v2v_latency_s=DEFAULT_LATENCY_S)  # expect-fleet: FLEET001


def good_geometry():
    # Step at (under) the lookahead: conservative sync holds.
    return launch(barrier_s=1.5, v2v_latency_s=DEFAULT_LATENCY_S)

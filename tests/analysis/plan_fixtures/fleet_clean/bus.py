"""The idiomatic counterpart: positive static latency, barrier-side
exchange kept out of sim processes."""

__all__ = ["V2VBus"]

class V2VBus:
    def __init__(self, latency_s=1.0):
        self.latency_s = latency_s
        self.outbox = []
        self.delivered = []

    def send(self, dst, payload):
        self.outbox.append((dst, payload, self.latency_s))

    def deliver(self, batch):
        self.delivered.extend(batch)

    def drain_outbox(self):
        drained, self.outbox = self.outbox, []
        return drained

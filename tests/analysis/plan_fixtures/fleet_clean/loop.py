"""No findings expected: sends stay latency-bounded inside the process;
delivery runs only from the barrier-side exchange function (never
reachable from a sim process root)."""

__all__ = ["beacon_loop", "exchange_at_barrier", "main"]

import sim

from bus import V2VBus


def beacon_loop(simulator, bus):
    while True:
        bus.send(1, "beacon")
        yield simulator.timeout(1.0)


def exchange_at_barrier(bus):
    # Called by the coordinator between rounds, not by a sim process.
    bus.deliver(bus.drain_outbox())


def main():
    simulator = sim.Simulator()
    bus = V2VBus()
    simulator.process(beacon_loop(simulator, bus))
    exchange_at_barrier(bus)

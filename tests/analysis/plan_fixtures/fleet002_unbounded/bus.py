"""A V2V bus whose link latency is decided at runtime (unprovable)."""

__all__ = ["V2VBus", "read_latency"]

import os


def read_latency():
    return float(os.environ.get("LINK_LATENCY_S", "1.0"))


class V2VBus:
    def __init__(self, latency_s):
        self.latency_s = latency_s
        self.outbox = []

    def send(self, dst, payload):
        self.outbox.append((dst, payload, self.latency_s))

"""FLEET002 seed: the cross-partition link latency cannot be resolved.

The bus is constructed with an environment-derived latency, so no static
lookahead proof exists for the send edge in this process loop.
"""

__all__ = ["beacon_loop", "main"]

import sim

from bus import V2VBus, read_latency


def beacon_loop(simulator):
    bus = V2VBus(latency_s=read_latency())
    while True:
        bus.send(1, "beacon")  # expect-fleet: FLEET002
        yield simulator.timeout(1.0)


def main():
    simulator = sim.Simulator()
    simulator.process(beacon_loop(simulator))

"""FLEET002 seed: a sim process beacons over a zero-latency link.

Cross-module: the zero default lives in ``bus.py``; the send edge the
rule anchors on is the call site inside this process loop.
"""

__all__ = ["beacon_loop", "main"]

import sim

from bus import V2VBus


def beacon_loop(simulator):
    bus = V2VBus()
    while True:
        bus.send(1, "beacon")  # expect-fleet: FLEET002
        yield simulator.timeout(1.0)


def main():
    simulator = sim.Simulator()
    simulator.process(beacon_loop(simulator))

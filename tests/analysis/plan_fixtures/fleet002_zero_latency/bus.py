"""A V2V bus whose link latency is statically zero (the seeded bug)."""

__all__ = ["V2VBus"]

class V2VBus:
    def __init__(self, latency_s=0.0):
        self.latency_s = latency_s
        self.outbox = []

    def send(self, dst, payload):
        self.outbox.append((dst, payload, self.latency_s))

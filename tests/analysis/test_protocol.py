"""Direct tests for the resource-protocol and yield-discipline checkers."""

import ast
import textwrap

from repro.analysis import ProtocolChecker
from repro.analysis.units import summarize_module
from repro.analysis.protocol import module_in_protocol_scope

SIM_IMPORT = "from repro.sim.resources import Resource\n"


def _check(source, module="worker"):
    source = SIM_IMPORT + textwrap.dedent(source)
    tree = ast.parse(source)
    summary = summarize_module(
        f"{module}.py", source, tree=tree, module_name=module
    )
    return ProtocolChecker().check_module(summary, source, tree)


def _rules(findings):
    return [f.rule for f in findings]


# -------------------------------------------------------------------- gating


def test_test_modules_are_out_of_scope():
    source = SIM_IMPORT + "def f(pool):\n    grant = pool.request()\n    yield grant\n"
    tree = ast.parse(source)
    summary = summarize_module(
        "test_worker.py", source, tree=tree, module_name="test_worker"
    )
    assert not module_in_protocol_scope(summary)
    assert ProtocolChecker().check_module(summary, source, tree) == []


def test_modules_without_sim_imports_are_out_of_scope():
    source = "def f(pool):\n    grant = pool.request()\n    yield grant\n"
    tree = ast.parse(source)
    summary = summarize_module(
        "worker.py", source, tree=tree, module_name="worker"
    )
    assert not module_in_protocol_scope(summary)
    assert ProtocolChecker().check_module(summary, source, tree) == []


# -------------------------------------------------------------------- RES101


def test_res101_yield_outside_try_leaks_on_interrupt():
    findings = _check(
        """
        def f(sim, pool):
            grant = pool.request()
            yield grant
            yield sim.timeout(1.0)
        """
    )
    assert _rules(findings) == ["RES101"]
    assert "requested at line" in findings[0].message


def test_res101_clean_with_try_finally():
    findings = _check(
        """
        def f(sim, pool):
            grant = pool.request()
            try:
                yield grant
                yield sim.timeout(1.0)
            finally:
                pool.release(grant)
        """
    )
    assert findings == []


def test_res101_release_missing_on_exception_path_only():
    findings = _check(
        """
        def f(sim, pool, store):
            grant = pool.request()
            yield grant
            yield store.get()
            pool.release(grant)
        """
    )
    assert _rules(findings) == ["RES101"]
    assert "exception" in findings[0].message


def test_res101_overwriting_a_pending_grant():
    findings = _check(
        """
        def f(sim, pool):
            grant = pool.request()
            grant = pool.request()
            try:
                yield grant
            finally:
                pool.release(grant)
        """
    )
    assert _rules(findings) == ["RES101"]


def test_returning_the_grant_is_a_sanctioned_handoff():
    findings = _check(
        """
        def acquire(pool):
            grant = pool.request()
            return grant
        """
    )
    assert findings == []


def test_storing_the_grant_on_self_escapes():
    findings = _check(
        """
        class Holder:
            def grab(self, pool):
                self._grant = pool.request()
        """
    )
    assert findings == []


# -------------------------------------------------------------------- RES102


def test_res102_double_release():
    findings = _check(
        """
        def f(sim, pool):
            grant = pool.request()
            try:
                yield grant
            finally:
                pool.release(grant)
            pool.release(grant)
        """
    )
    assert _rules(findings) == ["RES102"]


def test_res102_release_before_yield():
    findings = _check(
        """
        def f(sim, pool):
            grant = pool.request()
            pool.release(grant)
            yield grant
        """
    )
    assert _rules(findings) == ["RES102"]


def test_cancel_in_exception_handler_is_allowed():
    findings = _check(
        """
        def f(sim, pool):
            grant = pool.request()
            try:
                yield grant
                pool.release(grant)
            except Exception:
                pool.release(grant)
                raise
        """
    )
    assert findings == []


# ------------------------------------------------------------------ PROTO001


def test_proto001_literal_and_bare_yields():
    findings = _check(
        """
        def sampler(sim, period_s):
            yield sim.timeout(period_s)
            yield period_s * 2.0
            yield
        """
    )
    assert _rules(findings) == ["PROTO001", "PROTO001"]


def test_proto001_requires_a_sim_idiom_to_classify_the_generator():
    findings = _check(
        """
        def numbers():
            yield 1
            yield 2
        """
    )
    assert findings == []


def test_proto001_process_registration_classifies_same_file_generator():
    findings = _check(
        """
        def ticker(sim):
            yield 1.0

        def boot(sim):
            sim.process(ticker(sim))
        """
    )
    assert _rules(findings) == ["PROTO001"]


def test_proto001_skips_unreachable_yield_after_return():
    findings = _check(
        """
        def never_runs(sim):
            return
            yield  # generator marker idiom
        """
    )
    assert findings == []

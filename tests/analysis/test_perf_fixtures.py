"""Annotated perf/mp fixture corpus: every rule fires on its seeded bug
and stays silent on the idiomatic fix in the same (sim-hot) file.

Each fixture under ``perf_fixtures/`` carries ``# expect-perf: RULE`` /
``# expect-mp: RULE`` annotations; the analyzers must produce *exactly*
that finding set -- extra findings on the fixed variants are failures
too.  The corpus directory holds a ``.vdaplint-skip`` marker so repo-wide
lint sweeps do not trip over the deliberate violations.
"""

import os
import re

import pytest

from repro.analysis import SKIP_MARKER, MpAnalyzer, PerfAnalyzer, build_graph
from repro.analysis.mp import MP_RULE_CLASSES
from repro.analysis.perf import PERF_RULE_CLASSES

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "perf_fixtures")

EXPECT_RE = re.compile(
    r"#\s*expect-(?:perf|mp):\s*([A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)"
)


def fixture_paths() -> list[str]:
    return sorted(
        os.path.join(FIXTURE_DIR, name)
        for name in os.listdir(FIXTURE_DIR)
        if name.endswith(".py")
    )


def expected_findings(source: str) -> set[tuple[int, str]]:
    expected = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = EXPECT_RE.search(text)
        if not match:
            continue
        for rule_id in match.group(1).split(","):
            expected.add((lineno, rule_id.strip()))
    return expected


def analyze(path: str) -> set[tuple[int, str]]:
    graph = build_graph([path])
    findings = PerfAnalyzer().analyze_graph(graph)
    findings += MpAnalyzer().analyze_graph(graph)
    return {(f.line, f.rule) for f in findings}


@pytest.mark.parametrize(
    "path", fixture_paths(), ids=[os.path.basename(p) for p in fixture_paths()]
)
def test_fixture_matches_annotations(path):
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    expected = expected_findings(source)
    actual = analyze(path)
    missing = expected - actual
    unexpected = actual - expected
    assert not missing, f"{path}: annotated findings did not fire: {missing}"
    assert not unexpected, f"{path}: unannotated findings fired: {unexpected}"


def test_corpus_exercises_every_rule():
    """Every shipped PERF/MP rule must fire somewhere in the corpus."""
    shipped = {cls.id for cls in PERF_RULE_CLASSES + MP_RULE_CLASSES}
    fired = set()
    for path in fixture_paths():
        fired.update(rule for _line, rule in analyze(path))
    assert shipped <= fired, f"rules with no firing fixture: {shipped - fired}"


def test_corpus_covers_at_least_eight_rule_ids():
    """The acceptance floor: >=8 distinct rule ids across the packs."""
    shipped = {cls.id for cls in PERF_RULE_CLASSES + MP_RULE_CLASSES}
    assert len(shipped) >= 8


def test_corpus_is_skip_marked():
    """The fixture directory must opt out of directory-walk discovery."""
    assert os.path.exists(os.path.join(FIXTURE_DIR, SKIP_MARKER))


def test_pragma_suppresses_perf_finding(tmp_path):
    """PERF/MP findings honor the standard vdaplint pragmas."""
    bug = (
        "class Simulator:\n"
        "    def run(self, events):\n"
        "        total = 0\n"
        "        for event in events:\n"
        "            box = {'seq': event}  # vdaplint: disable=PERF001\n"
        "            total += box['seq']\n"
        "        return total\n"
    )
    path = tmp_path / "hot.py"
    path.write_text(bug, encoding="utf-8")
    assert analyze(str(path)) == set()

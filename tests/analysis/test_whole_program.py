"""Whole-program corpus: DET101/SIM101/RACE001 catch what single-file misses.

Each directory under ``wp_fixtures/`` is a miniature multi-module project
whose violations only appear once calls are traced across files.  Lines
carry ``# expect-wp: RULE`` annotations; the analyzer must report exactly
those (file, line, rule) triples -- and the PR 2 single-file rule pack
must report *nothing* at those coordinates, which is the point.
"""

import os
import re

import pytest

from repro.analysis import (
    LintEngine,
    WholeProgramAnalyzer,
    build_graph,
    default_rules,
    flow_rules,
)

WP_DIR = os.path.join(os.path.dirname(__file__), "wp_fixtures")
CASES = sorted(
    name
    for name in os.listdir(WP_DIR)
    if os.path.isdir(os.path.join(WP_DIR, name))
)
EXPECT_RE = re.compile(r"#\s*expect-wp:\s*([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)")


def _case_files(case):
    root = os.path.join(WP_DIR, case)
    return sorted(
        os.path.join(root, name)
        for name in os.listdir(root)
        if name.endswith(".py")
    )


def _expected(case):
    triples = set()
    for path in _case_files(case):
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                match = EXPECT_RE.search(line)
                if match:
                    for rule in re.split(r"\s*,\s*", match.group(1)):
                        triples.add((os.path.basename(path), lineno, rule))
    return triples


def test_corpus_has_three_cross_module_cases():
    assert CASES == sorted(CASES)
    fired = {rule for case in CASES for (_, _, rule) in _expected(case)}
    assert fired == {"DET101", "SIM101", "RACE001"}


@pytest.mark.parametrize("case", CASES)
def test_findings_match_annotations_exactly(case):
    analyzer = WholeProgramAnalyzer(flow_rules())
    findings = analyzer.analyze_paths([os.path.join(WP_DIR, case)])
    actual = {
        (os.path.basename(f.path), f.line, f.rule) for f in findings
    }
    assert actual == _expected(case)


@pytest.mark.parametrize("case", CASES)
def test_single_file_rules_miss_every_annotated_site(case):
    engine = LintEngine(default_rules())
    for path in _case_files(case):
        flagged_lines = {f.line for f in engine.lint_file(path)}
        annotated = {
            line
            for (fname, line, _) in _expected(case)
            if fname == os.path.basename(path)
        }
        assert not (flagged_lines & annotated), path


@pytest.mark.parametrize("case", CASES)
def test_findings_carry_witness_chains(case):
    analyzer = WholeProgramAnalyzer(flow_rules())
    for finding in analyzer.analyze_paths([os.path.join(WP_DIR, case)]):
        if finding.rule in ("DET101", "SIM101"):
            assert "via" in finding.message or "directly" in finding.message
        if finding.rule == "RACE001":
            assert "process" in finding.message


def test_pragma_suppresses_whole_program_findings(tmp_path):
    (tmp_path / "src.py").write_text(
        "import time\n"
        "\n"
        "def now():\n"
        "    return time.time()\n"
        "\n"
        "def proc(sim):\n"
        "    now()  # vdaplint: disable=DET101\n"
        "    yield sim.timeout(1.0)\n"
        "\n"
        "def launch(sim):\n"
        "    sim.process(proc(sim))\n"
    )
    analyzer = WholeProgramAnalyzer(flow_rules())
    assert analyzer.analyze_paths([str(tmp_path)]) == []


def test_taint_debug_dump_names_sources(tmp_path):
    from repro.analysis import TaintAnalysis

    (tmp_path / "src.py").write_text(
        "import time\n"
        "\n"
        "def now():\n"
        "    return time.time()\n"
        "\n"
        "def wrapper():\n"
        "    return now()\n"
    )
    graph = build_graph([str(tmp_path)])
    taint = TaintAnalysis(graph)
    taint.run()
    dump = taint.to_debug_dict()
    assert "src.now" in dump and "src.wrapper" in dump
    assert "wall-clock" in dump["src.wrapper"]

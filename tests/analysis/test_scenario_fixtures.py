"""Annotated scenario fixture corpus: every SCN rule fires on its
seeded misconfiguration and stays silent on the clean control.

Each ``.yaml`` under ``scenario_fixtures/`` is one scenario document;
``# expect-scn: RULE`` comments state the exact finding set per file --
extra findings are failures too, and every finding must land on its
annotated line.  The corpus root holds a ``.vdaplint-skip`` marker so
repo-wide ``--scenarios`` sweeps do not trip over the deliberate
violations (explicitly-named files still analyze).
"""

import os
import re

import pytest

from repro.analysis import SKIP_MARKER, ScenarioAnalyzer
from repro.analysis.scenario import SCENARIO_RULE_CLASSES

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "scenario_fixtures")

EXPECT_RE = re.compile(r"#\s*expect-scn:\s*([A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)")

#: One analyzer for the whole module: the package call graph behind
#: SCN004/005 is memoized on the instance, so the corpus builds it once.
_ANALYZER = ScenarioAnalyzer()


def fixture_files() -> list[str]:
    return sorted(
        os.path.join(FIXTURE_DIR, name)
        for name in os.listdir(FIXTURE_DIR)
        if name.endswith((".yaml", ".yml"))
    )


def expected_findings(path: str) -> set[tuple[int, str]]:
    expected = set()
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = EXPECT_RE.search(text)
        if not match:
            continue
        for rule_id in match.group(1).split(","):
            expected.add((lineno, rule_id.strip()))
    return expected


def analyze(path: str) -> set[tuple[int, str]]:
    return {(f.line, f.rule) for f in _ANALYZER.analyze_file(path)}


@pytest.mark.parametrize(
    "path", fixture_files(), ids=[os.path.basename(p) for p in fixture_files()]
)
def test_fixture_matches_annotations(path):
    expected = expected_findings(path)
    actual = analyze(path)
    missing = expected - actual
    unexpected = actual - expected
    assert not missing, f"{path}: annotated findings did not fire: {missing}"
    assert not unexpected, f"{path}: unannotated findings fired: {unexpected}"


def test_clean_fixture_has_no_annotations():
    """``clean_control`` is the zero-findings control, by construction."""
    path = os.path.join(FIXTURE_DIR, "clean_control.yaml")
    assert expected_findings(path) == set()
    assert analyze(path) == set()


def test_corpus_exercises_every_rule():
    """Every shipped SCN rule must fire somewhere in the corpus."""
    shipped = {cls.id for cls in SCENARIO_RULE_CLASSES}
    fired = set()
    for path in fixture_files():
        fired.update(rule for _line, rule in analyze(path))
    assert shipped <= fired, f"rules with no firing fixture: {shipped - fired}"


def test_corpus_is_skip_marked():
    """The fixture corpus must opt out of directory-walk discovery."""
    assert os.path.exists(os.path.join(FIXTURE_DIR, SKIP_MARKER))


def test_pragma_suppresses_scenario_finding(tmp_path):
    """SCN findings honor the standard vdaplint pragmas (YAML comments)."""
    doc = (
        "name: suppressed\n"
        "fleet:\n"
        "  vehicles: 4\n"
        "  duration_s: -3.0  # vdaplint: disable=SCN001\n"
    )
    path = tmp_path / "suppressed.yaml"
    path.write_text(doc, encoding="utf-8")
    assert analyze(str(path)) == set()

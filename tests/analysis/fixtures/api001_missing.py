"""Fixture: API001 flags a public module with no __all__ at all."""  # expect: API001


def orphan():
    """Defined but never exported."""
    return None

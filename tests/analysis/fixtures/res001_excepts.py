"""Fixture: RES001 flags broad excepts that swallow failures silently."""

__all__ = ["risky"]


def risky(action, log, stats):
    """Silent broad handlers are flagged; handled/narrow ones are not."""
    try:
        action()
    except Exception:  # expect: RES001
        pass
    try:
        action()
    except:  # expect: RES001
        stats.count += 1
    try:
        action()
    except (ValueError, Exception):  # expect: RES001
        pass
    try:
        action()
    except Exception as err:
        log.warning("failed: %s", err)  # allowed: logged
    try:
        action()
    except Exception as err:
        stats.last = str(err)  # allowed: bound exception is used
    try:
        action()
    except ValueError:
        pass  # allowed: narrow type
    try:
        action()
    except Exception:
        raise  # allowed: re-raised

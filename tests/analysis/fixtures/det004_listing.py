"""Fixture: DET004 flags filesystem enumeration not wrapped in sorted()."""

import glob
import os

__all__ = ["enumerate_dir"]


def enumerate_dir(root):
    """Unsorted listings are flagged; sorted() wrapping is allowed."""
    names = os.listdir(root)  # expect: DET004
    matches = glob.glob("*.py")  # expect: DET004
    walker = os.walk(root)  # expect: DET004
    ordered = sorted(os.listdir(root))  # allowed: sorted directly
    trimmed = sorted(name for name in os.listdir(root) if name)  # allowed
    return names, matches, walker, ordered, trimmed

"""Fixture: FLT001 flags exact float equality on sim timestamps."""

__all__ = ["deadline_hit", "window"]


def deadline_hit(sim, record, deadline):
    """Equality on timestamps is a coin flip once arithmetic rounds them."""
    a = sim.now == deadline  # expect: FLT001
    b = record.timestamp != deadline  # expect: FLT001
    now_s = sim.now
    c = now_s == 5.0  # expect: FLT001
    return a, b, c


def window(sim, record, deadline, eps=1e-9):
    """Ordering and epsilon comparisons are the sanctioned forms."""
    return sim.now >= deadline and abs(record.timestamp - deadline) < eps

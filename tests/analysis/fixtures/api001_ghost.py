"""Fixture: API001 flags __all__ names the module never defines."""

__all__ = ["exists", "ghost"]  # expect: API001


def exists():
    """The only name this module actually defines."""
    return True

"""Fixture: DET002 flags global RNG state, allows seeded generators."""

import random
import numpy as np
from random import randint
from numpy.random import seed as np_seed

__all__ = ["draw"]


def draw():
    """Mix banned global draws with an allowed explicit generator."""
    random.seed(7)  # expect: DET002
    a = random.random()  # expect: DET002
    b = randint(0, 3)  # expect: DET002
    np.random.seed(0)  # expect: DET002
    c = np.random.rand(4)  # expect: DET002
    np_seed(1)  # expect: DET002
    rng = np.random.default_rng(0)  # allowed: explicit seeded generator
    return a, b, c, rng.integers(0, 10)

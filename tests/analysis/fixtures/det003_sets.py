"""Fixture: DET003 flags unordered iteration feeding scheduling code."""

__all__ = ["schedule"]

PENDING: set[str] = set()


def schedule(table, items):
    """Iterate unordered collections every way the rule knows about."""
    order = []
    for name in PENDING:  # expect: DET003
        order.append(name)
    for key in table.keys():  # expect: DET003
        order.append(key)
    for item in {"a", "b"}:  # expect: DET003
        order.append(item)
    for item in set(items):  # expect: DET003
        order.append(item)
    doubled = [x for x in frozenset(items)]  # expect: DET003
    for name in sorted(PENDING):  # allowed: sorted pins the order
        order.append(name)
    for key, value in table.items():  # allowed: dicts preserve insertion order
        order.append((key, value))
    return order, doubled

"""Fixture: file-level and line-level pragma suppression."""
# vdaplint: disable-file=DET002

import random
import time

__all__ = ["wobble"]


def wobble():
    """Draws under a file pragma, clock reads under line pragmas."""
    a = random.random()  # suppressed by the disable-file pragma
    b = time.time()  # vdaplint: disable=DET001
    c = time.time()  # vdaplint: disable=all
    d = time.time()  # vdaplint: disable=DET002 # expect: DET001
    return a, b, c, d

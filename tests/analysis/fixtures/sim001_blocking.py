"""Fixture: SIM001 flags host-blocking calls in sim processes."""

import subprocess
import time

__all__ = ["proc", "helper", "offline_tool"]


def proc(sim):
    """A generator-based sim process must never block the host."""
    time.sleep(0.1)  # expect: SIM001
    subprocess.run(["true"])  # expect: SIM001
    yield sim.timeout(1.0)


def helper():
    """time.sleep is banned even outside sim processes."""
    time.sleep(0.5)  # expect: SIM001


def offline_tool():
    """Non-generator code may shell out (not a sim process)."""
    return subprocess.run(["true"])

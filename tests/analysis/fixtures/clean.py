"""Fixture: a fully clean module that must produce zero findings."""

import numpy as np

__all__ = ["tick", "draw"]


def tick(sim, deadline):
    """Sim-clock time, ordering comparison, seeded randomness."""
    return sim.now >= deadline


def draw(seed):
    """Explicit generator, no global state."""
    rng = np.random.default_rng(seed)
    return float(rng.uniform(0.0, 1.0))

"""Fixture: DET001 flags every flavour of wall-clock read."""

import time
from datetime import date, datetime
from time import monotonic, perf_counter

__all__ = ["stamp"]


def stamp():
    """Read the host clock six ways; only the pragma'd one is allowed."""
    a = time.time()  # expect: DET001
    b = time.monotonic_ns()  # expect: DET001
    c = monotonic()  # expect: DET001
    d = perf_counter()  # expect: DET001
    e = datetime.now()  # expect: DET001
    f = date.today()  # expect: DET001
    allowed = time.time()  # vdaplint: disable=DET001
    return a, b, c, d, e, f, allowed

"""Annotated fleet-planner fixture corpus: every FLEET rule fires on its
seeded misconfiguration and stays silent on the idiomatic counterpart.

Each subdirectory under ``plan_fixtures/`` is a tiny two-module program
(bus + sim loop) analyzed whole-directory, because the FLEET rules need
the communication graph -- receiver types, process roots, and latency
proofs cross module boundaries.  ``# expect-fleet: RULE`` annotations
state the exact finding set per directory; extra findings are failures
too.  The corpus root holds a ``.vdaplint-skip`` marker so repo-wide
lint sweeps do not trip over the deliberate violations.
"""

import os
import re

import pytest

from repro.analysis import (
    SKIP_MARKER,
    CommGraph,
    FleetPlanAnalyzer,
    build_graph,
)
from repro.analysis.plan import FLEET_RULE_CLASSES

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "plan_fixtures")

EXPECT_RE = re.compile(r"#\s*expect-fleet:\s*([A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)")


def fixture_dirs() -> list[str]:
    return sorted(
        os.path.join(FIXTURE_DIR, name)
        for name in os.listdir(FIXTURE_DIR)
        if os.path.isdir(os.path.join(FIXTURE_DIR, name))
    )


def expected_findings(dirpath: str) -> set[tuple[str, int, str]]:
    expected = set()
    for name in sorted(os.listdir(dirpath)):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(dirpath, name), encoding="utf-8") as fh:
            source = fh.read()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = EXPECT_RE.search(text)
            if not match:
                continue
            for rule_id in match.group(1).split(","):
                expected.add((name, lineno, rule_id.strip()))
    return expected


def analyze(dirpath: str) -> set[tuple[str, int, str]]:
    graph = build_graph([dirpath])
    findings = FleetPlanAnalyzer(graph).analyze(CommGraph(graph))
    return {(os.path.basename(f.path), f.line, f.rule) for f in findings}


@pytest.mark.parametrize(
    "dirpath", fixture_dirs(), ids=[os.path.basename(d) for d in fixture_dirs()]
)
def test_fixture_matches_annotations(dirpath):
    expected = expected_findings(dirpath)
    actual = analyze(dirpath)
    missing = expected - actual
    unexpected = actual - expected
    assert not missing, f"{dirpath}: annotated findings did not fire: {missing}"
    assert not unexpected, f"{dirpath}: unannotated findings fired: {unexpected}"


def test_clean_fixture_has_no_annotations():
    """``fleet_clean`` is the zero-findings control, by construction."""
    assert expected_findings(os.path.join(FIXTURE_DIR, "fleet_clean")) == set()


def test_corpus_exercises_every_rule():
    """Every shipped FLEET rule must fire somewhere in the corpus."""
    shipped = {cls.id for cls in FLEET_RULE_CLASSES}
    fired = set()
    for dirpath in fixture_dirs():
        fired.update(rule for _name, _line, rule in analyze(dirpath))
    assert shipped <= fired, f"rules with no firing fixture: {shipped - fired}"


def test_corpus_is_skip_marked():
    """The fixture corpus must opt out of directory-walk discovery."""
    assert os.path.exists(os.path.join(FIXTURE_DIR, SKIP_MARKER))


def test_pragma_suppresses_fleet_finding(tmp_path):
    """FLEET findings honor the standard vdaplint pragmas."""
    bug = (
        "import sim\n"
        "\n"
        "class V2VBus:\n"
        "    def __init__(self, latency_s=0.0):\n"
        "        self.latency_s = latency_s\n"
        "    def send(self, dst, payload):\n"
        "        return (dst, payload, self.latency_s)\n"
        "\n"
        "def loop(simulator):\n"
        "    bus = V2VBus()\n"
        "    while True:\n"
        "        bus.send(1, 'x')  # vdaplint: disable=FLEET002\n"
        "        yield simulator.timeout(1.0)\n"
        "\n"
        "def main():\n"
        "    simulator = sim.Simulator()\n"
        "    simulator.process(loop(simulator))\n"
    )
    (tmp_path / "hot.py").write_text(bug, encoding="utf-8")
    assert analyze(str(tmp_path)) == set()

"""A sim process that transitively reads wall clock and global RNG.

Nothing in this file touches ``time`` or ``random`` directly, so the
PR 2 single-file rules see a clean module; only the whole-program taint
pass connects ``stamp()`` back to ``time.time()`` two modules-hops away.
"""

from helpers import jitter, stamp


def drive(sim):
    mark = stamp()  # expect-wp: DET101
    delay = jitter()  # expect-wp: DET101
    yield sim.timeout(1.0 + delay)
    return mark


def launch(sim):
    return sim.process(drive(sim))

"""Helpers that hide nondeterminism sources behind module-local hops.

Single-file DET001/DET002 fire *here*, at the raw source lines -- but a
caller in another module sees only innocent function calls.
"""

import random
import time


def raw_stamp():
    return time.time()


def stamp():
    # One more hop: callers of stamp() are two edges from the source.
    # (stamp is itself sim-reachable, so its tainted call is flagged too.)
    return raw_stamp()  # expect-wp: DET101


def jitter():
    return random.random()

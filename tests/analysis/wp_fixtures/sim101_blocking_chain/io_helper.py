"""Blocking I/O hidden inside a plain (non-generator) helper.

SIM001 only inspects generator bodies, so this function is invisible to
the single-file pass; the whole-program pass flags it once some sim
process can reach it.
"""

import urllib.request


def fetch(url):
    return urllib.request.urlopen(url).read()  # expect-wp: SIM101

"""A sim process that stalls the event loop through a helper call."""

from io_helper import fetch


def poller(sim):
    while True:
        fetch("http://edge.invalid/frame")  # expect-wp: SIM101
        yield sim.timeout(1.0)


def start(sim):
    return sim.process(poller(sim))

"""Two sim processes write the same SharedCache slot, unguarded.

``writer_a`` / ``writer_b`` both assign ``cache.hot_key`` after waking
from a timeout: whichever event fires second wins, so the final value
depends on event ordering.  ``guarded_writer`` takes the lock first,
which the race heuristic credits as an intervening acquisition.
"""

from state import SharedCache


def writer_a(sim, cache: SharedCache):
    yield sim.timeout(1.0)
    cache.hot_key = "a"  # expect-wp: RACE001


def writer_b(sim, cache: SharedCache):
    yield sim.timeout(2.0)
    cache.hot_key = "b"  # expect-wp: RACE001


def guarded_writer(sim, lock, cache: SharedCache):
    token = lock.request()
    yield token
    cache.hot_key = "exclusive"  # guarded: no finding
    lock.release(token)


def launch(sim, lock):
    cache = SharedCache()
    sim.process(writer_a(sim, cache))
    sim.process(writer_b(sim, cache))
    sim.process(guarded_writer(sim, lock, cache))

"""A mutable cache object shared by every process in the scenario."""


class SharedCache:
    def __init__(self):
        self.hot_key = None
        self.total = 0

"""Scenario CLI tier: flag guards, discovery, findings, and cache warmth.

Runs ``--scenarios`` over temp scenario files and the shipped corpus,
asserting output is byte-deterministic across cold and warm
incremental-cache runs.
"""

import json
import os

import pytest

from repro.analysis import main
from repro.analysis.scenario import (
    ScenarioAnalyzer,
    ScenarioCache,
    discover_scenario_files,
)

SHIPPED = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "scenarios"
)

BAD_DOC = (
    "name: bad\n"
    "fleet:\n"
    "  vehicles: 4\n"
    "  duration_s: -3.0\n"
    "  barrier_ms: 250\n"
)

CLEAN_DOC = (
    "name: ok\n"
    "fleet:\n"
    "  vehicles: 4\n"
    "  partitions: 2\n"
)


def run_cli(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


class TestGuards:
    def test_scenario_rule_selection_requires_scenarios(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path), "--select", "SCN001"])
        assert exc.value.code == 2

    def test_list_rules_includes_the_scenario_tier(self, capsys):
        code, out = run_cli(["--list-rules"], capsys)
        assert code == 0
        for rule_id in ("SCN001", "SCN002", "SCN003", "SCN004", "SCN005"):
            assert rule_id in out
        assert "[scenario]" in out


class TestDiscovery:
    def test_walk_collects_yaml_and_yml(self, tmp_path):
        (tmp_path / "a.yaml").write_text(CLEAN_DOC, encoding="utf-8")
        (tmp_path / "b.yml").write_text(CLEAN_DOC, encoding="utf-8")
        (tmp_path / "c.txt").write_text("not a scenario", encoding="utf-8")
        found = discover_scenario_files([str(tmp_path)])
        assert [os.path.basename(p) for p in found] == ["a.yaml", "b.yml"]

    def test_skip_marker_prunes_directories(self, tmp_path):
        sub = tmp_path / "fixtures"
        sub.mkdir()
        (sub / ".vdaplint-skip").write_text("", encoding="utf-8")
        (sub / "bad.yaml").write_text(BAD_DOC, encoding="utf-8")
        (tmp_path / "good.yaml").write_text(CLEAN_DOC, encoding="utf-8")
        found = discover_scenario_files([str(tmp_path)])
        assert [os.path.basename(p) for p in found] == ["good.yaml"]

    def test_missing_path_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path / "nope"), "--scenarios"])
        assert exc.value.code == 2


class TestFindings:
    def test_bad_scenario_fails_the_run_with_located_findings(
        self, tmp_path, capsys
    ):
        path = tmp_path / "bad.yaml"
        path.write_text(BAD_DOC, encoding="utf-8")
        code, out = run_cli(
            [str(tmp_path), "--scenarios", "--strict"], capsys
        )
        assert code == 1
        assert "bad.yaml:4" in out and "SCN001" in out
        assert "bad.yaml:5" in out and "SCN002" in out

    def test_syntax_error_surfaces_as_e999(self, tmp_path, capsys):
        path = tmp_path / "broken.yaml"
        path.write_text("fleet:\n\tvehicles: 4\n", encoding="utf-8")
        code, out = run_cli(
            [str(tmp_path), "--scenarios", "--strict"], capsys
        )
        assert code == 1
        assert "E999" in out

    def test_clean_scenario_passes_and_counts_as_scanned(
        self, tmp_path, capsys
    ):
        (tmp_path / "ok.yaml").write_text(CLEAN_DOC, encoding="utf-8")
        code, out = run_cli(
            [str(tmp_path), "--scenarios", "--strict"], capsys
        )
        assert code == 0
        assert "1 file" in out

    def test_without_the_flag_scenarios_are_ignored(self, tmp_path, capsys):
        (tmp_path / "bad.yaml").write_text(BAD_DOC, encoding="utf-8")
        code, _ = run_cli([str(tmp_path), "--strict"], capsys)
        assert code == 0

    def test_shipped_scenarios_are_strict_clean(self, capsys):
        code, _ = run_cli([SHIPPED, "--scenarios", "--strict"], capsys)
        assert code == 0

    def test_json_report_carries_scenario_findings(self, tmp_path, capsys):
        (tmp_path / "bad.yaml").write_text(BAD_DOC, encoding="utf-8")
        code, out = run_cli(
            [str(tmp_path), "--scenarios", "--strict", "--format", "json"],
            capsys,
        )
        assert code == 1
        report = json.loads(out)
        rules = {f["rule"] for f in report["findings"]}
        assert {"SCN001", "SCN002"} <= rules


class TestCache:
    def test_warm_run_replays_byte_identically(self, tmp_path, capsys):
        scen_dir = tmp_path / "scen"
        scen_dir.mkdir()
        (scen_dir / "bad.yaml").write_text(BAD_DOC, encoding="utf-8")
        (scen_dir / "ok.yaml").write_text(CLEAN_DOC, encoding="utf-8")
        cache_dir = str(tmp_path / "cache")
        argv = [
            str(scen_dir), "--scenarios", "--strict",
            "--cache", "--cache-dir", cache_dir,
        ]
        cold_code, cold_out = run_cli(argv, capsys)
        warm_code, warm_out = run_cli(argv, capsys)
        assert (cold_code, cold_out) == (warm_code, warm_out)
        assert os.path.exists(os.path.join(cache_dir, "scenarios.json"))

    def test_cache_replays_then_reanalyzes_edits(self, tmp_path):
        path = tmp_path / "doc.yaml"
        path.write_text(BAD_DOC, encoding="utf-8")
        cache = ScenarioCache(str(tmp_path / "cache"), ["SCN001", "SCN002"])
        analyzer = ScenarioAnalyzer()
        cold = cache.run([str(path)], analyzer)
        assert cold.analyzed == [str(path)] and cold.replayed == []
        warm = cache.run([str(path)], analyzer)
        assert warm.analyzed == [] and warm.replayed == [str(path)]
        assert warm.findings == cold.findings
        path.write_text(CLEAN_DOC, encoding="utf-8")
        edited = cache.run([str(path)], analyzer)
        assert edited.analyzed == [str(path)]
        assert edited.findings == []

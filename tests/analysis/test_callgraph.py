"""Call-graph mechanics: module naming, resolution, roots, reachability."""

from repro.analysis import build_graph, infer_module_name


def write(root, rel, text):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return str(path)


def test_infer_module_name_walks_packages(tmp_path):
    write(tmp_path, "pkg/__init__.py", "")
    write(tmp_path, "pkg/sub/__init__.py", "")
    mod = write(tmp_path, "pkg/sub/mod.py", "")
    assert infer_module_name(mod) == "pkg.sub.mod"
    assert infer_module_name(str(tmp_path / "pkg/sub/__init__.py")) == "pkg.sub"
    assert infer_module_name(write(tmp_path, "script.py", "")) == "script"


def test_calls_resolve_through_aliases_and_reexports(tmp_path):
    write(tmp_path, "pkg/__init__.py", "from .core import ping\n")
    write(tmp_path, "pkg/core.py", "def ping():\n    return 1\n")
    write(
        tmp_path, "main.py",
        "import pkg\n"
        "import pkg.core as c\n"
        "from pkg.core import ping\n"
        "\n"
        "def a():\n    return c.ping()\n"
        "\n"
        "def b():\n    return ping()\n"
        "\n"
        "def d():\n    return pkg.ping()\n",
    )
    graph = build_graph([str(tmp_path)])
    for caller in ("main.a", "main.b", "main.d"):
        callees = {site.callee for site in graph.calls[caller]}
        assert "pkg.core.ping" in callees, caller


def test_relative_imports_resolve(tmp_path):
    write(tmp_path, "pkg/__init__.py", "")
    write(tmp_path, "pkg/core.py", "def ping():\n    return 1\n")
    write(
        tmp_path, "pkg/sib.py",
        "from .core import ping\n\ndef call():\n    return ping()\n",
    )
    graph = build_graph([str(tmp_path)])
    assert {s.callee for s in graph.calls["pkg.sib.call"]} == {"pkg.core.ping"}


def test_self_annotation_and_constructor_types(tmp_path):
    write(
        tmp_path, "m.py",
        "class Engine:\n"
        "    def start(self):\n"
        "        return self.spin()\n"
        "    def spin(self):\n"
        "        return 1\n"
        "\n"
        "def run(eng: Engine):\n"
        "    return eng.start()\n"
        "\n"
        "def make():\n"
        "    e = Engine()\n"
        "    return e.spin()\n",
    )
    graph = build_graph([str(tmp_path)])
    assert {s.callee for s in graph.calls["m.Engine.start"]} == {"m.Engine.spin"}
    assert {s.callee for s in graph.calls["m.run"]} == {"m.Engine.start"}
    assert "m.Engine.spin" in {s.callee for s in graph.calls["m.make"]}


def test_base_class_method_resolution(tmp_path):
    write(
        tmp_path, "m.py",
        "class Base:\n"
        "    def tick(self):\n"
        "        return 0\n"
        "\n"
        "class Derived(Base):\n"
        "    def run(self):\n"
        "        return self.tick()\n",
    )
    graph = build_graph([str(tmp_path)])
    assert {s.callee for s in graph.calls["m.Derived.run"]} == {"m.Base.tick"}


def test_unique_method_fallback_is_marked_heuristic(tmp_path):
    write(
        tmp_path, "m.py",
        "class Radio:\n"
        "    def transmit(self):\n"
        "        return 1\n"
        "\n"
        "def send(r):\n"
        "    return r.transmit()\n",
    )
    graph = build_graph([str(tmp_path)])
    sites = [s for s in graph.calls["m.send"] if s.callee == "m.Radio.transmit"]
    assert sites and sites[0].heuristic


def test_process_roots_and_sim_reachability(tmp_path):
    write(
        tmp_path, "m.py",
        "def helper():\n"
        "    return 2\n"
        "\n"
        "def worker(sim):\n"
        "    yield sim.timeout(1.0)\n"
        "\n"
        "def driver(sim):\n"
        "    helper()\n"
        "    yield sim.timeout(1.0)\n"
        "\n"
        "def cold():\n"
        "    return helper()\n"
        "\n"
        "def main(sim):\n"
        "    sim.process(worker(sim))\n"
        "    sim.process(driver(sim))\n",
    )
    graph = build_graph([str(tmp_path)])
    assert set(graph.process_roots) == {"m.worker", "m.driver"}
    reachable = graph.sim_reachable()
    assert {"m.worker", "m.driver", "m.helper"} <= reachable
    assert "m.cold" not in reachable and "m.main" not in reachable
    assert graph.functions["m.worker"].is_generator
    assert not graph.functions["m.helper"].is_generator


def test_external_calls_are_recorded_not_guessed(tmp_path):
    write(
        tmp_path, "m.py",
        "import time\n\ndef now():\n    return time.time()\n",
    )
    graph = build_graph([str(tmp_path)])
    sites = graph.calls["m.now"]
    assert [s.external for s in sites] == ["time.time"]
    assert all(s.callee is None for s in sites)


def test_attr_writes_classify_receivers(tmp_path):
    write(
        tmp_path, "m.py",
        "TOTALS = None\n"
        "\n"
        "class Box:\n"
        "    def fill(self, item):\n"
        "        self.item = item\n"
        "\n"
        "def direct(box: Box):\n"
        "    local = Box()\n"
        "    local.item = 1\n"
        "    box.item = 2\n"
        "    TOTALS.count = 3\n",
    )
    graph = build_graph([str(tmp_path)])
    method_writes = graph.attr_writes["m.Box.fill"]
    assert [(w.base_kind, w.share_key) for w in method_writes] == [
        ("self", ("m.Box", "item"))
    ]
    by_base = {w.base: w for w in graph.attr_writes["m.direct"]}
    assert "local" not in by_base  # locals cannot race
    assert by_base["box"].base_kind == "param"
    assert by_base["box"].share_key == ("m.Box", "item")
    assert by_base["TOTALS"].base_kind == "global"


def test_debug_dict_is_sorted_and_json_friendly(tmp_path):
    import json

    write(tmp_path, "b.py", "def one():\n    return 1\n")
    write(tmp_path, "a.py", "from b import one\n\ndef two():\n    return one()\n")
    graph = build_graph([str(tmp_path)])
    dump = graph.to_debug_dict()
    assert dump["modules"] == sorted(dump["modules"])
    assert "b.one" in dump["edges"]["a.two"]
    json.dumps(dump)  # must be serializable as-is

"""DeterminismSanitizer: same seed -> same trace, divergence pinpointed."""

from repro.analysis import DeterminismSanitizer
from repro.apps import make_adas_service
from repro.scenario import DriveScenario
from repro.sim import RngRegistry, Simulator


def _toy_run(seed, jitter=0.0, keep_records=True):
    sim = Simulator()
    sanitizer = DeterminismSanitizer(sim, keep_records=keep_records)
    registry = sanitizer.watch_rng(RngRegistry(seed))
    stream = registry.stream("worker")

    def worker(sim):
        for _ in range(5):
            yield sim.timeout(0.5 + float(stream.random()) + jitter)

    def heartbeat(sim):
        for _ in range(3):
            yield sim.timeout(1.0)

    sim.process(worker(sim), name="worker")
    sim.process(heartbeat(sim), name="heartbeat")
    sim.run()
    return sanitizer


def test_same_seed_runs_hash_identically():
    a = _toy_run(seed=11)
    b = _toy_run(seed=11)
    assert a.trace_hash == b.trace_hash
    assert a.records == b.records
    assert a.diff(b) is None
    assert a.draw_counts() == b.draw_counts()
    assert a.draw_counts()["worker"] == 5
    assert a.rng_counts[("worker", "random")] == 5


def test_different_seed_changes_the_hash():
    assert _toy_run(seed=11).trace_hash != _toy_run(seed=12).trace_hash


def test_diff_pinpoints_first_divergent_event():
    a = _toy_run(seed=11)
    b = _toy_run(seed=11, jitter=0.25)
    assert a.trace_hash != b.trace_hash
    divergence = a.diff(b)
    assert divergence is not None
    # Every record before the divergence index is identical.
    assert a.records[: divergence.index] == b.records[: divergence.index]
    assert divergence.left != divergence.right
    text = divergence.explain()
    assert str(divergence.index) in text
    assert "worker" in text or "Timeout" in text


def test_diff_requires_records_on_both_sides():
    a = _toy_run(seed=11)
    lean = _toy_run(seed=11, keep_records=False)
    assert lean.records == []
    assert lean.trace_hash == a.trace_hash  # hash still accumulates
    try:
        a.diff(lean)
    except ValueError:
        pass
    else:
        raise AssertionError("diff without records should raise")


def test_detach_restores_the_simulator():
    sim = Simulator()
    sanitizer = DeterminismSanitizer(sim)
    assert sim._taps == [sanitizer._record]
    sanitizer.detach()
    assert sim._taps == []


def test_context_manager_detaches():
    sim = Simulator()
    with DeterminismSanitizer(sim) as sanitizer:
        def worker(sim):
            yield sim.timeout(1.0)

        sim.process(worker(sim))
        sim.run()
    assert sim._taps == []
    assert sanitizer.event_count > 0


# -- acceptance: the full_drive scenario under the sanitizer -----------------


def _drive(rogue_delay=None):
    """A shortened examples/full_drive.py scenario with the sanitizer on."""
    scenario = DriveScenario(seed=7)
    scenario.add_service(make_adas_service(deadline_s=0.6), period_s=1.0)
    sanitizer = DeterminismSanitizer(scenario.sim)
    if rogue_delay is not None:
        def rogue(sim):
            yield sim.timeout(rogue_delay)

        scenario.sim.process(rogue(scenario.sim), name="rogue")
    scenario.run(duration_s=30.0)
    return sanitizer


def test_full_drive_same_seed_is_bit_identical():
    a = _drive()
    b = _drive()
    assert a.trace_hash == b.trace_hash
    assert a.diff(b) is None
    assert a.event_count == b.event_count > 0


def test_full_drive_injected_nondeterminism_is_pinpointed():
    a = _drive(rogue_delay=3.0)
    b = _drive(rogue_delay=3.5)  # simulates a wall-clock-dependent delay
    assert a.trace_hash != b.trace_hash
    divergence = a.diff(b)
    assert divergence is not None
    assert a.records[: divergence.index] == b.records[: divergence.index]
    # The first divergent event is the rogue timeout itself: nothing in
    # the drive differs before t=3.0, so the sanitizer localizes the
    # exact event whose timing changed.
    assert min(divergence.left.time, divergence.right.time) == 3.0

"""Direct tests for the unit vocabulary, dimension algebra, and checker."""

import ast
import textwrap

from repro.analysis import parse_name_unit, parse_unit_expr
from repro.analysis.units import (
    SUFFIX_UNITS,
    SignatureIndex,
    Unit,
    UnitChecker,
    summarize_module,
    unit_pragmas,
)


def _check(source, module="mod", extra=()):
    """Summarize + unit-check one in-memory module; returns findings."""
    source = textwrap.dedent(source)
    summaries = []
    for name, text in ((module, source),) + tuple(extra):
        text = textwrap.dedent(text)
        summaries.append(
            summarize_module(
                f"{name}.py", text, tree=ast.parse(text), module_name=name
            )
        )
    index = SignatureIndex(summaries)
    checker = UnitChecker(index)
    return checker.check_module(
        summaries[0], source, ast.parse(source)
    )


# ---------------------------------------------------------------- vocabulary


def test_suffix_vocabulary_parses_common_names():
    assert parse_name_unit("deadline_s").same_scale(SUFFIX_UNITS["s"])
    assert parse_name_unit("latency_ms").same_dimension(SUFFIX_UNITS["s"])
    assert not parse_name_unit("latency_ms").same_scale(SUFFIX_UNITS["s"])
    assert parse_name_unit("payload_bytes").same_scale(SUFFIX_UNITS["bytes"])
    assert parse_name_unit("draw_watts").same_scale(SUFFIX_UNITS["watts"])
    assert parse_name_unit("rate_mbps").same_dimension(SUFFIX_UNITS["bps"])


def test_gop_is_a_count_and_gops_is_a_rate():
    gop = parse_name_unit("work_gop")
    gops = parse_name_unit("speed_gops")
    assert gop.same_dimension(SUFFIX_UNITS["op"])
    assert gops.same_dimension(SUFFIX_UNITS["flops"])
    assert not gop.same_dimension(gops)


def test_compound_per_suffix():
    wh_per_km = parse_name_unit("consumption_wh_per_km")
    assert wh_per_km is not None
    energy_per_length = SUFFIX_UNITS["joules"].div(SUFFIX_UNITS["m"])
    assert wh_per_km.same_dimension(energy_per_length)


def test_unparseable_compound_does_not_match_its_tail():
    # kpa is not in the vocabulary; the trailing "s" of kpa_per_s must not
    # be read as "seconds".
    assert parse_name_unit("pressure_kpa_per_s") is None


def test_short_tokens_need_underscore_context():
    assert parse_name_unit("s") is None  # bare single letter: too ambiguous
    assert parse_name_unit("items") is None  # no unit token at a boundary
    assert parse_name_unit("mass") is None  # "s" inside a word is not a unit


# ------------------------------------------------------------------- algebra


def test_dimension_algebra_composes():
    joules = SUFFIX_UNITS["joules"]
    seconds = SUFFIX_UNITS["s"]
    watts = SUFFIX_UNITS["watts"]
    assert joules.div(seconds).same_dimension(watts)
    assert joules.div(seconds).same_scale(watts)
    assert watts.mul(seconds).same_dimension(joules)
    assert seconds.pow(2).div(seconds).same_dimension(seconds)


def test_unanchored_units_keep_dimension_but_forget_scale():
    ms = SUFFIX_UNITS["ms"]
    loose = ms.unanchored()
    assert loose.same_dimension(ms)
    assert loose.scale is None


def test_parse_unit_expr_slash_and_dimensionless():
    assert parse_unit_expr("bytes/s").same_dimension(
        SUFFIX_UNITS["bytes"].div(SUFFIX_UNITS["s"])
    )
    assert parse_unit_expr("1").dimensionless
    assert parse_unit_expr("dimensionless").dimensionless
    assert parse_unit_expr("furlongs") is None


def test_unit_pragmas_map_lines():
    pragmas = unit_pragmas("x = 1.0  # unit: s\ny = 2.0\nz = 3.0  # unit: mb\n")
    assert set(pragmas) == {1, 3}
    assert pragmas[1].same_scale(SUFFIX_UNITS["s"])
    assert pragmas[3].same_dimension(SUFFIX_UNITS["bytes"])


# ------------------------------------------------------------------- checker


def test_unit001_mixed_dimension_add():
    findings = _check(
        """
        def f(latency_s, payload_bytes):
            return latency_s + payload_bytes
        """
    )
    assert [f.rule for f in findings] == ["UNIT001"]


def test_unit001_scale_mix_within_dimension():
    findings = _check(
        """
        def f(net_ms, compute_s):
            return net_ms + compute_s
        """
    )
    assert [f.rule for f in findings] == ["UNIT001"]


def test_unit001_silent_on_matching_scales():
    findings = _check(
        """
        def f(up_s, down_s):
            return up_s + down_s
        """
    )
    assert findings == []


def test_unit001_compare_mixed_dimensions():
    findings = _check(
        """
        def f(deadline_s, budget_joules):
            return deadline_s > budget_joules
        """
    )
    assert [f.rule for f in findings] == ["UNIT001"]


def test_division_produces_a_rate_cleanly():
    findings = _check(
        """
        def f(energy_joules, window_s, draw_watts):
            power = energy_joules / window_s
            return power + draw_watts
        """
    )
    assert findings == []


def test_unit003_bare_nonzero_literal():
    findings = _check(
        """
        def f():
            timeout_s = 30.0
            return timeout_s
        """
    )
    assert [f.rule for f in findings] == ["UNIT003"]


def test_unit003_skips_zero_and_pragma_and_top_level():
    findings = _check(
        """
        DEFAULT_S = 30.0

        def f():
            a_s = 0.0
            b_s = 30.0  # unit: s
            return a_s + b_s
        """
    )
    assert findings == []


def test_unit003_pragma_with_wrong_dimension_still_fires():
    findings = _check(
        """
        def f():
            timeout_s = 30.0  # unit: bytes
            return timeout_s
        """
    )
    assert [f.rule for f in findings] == ["UNIT003"]


def test_unit002_cross_module_argument():
    findings = _check(
        """
        from lib import eta

        def f(window_s):
            return eta(window_s)
        """,
        extra=(
            (
                "lib",
                """
                def eta(payload_bytes):
                    return payload_bytes / 1e6
                """,
            ),
        ),
    )
    assert [f.rule for f in findings] == ["UNIT002"]
    assert "eta" in findings[0].message


def test_unit002_keyword_argument():
    findings = _check(
        """
        from lib import eta

        def f(window_s):
            return eta(payload_bytes=window_s)
        """,
        extra=(
            (
                "lib",
                """
                def eta(payload_bytes):
                    return payload_bytes / 1e6
                """,
            ),
        ),
    )
    assert [f.rule for f in findings] == ["UNIT002"]


def test_transparent_builtins_pass_units_through():
    findings = _check(
        """
        def f(a_s, b_s, payload_bytes):
            return max(a_s, b_s) + payload_bytes
        """
    )
    assert [f.rule for f in findings] == ["UNIT001"]


def test_summary_roundtrips_through_json_dict():
    source = textwrap.dedent(
        """
        class Link:
            def eta(self, payload_bytes: float) -> float:
                return payload_bytes

        def span_s(count):
            return count * 1.5
        """
    )
    summary = summarize_module(
        "link.py", source, tree=ast.parse(source), module_name="link"
    )
    from repro.analysis.units import ModuleSummary

    clone = ModuleSummary.from_dict(summary.to_dict())
    assert clone.to_dict() == summary.to_dict()

"""Pin the JSON reporter schema: CI consumers parse these exact keys."""

import json

from repro.analysis import Finding
from repro.analysis.reporter import render_json, render_text

FINDING = Finding(
    path="pkg/mod.py",
    line=7,
    col=4,
    rule="DET001",
    message="wall-clock read `time.time()`; take time from the sim clock",
    snippet="stamp = time.time()",
)


def test_json_payload_keys_are_pinned():
    payload = json.loads(
        render_json([FINDING], files_scanned=3, baselined=1, stale=2)
    )
    assert set(payload) == {
        "version",
        "files_scanned",
        "baselined",
        "stale_baseline",
        "findings",
    }
    assert payload["version"] == 1
    assert payload["files_scanned"] == 3
    assert payload["baselined"] == 1
    assert payload["stale_baseline"] == 2


def test_json_finding_keys_are_pinned():
    payload = json.loads(render_json([FINDING]))
    (entry,) = payload["findings"]
    assert set(entry) == {"path", "line", "col", "rule", "message", "snippet"}
    assert entry["path"] == "pkg/mod.py"
    assert entry["line"] == 7
    assert entry["rule"] == "DET001"


def test_json_debug_sections_are_additive():
    payload = json.loads(
        render_json(
            [],
            debug={"callgraph": {"edges": {}}, "taint": {"m.f": ["wall-clock"]}},
        )
    )
    # Debug dumps extend the payload; the pinned keys survive untouched.
    assert {"version", "findings", "callgraph", "taint"} <= set(payload)
    assert payload["taint"]["m.f"] == ["wall-clock"]


def test_text_reporter_summarizes_stale_fingerprints():
    out = render_text([FINDING], files_scanned=1, baselined=2, stale=3)
    assert "1 finding in 1 file" in out
    assert "2 baselined" in out
    assert "3 stale baseline fingerprints" in out

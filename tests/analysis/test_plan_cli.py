"""Planner CLI: flag guards, report shape, plan emission, cache warmth.

Runs ``--plan`` over the annotated fixture corpus (zero-latency seed and
the clean control) and over the real tree, asserting the JSON report is
byte-deterministic across cold and warm incremental-cache runs.
"""

import json
import os

import pytest

from repro.analysis import main

FIXTURES = os.path.join(os.path.dirname(__file__), "plan_fixtures")
CLEAN_DIR = os.path.join(FIXTURES, "fleet_clean")
ZERO_DIR = os.path.join(FIXTURES, "fleet002_zero_latency")


def run_cli(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


class TestGuards:
    @pytest.mark.parametrize(
        "flag", ["--plan-fleet", "--plan-out", "--dump-commgraph", "--dump-plan"]
    )
    def test_plan_flags_require_plan(self, flag, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n", encoding="utf-8")
        argv = [str(tmp_path), flag]
        if flag in ("--plan-fleet", "--plan-out"):
            argv.append("vehicles=4" if flag == "--plan-fleet" else "plan.json")
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2

    def test_fleet_rule_selection_requires_plan(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path), "--select", "FLEET001"])
        assert exc.value.code == 2

    def test_bad_fleet_spec_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main([CLEAN_DIR, "--plan", "--plan-fleet", "nope=1"])
        assert exc.value.code == 2

    def test_profile_accepted_with_plan(self, capsys, tmp_path):
        from repro.analysis.perf import write_synthetic_pstats

        profile = tmp_path / "run.pstats"
        write_synthetic_pstats(str(profile), {("loop.py", 1, "beacon_loop"): 1.0})
        code, _ = run_cli(
            [CLEAN_DIR, "--plan", "--strict", "--profile", str(profile)], capsys
        )
        assert code == 0


class TestListRules:
    def test_fleet_pack_listed(self, capsys):
        code, out = run_cli(["--list-rules"], capsys)
        assert code == 0
        assert "[fleet]" in out
        for rule_id in ("FLEET001", "FLEET002", "FLEET003"):
            assert rule_id in out


class TestPlanRuns:
    def test_clean_corpus_passes_strict_and_emits_plan(self, capsys, tmp_path):
        out_path = tmp_path / "plan.json"
        code, out = run_cli(
            [
                CLEAN_DIR,
                "--plan",
                "--strict",
                "--format",
                "json",
                "--plan-fleet",
                "vehicles=8,partitions=4,workload=skewed",
                "--plan-out",
                str(out_path),
                "--dump-plan",
                "--dump-commgraph",
            ],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["findings"] == []
        plan = payload["plan"]
        assert plan["vehicles"] == 8 and plan["partitions"] == 4
        assert plan["method"] == "greedy-lpt"
        comm = payload["commgraph"]
        assert comm["lookahead_s"] == 1.0
        # The emitted file is the same document as the embedded dump.
        assert json.loads(out_path.read_text(encoding="utf-8")) == plan

    def test_zero_latency_seed_fails_strict(self, capsys):
        code, out = run_cli(
            [ZERO_DIR, "--plan", "--strict", "--format", "json"], capsys
        )
        assert code == 1
        payload = json.loads(out)
        assert {f["rule"] for f in payload["findings"]} == {"FLEET002"}

    def test_select_narrows_fleet_findings(self, capsys):
        code, out = run_cli(
            [ZERO_DIR, "--plan", "--strict", "--select", "FLEET003",
             "--format", "json"], capsys
        )
        assert code == 0
        assert json.loads(out)["findings"] == []


class TestPlanCache:
    def test_warm_cache_output_is_byte_identical(self, capsys, tmp_path):
        argv = [
            CLEAN_DIR,
            "--plan",
            "--strict",
            "--format",
            "json",
            "--dump-plan",
            "--cache",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        cold_code, cold_out = run_cli(argv, capsys)
        warm_code, warm_out = run_cli(argv, capsys)
        assert cold_code == warm_code == 0
        assert cold_out == warm_out

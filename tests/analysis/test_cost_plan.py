"""Cost model and plan emission: role weights on the real tree, pstats
blending, greedy-LPT plan shape, and the fleet-spec parser.

The planner's promise is determinism: identical inputs must produce the
identical ``PartitionPlan`` document, and the plan must only ever
reassign vehicles -- never change what any vehicle computes.  These
tests pin the cost side of that promise; the hash-invariance side lives
in ``tests/property/test_plan_invariance.py``.
"""

import json
import os

import pytest

from repro.analysis import (
    ROLE_ROOTS,
    RoleWeights,
    build_graph,
    emit_plan,
    parse_fleet_spec,
    plan_for_config,
    vehicle_costs,
)
from repro.analysis.perf import load_profile, write_synthetic_pstats
from repro.fleet.config import FleetConfig, PartitionPlan

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


@pytest.fixture(scope="module")
def graph():
    return build_graph([SRC_REPRO])


class TestRoleWeights:
    def test_all_roles_rooted_on_real_tree(self, graph):
        weights = RoleWeights(graph)
        assert set(weights.roots) == set(ROLE_ROOTS)
        assert all(root is not None for root in weights.roots.values())

    def test_drive_anchors_normalization(self, graph):
        weights = RoleWeights(graph).weights
        assert weights["drive"] == 1.0
        for role in ("beacon", "receive", "service"):
            assert 0.0 < weights[role] < 1.0, (role, weights[role])

    def test_missing_root_weighs_zero(self, tmp_path):
        (tmp_path / "m.py").write_text("def f():\n    return 1\n", encoding="utf-8")
        weights = RoleWeights(build_graph([str(tmp_path)]))
        assert weights.roots["drive"] is None
        assert weights.weights["beacon"] == 0.0

    def test_hot_path_doubles_breadth(self, graph):
        class ColdIndex:
            hot = frozenset()

        hot_weights = RoleWeights(graph).weights
        cold_weights = RoleWeights(graph, hot=ColdIndex()).weights
        # Both normalize drive to 1.0, but the hot set overlaps the role
        # trees unevenly, so at least one ratio must move.
        assert hot_weights != cold_weights

    def test_pstats_profile_replaces_static_weights(self, graph, tmp_path):
        path = tmp_path / "run.pstats"
        # Measured: beacon half as expensive as a drive tick -- far above
        # its static ~0.12 weight.
        write_synthetic_pstats(
            str(path),
            {
                ("scenario.py", 1, "control_loop"): 2.0,
                ("runtime.py", 1, "_beacon_loop"): 1.0,
            },
        )
        weights = RoleWeights(graph, profile=load_profile(str(path)))
        assert weights.profiled == {"drive", "beacon"}
        assert weights.weights["drive"] == 1.0
        assert weights.weights["beacon"] == 0.5
        # Unprofiled roles keep their static weights.
        assert weights.weights["service"] == RoleWeights(graph).weights["service"]

    def test_profile_without_drive_sample_is_ignored(self, graph, tmp_path):
        path = tmp_path / "run.pstats"
        write_synthetic_pstats(str(path), {("runtime.py", 1, "_beacon_loop"): 9.0})
        weights = RoleWeights(graph, profile=load_profile(str(path)))
        assert weights.profiled == set()
        assert weights.weights == RoleWeights(graph).weights

    def test_debug_dict_sorted_and_json_safe(self, graph):
        debug = RoleWeights(graph).to_debug_dict()
        assert list(debug["roots"]) == sorted(debug["roots"])
        json.dumps(debug)


class TestVehicleCosts:
    def test_skewed_style_marks_heavy_vehicles(self, graph):
        weights = RoleWeights(graph)
        config = FleetConfig(vehicles=8, partitions=4, workload="skewed")
        costs = vehicle_costs(config, weights)
        assert len(costs) == 8
        heavy = {i for i, c in enumerate(costs) if c == max(costs)}
        assert heavy == {0, 4}

    def test_uniform_style_is_flat(self, graph):
        weights = RoleWeights(graph)
        config = FleetConfig(vehicles=6, partitions=2)
        costs = vehicle_costs(config, weights)
        assert len(set(costs)) == 1


class TestFleetSpec:
    def test_defaults_and_overrides(self):
        spec = parse_fleet_spec("vehicles=12,partitions=3,workload=skewed")
        assert spec["vehicles"] == 12
        assert spec["partitions"] == 3
        assert spec["workload"] == "skewed"
        assert spec["seed"] == 0
        assert spec["duration_s"] == 30.0

    def test_duration_alias(self):
        assert parse_fleet_spec("duration=5")["duration_s"] == 5.0

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="bad fleet spec item"):
            parse_fleet_spec("barrier=2.0")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError):
            parse_fleet_spec("vehicles")
        with pytest.raises(ValueError):
            parse_fleet_spec("vehicles=two")


class TestPlanEmission:
    def test_skewed_plan_isolates_heavy_vehicles(self, graph):
        config = FleetConfig(vehicles=8, partitions=4, workload="skewed")
        plan = plan_for_config(config, graph=graph)
        assert plan.method == "greedy-lpt"
        assert plan.shards == ((0,), (4,), (1, 3, 6), (2, 5, 7))
        assert plan.lookahead_s == 1.0
        assert plan.barrier_s == config.barrier_step_s

    def test_plan_round_trips_through_json(self, graph, tmp_path):
        config = FleetConfig(vehicles=8, partitions=4, workload="skewed")
        plan = plan_for_config(config, graph=graph)
        path = tmp_path / "plan.json"
        plan.save(str(path))
        loaded = PartitionPlan.load(str(path))
        assert loaded == plan
        # The on-disk form is canonical: sorted keys, trailing newline.
        text = path.read_text(encoding="utf-8")
        assert text == plan.dumps()
        assert text.endswith("\n")

    def test_emit_plan_spec_controls_shape(self, graph):
        plan = emit_plan(graph, fleet=parse_fleet_spec("vehicles=6,partitions=2"))
        assert plan.vehicles == 6
        assert plan.partitions == 2
        assert sorted(v for shard in plan.shards for v in shard) == list(range(6))

    def test_emission_is_deterministic(self, graph):
        config = FleetConfig(vehicles=8, partitions=4, workload="skewed")
        assert plan_for_config(config, graph=graph).dumps() == \
            plan_for_config(config, graph=graph).dumps()

    def test_shards_for_rejects_mismatched_config(self, graph):
        config = FleetConfig(vehicles=8, partitions=4, workload="skewed")
        plan = plan_for_config(config, graph=graph)
        with pytest.raises(ValueError):
            plan.shards_for(FleetConfig(vehicles=8, partitions=2, workload="skewed"))
        with pytest.raises(ValueError):
            plan.shards_for(FleetConfig(vehicles=8, partitions=4))

"""Profile-ingestion round-trip: pstats and bench profiles rank the same
findings identically, and the ranked JSON report is byte-deterministic.
"""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.analysis.cli import main
from repro.analysis.perf import load_profile, write_synthetic_pstats

HOT_SOURCE = '''\
class Simulator:
    def run(self, events):
        for event in events:
            helper(event)
        print("done", len(events))


def helper(event):
    label = "evt %d" % event
    return label
'''


@pytest.fixture()
def hot_file(tmp_path):
    path = tmp_path / "hot.py"
    path.write_text(HOT_SOURCE, encoding="utf-8")
    return path


@pytest.fixture()
def pstats_file(tmp_path):
    # helper (depth 1) measured cheaper than run (depth 0): the profile
    # ordering agrees with the depth fallback, so both profile kinds must
    # produce the identical ranked sequence.
    path = tmp_path / "run.pstats"
    write_synthetic_pstats(
        str(path),
        {
            ("hot.py", 2, "run"): 3.0,
            ("hot.py", 8, "helper"): 1.0,
        },
    )
    return path


@pytest.fixture()
def bench_file(tmp_path):
    path = tmp_path / "BENCH_fleet.json"
    path.write_text(
        json.dumps(
            {
                "name": "fleet_throughput",
                "columns": ["partitions", "events_per_s"],
                "rows": [{"partitions": 1, "events_per_s": 15000.0}],
            }
        ),
        encoding="utf-8",
    )
    return path


def run_cli(argv):
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = main(argv)
    return code, buf.getvalue()


def perf_args(hot_file, profile=None):
    argv = ["--perf", "--strict", "--format", "json", str(hot_file)]
    if profile is not None:
        argv += ["--profile", str(profile)]
    return argv


def test_pstats_and_bench_rank_identically(hot_file, pstats_file, bench_file):
    _, out_pstats = run_cli(perf_args(hot_file, pstats_file))
    _, out_bench = run_cli(perf_args(hot_file, bench_file))
    rank_pstats = json.loads(out_pstats)["perf_ranking"]
    rank_bench = json.loads(out_bench)["perf_ranking"]
    assert rank_pstats, "expected PERF findings in the synthetic hot module"
    sequence = lambda ranking: [  # noqa: E731
        (e["rank"], e["rule"], e["path"], e["line"]) for e in ranking
    ]
    assert sequence(rank_pstats) == sequence(rank_bench)
    # The pstats run scores by measured cumulative seconds...
    assert {e["source"] for e in rank_pstats} == {"profile"}
    assert [e["score"] for e in rank_pstats] == [3.0, 1.0]
    # ...while a bench profile has no per-function data: depth fallback.
    assert {e["source"] for e in rank_bench} == {"depth"}


def test_ranked_json_is_byte_identical_across_runs(hot_file, pstats_file):
    code_a, out_a = run_cli(perf_args(hot_file, pstats_file))
    code_b, out_b = run_cli(perf_args(hot_file, pstats_file))
    assert (code_a, out_a.encode()) == (code_b, out_b.encode())


def test_depth_fallback_without_profile(hot_file):
    _, out = run_cli(perf_args(hot_file))
    ranking = json.loads(out)["perf_ranking"]
    assert ranking
    assert {e["source"] for e in ranking} == {"depth"}
    # run is a hot root (depth 0), helper its callee (depth 1).
    assert [e["score"] for e in ranking] == [1.0, 0.5]


def test_load_profile_kinds(pstats_file, bench_file, tmp_path):
    assert load_profile(str(pstats_file)).kind == "pstats"
    bench = load_profile(str(bench_file))
    assert bench.kind == "bench"
    assert bench.context["events_per_s"] == 15000.0
    garbage = tmp_path / "garbage.bin"
    garbage.write_bytes(b"\x00\x01not a profile")
    with pytest.raises(ValueError):
        load_profile(str(garbage))
    not_bench = tmp_path / "plain.json"
    not_bench.write_text('{"hello": 1}', encoding="utf-8")
    with pytest.raises(ValueError):
        load_profile(str(not_bench))


def test_profile_requires_perf(hot_file, pstats_file, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([str(hot_file), "--profile", str(pstats_file)])
    assert excinfo.value.code == 2

"""The meta-test: the platform's own tree passes its own linter.

This is the acceptance gate the CI job re-checks: ``vdaplint src/repro``
must report **zero** non-baselined findings -- i.e. the determinism
contract is clean on every commit, with no grandfathered debt for code
written after the linter shipped.
"""

import os

import repro
from repro.analysis import lint_paths


def repro_source_root() -> str:
    return os.path.dirname(os.path.abspath(repro.__file__))


def test_vdaplint_reports_zero_violations_on_src_repro():
    findings = lint_paths([repro_source_root()])
    rendered = "\n".join(f"{f.location()}: {f.rule} {f.message}" for f in findings)
    assert not findings, f"vdaplint found violations in src/repro:\n{rendered}"


def test_src_repro_needs_no_baseline_entries():
    """The shipped tree is clean outright -- strict mode equals default mode."""
    repo_root = os.path.dirname(os.path.dirname(repro_source_root()))
    baseline_path = os.path.join(repo_root, ".vdaplint-baseline.json")
    assert not os.path.exists(baseline_path), (
        "src/repro should stay clean without grandfathered baseline entries"
    )

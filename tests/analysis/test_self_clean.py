"""The meta-test: the platform's own tree passes its own linter.

This is the acceptance gate the CI job re-checks: ``vdaplint src/repro``
must report **zero** non-baselined findings -- i.e. the determinism
contract is clean on every commit, with no grandfathered debt for code
written after the linter shipped.
"""

import os

import repro
from repro.analysis import (
    CommGraph,
    FleetPlanAnalyzer,
    IncrementalAnalyzer,
    MpAnalyzer,
    PerfAnalyzer,
    build_graph,
    lint_paths,
    semantic_rules_by_id,
)
from repro.analysis.engine import discover_files


def repro_source_root() -> str:
    return os.path.dirname(os.path.abspath(repro.__file__))


def test_vdaplint_reports_zero_violations_on_src_repro():
    findings = lint_paths([repro_source_root()])
    rendered = "\n".join(f"{f.location()}: {f.rule} {f.message}" for f in findings)
    assert not findings, f"vdaplint found violations in src/repro:\n{rendered}"


def test_semantic_tier_reports_zero_violations_on_src_repro():
    """UNIT/RES/PROTO must be clean too: every public API carries coherent
    unit suffixes and every sim grant is released on all paths."""
    files = discover_files([repro_source_root()])
    run = IncrementalAnalyzer([], semantic_rules_by_id(), cache_dir=None).run(files)
    rendered = "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in run.findings
    )
    assert not run.findings, (
        f"semantic analysis found violations in src/repro:\n{rendered}"
    )


def test_perf_tier_reports_zero_violations_on_src_repro():
    """PERF/MP must be clean too: every remaining hot-path formatting or
    allocation site is either fixed or carries a justified pragma."""
    graph = build_graph([repro_source_root()])
    findings = PerfAnalyzer().analyze_graph(graph)
    findings += MpAnalyzer().analyze_graph(graph)
    rendered = "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in findings
    )
    assert not findings, (
        f"perf analysis found violations in src/repro:\n{rendered}"
    )


def test_fleet_tier_reports_zero_violations_on_runtime_trees():
    """FLEET must be clean on every tree the fleet actually runs from:
    the library, the benchmarks, and the examples.  The barrier geometry
    is provably safe (lookahead 1.0s from the FleetConfig default) and no
    sim process reaches a barrier-only delivery entry point."""
    src_root = repro_source_root()
    repo_root = os.path.dirname(os.path.dirname(src_root))
    trees = [
        src_root,
        os.path.join(repo_root, "benchmarks"),
        os.path.join(repo_root, "examples"),
    ]
    graph = build_graph(trees)
    comm = CommGraph(graph)
    lookahead, reason = comm.lookahead()
    assert lookahead == 1.0, reason
    findings = FleetPlanAnalyzer(graph).analyze(comm)
    rendered = "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in findings
    )
    assert not findings, (
        f"fleet planner found violations in runtime trees:\n{rendered}"
    )


def test_src_repro_needs_no_baseline_entries():
    """The shipped tree is clean outright -- strict mode equals default mode."""
    repo_root = os.path.dirname(os.path.dirname(repro_source_root()))
    baseline_path = os.path.join(repo_root, ".vdaplint-baseline.json")
    assert not os.path.exists(baseline_path), (
        "src/repro should stay clean without grandfathered baseline entries"
    )

"""Communication-graph extraction: lookahead proofs on the real tree and
conservative constant resolution on synthetic modules.

The resolver tests pin the conservative contract: a parameter's static
value is the *minimum* over all resolvable call sites (plus its default),
and any unprovable flow (``**kwargs``, runtime expressions) poisons the
answer to unknown rather than guessing.
"""

import os

import pytest

from repro.analysis import CommGraph, ConstResolver, build_graph, is_latency_name

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def graph_for(tmp_path, sources: dict[str, str]):
    for name, body in sources.items():
        (tmp_path / name).write_text(body, encoding="utf-8")
    return build_graph([str(tmp_path)])


class TestLatencyNames:
    def test_accepts_time_dimensioned_spellings(self):
        # Backed by the unit-inference tier: any ``*_s`` name carries
        # a time dimension, including the barrier step itself.
        assert is_latency_name("latency_s")
        assert is_latency_name("v2v_latency_s")
        assert is_latency_name("barrier_s")

    def test_rejects_unitless_names(self):
        assert not is_latency_name("timeout")
        assert not is_latency_name("payload")


class TestConstResolver:
    def test_param_takes_min_over_call_sites_and_default(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "m.py": (
                    "def link(latency_s=5.0):\n"
                    "    return latency_s\n"
                    "def a():\n"
                    "    link(latency_s=2.0)\n"
                    "def b():\n"
                    "    link(3.0)\n"
                )
            },
        )
        resolver = ConstResolver(graph)
        func = graph.functions["m.link"]
        assert resolver.resolve_param(func, "latency_s") == 2.0

    def test_star_kwargs_call_site_poisons_param(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "m.py": (
                    "def link(latency_s=5.0):\n"
                    "    return latency_s\n"
                    "def a(opts):\n"
                    "    link(**opts)\n"
                )
            },
        )
        resolver = ConstResolver(graph)
        assert resolver.resolve_param(graph.functions["m.link"], "latency_s") is None

    def test_dynamic_config_marker_excludes_the_site(self, tmp_path):
        """A ``# vdaplint: dynamic-config`` site is dropped from the
        min-over-sites proof -- its values are validated elsewhere."""
        graph = graph_for(
            tmp_path,
            {
                "m.py": (
                    "def link(latency_s=5.0):\n"
                    "    return latency_s\n"
                    "def a():\n"
                    "    link(latency_s=2.0)\n"
                    "def compile_doc(opts):\n"
                    "    link(**opts)  # vdaplint: dynamic-config\n"
                )
            },
        )
        resolver = ConstResolver(graph)
        assert resolver.resolve_param(graph.functions["m.link"], "latency_s") == 2.0

    def test_runtime_expression_poisons_param(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "m.py": (
                    "import os\n"
                    "def link(latency_s=5.0):\n"
                    "    return latency_s\n"
                    "def a():\n"
                    "    link(latency_s=float(os.environ['L']))\n"
                )
            },
        )
        resolver = ConstResolver(graph)
        assert resolver.resolve_param(graph.functions["m.link"], "latency_s") is None

    def test_self_attr_resolves_from_ctor_assignment(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "m.py": (
                    "class Bus:\n"
                    "    def __init__(self):\n"
                    "        self.latency_s = 1.5\n"
                )
            },
        )
        resolver = ConstResolver(graph)
        assert resolver.resolve_class_attr("m.Bus", "latency_s") == 1.5

    def test_conflicting_attr_owners_stay_unknown(self, tmp_path):
        # Two classes define the same attr with different values: an
        # unqualified attr read must not pick one arbitrarily.
        graph = graph_for(
            tmp_path,
            {
                "m.py": (
                    "class A:\n"
                    "    def __init__(self):\n"
                    "        self.latency_s = 1.0\n"
                    "class B:\n"
                    "    def __init__(self):\n"
                    "        self.latency_s = 2.0\n"
                )
            },
        )
        resolver = ConstResolver(graph)
        assert resolver.resolve_class_attr("m.A", "latency_s") == 1.0
        assert resolver.resolve_class_attr("m.B", "latency_s") == 2.0


class TestCommGraphSynthetic:
    BUS = (
        "class V2VBus:\n"
        "    def __init__(self, latency_s=1.0):\n"
        "        self.latency_s = latency_s\n"
        "    def send(self, dst, payload):\n"
        "        return (dst, payload, self.latency_s)\n"
        "    def deliver(self, batch):\n"
        "        return batch\n"
    )

    def test_lookahead_is_min_edge_latency(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "bus.py": self.BUS,
                "loop.py": (
                    "import sim\n"
                    "from bus import V2VBus\n"
                    "def fast(simulator):\n"
                    "    bus = V2VBus(latency_s=0.25)\n"
                    "    while True:\n"
                    "        bus.send(1, 'x')\n"
                    "        yield simulator.timeout(1.0)\n"
                    "def slow(simulator):\n"
                    "    bus = V2VBus(latency_s=4.0)\n"
                    "    while True:\n"
                    "        bus.send(2, 'y')\n"
                    "        yield simulator.timeout(1.0)\n"
                    "def main():\n"
                    "    simulator = sim.Simulator()\n"
                    "    simulator.process(fast(simulator))\n"
                    "    simulator.process(slow(simulator))\n"
                ),
            },
        )
        comm = CommGraph(graph)
        value, reason = comm.lookahead()
        assert value == 0.25
        assert "2 send edge(s)" in reason

    def test_non_process_code_contributes_no_edges(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "bus.py": self.BUS,
                "tool.py": (
                    "from bus import V2VBus\n"
                    "def offline():\n"
                    "    bus = V2VBus(latency_s=0.0)\n"
                    "    bus.send(1, 'x')\n"
                ),
            },
        )
        comm = CommGraph(graph)
        assert comm.send_edges() == []
        value, reason = comm.lookahead()
        assert value is None
        assert "no cross-partition send edges" in reason

    def test_debug_dict_is_stable_and_sorted(self, tmp_path):
        sources = {
            "bus.py": self.BUS,
            "loop.py": (
                "import sim\n"
                "from bus import V2VBus\n"
                "def loop(simulator):\n"
                "    bus = V2VBus(latency_s=2.0)\n"
                "    while True:\n"
                "        bus.send(1, 'x')\n"
                "        yield simulator.timeout(1.0)\n"
                "def main():\n"
                "    simulator = sim.Simulator()\n"
                "    simulator.process(loop(simulator))\n"
            ),
        }
        first = CommGraph(graph_for(tmp_path, sources)).to_debug_dict()
        second = CommGraph(graph_for(tmp_path, sources)).to_debug_dict()
        assert first == second
        assert first["lookahead_s"] == 2.0
        edges = first["edges"]
        assert edges == sorted(edges, key=lambda e: (e["site"], e["root"], e["sink"]))


class TestCommGraphRealTree:
    @pytest.fixture(scope="class")
    def comm(self):
        return CommGraph(build_graph([SRC_REPRO]))

    def test_lookahead_proved_from_fleet_config_default(self, comm):
        value, reason = comm.lookahead()
        assert value == 1.0
        assert "min link latency" in reason

    def test_send_edges_are_latency_bounded(self, comm):
        edges = comm.send_edges()
        assert edges
        assert all(e.latency_s and e.latency_s > 0 for e in edges)

    def test_barrier_only_sinks_not_reached_from_processes(self, comm):
        bypasses = [e for e in comm.edges if e.barrier_only]
        assert bypasses == []

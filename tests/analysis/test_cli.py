"""CLI behaviour: exit codes, formats, baseline workflow, rule selection."""

import json
import os

import pytest

from repro.analysis import main

CLEAN = '"""A clean module."""\n\n__all__ = ["f"]\n\n\ndef f():\n    """Do nothing."""\n    return 0\n'
DIRTY = (
    '"""A module with two violations."""\n\n'
    "import time\n\n"
    '__all__ = ["f"]\n\n\n'
    "def f():\n"
    '    """Read the wall clock."""\n'
    "    return time.time()\n"
)


@pytest.fixture
def tree(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "clean.py").write_text(CLEAN)
    (tmp_path / "dirty.py").write_text(DIRTY)
    return tmp_path


def test_exit_zero_on_clean_file(tree, capsys):
    assert main(["clean.py"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_exit_one_with_findings(tree, capsys):
    assert main(["dirty.py"]) == 1
    out = capsys.readouterr().out
    assert "dirty.py:10" in out and "DET001" in out


def test_json_format_is_parseable(tree, capsys):
    assert main(["dirty.py", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["DET001"]
    assert payload["findings"][0]["line"] == 10


def test_unknown_rule_id_is_usage_error(tree):
    with pytest.raises(SystemExit) as exc:
        main(["clean.py", "--select", "NOPE999"])
    assert exc.value.code == 2


def test_missing_path_is_usage_error(tree):
    with pytest.raises(SystemExit) as exc:
        main(["does/not/exist"])
    assert exc.value.code == 2


def test_select_and_ignore_filter_rules(tree, capsys):
    assert main(["dirty.py", "--select", "RES001"]) == 0
    capsys.readouterr()
    assert main(["dirty.py", "--ignore", "DET001,SIM001"]) == 0


def test_baseline_workflow_grandfathers_then_strict_overrides(tree, capsys):
    assert main(["dirty.py", "--write-baseline"]) == 0
    assert os.path.exists(".vdaplint-baseline.json")
    capsys.readouterr()

    # Grandfathered finding no longer fails the run...
    assert main(["dirty.py"]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # ...but --strict ignores the baseline entirely.
    assert main(["dirty.py", "--strict"]) == 1


def test_new_violation_not_masked_by_baseline(tree, capsys):
    assert main(["dirty.py", "--write-baseline"]) == 0
    (tree / "dirty.py").write_text(DIRTY + "\n\nextra = time.monotonic()\n")
    capsys.readouterr()
    assert main(["dirty.py"]) == 1
    out = capsys.readouterr().out
    assert "monotonic" in out and "1 baselined" in out


def test_list_rules_names_the_whole_pack(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003", "DET004",
                    "SIM001", "FLT001", "RES001", "API001"):
        assert rule_id in out


def test_syntax_error_exits_one(tree, capsys):
    (tree / "broken.py").write_text("def broken(:\n")
    assert main(["broken.py"]) == 1
    assert "E999" in capsys.readouterr().out


def test_parallel_jobs_output_matches_serial(tree, capsys):
    (tree / "dirty2.py").write_text(DIRTY.replace("time.time", "time.monotonic"))
    serial_code = main(["."])
    serial_out = capsys.readouterr().out
    parallel_code = main([".", "--jobs", "2"])
    parallel_out = capsys.readouterr().out
    assert serial_code == parallel_code == 1
    assert serial_out == parallel_out


def test_jobs_zero_means_cpu_count(tree, capsys):
    assert main(["dirty.py", "--jobs", "0"]) == 1
    assert "DET001" in capsys.readouterr().out


def test_dump_flags_require_whole_program(tree):
    for flag in ("--dump-callgraph", "--dump-taint"):
        with pytest.raises(SystemExit) as exc:
            main(["clean.py", flag])
        assert exc.value.code == 2


def test_flow_rule_selection_requires_whole_program(tree):
    with pytest.raises(SystemExit) as exc:
        main(["clean.py", "--select", "DET101"])
    assert exc.value.code == 2


def test_list_rules_tags_whole_program_pack(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET101", "SIM101", "RACE001"):
        assert rule_id in out
    assert "[whole-program]" in out


def test_whole_program_cli_flags_fixture_corpus(capsys):
    corpus = os.path.join(
        os.path.dirname(__file__), "wp_fixtures", "det101_clock_helper"
    )
    assert main([corpus, "--whole-program", "--select", "DET101",
                 "--strict", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in payload["findings"]} == {"DET101"}


def test_whole_program_debug_dumps_land_in_json(tree, capsys):
    assert main(["dirty.py", "--whole-program", "--format", "json",
                 "--dump-callgraph", "--dump-taint", "--strict"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert "callgraph" in payload and "taint" in payload
    assert "dirty.f" in payload["callgraph"]["functions"]
    assert "wall-clock" in payload["taint"].get("dirty.f", [])

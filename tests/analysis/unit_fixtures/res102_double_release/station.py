"""Seeded bugs: releasing a grant twice, and releasing before it is held.

A double release corrupts ``sim.resources`` accounting: the second call
hands the slot to a queued waiter while the capacity counter still
believes it is free, so two processes end up inside a capacity-1
section.  Releasing before the grant was ever yielded is the same bug
one step earlier — the process never actually held the slot.
"""

from repro.sim.core import Simulator
from repro.sim.resources import Resource


def cycle(sim: Simulator, charger: Resource, dwell_s: float):
    grant = charger.request()
    try:
        yield grant
        yield sim.timeout(dwell_s)
    finally:
        charger.release(grant)
    charger.release(grant)  # expect-res: RES102


def impatient(sim: Simulator, charger: Resource):
    grant = charger.request()
    charger.release(grant)  # expect-res: RES102
    yield grant

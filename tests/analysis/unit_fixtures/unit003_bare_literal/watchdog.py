"""Consumer of the tuned deadline (clean): the constant crosses modules."""

from tuning import pick_deadline


def arm(load: float) -> float:
    timeout_s = pick_deadline(load)
    return timeout_s

"""Seeded bug: a unit-suffixed local born from a bare magic number.

Is 250.0 seconds or milliseconds?  Nothing in the source says; UNIT003
demands either a ``# unit:`` pragma or a computed value.  The consumer
module (``watchdog.py``) shows why it matters: the constant crosses a
module boundary before anything interprets it.
"""


def pick_deadline(load: float) -> float:
    deadline_s = 250.0  # expect-unit: UNIT003
    if load > 0.5:
        deadline_s = deadline_s * 2.0
    return deadline_s


def pick_deadline_ok(load: float) -> float:
    deadline_s = 0.25  # unit: s
    if load > 0.5:
        deadline_s = deadline_s * 2.0
    return deadline_s

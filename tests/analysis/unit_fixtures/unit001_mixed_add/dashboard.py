"""Seeded bug: adds a duration to a byte count across modules.

``capture_latency_s`` and ``frame_bytes`` live in another module; only
their *names* carry the units, so no single-file rule can see the clash.
"""

from sensors import capture_latency_s, frame_bytes


def refresh_budget(fps: float, width: float, height: float) -> float:
    latency = capture_latency_s(fps)
    payload = frame_bytes(width, height)
    return latency + payload  # expect-unit: UNIT001


def total_latency_ms(net_ms: float, compute_s: float) -> float:
    return net_ms + compute_s  # expect-unit: UNIT001

"""Helper module: unit-bearing return values (clean)."""


def frame_bytes(width: float, height: float) -> float:
    """Payload size of one RGB frame."""
    return width * height * 3.0


def capture_latency_s(fps: float) -> float:
    """Seconds between captures at ``fps``."""
    return 1.0 / fps

"""Seeded bugs: sim processes yielding values the kernel cannot wait on.

Yielding a float (or nothing) from a process generator is a silent
no-op wait in some kernels and a crash in others; either way the
author meant ``yield sim.timeout(...)``.
"""

from repro.sim.core import Simulator


def sampler(sim: Simulator, period_s: float):
    while sim.now < 10.0:
        yield sim.timeout(period_s)
        yield period_s * 2.0  # expect-res: PROTO001


def beacon(sim: Simulator):
    yield sim.timeout(1.0)
    yield  # expect-res: PROTO001

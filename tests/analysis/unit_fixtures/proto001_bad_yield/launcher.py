"""Registers the telemetry processes (clean)."""

from repro.sim.core import Simulator

from telemetry import beacon, sampler


def boot(sim: Simulator, period_s: float) -> None:
    sim.process(sampler(sim, period_s))
    sim.process(beacon(sim))

"""Helper module: a transfer-time API with unit-suffixed parameters."""


def transmit(payload_bytes: float, rate_mbps: float) -> float:
    """Seconds to push ``payload_bytes`` through a ``rate_mbps`` link."""
    return payload_bytes / (rate_mbps * 125_000.0)

"""Seeded bug: passes a duration where the callee wants a byte count.

The parameter's unit is declared in ``radio.py``; catching the swap
requires resolving the call through the project signature index.
"""

from radio import transmit


def schedule(chunk_bytes: float, window_s: float) -> float:
    return transmit(window_s, 40.0)  # expect-unit: UNIT002

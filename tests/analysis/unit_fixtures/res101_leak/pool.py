"""Helper module: builds the shared accelerator pool (clean)."""

from repro.sim.core import Simulator
from repro.sim.resources import Resource


def make_pool(sim: Simulator, slots: int) -> Resource:
    return Resource(sim, capacity=slots)

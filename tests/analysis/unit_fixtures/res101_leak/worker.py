"""Seeded bug: a grant taken but never released on any path.

If ``run`` is interrupted (or simply finishes), the accelerator slot is
gone for the rest of the simulation — every later requester queues
forever behind a phantom holder.
"""

from repro.sim.core import Simulator
from repro.sim.resources import Resource


def run(sim: Simulator, pool: Resource, service_s: float):
    grant = pool.request()  # expect-res: RES101
    yield grant
    yield sim.timeout(service_s)

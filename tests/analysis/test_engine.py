"""Engine mechanics: pragmas, qualname resolution, fingerprints, E999."""

import ast

from repro.analysis import (
    Finding,
    LintEngine,
    Rule,
    fingerprint_findings,
    lint_source,
)
from repro.analysis.engine import FileContext, PARSE_ERROR_RULE


class _EveryCall(Rule):
    """Test rule: reports every call site (exercises dispatch + pragmas)."""

    id = "TST001"
    name = "every-call"
    description = "flags every call"

    def visit_Call(self, node, ctx):
        ctx.report(self, node, "a call")


def test_single_pass_dispatch_reaches_nested_nodes():
    source = "def f():\n    g()\n    return [h() for _ in range(2)]\n"
    findings = lint_source(source, rules=[_EveryCall()])
    assert [f.line for f in findings] == [2, 3, 3]
    assert all(f.rule == "TST001" for f in findings)


def test_line_pragma_suppresses_only_named_rule():
    source = "f()  # vdaplint: disable=TST001\ng()  # vdaplint: disable=OTHER\n"
    findings = lint_source(source, rules=[_EveryCall()])
    assert [(f.line, f.rule) for f in findings] == [(2, "TST001")]


def test_disable_all_pragma():
    source = "f()  # vdaplint: disable=all\n"
    assert lint_source(source, rules=[_EveryCall()]) == []


def test_file_pragma_suppresses_everywhere():
    source = "# vdaplint: disable-file=TST001\nf()\ng()\n"
    assert lint_source(source, rules=[_EveryCall()]) == []


def test_syntax_error_becomes_e999_finding():
    findings = lint_source("def broken(:\n", rules=[_EveryCall()])
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_RULE


def test_qualname_resolves_aliases_and_from_imports():
    tree = ast.parse(
        "import numpy as np\nfrom time import monotonic as mono\n"
        "np.random.seed(0)\nmono()\n"
    )
    ctx = FileContext("x.py", "", tree)
    calls = [n for n in ast.walk(tree) if isinstance(n, ast.Call)]
    assert sorted(filter(None, (ctx.qualname(c.func) for c in calls))) == [
        "numpy.random.seed",
        "time.monotonic",
    ]


def test_subsystem_detection():
    tree = ast.parse("pass")
    assert FileContext("src/repro/edgeos/elastic.py", "", tree).subsystem == "edgeos"
    assert FileContext("src/repro/scenario.py", "", tree).subsystem is None
    assert FileContext("standalone.py", "", tree).subsystem is None


def test_in_generator_tracks_innermost_function():
    seen = {}

    class Probe(Rule):
        id = "TST002"
        name = "probe"
        description = "records generator context per call"

        def visit_Call(self, node, ctx):
            seen[node.func.id] = ctx.in_generator()

    source = (
        "def gen():\n"
        "    inside()\n"
        "    yield 1\n"
        "def plain():\n"
        "    outside()\n"
        "def outer():\n"
        "    def nested_gen():\n"
        "        deep()\n"
        "        yield 2\n"
        "    shallow()\n"
    )
    LintEngine([Probe()]).lint_source(source)
    assert seen == {
        "inside": True,
        "outside": False,
        "deep": True,
        "shallow": False,
    }


def test_findings_sort_stably():
    a = Finding("b.py", 1, 0, "R1", "m")
    b = Finding("a.py", 9, 0, "R1", "m")
    c = Finding("a.py", 2, 4, "R2", "m")
    assert sorted([a, b, c]) == [c, b, a]


def test_fingerprints_are_stable_under_line_moves():
    original = Finding("m.py", 10, 0, "DET001", "msg", snippet="x = time.time()")
    moved = Finding("m.py", 50, 0, "DET001", "msg", snippet="x = time.time()")
    assert fingerprint_findings([original]) == fingerprint_findings([moved])


def test_fingerprints_distinguish_duplicate_lines():
    twin = Finding("m.py", 10, 0, "DET001", "msg", snippet="x = time.time()")
    other = Finding("m.py", 20, 0, "DET001", "msg", snippet="x = time.time()")
    prints = fingerprint_findings([twin, other])
    assert len(set(prints)) == 2

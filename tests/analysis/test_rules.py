"""Rule-level unit tests: scoping, edge cases, and non-findings."""

from repro.analysis import lint_source
from repro.analysis.rules import UnorderedIterationRule, rules_by_id


def rules_of(finding_list):
    return [f.rule for f in finding_list]


def lint_with(rule_id, source, path="<string>"):
    return lint_source(source, path=path, rules=[rules_by_id()[rule_id]])


# -- DET001 ----------------------------------------------------------------


def test_det001_ignores_sim_clock_and_locals():
    source = "def f(sim, time):\n    return sim.now + time.time\n"
    assert lint_with("DET001", source) == []


def test_det001_import_alias():
    source = "import time as t\nx = t.perf_counter()\n"
    assert rules_of(lint_with("DET001", source)) == ["DET001"]


# -- DET002 ----------------------------------------------------------------


def test_det002_allows_instance_rngs():
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng(3)\n"
        "x = rng.random()\n"
        "g = np.random.Generator(np.random.PCG64(1))\n"
    )
    assert lint_with("DET002", source) == []


def test_det002_flags_aliased_numpy_random_module():
    source = "from numpy import random as npr\nnpr.shuffle([1, 2])\n"
    assert rules_of(lint_with("DET002", source)) == ["DET002"]


# -- DET003 ----------------------------------------------------------------


def test_det003_scoped_to_scheduling_subsystems():
    source = "for x in set(items):\n    use(x)\n"
    in_scope = lint_with("DET003", source, path="src/repro/offload/executor.py")
    out_of_scope = lint_with("DET003", source, path="src/repro/nn/train.py")
    assert rules_of(in_scope) == ["DET003"]
    assert out_of_scope == []


def test_det003_standalone_files_are_in_scope():
    assert UnorderedIterationRule.SCOPE == {"sim", "offload", "edgeos", "faults"}
    findings = lint_with("DET003", "for x in {1, 2}:\n    pass\n")
    assert rules_of(findings) == ["DET003"]


def test_det003_tracks_self_attributes():
    source = (
        "class Sched:\n"
        "    def __init__(self):\n"
        "        self.ready = set()\n"
        "    def drain(self):\n"
        "        return [t for t in self.ready]\n"
    )
    findings = lint_with("DET003", source, path="src/repro/sim/sched.py")
    assert rules_of(findings) == ["DET003"]


def test_det003_membership_tests_are_fine():
    source = "seen = set()\nif key in seen:\n    pass\n"
    assert lint_with("DET003", source, path="src/repro/sim/x.py") == []


# -- DET004 ----------------------------------------------------------------


def test_det004_sorted_wrapping_accepted_at_any_depth():
    source = (
        "import os\n"
        "a = sorted(os.listdir('.'))\n"
        "b = sorted(n for n in os.listdir('.') if n)\n"
    )
    assert lint_with("DET004", source) == []


def test_det004_sort_on_next_line_still_flagged():
    source = "import os\nnames = os.listdir('.')\nnames.sort()\n"
    assert rules_of(lint_with("DET004", source)) == ["DET004"]


# -- SIM001 ----------------------------------------------------------------


def test_sim001_blocking_only_inside_generators():
    source = (
        "import subprocess\n"
        "def tool():\n"
        "    subprocess.run(['x'])\n"
        "def proc(sim):\n"
        "    subprocess.run(['x'])\n"
        "    yield sim.timeout(1)\n"
    )
    findings = lint_with("SIM001", source)
    assert [(f.line, f.rule) for f in findings] == [(5, "SIM001")]


# -- FLT001 ----------------------------------------------------------------


def test_flt001_ignores_non_timestamp_equality():
    source = "def f(a, b):\n    return a == b and a.kind == b.kind\n"
    assert lint_with("FLT001", source) == []


def test_flt001_chained_comparison():
    source = "def f(sim, t0, t1):\n    return t0 <= sim.now == t1\n"
    assert rules_of(lint_with("FLT001", source)) == ["FLT001"]


# -- RES001 ----------------------------------------------------------------


def test_res001_bound_and_used_exception_passes():
    source = (
        "def f(action, out):\n"
        "    try:\n"
        "        action()\n"
        "    except Exception as err:\n"
        "        out.append(err)\n"
    )
    assert lint_with("RES001", source) == []


def test_res001_bound_but_unused_exception_flagged():
    source = (
        "def f(action):\n"
        "    try:\n"
        "        action()\n"
        "    except Exception as err:\n"
        "        pass\n"
    )
    assert rules_of(lint_with("RES001", source)) == ["RES001"]


# -- API001 ----------------------------------------------------------------


def test_api001_private_and_main_modules_exempt():
    source = "def f():\n    pass\n"
    assert lint_with("API001", source, path="pkg/__main__.py") == []
    assert lint_with("API001", source, path="pkg/_private.py") == []
    assert rules_of(lint_with("API001", source, path="pkg/public.py")) == ["API001"]


def test_api001_conditional_definitions_count():
    source = (
        "__all__ = ['fast', 'slow']\n"
        "try:\n"
        "    import accel\n"
        "    fast = accel.fast\n"
        "except ImportError:\n"
        "    fast = None\n"
        "if True:\n"
        "    slow = 1\n"
    )
    assert lint_with("API001", source, path="pkg/mod.py") == []


def test_api001_computed_all_is_skipped():
    source = "import sys\n__all__ = sorted(dir(sys))\n"
    assert lint_with("API001", source, path="pkg/mod.py") == []


def test_api001_star_import_disables_ghost_check():
    source = "from os.path import *\n__all__ = ['join', 'made_up']\n"
    assert lint_with("API001", source, path="pkg/mod.py") == []

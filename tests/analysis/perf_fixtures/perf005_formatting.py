"""PERF005: unconditional formatting/logging on a hot path vs quiet path."""

import logging

logger = logging.getLogger("fixture")


class Simulator:
    def run(self, events):
        count = 0
        for event in events:
            logger.debug(f"event {event}")  # expect-perf: PERF005
            count += 1
        return count

    def step(self, event):
        label = "evt %d" % event  # expect-perf: PERF005
        return label


class FixedSimulator:
    def __init__(self, obs):
        self.obs = obs

    def run(self, events):
        # Idiomatic fix: the hot path only counts; formatting and logging
        # happen once, off the per-event path.
        count = 0
        for event in events:
            count += 1
        return count

    def step(self, event):
        # Guard idiom: formatting behind an ``if <flag>.enabled:`` check
        # is exactly the fix PERF005 recommends -- it must stay silent.
        if self.obs.enabled:
            self.obs.count("events", label=f"evt-{event}")
        if event < 0:
            # Diagnostic idiom: exception constructors format error-path
            # text even when handed to a deferred failure channel rather
            # than raised inline.
            failure = ValueError(f"negative event {event}")
            return failure
        return event_key(event)

    def summarize(self, count):
        # Not sim-hot: called from reporting code after the run.
        logger.info("processed %d events", count)


def event_key(event):
    """Pure formatter: the f-string *is* the product; precomputation
    belongs at the call sites, so PERF005 stays silent here."""
    return f"evt:{event}"

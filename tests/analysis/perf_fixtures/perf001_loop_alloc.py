"""PERF001: allocation inside a per-event loop vs hoisted/fused variant.

``Simulator.run``/``Simulator.step`` match the sim-hot root suffixes, so
both the seeded-bug class and the ``FixedSimulator`` idiomatic-fix class
are classified hot; only the bug lines may fire.
"""


class Helper:
    def __init__(self, seq):
        self.seq = seq


class Simulator:
    def run(self, events):
        total = 0
        for event in events:
            box = {"seq": event, "cost": event * 2}  # expect-perf: PERF001
            total += box["cost"]
        return total

    def step(self, events):
        handles = []
        for event in events:
            handles.append(Helper(event))  # expect-perf: PERF001
        return handles


class FixedSimulator:
    def run(self, events):
        # Idiomatic fix: fold the work into the loop without per-event
        # container churn.
        total = 0
        for event in events:
            total += event + event
        return total

    def step(self, events, pool):
        # Idiomatic fix: reuse pooled helpers instead of constructing one
        # per event.
        for event in events:
            pool.recycle(event)
        return pool

"""MP003 idiomatic fix: every sent message handled, every handled one built."""


class Ping:
    def __init__(self, seq):
        self.seq = seq


class Pong:
    def __init__(self, seq):
        self.seq = seq


class Endpoint:
    def __init__(self, conn):
        self.conn = conn

    def send(self, message):
        self.conn.send(message)

    def recv(self):
        return self.conn.recv()


def serve(endpoint: Endpoint):
    while True:
        message = endpoint.recv()
        if isinstance(message, Ping):
            endpoint.send(Pong(message.seq))
            return


def client(endpoint: Endpoint, seq):
    endpoint.send(Ping(seq))
    reply = endpoint.recv()
    if isinstance(reply, Pong):
        return reply.seq
    return None

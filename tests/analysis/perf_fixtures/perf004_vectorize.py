"""PERF004: per-item numeric python loop vs batched array-style variant."""

import math
import random


class Simulator:
    def run(self, samples):
        rng = random.Random(7)
        out = []
        for sample in samples:  # expect-perf: PERF004
            out.append(math.exp(sample) * rng.random())
        return out


class FixedSimulator:
    def run(self, samples):
        # Idiomatic fix: draw the whole batch up front and combine with a
        # comprehension -- one array-shaped operation, no per-item loop.
        rng = random.Random(7)
        draws = [rng.random() for _ in samples]
        return [math.exp(s) * d for s, d in zip(samples, draws)]

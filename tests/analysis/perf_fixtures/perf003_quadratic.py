"""PERF003: quadratic patterns in hot loops vs linear equivalents."""

from collections import deque


class Simulator:
    def run(self, events):
        log = ""
        recent = []
        banned = [3, 5, 7]
        for event in events:
            recent.insert(0, event)  # expect-perf: PERF003
            if event in banned:  # expect-perf: PERF003
                continue
            log += "x"  # expect-perf: PERF003
        return log, recent


class FixedSimulator:
    def run(self, events):
        # Idiomatic fix: deque for front-insertion, set membership,
        # join-once string building.
        parts = []
        recent = deque()
        banned = {3, 5, 7}
        for event in events:
            recent.appendleft(event)
            if event in banned:
                continue
            parts.append("x")
        return "".join(parts), recent

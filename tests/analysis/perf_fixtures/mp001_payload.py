"""MP001: unpicklable spawn payloads vs a plain-data spec."""

import multiprocessing as mp
from typing import Callable


class JobSpec:
    partition: int
    callback: Callable  # expect-mp: MP001


class HandleSpec:
    def __init__(self, path):
        self.path = path
        self.sink = open(path, "w")  # expect-mp: MP001


def worker_main(conn, spec):
    conn.close()


def launch(spec: JobSpec):
    ctx = mp.get_context("spawn")
    parent, child = ctx.Pipe()
    process = ctx.Process(target=worker_main, args=(child, spec))
    return parent, process


def launch_handle(spec: HandleSpec, conn):
    ctx = mp.get_context("spawn")
    return ctx.Process(target=worker_main, args=(conn, spec))


def launch_lambda(conn):
    ctx = mp.get_context("spawn")
    return ctx.Process(target=worker_main, args=(conn, lambda x: x + 1))  # expect-mp: MP001


class CleanSpec:
    partition: int
    seed: int


def launch_clean(spec: CleanSpec, conn):
    ctx = mp.get_context("spawn")
    return ctx.Process(target=worker_main, args=(conn, spec))

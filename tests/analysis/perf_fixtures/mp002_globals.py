"""MP002: fork-crossing module-global writes by workers vs pipe results."""

import multiprocessing as mp

RESULTS = {}
TOTAL = 0


def worker_main(partition):
    RESULTS[partition] = partition * 2  # expect-mp: MP002


def worker_tally(values):
    global TOTAL
    for value in values:
        TOTAL = TOTAL + value  # expect-mp: MP002


def worker_clean(conn, partition):
    # Idiomatic fix: results travel back over the pipe, not through
    # module state.
    conn.send(partition * 2)


def launch():
    procs = [
        mp.Process(target=worker_main, args=(0,)),
        mp.Process(target=worker_tally, args=([1, 2],)),
    ]
    return procs


def launch_clean(conn):
    return mp.Process(target=worker_clean, args=(conn, 3))

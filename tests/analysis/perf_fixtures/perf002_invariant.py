"""PERF002: loop-invariant attribute chains and len() vs hoisted variant."""


class Simulator:
    def run(self, frames, samples):
        total = 0.0
        for frame in frames:
            rate = self.config.link.rate_mbps  # expect-perf: PERF002
            ceiling = self.config.link.rate_mbps * 2
            total += frame * rate + ceiling
        mid = 0
        for frame in frames:
            mid += len(samples) // 2  # expect-perf: PERF002
            mid -= len(samples) % 3
        return total + mid


class FixedSimulator:
    def run(self, frames, samples):
        # Idiomatic fix: load invariants once, outside the loop.
        rate = self.config.link.rate_mbps
        ceiling = rate * 2
        count = len(samples)
        total = 0.0
        for frame in frames:
            total += frame * rate + ceiling
        mid = 0
        for frame in frames:
            mid += count // 2
            mid -= count % 3
        return total + mid

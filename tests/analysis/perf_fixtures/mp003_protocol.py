"""MP003: pipe-protocol exhaustiveness -- an unhandled and a dead message."""


class Ping:
    def __init__(self, seq):
        self.seq = seq


class Pong:  # expect-mp: MP003
    def __init__(self, seq):
        self.seq = seq


class Stop:  # expect-mp: MP003
    pass


class ProtocolError(Exception):
    """Exception types are not protocol messages."""


class Endpoint:
    def __init__(self, conn):
        self.conn = conn

    def send(self, message):
        self.conn.send(message)

    def recv(self):
        return self.conn.recv()


def serve(endpoint: Endpoint):
    while True:
        message = endpoint.recv()
        if isinstance(message, Ping):
            # Pong is sent but no peer ever isinstance-handles it.
            endpoint.send(Pong(message.seq))
        elif isinstance(message, Stop):
            # Stop is handled but never constructed anywhere: dead arm.
            return


def client(endpoint: Endpoint, seq):
    endpoint.send(Ping(seq))

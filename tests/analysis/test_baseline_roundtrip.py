"""Baseline lifecycle: write -> mutate tree -> re-lint -> GC stale entries."""

import json

import pytest

from repro.analysis.cli import main

DIRTY_TWO = (
    "import time\n"
    "\n"
    "__all__ = [\"snap\"]\n"
    "\n"
    "\n"
    "def snap():\n"
    "    a = time.time()\n"
    "    b = time.monotonic()\n"
    "    return (a, b)\n"
)

DIRTY_ONE = (
    "import time\n"
    "\n"
    "__all__ = [\"snap\"]\n"
    "\n"
    "\n"
    "def snap():\n"
    "    a = time.time()\n"
    "    b = 0.0\n"
    "    return (a, b)\n"
)


@pytest.fixture
def project(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "dirty.py").write_text(DIRTY_TWO)
    return tmp_path


def test_write_mutate_relint_roundtrip(project, capsys):
    # 1. Baseline the two pre-existing violations.
    assert main(["dirty.py", "--write-baseline"]) == 0
    assert "wrote 2 fingerprints" in capsys.readouterr().out

    # 2. Clean lint: both grandfathered, exit 0.
    assert main(["dirty.py"]) == 0
    assert "2 baselined" in capsys.readouterr().out

    # 3. Fix one violation: the other stays grandfathered, and the
    #    summary calls out the now-stale fingerprint.
    (project / "dirty.py").write_text(DIRTY_ONE)
    assert main(["dirty.py"]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out
    assert "1 stale baseline fingerprint" in out

    # 4. A fresh violation is NOT covered by the baseline.
    (project / "dirty.py").write_text(DIRTY_ONE + "\n\nSEED = time.time()\n")
    assert main(["dirty.py"]) == 1

    # 5. Re-writing the baseline GCs fingerprints for fixed findings.
    (project / "dirty.py").write_text(DIRTY_ONE)
    assert main(["dirty.py", "--write-baseline"]) == 0
    assert "(1 stale dropped)" in capsys.readouterr().out
    stored = json.loads((project / ".vdaplint-baseline.json").read_text())
    assert len(stored["fingerprints"]) == 1


def test_strict_warns_on_nonempty_baseline(project, capsys):
    assert main(["dirty.py", "--write-baseline"]) == 0
    capsys.readouterr()
    assert main(["dirty.py", "--strict"]) == 1
    captured = capsys.readouterr()
    assert "warning" in captured.err
    assert "--strict ignores the non-empty baseline" in captured.err


def test_strict_stays_quiet_without_baseline(project, capsys):
    assert main(["dirty.py", "--strict"]) == 1
    assert capsys.readouterr().err == ""

"""The fixture corpus: every shipped rule fires exactly where annotated.

Each fixture file under ``fixtures/`` marks its intended violations with
``# expect: RULE`` (comma-separated for several rules on one line).  The
corpus test lints each fixture with the full default rule pack and
requires the (line, rule) sets to match *exactly* -- so fixtures both
prove each rule fires with the right id and line number, and prove the
rules raise no false positives on the surrounding clean code (including
pragma-suppressed lines).
"""

import os
import re

import pytest

from repro.analysis import default_rules, lint_source

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")
FIXTURES = sorted(f for f in os.listdir(FIXTURE_DIR) if f.endswith(".py"))

EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)")


def expected_findings(source: str) -> set[tuple[int, str]]:
    expected = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = EXPECT_RE.search(text)
        if match:
            for rule in match.group(1).split(","):
                expected.add((lineno, rule.strip()))
    return expected


def test_corpus_is_nonempty():
    assert len(FIXTURES) >= 8, "fixture corpus should cover every rule"


@pytest.mark.parametrize("fixture", FIXTURES)
def test_fixture_findings_match_annotations(fixture):
    path = os.path.join(FIXTURE_DIR, fixture)
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    expected = expected_findings(source)
    actual = {(f.line, f.rule) for f in lint_source(source, path=fixture)}
    assert actual == expected, (
        f"{fixture}: findings {sorted(actual)} != annotations {sorted(expected)}"
    )


def test_corpus_exercises_every_rule():
    """Across the whole corpus, every shipped rule id fires at least once."""
    fired = set()
    for fixture in FIXTURES:
        with open(os.path.join(FIXTURE_DIR, fixture), encoding="utf-8") as fh:
            fired |= {rule for _line, rule in expected_findings(fh.read())}
    shipped = {rule.id for rule in default_rules()}
    assert shipped <= fired, f"rules never exercised: {sorted(shipped - fired)}"

"""Remaining surface: LinkTable V2V, world peers, misc model edges."""

import pytest

from repro.hw import catalog
from repro.libvdap.models import CompressedVariant, ModelEntry
from repro.nn import MOBILENET_V1
from repro.topology import (
    LinkTable,
    Tier,
    Vehicle,
    build_default_world,
    link_from_preset,
)
from repro.net.params import DSRC_PARAMS, WIFI_PARAMS, BACKHAUL_PARAMS


def test_link_table_vehicle_to_vehicle():
    table = LinkTable(
        vehicle_edge=link_from_preset(DSRC_PARAMS),
        vehicle_cloud=link_from_preset(WIFI_PARAMS),
        edge_cloud=link_from_preset(BACKHAUL_PARAMS),
        vehicle_vehicle=link_from_preset(WIFI_PARAMS),
    )
    v2v = table.between(Tier.VEHICLE, Tier.VEHICLE)
    assert v2v.name == "wifi"


def test_link_table_missing_v2v_raises():
    table = LinkTable(
        vehicle_edge=link_from_preset(DSRC_PARAMS),
        vehicle_cloud=link_from_preset(WIFI_PARAMS),
        edge_cloud=link_from_preset(BACKHAUL_PARAMS),
    )
    with pytest.raises(KeyError):
        table.between(Tier.VEHICLE, Tier.VEHICLE)


def test_link_table_is_symmetric():
    world = build_default_world()
    ab = world.links.between(Tier.VEHICLE, Tier.EDGE)
    ba = world.links.between(Tier.EDGE, Tier.VEHICLE)
    assert ab is ba


def test_world_peers_default_empty():
    world = build_default_world()
    assert world.peers == []
    world.peers.append(Vehicle(name="cav-1"))
    assert len(world.peers) == 1


def test_default_world_v2v_link_present():
    world = build_default_world()
    assert world.links.between(Tier.VEHICLE, Tier.VEHICLE).name == "wifi"


def test_compressed_variant_accuracy_metadata():
    variant = CompressedVariant(base=MOBILENET_V1, size_ratio=8.0,
                                flop_ratio=2.0, accuracy_drop=0.015)
    assert variant.size_bytes == pytest.approx(MOBILENET_V1.size_bytes / 8.0)
    assert variant.forward_gflop == pytest.approx(
        MOBILENET_V1.forward_gflop / 2.0
    )
    assert variant.accuracy_drop == 0.015


def test_model_entry_fits_full_vs_compressed():
    mncs = catalog.intel_mncs()  # 0.5 GB
    entry = ModelEntry(
        name="custom", category="video", full=MOBILENET_V1,
        compressed=CompressedVariant(base=MOBILENET_V1),
    )
    assert entry.fits_on(mncs, compressed=True)
    assert entry.fits_on(mncs, compressed=False)  # mobilenet is small anyway


def test_figure3_device_factories_fresh_instances():
    a = catalog.tesla_v100()
    b = catalog.tesla_v100()
    assert a is not b and a.name == b.name

"""Unit tests for nodes, mobility, and world wiring."""

import numpy as np
import pytest

from repro.hw import WorkloadClass, catalog
from repro.topology import (
    Cloud,
    ConstantSpeed,
    SpeedProfile,
    Tier,
    Vehicle,
    World,
    XEdge,
    build_default_world,
    highway_profile,
    urban_profile,
)


def test_constant_speed_position():
    motion = ConstantSpeed(speed_mps=10.0, start_position_m=5.0)
    assert motion.position(3.0) == pytest.approx(35.0)
    assert motion.speed(100.0) == 10.0


def test_speed_profile_interpolates():
    profile = SpeedProfile([(0.0, 0.0), (10.0, 20.0)])
    assert profile.speed(5.0) == pytest.approx(10.0)
    # Trapezoid: distance at t=10 is 100 m.
    assert profile.position(10.0) == pytest.approx(100.0)


def test_speed_profile_holds_last_speed():
    profile = SpeedProfile([(0.0, 10.0)])
    assert profile.speed(100.0) == 10.0
    assert profile.position(10.0) == pytest.approx(100.0)


def test_speed_profile_validation():
    with pytest.raises(ValueError):
        SpeedProfile([])
    with pytest.raises(ValueError):
        SpeedProfile([(1.0, 5.0), (0.0, 5.0)])
    with pytest.raises(ValueError):
        SpeedProfile([(0.0, -1.0)])


def test_speed_profile_position_midsegment():
    profile = SpeedProfile([(0.0, 0.0), (10.0, 10.0)])
    # At t=5 speed is 5; distance = 0.5*(0+5)*5 = 12.5.
    assert profile.position(5.0) == pytest.approx(12.5)


def test_urban_profile_is_stop_and_go():
    profile = urban_profile(600.0, np.random.default_rng(0))
    speeds = [profile.speed(t) for t in range(0, 600, 5)]
    assert min(speeds) == 0.0
    assert max(speeds) > 5.0


def test_highway_profile_stays_near_cruise():
    profile = highway_profile(600.0, np.random.default_rng(0), cruise_mps=29.0)
    speeds = [profile.speed(t) for t in range(0, 600, 5)]
    assert all(24.0 <= s <= 34.0 for s in speeds)


def test_node_tier_validation():
    with pytest.raises(ValueError):
        from repro.topology.nodes import Node

        Node(name="x", tier="mars")


def test_vehicle_position_without_mobility_is_zero():
    assert Vehicle(name="v").position(10.0) == 0.0


def test_node_add_remove_processor():
    vehicle = Vehicle(name="v", processors=[catalog.intel_mncs()])
    vehicle.add_processor(catalog.jetson_tx2_maxp())
    assert len(vehicle.processors) == 2
    removed = vehicle.remove_processor("Jetson TX2 Max-P")
    assert removed.name == "Jetson TX2 Max-P"
    with pytest.raises(KeyError):
        vehicle.remove_processor("nope")


def test_best_processor_for_workload():
    vehicle = Vehicle(
        name="v", processors=[catalog.intel_i7_6700(), catalog.jetson_tx2_maxp()]
    )
    best = vehicle.best_processor_for(WorkloadClass.DNN)
    assert best.name == "Jetson TX2 Max-P"
    # Control tasks go to the CPU.
    assert vehicle.best_processor_for(WorkloadClass.CONTROL).name == "Intel i7-6700"


def test_xedge_coverage():
    edge = XEdge(name="e", position_m=1000.0, coverage_radius_m=100.0)
    assert edge.covers(950.0)
    assert not edge.covers(1101.0)


def test_default_world_structure():
    world = build_default_world()
    assert world.vehicle.tier == Tier.VEHICLE
    assert all(e.tier == Tier.EDGE for e in world.edges)
    assert isinstance(world.cloud, Cloud)
    assert world.links.between(Tier.VEHICLE, Tier.EDGE).name == "dsrc"
    assert world.links.between(Tier.VEHICLE, Tier.CLOUD).name == "lte"
    assert world.links.between(Tier.EDGE, Tier.CLOUD).name == "backhaul"


def test_world_serving_edge_follows_vehicle():
    world = build_default_world(speed_mps=10.0, edge_count=3, edge_spacing_m=100.0)
    first = world.serving_edge(0.0)
    later = world.serving_edge(20.0)  # vehicle at x=200
    assert first.name == "xedge-0"
    assert later.name == "xedge-2"


def test_world_node_for_tier():
    world = build_default_world()
    assert world.node_for_tier(Tier.VEHICLE) is world.vehicle
    assert world.node_for_tier(Tier.CLOUD) is world.cloud
    with pytest.raises(KeyError):
        world.node_for_tier("mars")


def test_world_without_edges_raises_on_lookup():
    world = build_default_world()
    world.edges = []
    with pytest.raises(LookupError):
        world.node_for_tier(Tier.EDGE)

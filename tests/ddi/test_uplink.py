"""Tests for DDI -> cloud migration and the open data server."""

import pytest

from repro.ddi import CloudDataServer, DiskDB, Record, UplinkMigrator
from repro.edgeos import LocationFuzzer
from repro.net import LinkModel


def rec(t, x=0.0, **payload):
    return Record("obd", t, x, 0.0, payload or {"v": t})


def loaded_disk(tmp_path, count=25):
    disk = DiskDB(str(tmp_path / "ddi"))
    for i in range(count):
        disk.put(rec(float(i), x=float(i * 10)))
    return disk


def lte(mbps=10.0):
    return LinkModel(name="lte", bandwidth_mbps=mbps, rtt_s=0.07)


def test_server_ingest_dedup_and_query():
    server = CloudDataServer()
    batch = [rec(1.0), rec(2.0)]
    assert server.ingest(batch) == 2
    assert server.ingest(batch) == 0  # replays deduplicate
    assert server.count("obd") == 2
    assert [r.timestamp for r in server.open_query("obd", 0.0, 1.5)] == [1.0]
    with pytest.raises(ValueError):
        server.open_query("obd", 5.0, 1.0)


def test_migrator_validation(tmp_path):
    with pytest.raises(ValueError):
        UplinkMigrator(loaded_disk(tmp_path), CloudDataServer(), ["obd"],
                       batch_size=0)


def test_migration_in_batches_until_drained(tmp_path):
    disk = loaded_disk(tmp_path, count=25)
    server = CloudDataServer()
    migrator = UplinkMigrator(disk, server, ["obd"], batch_size=10)
    assert migrator.run_round(100.0, lte()) == 10
    assert migrator.run_round(100.0, lte()) == 10
    assert migrator.run_round(100.0, lte()) == 5
    assert migrator.run_round(100.0, lte()) == 0
    assert migrator.fully_migrated(100.0)
    assert server.count("obd") == 25
    assert migrator.stats.records_migrated == 25
    assert migrator.stats.bytes_shipped > 0
    assert migrator.stats.transfer_seconds > 0


def test_migration_defers_on_poor_uplink(tmp_path):
    disk = loaded_disk(tmp_path)
    migrator = UplinkMigrator(disk, CloudDataServer(), ["obd"],
                              min_bandwidth_mbps=2.0)
    assert migrator.run_round(100.0, lte(mbps=0.5)) == 0
    assert migrator.stats.deferred_rounds == 1
    assert migrator.run_round(100.0, lte(mbps=10.0)) > 0


def test_watermark_makes_migration_resumable(tmp_path):
    disk = loaded_disk(tmp_path, count=20)
    server = CloudDataServer()
    migrator = UplinkMigrator(disk, server, ["obd"], batch_size=10)
    migrator.run_round(100.0, lte())
    watermark = migrator.watermark("obd")
    assert watermark > 9.0
    # A "restarted" migrator at the same watermark ships only the rest.
    resumed = UplinkMigrator(disk, server, ["obd"], batch_size=100)
    resumed._watermark["obd"] = watermark
    assert resumed.run_round(100.0, lte()) == 10
    assert server.count("obd") == 20


def test_new_records_after_migration_are_picked_up(tmp_path):
    disk = loaded_disk(tmp_path, count=5)
    server = CloudDataServer()
    migrator = UplinkMigrator(disk, server, ["obd"], batch_size=100)
    migrator.run_round(10.0, lte())
    assert migrator.fully_migrated(10.0)
    disk.put(rec(50.0))
    assert not migrator.fully_migrated(100.0)
    assert migrator.run_round(100.0, lte()) == 1


def test_location_generalized_before_leaving_vehicle(tmp_path):
    """The privacy module's fuzzing applies vehicle-side: the cloud only
    ever sees cell centres."""
    disk = loaded_disk(tmp_path, count=5)
    server = CloudDataServer()
    migrator = UplinkMigrator(
        disk, server, ["obd"], fuzzer=LocationFuzzer(grid_m=500.0)
    )
    migrator.run_round(10.0, lte())
    cloud_positions = {r.x_m for r in server.open_query("obd", 0.0, 10.0)}
    assert cloud_positions == {250.0}  # raw 0..40 m all snap to one cell
    # The on-vehicle copy keeps full precision.
    local = disk.query("obd", 0.0, 10.0)
    assert {r.x_m for r in local} == {0.0, 10.0, 20.0, 30.0, 40.0}

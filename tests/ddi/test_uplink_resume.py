"""Crash-resumability of the uplink migrator.

The scenario: the cellular uplink (or the migrator process itself) dies
mid-batch -- the cloud may have absorbed part of the batch, the vehicle
never saw the ack.  A restarted migrator must pick up from the durable
watermark and re-ship the interrupted batch; server-side dedup makes the
replay idempotent, so across any number of crashes every record lands on
the cloud exactly once.
"""

import json
import os

import pytest

from repro.ddi import CloudDataServer, DiskDB, Record, UplinkMigrator
from repro.ddi.uplink import WATERMARK_FILE
from repro.faults import CircuitBreaker
from repro.net import LinkModel


def rec(t, x=0.0):
    return Record("obd", t, x, 0.0, {"v": t})


def loaded_disk(tmp_path, count=30):
    disk = DiskDB(str(tmp_path / "ddi"))
    for i in range(count):
        disk.put(rec(float(i), x=float(i * 10)))
    return disk


def lte(mbps=10.0):
    return LinkModel(name="lte", bandwidth_mbps=mbps, rtt_s=0.07)


class CrashingServer(CloudDataServer):
    """Absorbs part of a batch, then dies before acknowledging it."""

    def __init__(self, crash_after_batches, partial=4):
        super().__init__()
        self.crash_after_batches = crash_after_batches
        self.partial = partial

    def ingest(self, records):
        if self.batches_ingested == self.crash_after_batches:
            # The uplink drops mid-transfer: some records made it.
            super().ingest(records[: self.partial])
            raise ConnectionError("uplink dropped mid-batch")
        return super().ingest(records)


def test_watermark_file_survives_restart(tmp_path):
    disk = loaded_disk(tmp_path, count=20)
    server = CloudDataServer()
    migrator = UplinkMigrator(disk, server, ["obd"], batch_size=10)
    migrator.run_round(100.0, lte())
    path = os.path.join(disk.root, WATERMARK_FILE)
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as fh:
        assert json.load(fh)["obd"] == pytest.approx(9.0, abs=1e-6)

    # A brand-new migrator on the same disk resumes automatically.
    reborn = UplinkMigrator(disk, server, ["obd"], batch_size=100)
    assert reborn.watermark("obd") == migrator.watermark("obd")
    assert reborn.run_round(100.0, lte()) == 10
    assert server.count("obd") == 20


def test_crash_mid_batch_never_drops_or_double_ships(tmp_path):
    disk = loaded_disk(tmp_path, count=30)
    server = CrashingServer(crash_after_batches=1, partial=4)
    migrator = UplinkMigrator(disk, server, ["obd"], batch_size=10)

    assert migrator.run_round(100.0, lte()) == 10  # batch 1 lands cleanly
    with pytest.raises(ConnectionError):
        migrator.run_round(101.0, lte())  # batch 2 dies after 4 records
    assert migrator.stats.failed_rounds == 1
    # The watermark never moved past the acknowledged batch...
    assert migrator.watermark("obd") == pytest.approx(9.0, abs=1e-6)
    # ...even though the cloud holds a partial batch.
    assert server.count("obd") == 14

    # Restart from disk: the durable watermark points at the failed batch.
    resumed = UplinkMigrator(disk, server, ["obd"], batch_size=10)
    assert resumed.watermark("obd") == pytest.approx(9.0, abs=1e-6)
    while resumed.run_round(200.0, lte()):
        pass
    assert resumed.fully_migrated(200.0)
    # Every record exactly once: nothing dropped, dedup ate the replay.
    assert server.count("obd") == 30
    timestamps = [r.timestamp for r in server.open_query("obd", 0.0, 1_000.0)]
    assert timestamps == [float(i) for i in range(30)]


def test_repeated_crashes_still_converge(tmp_path):
    disk = loaded_disk(tmp_path, count=30)
    server = CrashingServer(crash_after_batches=0, partial=7)
    crashes = 0
    for restart in range(10):
        migrator = UplinkMigrator(disk, server, ["obd"], batch_size=10)
        try:
            while not migrator.fully_migrated(500.0):
                migrator.run_round(500.0, lte())
            break
        except ConnectionError:
            crashes += 1
            # Every restart the uplink survives one more batch.
            server.crash_after_batches = server.batches_ingested + 1
    assert crashes >= 1
    final = UplinkMigrator(disk, server, ["obd"], batch_size=10)
    assert final.fully_migrated(500.0)
    assert server.count("obd") == 30


def test_breaker_stops_hammering_dead_cloud(tmp_path):
    disk = loaded_disk(tmp_path, count=30)
    server = CloudDataServer()
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=60.0)
    migrator = UplinkMigrator(disk, server, ["obd"], batch_size=10,
                              breaker=breaker)
    # Cloud down: two failed rounds trip the breaker.
    assert migrator.run_round(0.0, lte(), cloud_up=False) == 0
    assert migrator.run_round(1.0, lte(), cloud_up=False) == 0
    # Open: rounds short-circuit without touching the network.
    assert migrator.run_round(2.0, lte(), cloud_up=True) == 0
    assert migrator.stats.breaker_deferred_rounds == 1
    # After the cooldown one probe round goes through and closes it.
    assert migrator.run_round(61.0, lte(), cloud_up=True) == 10
    assert migrator.run_round(62.0, lte(), cloud_up=True) == 10
    assert migrator.stats.failed_rounds == 2


def test_durable_false_keeps_legacy_in_memory_behavior(tmp_path):
    disk = loaded_disk(tmp_path, count=10)
    server = CloudDataServer()
    migrator = UplinkMigrator(disk, server, ["obd"], batch_size=5,
                              durable=False)
    migrator.run_round(100.0, lte())
    assert not os.path.exists(os.path.join(disk.root, WATERMARK_FILE))
    # A restart starts from scratch; dedup still prevents double-count.
    fresh = UplinkMigrator(disk, server, ["obd"], batch_size=100,
                           durable=False)
    assert fresh.watermark("obd") == 0.0
    fresh.run_round(100.0, lte())
    assert server.count("obd") == 10

"""Tests for the DDI: cache, disk store, collectors, service layer."""

import numpy as np
import pytest

from repro.ddi import (
    DDIService,
    DiskDB,
    MemDB,
    OBDCollector,
    Record,
    SocialCollector,
    TrafficCollector,
    WeatherCollector,
)
from repro.topology import SpeedProfile


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- MemDB ---------------------------------------------------------------------


def test_memdb_put_get():
    clock = FakeClock()
    db = MemDB(clock)
    db.put("k", 42)
    assert db.get("k") == 42
    assert db.stats.hits == 1


def test_memdb_ttl_expiry():
    clock = FakeClock()
    db = MemDB(clock, default_ttl_s=10.0)
    db.put("k", "v")
    clock.now = 9.9
    assert db.get("k") == "v"
    clock.now = 10.1
    assert db.get("k") is None
    assert db.stats.misses == 1


def test_memdb_custom_ttl():
    clock = FakeClock()
    db = MemDB(clock, default_ttl_s=100.0)
    db.put("short", 1, ttl_s=1.0)
    clock.now = 2.0
    assert db.get("short") is None


def test_memdb_lru_eviction_at_capacity():
    clock = FakeClock()
    db = MemDB(clock, default_ttl_s=1000.0, max_entries=2)
    db.put("a", 1)
    clock.now = 1.0
    db.put("b", 2)
    clock.now = 2.0
    assert db.get("a") == 1  # refresh a's recency
    clock.now = 3.0
    db.put("c", 3)  # evicts b (least recently used)
    assert db.get("b") is None
    assert db.get("a") == 1 and db.get("c") == 3


def test_memdb_len_sweeps_expired():
    clock = FakeClock()
    db = MemDB(clock, default_ttl_s=5.0)
    db.put("a", 1)
    db.put("b", 2)
    assert len(db) == 2
    clock.now = 6.0
    assert len(db) == 0


def test_memdb_contains_does_not_count_stats():
    clock = FakeClock()
    db = MemDB(clock)
    db.put("k", 1)
    assert db.contains("k")
    assert not db.contains("missing")
    assert db.stats.hits == 0 and db.stats.misses == 0


def test_memdb_invalidate():
    db = MemDB(FakeClock())
    db.put("k", 1)
    assert db.invalidate("k")
    assert not db.invalidate("k")


def test_memdb_validation():
    with pytest.raises(ValueError):
        MemDB(FakeClock(), default_ttl_s=0.0)
    with pytest.raises(ValueError):
        MemDB(FakeClock(), max_entries=0)
    db = MemDB(FakeClock())
    with pytest.raises(ValueError):
        db.put("k", 1, ttl_s=-1.0)


# -- DiskDB --------------------------------------------------------------------


def rec(stream, t, x=0.0, y=0.0, **payload):
    return Record(stream=stream, timestamp=t, x_m=x, y_m=y, payload=payload)


def test_diskdb_put_query(tmp_path):
    db = DiskDB(str(tmp_path))
    db.put(rec("obd", 1.0, speed=10))
    db.put(rec("obd", 2.0, speed=11))
    db.put(rec("obd", 3.0, speed=12))
    records = db.query("obd", 1.5, 3.0)
    assert [r.timestamp for r in records] == [2.0]


def test_diskdb_time_range_is_half_open(tmp_path):
    db = DiskDB(str(tmp_path))
    for t in (1.0, 2.0, 3.0):
        db.put(rec("s", t))
    assert [r.timestamp for r in db.query("s", 1.0, 3.0)] == [1.0, 2.0]


def test_diskdb_bbox_filter(tmp_path):
    db = DiskDB(str(tmp_path))
    db.put(rec("s", 1.0, x=100.0, y=0.0, tag="near"))
    db.put(rec("s", 2.0, x=9000.0, y=0.0, tag="far"))
    records = db.query("s", 0.0, 10.0, bbox=(0.0, -10.0, 1000.0, 10.0))
    assert [r.payload["tag"] for r in records] == ["near"]


def test_diskdb_durability_across_reopen(tmp_path):
    db = DiskDB(str(tmp_path))
    db.put(rec("obd", 1.0, speed=10))
    db.put(rec("obd", 2.0, speed=20))
    db.close()
    reopened = DiskDB(str(tmp_path))
    records = reopened.query("obd", 0.0, 10.0)
    assert [r.payload["speed"] for r in records] == [10, 20]
    assert reopened.count("obd") == 2


def test_diskdb_out_of_order_writes_query_sorted(tmp_path):
    db = DiskDB(str(tmp_path))
    for t in (3.0, 1.0, 2.0):
        db.put(rec("s", t))
    assert [r.timestamp for r in db.query("s", 0.0, 10.0)] == [1.0, 2.0, 3.0]


def test_diskdb_multiple_streams(tmp_path):
    db = DiskDB(str(tmp_path))
    db.put(rec("obd", 1.0))
    db.put(rec("weather", 1.0))
    assert db.streams == ["obd", "weather"]
    assert db.count("obd") == 1


def test_diskdb_invalid_range(tmp_path):
    db = DiskDB(str(tmp_path))
    with pytest.raises(ValueError):
        db.query("s", 5.0, 1.0)


# -- collectors ------------------------------------------------------------------


def test_obd_collector_tracks_profile():
    profile = SpeedProfile([(0.0, 10.0)])
    collector = OBDCollector(profile=profile, rng=np.random.default_rng(0))
    record = collector.sample(5.0)
    assert record.stream == "obd"
    assert record.payload["speed_mps"] == pytest.approx(10.0)
    assert record.x_m == pytest.approx(50.0)
    assert record.payload["rpm"] > 800


def test_weather_collector_condition_is_stable_within_epoch():
    collector = WeatherCollector(rng=np.random.default_rng(0))
    a = collector.sample(10.0).payload["condition"]
    b = collector.sample(100.0).payload["condition"]
    assert a == b


def test_traffic_and_social_payloads():
    rng = np.random.default_rng(0)
    traffic = TrafficCollector(rng=rng).sample(1.0)
    assert 0.0 <= traffic.payload["congestion"] <= 1.0
    social = SocialCollector(rng=rng).sample(1.0)
    assert "kind" in social.payload


# -- service layer ------------------------------------------------------------------


def test_service_upload_then_cached_download(tmp_path):
    clock = FakeClock()
    service = DDIService(clock, DiskDB(str(tmp_path)))
    for t in (1.0, 2.0, 3.0):
        clock.now = t
        service.upload(rec("obd", t, speed=t * 10))
    result = service.download("obd", 0.0, 5.0)
    assert result.from_cache
    assert [r.payload["speed"] for r in result.records] == [10.0, 20.0, 30.0]
    assert result.modelled_latency_s < 0.001


def test_service_download_falls_back_to_disk_after_ttl(tmp_path):
    clock = FakeClock()
    service = DDIService(clock, DiskDB(str(tmp_path)), cache_ttl_s=30.0)
    service.upload(rec("obd", 1.0, speed=10))
    clock.now = 100.0  # cache expired
    result = service.download("obd", 0.0, 5.0)
    assert not result.from_cache
    assert [r.payload["speed"] for r in result.records] == [10]
    assert result.modelled_latency_s > 0.001


def test_service_bbox_download_from_cache(tmp_path):
    clock = FakeClock()
    service = DDIService(clock, DiskDB(str(tmp_path)))
    service.upload(rec("s", 1.0, x=10.0))
    service.upload(rec("s", 2.0, x=9000.0))
    result = service.download("s", 0.0, 5.0, bbox=(0.0, -1.0, 100.0, 1.0))
    assert len(result.records) == 1 and result.records[0].x_m == 10.0


def test_service_collectors_roundtrip(tmp_path):
    clock = FakeClock()
    service = DDIService(clock, DiskDB(str(tmp_path)))
    profile = SpeedProfile([(0.0, 15.0)])
    rng = np.random.default_rng(0)
    service.attach_collector(OBDCollector(profile=profile, rng=rng))
    service.attach_collector(WeatherCollector(rng=rng))
    for t in range(5):
        clock.now = float(t)
        service.collect_all(float(t))
    assert service.uploads == 10
    obd = service.download("obd", 0.0, 5.0)
    assert len(obd.records) == 5

"""Tests for the CAN frame codec and the EV collector."""

import numpy as np
import pytest

from repro.ddi.can import (
    EV_POWERTRAIN,
    CanCollector,
    CanFrame,
    CanMessageSpec,
    CanSignal,
)
from repro.topology import SpeedProfile


def test_signal_validation():
    with pytest.raises(ValueError):
        CanSignal("bad", start_bit=-1, length=4)
    with pytest.raises(ValueError):
        CanSignal("bad", start_bit=60, length=8)  # spills past byte 8
    with pytest.raises(ValueError):
        CanSignal("bad", start_bit=0, length=4, scale=0.0)


def test_signal_encode_decode_roundtrip():
    signal = CanSignal("speed", start_bit=0, length=12, scale=0.05)
    raw = signal.encode(27.35)
    assert signal.decode(raw) == pytest.approx(27.35, abs=signal.scale)


def test_signal_encode_clamps_to_field_width():
    signal = CanSignal("s", start_bit=0, length=8, scale=1.0)
    assert signal.encode(10_000.0) == 255
    assert signal.encode(-5.0) == 0


def test_signal_offset_allows_negative_values():
    signal = CanSignal("temp", start_bit=0, length=8, scale=0.5, offset=-40.0)
    raw = signal.encode(-10.0)
    assert signal.decode(raw) == pytest.approx(-10.0)


def test_message_spec_rejects_overlapping_signals():
    with pytest.raises(ValueError):
        CanMessageSpec(
            can_id=1, name="bad",
            signals=(CanSignal("a", 0, 8), CanSignal("b", 4, 8)),
        )


def test_frame_validation():
    with pytest.raises(ValueError):
        CanFrame(can_id=1, data=b"\x00" * 4)


def test_message_roundtrip_through_wire_format():
    values = {
        "speed_mps": 31.3,
        "motor_power_kw": 85.0,
        "battery_soc": 77.7,
        "battery_temp_c": 28.5,
    }
    frame = EV_POWERTRAIN.encode(values)
    assert len(frame.data) == 8
    decoded = EV_POWERTRAIN.decode(frame)
    for name, value in values.items():
        signal = next(s for s in EV_POWERTRAIN.signals if s.name == name)
        assert decoded[name] == pytest.approx(value, abs=signal.scale)


def test_message_encode_missing_signal_raises():
    with pytest.raises(KeyError):
        EV_POWERTRAIN.encode({"speed_mps": 10.0})


def test_message_decode_wrong_id_raises():
    frame = CanFrame(can_id=0x123, data=b"\x00" * 8)
    with pytest.raises(ValueError):
        EV_POWERTRAIN.decode(frame)


def test_collector_produces_quantized_records():
    profile = SpeedProfile([(0.0, 20.0)])
    collector = CanCollector(profile=profile, rng=np.random.default_rng(0))
    record = collector.sample(10.0)
    assert record.stream == "can"
    assert record.payload["speed_mps"] == pytest.approx(20.0, abs=0.05)
    assert 0.0 <= record.payload["battery_soc"] <= 100.0
    # Quantization: decoded speed lands exactly on a 0.05 grid.
    assert (record.payload["speed_mps"] / 0.05) == pytest.approx(
        round(record.payload["speed_mps"] / 0.05)
    )


def test_collector_soc_drains_over_time():
    profile = SpeedProfile([(0.0, 20.0)])
    collector = CanCollector(profile=profile, rng=np.random.default_rng(0))
    early = collector.sample(0.0).payload["battery_soc"]
    late = collector.sample(3600.0).payload["battery_soc"]
    assert late < early


def test_collector_power_tracks_acceleration():
    accel_profile = SpeedProfile([(0.0, 0.0), (20.0, 30.0)])
    cruise_profile = SpeedProfile([(0.0, 15.0)])
    rng = np.random.default_rng(0)
    accel = CanCollector(profile=accel_profile, rng=rng).sample(10.0)
    cruise = CanCollector(profile=cruise_profile, rng=rng).sample(10.0)
    assert accel.payload["motor_power_kw"] > cruise.payload["motor_power_kw"]

"""Tests for replaying fault plans on the simulation clock."""

from repro.faults import (
    CLOUD_KEY,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    link_key,
    processor_key,
    world_fault_targets,
)
from repro.sim import Simulator
from repro.topology import Tier, build_default_world


def manual_plan(*events):
    return FaultPlan(seed=0, horizon_s=100.0, events=tuple(events))


def test_down_up_transitions_follow_the_plan():
    sim = Simulator()
    plan = manual_plan(
        FaultEvent(FaultKind.PROCESSOR_DOWN, "edge/gpu", 5.0, 10.0),
        FaultEvent(FaultKind.CLOUD_UNREACHABLE, "cloud", 2.0, 4.0),
    )
    injector = FaultInjector(sim, plan)

    assert not injector.processor_down(Tier.EDGE, "gpu")
    sim.run(until=3.0)
    assert injector.cloud_unreachable()
    assert not injector.processor_down(Tier.EDGE, "gpu")
    sim.run(until=7.0)
    assert not injector.cloud_unreachable()
    assert injector.processor_down(Tier.EDGE, "gpu")
    assert injector.active() == {processor_key(Tier.EDGE, "gpu"): 1}
    sim.run(until=20.0)
    assert not injector.processor_down(Tier.EDGE, "gpu")
    assert injector.active() == {}


def test_slowdown_and_link_quality_factors():
    sim = Simulator()
    plan = manual_plan(
        FaultEvent(FaultKind.PROCESSOR_SLOW, "vehicle/cpu", 1.0, 5.0, severity=3.0),
        FaultEvent(FaultKind.LINK_DEGRADED, "edge-vehicle", 1.0, 5.0, severity=0.25),
    )
    injector = FaultInjector(sim, plan)
    assert injector.processor_slowdown(Tier.VEHICLE, "cpu") == 1.0
    sim.run(until=2.0)
    assert injector.processor_slowdown(Tier.VEHICLE, "cpu") == 3.0
    assert injector.link_quality(Tier.VEHICLE, Tier.EDGE) == 0.25
    sim.run(until=10.0)
    assert injector.processor_slowdown(Tier.VEHICLE, "cpu") == 1.0
    assert injector.link_quality(Tier.VEHICLE, Tier.EDGE) == 1.0


def test_link_degradation_applies_to_world_bandwidth():
    sim = Simulator()
    world = build_default_world()
    nominal = world.links.vehicle_edge.bandwidth_mbps
    plan = manual_plan(
        FaultEvent(FaultKind.LINK_DEGRADED, "edge-vehicle", 1.0, 5.0, severity=0.1),
    )
    FaultInjector(sim, plan, world=world)
    sim.run(until=2.0)
    assert world.links.vehicle_edge.bandwidth_mbps == nominal * 0.1
    sim.run(until=10.0)
    assert world.links.vehicle_edge.bandwidth_mbps == nominal


def test_watch_down_and_wait_up():
    sim = Simulator()
    key = link_key(Tier.VEHICLE, Tier.CLOUD)
    plan = manual_plan(
        FaultEvent(FaultKind.LINK_DOWN, "cloud-vehicle", 3.0, 4.0),
    )
    injector = FaultInjector(sim, plan)
    log = []

    def watcher(sim):
        yield injector.watch_down(key)
        log.append(("down", sim.now))
        yield injector.wait_up(key)
        log.append(("up", sim.now))
        # Already up: immediate.
        yield injector.wait_up(key)
        log.append(("still-up", sim.now))

    sim.process(watcher(sim))
    sim.run()
    assert log == [("down", 3.0), ("up", 7.0), ("still-up", 7.0)]


def test_injector_trace_is_reproducible():
    plan = FaultPlan.generate(
        seed=11,
        horizon_s=300.0,
        processors=["vehicle/cpu", "edge/gpu"],
        links=["edge-vehicle"],
    )
    traces = []
    for _ in range(2):
        sim = Simulator()
        injector = FaultInjector(sim, plan)
        sim.run()
        traces.append(injector.trace_text())
    assert traces[0] == traces[1]
    assert traces[0]  # non-empty: the plan realizes transitions


def test_world_fault_targets_cover_every_component():
    world = build_default_world()
    processors, links = world_fault_targets(world)
    assert any(p.startswith("vehicle/") for p in processors)
    assert any(p.startswith("edge/") for p in processors)
    assert any(p.startswith("cloud/") for p in processors)
    assert "-".join(sorted((Tier.VEHICLE, Tier.EDGE))) in links
    assert len(links) == 3


def test_cloud_key_constant():
    sim = Simulator()
    plan = manual_plan(FaultEvent(FaultKind.CLOUD_UNREACHABLE, "cloud", 0.5, 1.0))
    injector = FaultInjector(sim, plan)
    sim.run(until=1.0)
    assert injector.is_down(CLOUD_KEY)

"""Tests for fault plan generation, views, and serialization."""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan, FaultRates


def small_plan(seed=7, horizon=600.0):
    return FaultPlan.generate(
        seed=seed,
        horizon_s=horizon,
        processors=["vehicle/cpu", "edge/gpu"],
        links=["edge-vehicle", "cloud-vehicle"],
        services=["adas"],
        collectors=["obd"],
    )


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.LINK_DOWN, "edge-vehicle", -1.0, 5.0)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.LINK_DOWN, "edge-vehicle", 1.0, 0.0)
    with pytest.raises(ValueError):
        FaultRates(mtbf_s=0.0, mttr_s=1.0)
    with pytest.raises(ValueError):
        FaultPlan.generate(seed=0, horizon_s=0.0)


def test_generation_is_bounded_and_sorted():
    plan = small_plan()
    assert len(plan) > 0
    starts = [e.start_s for e in plan.events]
    assert starts == sorted(starts)
    for event in plan.events:
        assert 0.0 <= event.start_s < plan.horizon_s
        assert event.end_s <= plan.horizon_s + 1e-9


def test_per_target_windows_do_not_self_overlap():
    plan = small_plan()
    by_key = {}
    for event in plan.events:
        by_key.setdefault((event.kind, event.target), []).append(event)
    for windows in by_key.values():
        for first, second in zip(windows, windows[1:]):
            assert first.end_s <= second.start_s


def test_target_independence():
    """Adding a new component never perturbs existing components' windows."""
    base = FaultPlan.generate(seed=3, horizon_s=600.0, processors=["edge/gpu"])
    grown = FaultPlan.generate(
        seed=3, horizon_s=600.0, processors=["edge/gpu", "vehicle/cpu"]
    )
    assert base.for_target("edge/gpu") == grown.for_target("edge/gpu")


def test_views_and_activity_queries():
    plan = small_plan()
    crash = plan.for_kind(FaultKind.SERVICE_CRASH)
    assert all(e.target == "adas" for e in crash)
    if crash:
        probe = crash[0]
        mid = probe.start_s + probe.duration_s / 2
        assert plan.is_active_at(FaultKind.SERVICE_CRASH, "adas", mid)
        assert not plan.is_active_at(
            FaultKind.SERVICE_CRASH, "adas", probe.start_s - 1e-6
        )
        assert probe in plan.active_at(mid)


def test_json_round_trip():
    plan = small_plan()
    assert FaultPlan.from_json(plan.to_json()) == plan
    assert FaultPlan.from_json(plan.to_json()).trace() == plan.trace()


def test_severity_bounds_respected():
    plan = small_plan()
    for event in plan.for_kind(FaultKind.PROCESSOR_SLOW):
        assert 2.0 <= event.severity <= 6.0
    for event in plan.for_kind(FaultKind.LINK_DEGRADED):
        assert 0.05 <= event.severity <= 0.5

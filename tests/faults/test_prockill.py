"""KillPlan: validation, sub-plans, seed-deterministic generation."""

import pickle

import pytest

from repro.faults import KillPhase, KillPlan, WorkerKill


class TestWorkerKill:
    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            WorkerKill(partition=-1, barrier_index=0)
        with pytest.raises(ValueError):
            WorkerKill(partition=0, barrier_index=-2)

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="phase"):
            WorkerKill(partition=0, barrier_index=0, phase="sometime")


class TestKillPlan:
    def test_duplicate_slot_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            KillPlan(kills=(
                WorkerKill(0, 1, KillPhase.ON_ADVANCE),
                WorkerKill(0, 1, KillPhase.BEFORE_ACK),
            ))

    def test_lookup_and_partition_filter(self):
        plan = KillPlan(kills=(WorkerKill(0, 1), WorkerKill(2, 3)))
        assert plan.kill_for(0, 1) is not None
        assert plan.kill_for(0, 2) is None
        sub = plan.for_partition(2)
        assert len(sub) == 1
        assert sub.kill_for(2, 3) is not None
        assert sub.kill_for(0, 1) is None

    def test_single_helper(self):
        plan = KillPlan.single(1, 4, KillPhase.ON_ADVANCE)
        assert len(plan) == 1
        assert plan.kill_for(1, 4).phase == KillPhase.ON_ADVANCE

    def test_picklable(self):
        plan = KillPlan.single(1, 4)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestGenerate:
    def test_same_seed_same_plan(self):
        a = KillPlan.generate(seed=9, partitions=4, barriers=8, kills=3)
        b = KillPlan.generate(seed=9, partitions=4, barriers=8, kills=3)
        assert a == b
        assert len(a) == 3

    def test_different_seed_usually_differs(self):
        plans = {
            KillPlan.generate(seed=s, partitions=4, barriers=8, kills=2)
            for s in range(6)
        }
        assert len(plans) > 1

    def test_kills_land_inside_the_grid(self):
        plan = KillPlan.generate(seed=1, partitions=3, barriers=5, kills=5)
        for kill in plan.kills:
            assert 0 <= kill.partition < 3
            assert 0 <= kill.barrier_index < 5
            assert kill.phase in KillPhase.ALL

    def test_over_budget_rejected(self):
        with pytest.raises(ValueError):
            KillPlan.generate(seed=1, partitions=2, barriers=2, kills=5)

"""Tests for retry policies and the circuit breaker."""

import pytest

from repro.faults import BreakerState, CircuitBreaker, RetryPolicy


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=2.0, max_delay_s=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=2, same_tier_attempts=3)
    with pytest.raises(ValueError):
        RetryPolicy().delay_s(-1)


def test_backoff_schedule_is_exponential_and_capped():
    policy = RetryPolicy(
        max_attempts=6, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5
    )
    assert policy.delays() == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])
    assert policy.delay_s(0) == pytest.approx(0.1)
    assert policy.delay_s(10) == 0.5


def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(reset_timeout_s=0.0)


def test_breaker_trips_after_threshold_and_cools_down():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0)
    for t in (0.0, 1.0):
        assert breaker.allow(t)
        breaker.record_failure(t)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow(2.0)
    breaker.record_failure(2.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 1

    # Open: short-circuit until the cooldown elapses.
    assert not breaker.allow(5.0)
    assert breaker.short_circuits == 1
    assert breaker.allow(12.0)  # half-open probe
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allow(12.5)  # only one probe at a time

    breaker.record_success(13.0)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.consecutive_failures == 0
    assert breaker.allow(13.5)


def test_failed_probe_reopens_with_fresh_cooldown():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
    breaker.record_failure(0.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.allow(10.0)
    breaker.record_failure(10.0)
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow(19.9)
    assert breaker.allow(20.0)


def test_success_resets_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0)
    breaker.record_failure(0.0)
    breaker.record_failure(1.0)
    breaker.record_success(2.0)
    breaker.record_failure(3.0)
    breaker.record_failure(4.0)
    assert breaker.state is BreakerState.CLOSED  # never hit 3 in a row

"""Property-based tests for the platform layer: offloading, CAN, firewall."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ddi.can import CanMessageSpec, CanSignal
from repro.edgeos import Direction, Firewall, Interface, PacketMeta, Rule
from repro.hw import WorkloadClass
from repro.offload import (
    Exhaustive,
    LayerProfile,
    Placement,
    Task,
    TaskGraph,
    best_split,
    evaluate_placement,
)
from repro.topology import Tier, build_default_world

WORLD = build_default_world()


# -- offloading ---------------------------------------------------------------

chain_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),   # gops
        st.floats(min_value=0.0, max_value=2e6, allow_nan=False),    # out bytes
    ),
    min_size=1,
    max_size=4,
)


def build_chain(spec, source_bytes):
    tasks = [
        Task(f"t{i}", gops, WorkloadClass.DNN, output_bytes=out,
             source_bytes=source_bytes if i == 0 else 0.0)
        for i, (gops, out) in enumerate(spec)
    ]
    return TaskGraph.chain("chain", tasks)


@given(spec=chain_strategy,
       source=st.floats(min_value=0.0, max_value=5e6, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_exhaustive_is_never_beaten_by_any_placement(spec, source):
    graph = build_chain(spec, source)
    best = Exhaustive().decide(graph, WORLD).evaluation.latency_s
    # Spot-check the three uniform placements against the optimum.
    for tier in Tier.ALL:
        evaluation = evaluate_placement(graph, Placement.uniform(graph, tier), WORLD)
        if evaluation.feasible:
            assert best <= evaluation.latency_s + 1e-9


@given(spec=chain_strategy,
       source=st.floats(min_value=0.0, max_value=5e6, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_placement_costs_are_nonnegative_and_consistent(spec, source):
    graph = build_chain(spec, source)
    for tier in Tier.ALL:
        evaluation = evaluate_placement(graph, Placement.uniform(graph, tier), WORLD)
        assert evaluation.latency_s >= 0.0
        assert evaluation.uplink_bytes >= 0.0
        assert evaluation.vehicle_energy_j >= 0.0
        if tier == Tier.VEHICLE:
            assert evaluation.uplink_bytes == 0.0
        else:
            assert evaluation.vehicle_energy_j == 0.0


@given(layers=st.lists(
    st.tuples(st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
              st.floats(min_value=100.0, max_value=2e6, allow_nan=False)),
    min_size=1, max_size=6),
    input_bytes=st.floats(min_value=1e3, max_value=5e6, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_best_split_equals_brute_force_minimum(layers, input_bytes):
    """best_split returns the global optimum over all n+1 cut points."""
    profiles = [LayerProfile(f"l{i}", g, b) for i, (g, b) in enumerate(layers)]
    decision = best_split(profiles, WORLD, input_bytes)
    # Brute force: the decision's latency must equal the minimum over cuts,
    # which we recompute by re-running best_split on each forced prefix...
    # simpler: ensure latency <= both envelopes and every single-cut cost.
    from repro.offload.layersplit import SplitDecision, _compute_time
    from repro.hw import WorkloadClass as WC

    vehicle = WORLD.vehicle.best_processor_for(WC.DNN)
    remote = WORLD.edges[0].best_processor_for(WC.DNN)
    link = WORLD.links.between(Tier.VEHICLE, Tier.EDGE)
    result_bytes = profiles[-1].output_bytes
    for cut in range(len(profiles) + 1):
        local = _compute_time(vehicle, sum(p.gflop for p in profiles[:cut]), WC.DNN)
        if cut == len(profiles):
            candidate = local
        else:
            uplink = input_bytes if cut == 0 else profiles[cut - 1].output_bytes
            remote_s = _compute_time(remote, sum(p.gflop for p in profiles[cut:]), WC.DNN)
            candidate = (local + link.transfer_time(uplink)
                         + link.transfer_time(result_bytes) + remote_s)
        assert decision.latency_s <= candidate + 1e-9


# -- CAN codec -------------------------------------------------------------------

can_values = st.fixed_dictionaries({
    "a": st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    "b": st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
})


@given(values=can_values)
@settings(max_examples=200)
def test_can_roundtrip_within_quantization(values):
    spec = CanMessageSpec(
        can_id=0x10, name="m",
        signals=(
            CanSignal("a", start_bit=0, length=12, scale=0.05),
            CanSignal("b", start_bit=12, length=12, scale=0.05, offset=-60.0),
        ),
    )
    decoded = spec.decode(spec.encode(values))
    for name, value in values.items():
        signal = next(s for s in spec.signals if s.name == name)
        clamped = min(max(value, signal.offset),
                      signal.offset + signal.raw_max * signal.scale)
        assert abs(decoded[name] - clamped) <= signal.scale / 2 + 1e-9


# -- firewall ---------------------------------------------------------------------

packet_strategy = st.builds(
    PacketMeta,
    interface=st.sampled_from(Interface.ALL),
    direction=st.sampled_from(Direction.ALL),
    peer=st.sampled_from(["cav-1", "cloud.openvdap.org", "attacker", "paired:x"]),
    service=st.sampled_from(
        ["safety-beacon", "obd-diagnostics", "model-update", "weather"]
    ),
)


@given(packets=st.lists(packet_strategy, min_size=1, max_size=30))
@settings(max_examples=100)
def test_firewall_decisions_match_first_match_semantics(packets):
    """The engine's verdicts equal a reference first-match interpreter."""
    rules = Firewall.vehicle_default().rules
    firewall = Firewall(rules=list(rules))
    established = set()
    for packet in packets:
        verdict = firewall.permits(packet)
        expected = None
        for rule in rules:
            if rule.matches(packet):
                expected = rule.action == "allow"
                break
        key = (packet.interface, packet.peer, packet.service)
        if expected is None:
            if packet.direction == Direction.OUT:
                expected = True
                established.add(key)
            else:
                expected = key in established
        elif expected and packet.direction == Direction.OUT:
            established.add(key)
        assert verdict == expected


@given(spec=chain_strategy,
       source=st.floats(min_value=0.0, max_value=5e6, allow_nan=False),
       tier_choice=st.lists(st.sampled_from(Tier.ALL), min_size=4, max_size=4))
@settings(max_examples=40, deadline=None)
def test_executed_latency_equals_analytic_for_any_chain_placement(
    spec, source, tier_choice
):
    """For a single uncontended job, the distributed executor's simulated
    latency equals the analytic evaluation for every placement of every
    chain -- the cross-validation invariant of the two models."""
    from repro.offload import DistributedExecutor
    from repro.sim import Simulator

    graph = build_chain(spec, source)
    assignment = {
        name: tier_choice[i % len(tier_choice)]
        for i, name in enumerate(graph.task_names)
    }
    placement = Placement(assignment)
    world = build_default_world()
    analytic = evaluate_placement(graph, placement, world)
    sim = Simulator()
    executor = DistributedExecutor(sim, world)
    proc = executor.submit(graph, placement)
    sim.run()
    assert proc.value.latency_s == pytest.approx(analytic.latency_s, rel=1e-9)

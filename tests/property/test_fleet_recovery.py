"""Property-based tests (hypothesis) for fleet crash recovery.

The substrate's headline contract: killing any worker at **any** barrier,
in either kill phase, must recover -- via respawn from seed plus journal
replay -- to exactly the per-vehicle event-trace hashes an uncrashed run
produces.  Hypothesis sweeps the crash point; the reference run is
computed once per process (same config every example).

Each example spawns real worker processes, so the fleet is kept tiny
(4 vehicles, 2 partitions, 4 barriers) and the example budget small.
"""

from dataclasses import replace
from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import KillPhase, KillPlan
from repro.fleet import FleetConfig, FleetCoordinator, run_single_process

BASE = FleetConfig(seed=21, vehicles=4, partitions=2, duration_s=4.0,
                   barrier_deadline_s=60.0)
BARRIER_COUNT = len(BASE.barriers())


@lru_cache(maxsize=1)
def reference():
    return run_single_process(BASE)


@given(
    partition=st.integers(min_value=0, max_value=BASE.partitions - 1),
    barrier_index=st.integers(min_value=0, max_value=BARRIER_COUNT - 1),
    phase=st.sampled_from(KillPhase.ALL),
)
@settings(max_examples=10, deadline=None)
def test_any_crash_point_recovers_to_the_uncrashed_trace(
    partition, barrier_index, phase
):
    killed = replace(
        BASE, kill_plan=KillPlan.single(partition, barrier_index, phase)
    )
    with FleetCoordinator(killed) as coordinator:
        result = coordinator.run()
    assert result.stats.respawns == 1
    assert result.vehicle_hashes == reference().vehicle_hashes
    assert result.metrics == reference().metrics
    assert result.stats.events_fired == reference().stats.events_fired

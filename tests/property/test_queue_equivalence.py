"""CalendarQueue vs HeapQueue: pop-for-pop equivalence (hypothesis).

The scheduler API contract (`repro.sim.queues`): every backend releases
entries in ascending ``(when, priority, seq)`` order, with ``seq`` as the
FIFO tiebreak that makes trace hashes a pure function of the schedule.
These properties drive both backends through randomized interleavings of
push / pop / remove -- including bursts of same-timestamp events and
mid-queue cancellations -- and require the full ``(when, priority, seq,
event)`` pop sequences to be identical.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.queues import CalendarQueue, HeapQueue, make_queue

# Timestamps are drawn from a coarse lattice so same-`when` collisions
# (the FIFO-tiebreak case) occur constantly, plus a wide tail so the
# calendar has to resize its bucket width.
whens = st.one_of(
    st.integers(min_value=0, max_value=8).map(lambda k: k * 0.25),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
)
priorities = st.integers(min_value=-2, max_value=2)
schedules = st.lists(st.tuples(whens, priorities), min_size=0, max_size=80)


def _push_all(schedule):
    """Feed one schedule to both backends; seq is the push index."""
    heap, calendar = HeapQueue(), CalendarQueue()
    for seq, (when, priority) in enumerate(schedule):
        heap.push(when, priority, seq, f"ev{seq}")
        calendar.push(when, priority, seq, f"ev{seq}")
    return heap, calendar


def _drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


@given(schedule=schedules)
@settings(max_examples=200)
def test_backends_pop_identical_sequences(schedule):
    """Identical pushes => identical (when, priority, seq, event) pops."""
    heap, calendar = _push_all(schedule)
    assert len(heap) == len(calendar) == len(schedule)
    assert heap.peek() == calendar.peek()  # vdaplint: disable=FLT001
    assert _drain(heap) == _drain(calendar)
    assert not heap and not calendar


@given(schedule=schedules.filter(len),
       removals=st.lists(st.integers(min_value=0, max_value=10 ** 9),
                         min_size=1, max_size=20))
@settings(max_examples=200)
def test_backends_agree_under_mid_queue_removal(schedule, removals):
    """remove() hits the same entries and leaves identical residues."""
    heap, calendar = _push_all(schedule)
    for pick in removals:
        when, priority = schedule[pick % len(schedule)]
        seq = pick % len(schedule)
        assert heap.remove(when, priority, seq) == calendar.remove(
            when, priority, seq
        )
        # A second remove of the same key must miss on both backends.
        assert heap.remove(when, priority, seq) is False
        assert calendar.remove(when, priority, seq) is False
        assert len(heap) == len(calendar)
        assert heap.peek() == calendar.peek()  # vdaplint: disable=FLT001
    assert _drain(heap) == _drain(calendar)


@given(schedule=schedules,
       pop_points=st.lists(st.booleans(), min_size=0, max_size=80))
@settings(max_examples=200)
def test_backends_agree_with_interleaved_pops(schedule, pop_points):
    """Pops interleaved with pushes (the kernel's actual access pattern).

    Later pushes may land *earlier* than entries already popped from the
    lattice tail -- exactly what a simulator does when a fired event
    schedules new work; both backends must still agree pop-for-pop.
    """
    heap, calendar = HeapQueue(), CalendarQueue()
    pops = []
    for seq, (when, priority) in enumerate(schedule):
        heap.push(when, priority, seq, seq)
        calendar.push(when, priority, seq, seq)
        if seq < len(pop_points) and pop_points[seq] and heap:
            pops.append((heap.pop(), calendar.pop()))
    for a, b in pops:
        assert a == b
    assert _drain(heap) == _drain(calendar)


@given(schedule=schedules)
@settings(max_examples=50)
def test_iteration_matches_pop_order_without_draining(schedule):
    """__iter__ previews pop order and must not disturb the queue."""
    heap, calendar = _push_all(schedule)
    preview_h, preview_c = list(heap), list(calendar)
    assert preview_h == preview_c
    assert len(heap) == len(schedule)  # iteration was non-destructive
    assert _drain(calendar) == preview_c


def test_make_queue_resolves_both_backends():
    assert isinstance(make_queue("heap"), HeapQueue)
    assert isinstance(make_queue("calendar"), CalendarQueue)

"""Property-based tests (hypothesis) for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, RngRegistry, Simulator, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=100)
def test_events_fire_in_nondecreasing_time_order(delays):
    """Whatever the schedule, the clock never runs backwards."""
    sim = Simulator()
    fired = []

    def mk(delay):
        def proc(sim):
            yield sim.timeout(delay)
            fired.append(sim.now)

        return proc

    for delay in delays:
        sim.process(mk(delay)(sim))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    # Exact clock equality is the property under test.
    assert sim.now == max(delays)  # vdaplint: disable=FLT001


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=30),
       cut=st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
@settings(max_examples=100)
def test_run_until_is_a_clean_partition(delays, cut):
    """run(until=t) fires exactly the events with time <= t."""
    sim = Simulator()
    fired = []

    def mk(delay):
        def proc(sim):
            yield sim.timeout(delay)
            fired.append(delay)

        return proc

    for delay in delays:
        sim.process(mk(delay)(sim))
    sim.run(until=cut)
    assert sorted(fired) == sorted(d for d in delays if d <= cut)
    sim.run()
    assert sorted(fired) == sorted(delays)


@given(capacity=st.integers(min_value=1, max_value=8),
       durations=st.lists(st.floats(min_value=0.01, max_value=10.0,
                                    allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=60)
def test_resource_never_exceeds_capacity(capacity, durations):
    """Concurrent holders never exceed capacity; everyone eventually runs."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    active = [0]
    peak = [0]
    done = [0]

    def worker(sim, hold):
        req = res.request()
        yield req
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        yield sim.timeout(hold)
        active[0] -= 1
        res.release(req)
        done[0] += 1

    for hold in durations:
        sim.process(worker(sim, hold))
    sim.run()
    assert peak[0] <= capacity
    assert done[0] == len(durations)
    assert res.count == 0 and res.queue_length == 0


@given(items=st.lists(st.integers(), min_size=0, max_size=50))
@settings(max_examples=100)
def test_store_is_lossless_and_fifo(items):
    sim = Simulator()
    store = Store(sim)
    for item in items:
        store.put(item)
    received = [store.get() for _ in items]
    sim.run()
    assert [event.value for event in received] == items


@given(seed=st.integers(min_value=0, max_value=2**31),
       names=st.lists(st.text(min_size=1, max_size=12), min_size=1,
                      max_size=6, unique=True))
@settings(max_examples=50)
def test_rng_streams_reproducible_regardless_of_creation_order(seed, names):
    """Stream contents depend only on (seed, name), not creation order."""
    forward = RngRegistry(seed)
    backward = RngRegistry(seed)
    draws_fwd = {}
    for name in names:
        draws_fwd[name] = list(forward.stream(name).integers(0, 10**9, 4))
    for name in reversed(names):
        assert list(backward.stream(name).integers(0, 10**9, 4)) == draws_fwd[name]

"""Property-based tests for the NN compression stack and the DDI stores."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ddi import DiskDB, MemDB, Record
from repro.nn import kmeans_1d, make_mlp, measure, prune, quantize

_COUNTER = [0]


@given(sparsity=st.floats(min_value=0.0, max_value=0.95, allow_nan=False),
       seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=60)
def test_prune_invariants(sparsity, seed):
    """Pruning hits the requested sparsity, preserves shapes, keeps the
    largest magnitudes, and masks match the zero pattern."""
    net = make_mlp(6, (24,), 3, seed=seed)
    shapes = [arr.shape for _l, _n, arr in net.parameters()]
    masks = prune(net, sparsity)
    assert [arr.shape for _l, _n, arr in net.parameters()] == shapes
    for _layer, name, arr in net.parameters():
        if name != "W":
            continue
        # prune() zeros floor(sparsity * size) weights (ties may add more).
        expected_zeros = int(sparsity * arr.size)
        assert (arr == 0).sum() >= expected_zeros
        mask = masks[id(arr)]
        assert ((arr == 0) | (mask == 1)).all()


@given(bits=st.integers(min_value=1, max_value=8),
       seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=40)
def test_quantize_respects_codebook_size(bits, seed):
    net = make_mlp(6, (24,), 3, seed=seed)
    prune(net, 0.3)
    quantize(net, bits)
    for _layer, name, arr in net.parameters():
        if name == "W":
            assert len(np.unique(arr[arr != 0.0])) <= 2**bits


@given(sparsity=st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
       bits=st.integers(min_value=2, max_value=8))
@settings(max_examples=40)
def test_measure_compressed_size_decreases_with_sparsity_and_bits(sparsity, bits):
    net = make_mlp(8, (32,), 4, seed=0)
    prune(net, sparsity)
    report = measure(net, bits=bits)
    # For tiny nets the fixed codebooks can dominate; bound by original
    # plus the codebook overhead rather than assuming net shrinkage.
    codebook_cap = 2 * (2**bits) * 4.0
    assert 0 < report.compressed_bytes <= report.original_bytes + codebook_cap
    assert report.nonzero_weights <= report.total_weights
    # Tighter compression (more sparsity) never increases the size.
    net2 = make_mlp(8, (32,), 4, seed=0)
    prune(net2, min(0.95, sparsity + 0.05))
    report2 = measure(net2, bits=bits)
    assert report2.compressed_bytes <= report.compressed_bytes + 1e-9


@given(values=st.lists(st.floats(min_value=-100, max_value=100,
                                 allow_nan=False), min_size=1, max_size=200),
       k=st.integers(min_value=1, max_value=16))
@settings(max_examples=100)
def test_kmeans_centroids_within_range_and_assignment_valid(values, k):
    arr = np.array(values)
    centroids, assignment = kmeans_1d(arr, k)
    assert len(assignment) == len(arr)
    assert assignment.max(initial=0) < max(1, len(centroids))
    if len(centroids):
        assert centroids.min() >= arr.min() - 1e-9
        assert centroids.max() <= arr.max() + 1e-9


@given(entries=st.lists(
    st.tuples(st.text(min_size=1, max_size=8), st.integers(), st.floats(
        min_value=0.1, max_value=100.0, allow_nan=False)),
    min_size=1, max_size=40),
    probe_time=st.floats(min_value=0.0, max_value=200.0, allow_nan=False))
@settings(max_examples=100)
def test_memdb_ttl_semantics(entries, probe_time):
    """A key is readable iff its (latest) TTL has not elapsed."""
    now = [0.0]
    db = MemDB(lambda: now[0], default_ttl_s=1000.0, max_entries=10_000)
    latest: dict[str, float] = {}
    for key, value, ttl in entries:
        db.put(key, value, ttl_s=ttl)
        latest[key] = ttl
    now[0] = probe_time
    for key, ttl in latest.items():
        value = db.get(key)
        if probe_time < ttl:
            assert value is not None
        else:
            assert value is None


@given(records=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
              st.floats(min_value=-500.0, max_value=500.0, allow_nan=False)),
    min_size=1, max_size=60),
    t0=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    span=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False))
@settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_diskdb_query_equals_brute_force(records, t0, span, tmp_path):
    """Range queries after arbitrary interleaved writes = brute-force scan,
    and everything survives a close/reopen."""
    # tmp_path is shared across hypothesis examples: make each DB unique.
    _COUNTER[0] += 1
    root = str(tmp_path / f"db-{_COUNTER[0]}")
    db = DiskDB(root)
    for i, (t, x) in enumerate(records):
        db.put(Record("s", t, x, 0.0, {"i": i}))
    t1 = t0 + span
    got = [(r.timestamp, r.payload["i"]) for r in db.query("s", t0, t1)]
    expected = sorted(
        (t, i) for i, (t, _x) in enumerate(records) if t0 <= t < t1
    )
    assert sorted(got) == expected
    db.close()
    reopened = DiskDB(root)
    again = [(r.timestamp, r.payload["i"]) for r in reopened.query("s", t0, t1)]
    assert sorted(again) == expected
    reopened.close()

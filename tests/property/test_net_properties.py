"""Property-based tests for the network substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    GilbertElliott,
    LinkModel,
    RtpPacketizer,
    FrameLossAccounting,
    VideoProfile,
    VideoStream,
)


@given(bandwidth=st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
       rtt=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
       loss=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
       nbytes=st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
@settings(max_examples=200)
def test_link_transfer_time_properties(bandwidth, rtt, loss, nbytes):
    link = LinkModel(name="l", bandwidth_mbps=bandwidth, rtt_s=rtt, loss_rate=loss)
    t = link.transfer_time(nbytes)
    assert t >= rtt / 2.0
    # Monotone in size.
    assert link.transfer_time(nbytes * 2) >= t
    # Reliable transfer never beats best-effort.
    assert t >= link.transfer_time(nbytes, reliable=False) - 1e-12


@given(loss=st.floats(min_value=0.0, max_value=0.6, allow_nan=False),
       burst=st.floats(min_value=1.0, max_value=30.0, allow_nan=False),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=40)
def test_gilbert_elliott_stationary_rate(loss, burst, seed):
    channel = GilbertElliott(np.random.default_rng(seed), loss, burst)
    n = 40_000
    observed = sum(channel.step() for _ in range(n)) / n
    # A target beyond burst/(1+burst) clamps to the achievable rate.
    target = channel.achievable_loss_rate
    assert target <= loss + 1e-12
    slack = 0.02 + 4.0 * np.sqrt(max(target * (1 - target), 0.01) * burst / n)
    assert abs(observed - target) <= slack


@given(frame_bytes=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
       mtu=st.integers(min_value=100, max_value=9000))
@settings(max_examples=200)
def test_packetizer_conserves_bytes(frame_bytes, mtu):
    packets = RtpPacketizer(mtu=mtu).packetize(0, frame_bytes)
    total = sum(p.payload_bytes for p in packets)
    assert total == int(np.ceil(frame_bytes))
    assert all(p.payload_bytes <= mtu for p in packets)
    assert sum(p.marker for p in packets) == 1 and packets[-1].marker


@given(bitrate=st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
       duration=st.floats(min_value=2.0, max_value=60.0, allow_nan=False))
@settings(max_examples=50)
def test_video_stream_conserves_bitrate_budget(bitrate, duration):
    profile = VideoProfile(name="p", width=1280, height=720, bitrate_mbps=bitrate)
    frames = list(VideoStream(profile, duration).frames())
    total_bytes = sum(f.nbytes for f in frames)
    # Whole GOPs carry exactly the budget; allow the partial final GOP.
    expected = bitrate * 1e6 / 8.0 * duration
    assert total_bytes <= expected * 1.15
    assert total_bytes >= expected * 0.8
    # Exactly one key frame per GOP.
    keys = [f for f in frames if f.is_key]
    assert len(keys) == len({f.gop_index for f in frames})


@given(loss_pattern=st.lists(st.booleans(), min_size=1, max_size=400),
       seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=60)
def test_frame_loss_at_least_direct_loss_and_bounded(loss_pattern, seed):
    """Accounting invariants: packet totals conserved; direct-lost frames
    <= frame loss rate <= 1; GOP policy only ever *adds* lost frames."""
    rng = np.random.default_rng(seed)
    profile = VideoProfile(name="p", width=640, height=480, bitrate_mbps=2.0)
    frames = list(VideoStream(profile, 4.0).frames())
    acc = FrameLossAccounting()
    direct_lost = 0
    sent = 0
    lost = 0
    for i, frame in enumerate(frames):
        n_packets = 1 + int(rng.integers(0, 4))
        drop = loss_pattern[i % len(loss_pattern)]
        results = [not drop] * n_packets
        if drop:
            direct_lost += 1
            lost += n_packets
        sent += n_packets
        acc.record_frame(frame, results)
    assert acc.packets_sent == sent and acc.packets_lost == lost
    direct_rate = direct_lost / len(frames)
    assert acc.frame_loss_rate >= direct_rate - 1e-12
    assert 0.0 <= acc.frame_loss_rate <= 1.0
    assert 0.0 <= acc.packet_loss_rate <= 1.0

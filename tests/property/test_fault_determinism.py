"""Property-based tests (hypothesis) for fault-plan determinism.

The fault subsystem's core contract: a fault plan is a pure function of
(seed, horizon, component inventory).  Identical seeds must produce
byte-identical traces -- that is what makes an ablation ("same drive,
resilience on vs off") a controlled experiment rather than two different
storms.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import DeterminismSanitizer
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.sim import Simulator

PROCESSOR_POOL = ["vehicle/cpu", "vehicle/gpu", "edge/gpu", "cloud/xeon"]
LINK_POOL = ["edge-vehicle", "cloud-vehicle", "cloud-edge"]

inventories = st.fixed_dictionaries(
    {
        "processors": st.lists(
            st.sampled_from(PROCESSOR_POOL), unique=True, max_size=4
        ),
        "links": st.lists(st.sampled_from(LINK_POOL), unique=True, max_size=3),
        "services": st.lists(
            st.sampled_from(["adas", "kidnapper-search"]), unique=True, max_size=2
        ),
        "collectors": st.lists(
            st.sampled_from(["obd", "camera"]), unique=True, max_size=2
        ),
    }
)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       horizon=st.floats(min_value=1.0, max_value=3_600.0, allow_nan=False),
       inventory=inventories)
@settings(max_examples=50, deadline=None)
def test_identical_seeds_produce_byte_identical_traces(seed, horizon, inventory):
    first = FaultPlan.generate(seed=seed, horizon_s=horizon, **inventory)
    second = FaultPlan.generate(seed=seed, horizon_s=horizon, **inventory)
    assert first.trace() == second.trace()
    assert first.to_json() == second.to_json()
    assert first == second


@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       inventory=inventories)
@settings(max_examples=25, deadline=None)
def test_different_seeds_produce_different_traces(seed, inventory):
    horizon = 3_600.0  # long enough that a non-empty inventory draws faults
    first = FaultPlan.generate(seed=seed, horizon_s=horizon, **inventory)
    second = FaultPlan.generate(seed=seed + 1, horizon_s=horizon, **inventory)
    if len(first) == 0 and len(second) == 0:
        # Empty inventory: both plans are vacuously empty, and equal.
        assert not any(inventory.values())
        return
    assert first.events != second.events


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_injector_replay_is_deterministic(seed):
    """Replaying one plan on two fresh simulators logs identical traces."""
    plan = FaultPlan.generate(
        seed=seed,
        horizon_s=600.0,
        processors=PROCESSOR_POOL,
        links=LINK_POOL,
        cloud=True,
    )
    traces = []
    sanitizers = []
    for _ in range(2):
        sim = Simulator()
        sanitizer = DeterminismSanitizer(sim)
        injector = FaultInjector(sim, plan)
        sim.run()
        traces.append(injector.trace_text())
        sanitizers.append(sanitizer)
    assert traces[0] == traces[1]
    # The runtime sanitizer cross-checks the injector's own trace: the
    # full event-loop schedule must also be bit-identical across replays.
    assert sanitizers[0].trace_hash == sanitizers[1].trace_hash
    assert sanitizers[0].diff(sanitizers[1]) is None
    # Every outage onset in the plan appears as a logged down-transition
    # (slowdowns and degradations log under their own labels).
    outage_kinds = (
        FaultKind.PROCESSOR_DOWN,
        FaultKind.LINK_DOWN,
        FaultKind.CLOUD_UNREACHABLE,
    )
    outages = sum(1 for e in plan.events if e.kind in outage_kinds)
    assert traces[0].count(" down ") == outages

"""Property-based tests (hypothesis) for partition-plan invariance.

The planner's safety contract: a partition plan is *shard geometry*, not
behaviour.  Whatever costs the planner believed and however unevenly it
sharded -- including empty shards -- every vehicle's event-trace hash and
the merged metrics must be byte-identical to the single-process
reference.  Hypothesis sweeps random cost vectors and partition counts;
``shard_vehicles`` turns them into LPT plans and ``run_inline`` executes
the full coordinator round protocol in one process, so examples stay
cheap enough to sweep.
"""

from dataclasses import replace
from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FleetConfig, run_inline, run_single_process, shard_vehicles

BASE = FleetConfig(seed=13, vehicles=6, partitions=1, duration_s=3.0)


@lru_cache(maxsize=4)
def reference(workload: str):
    return run_single_process(replace(BASE, workload=workload))


costs_strategy = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    min_size=BASE.vehicles, max_size=BASE.vehicles,
)


@given(
    costs=costs_strategy,
    partitions=st.integers(min_value=1, max_value=4),
    workload=st.sampled_from(["uniform", "skewed"]),
)
@settings(max_examples=10, deadline=None)
def test_any_cost_balanced_plan_reproduces_the_reference(
    costs, partitions, workload
):
    plan = tuple(shard_vehicles(BASE.vehicles, partitions, costs))
    config = replace(BASE, partitions=partitions, plan=plan,
                     workload=workload)
    result = run_inline(config)
    golden = reference(workload)
    assert result.vehicle_hashes == golden.vehicle_hashes
    assert result.metrics == golden.metrics
    assert result.stats.events_fired == golden.stats.events_fired


@given(partitions=st.integers(min_value=1, max_value=4))
@settings(max_examples=4, deadline=None)
def test_round_robin_and_planned_runs_agree(partitions):
    rr = run_inline(replace(BASE, partitions=partitions))
    planned = run_inline(replace(
        BASE, partitions=partitions,
        plan=tuple(shard_vehicles(BASE.vehicles, partitions,
                                  [1.0] * BASE.vehicles)),
    ))
    assert rr.vehicle_hashes == planned.vehicle_hashes
    assert rr.metrics == planned.metrics

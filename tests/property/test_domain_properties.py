"""Property-based tests for mobility, privacy, streaming, and OCR."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.infotainment import StreamingSession
from repro.edgeos import LocationFuzzer, PseudonymManager
from repro.topology import SpeedProfile
from repro.vision.ocr import read_plate, render_plate

knots_strategy = st.lists(
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
    min_size=1, max_size=8,
).map(lambda speeds: [(10.0 * i, s) for i, s in enumerate(speeds)])


@given(knots=knots_strategy,
       t1=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
       dt=st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
@settings(max_examples=150)
def test_position_is_nondecreasing_for_nonnegative_speeds(knots, t1, dt):
    profile = SpeedProfile(knots)
    assert profile.position(t1 + dt) >= profile.position(t1) - 1e-9


@given(knots=knots_strategy,
       t=st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
@settings(max_examples=150)
def test_speed_stays_within_knot_envelope(knots, t):
    profile = SpeedProfile(knots)
    speeds = [s for _t, s in knots]
    assert min(speeds) - 1e-9 <= profile.speed(t) <= max(speeds) + 1e-9


@given(vehicle=st.text(min_size=1, max_size=10),
       period=st.floats(min_value=1.0, max_value=3600.0, allow_nan=False),
       t=st.floats(min_value=0.0, max_value=100_000.0, allow_nan=False))
@settings(max_examples=150)
def test_pseudonym_verifies_at_issue_time(vehicle, period, t):
    manager = PseudonymManager(vehicle, b"secret", rotation_period_s=period)
    token = manager.pseudonym(t)
    assert manager.verify(token, t)
    assert len(token) == 16


@given(grid=st.floats(min_value=1.0, max_value=10_000.0, allow_nan=False),
       x=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
       y=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
@settings(max_examples=200)
def test_location_fuzzing_error_is_bounded(grid, x, y):
    fuzzer = LocationFuzzer(grid_m=grid)
    gx, gy = fuzzer.generalize(x, y)
    displacement = ((gx - x) ** 2 + (gy - y) ** 2) ** 0.5
    assert displacement <= fuzzer.error_bound_m() + 1e-6
    # Idempotence: generalizing a cell centre returns itself.
    assert fuzzer.generalize(gx, gy) == (gx, gy)


@given(rates=st.lists(st.floats(min_value=0.5, max_value=50.0,
                                allow_nan=False), min_size=1, max_size=10),
       duration=st.floats(min_value=4.0, max_value=240.0, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_streaming_session_always_plays_requested_duration(rates, duration):
    trace = [(20.0 * i, r) for i, r in enumerate(rates)]
    report = StreamingSession(trace).play(duration)
    # Enough chunks were fetched to cover the content.
    assert report.chunks_played * 4.0 >= duration - 4.0
    assert report.startup_delay_s > 0.0
    assert report.rebuffer_seconds >= 0.0


@given(text=st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-",
                    min_size=1, max_size=10))
@settings(max_examples=150)
def test_ocr_noiseless_roundtrip_for_any_plate(text):
    assert read_plate(render_plate(text)) == text

"""Tests for the application layer: diagnostics, ADAS, infotainment, AMBER, collab."""

import numpy as np
import pytest

from repro.apps import (
    AmberSearchService,
    DiagnosticsService,
    Platoon,
    PlateSighting,
    StreamingSession,
    generate_sightings,
    make_adas_service,
    make_amber_service,
)
from repro.apps.adas import AdasService
from repro.ddi import Record
from repro.edgeos import ElasticManager
from repro.topology import Tier, build_default_world
from repro.vision import road_scene, train_haar_detector, vehicle_patch, background_patch


def obd(t, **payload):
    defaults = {"engine_temp_c": 90.0, "tire_pressure_kpa": 230.0,
                "battery_v": 13.8, "rpm": 2000.0}
    defaults.update(payload)
    return Record(stream="obd", timestamp=t, x_m=0.0, y_m=0.0, payload=defaults)


# -- diagnostics -----------------------------------------------------------------


def test_diagnostics_healthy_record_raises_nothing():
    service = DiagnosticsService()
    assert service.check(obd(1.0)) == []


def test_diagnostics_rules_fire():
    service = DiagnosticsService()
    faults = service.check(obd(1.0, engine_temp_c=110.0, tire_pressure_kpa=180.0))
    codes = {f.code for f in faults}
    assert codes == {"P0217", "C0750"}
    assert any(f.severity == "critical" for f in faults)


def test_diagnostics_predicts_drift_to_fault():
    service = DiagnosticsService()
    # Tire pressure dropping 1 kPa per minute from 230: hits 190 in 40 min.
    records = [obd(60.0 * i, tire_pressure_kpa=230.0 - i) for i in range(10)]
    predictions = service.predict(records, horizon_s=4 * 3600)
    channels = {p.channel for p in predictions}
    assert "tire_pressure_kpa" in channels
    tire = next(p for p in predictions if p.channel == "tire_pressure_kpa")
    # ~31 minutes left from the last sample (221 kPa at t=540).
    assert tire.eta_s == pytest.approx(31 * 60, rel=0.2)


def test_diagnostics_prediction_ignores_stable_channels():
    service = DiagnosticsService()
    records = [obd(60.0 * i) for i in range(10)]
    assert service.predict(records) == []


def test_diagnostics_prediction_needs_history():
    service = DiagnosticsService()
    assert service.predict([obd(0.0)]) == []


# -- ADAS -----------------------------------------------------------------------


@pytest.fixture(scope="module")
def adas():
    rng = np.random.default_rng(0)
    positives = [vehicle_patch(24, rng) for _ in range(50)]
    negatives = [background_patch(24, rng) for _ in range(50)]
    haar = train_haar_detector(positives, negatives, rounds=12, rng=rng)
    return AdasService(haar)


def test_adas_analyzes_scene(adas):
    img, _truth = road_scene(width=320, height=240,
                             rng=np.random.default_rng(1), vehicle_count=1)
    report = adas.analyze(img)
    assert report.lanes_found
    assert report.ops > 0


def test_adas_forward_vehicle_alert_on_close_vehicle(adas):
    rng = np.random.default_rng(3)
    img, truth = road_scene(width=320, height=240, rng=rng, vehicle_count=1)
    report = adas.analyze(img)
    # A vehicle occupying >5% of the frame should raise the forward alert
    # whenever the detector saw it.
    vx, vy, vw, vh = truth.vehicle_boxes[0]
    if report.detections and vw * vh / (320 * 240) > 0.05:
        assert any(a.kind == "forward_vehicle" for a in report.alerts)


def test_adas_polymorphic_service_pipelines():
    service = make_adas_service()
    assert {p.name for p in service.pipelines} == {
        "onboard", "detect-on-edge", "perception-on-edge"
    }
    # Capture must stay on the vehicle in every pipeline (it's the sensor).
    for pipeline in service.pipelines:
        assert pipeline.assignment["capture"] == Tier.VEHICLE


def test_adas_service_schedulable_by_elastic_manager():
    world = build_default_world()
    manager = ElasticManager()
    service = make_adas_service(deadline_s=1.0)
    manager.register(service)
    choice = manager.choose(service, world)
    assert not choice.hung


# -- infotainment -----------------------------------------------------------------


def test_streaming_good_network_plays_high_quality_without_stalls():
    session = StreamingSession([(0.0, 20.0)])
    report = session.play(120.0)
    assert report.rebuffer_events == 0
    assert report.quality_counts.get("1080p", 0) > report.chunks_played * 0.8


def test_streaming_poor_network_degrades_quality():
    good = StreamingSession([(0.0, 20.0)]).play(120.0)
    poor = StreamingSession([(0.0, 1.6)]).play(120.0)
    assert poor.mean_quality_index < good.mean_quality_index


def test_streaming_bandwidth_drop_causes_rebuffer_or_downshift():
    # Collapse to below the lowest rung mid-stream.
    session = StreamingSession([(0.0, 8.0), (30.0, 0.4)])
    report = session.play(120.0)
    assert report.rebuffer_events > 0
    assert report.quality_counts.get("360p", 0) > 0


def test_streaming_validation():
    with pytest.raises(ValueError):
        StreamingSession([])
    with pytest.raises(ValueError):
        StreamingSession([(0.0, -1.0)])
    with pytest.raises(ValueError):
        StreamingSession([(0.0, 5.0)]).play(0.0)


# -- AMBER search -------------------------------------------------------------------


def test_amber_finds_target_plate():
    rng = np.random.default_rng(0)
    service = AmberSearchService(target_plate="KIDNAP-1")
    sightings = generate_sightings(300, "KIDNAP-1", rng)
    for sighting in sightings:
        service.process(sighting)
    assert service.found
    assert service.hits[0].plate == "KIDNAP-1"
    assert service.gops_spent > 0


def test_amber_low_quality_sighting_misses():
    service = AmberSearchService(target_plate="KIDNAP-1")
    blurry = PlateSighting(time_s=0.0, position_m=0.0, plate="KIDNAP-1", quality=0.1)
    assert service.process(blurry) is None
    assert not service.found


def test_amber_wrong_plate_never_matches():
    service = AmberSearchService(target_plate="KIDNAP-1")
    other = PlateSighting(time_s=0.0, position_m=0.0, plate="XYZ-0001", quality=0.9)
    assert service.process(other) is None


def test_amber_polymorphic_service_shape():
    service = make_amber_service()
    assert {p.name for p in service.pipelines} == {"onboard", "offload-all", "split"}
    split = service.pipeline("split")
    assert split.assignment["motion-detect"] == Tier.VEHICLE
    assert split.assignment["plate-recognize"] == Tier.EDGE


# -- collaboration ------------------------------------------------------------------


def shared_sightings(vehicles=3, per_vehicle=60, overlap=0.7, seed=0):
    """Sighting lists where ``overlap`` of candidates are seen by everyone."""
    rng = np.random.default_rng(seed)
    base = generate_sightings(per_vehicle, "TARGET-1", rng)
    lists = []
    for v in range(vehicles):
        mine = []
        for s in base:
            if rng.random() < overlap:
                # Same candidate, observed slightly later by this vehicle.
                mine.append(PlateSighting(s.time_s + 0.2 * v, s.position_m,
                                          s.plate, s.quality))
            else:
                mine.append(PlateSighting(s.time_s + 0.2 * v,
                                          float(rng.uniform(0, 10_000)),
                                          f"UNIQ-{v}-{len(mine)}", s.quality))
        lists.append(mine)
    return lists


def test_platoon_validation():
    with pytest.raises(ValueError):
        Platoon(0)
    platoon = Platoon(2)
    with pytest.raises(ValueError):
        platoon.run([[]])


def test_collaboration_saves_compute():
    """SIII-C: collaboration avoids repeated recognition of shared candidates."""
    sightings = shared_sightings()
    collab = Platoon(3, collaborate=True).run(sightings)
    solo = Platoon(3, collaborate=False).run(sightings)
    assert collab.gops_spent < solo.gops_spent
    assert collab.recognitions_reused > 0
    assert solo.recognitions_reused == 0
    assert collab.reuse_rate > 0.3


def test_collaboration_publishes_under_pseudonyms():
    platoon = Platoon(2, collaborate=True)
    sightings = shared_sightings(vehicles=2, per_vehicle=20)
    platoon.run(sightings)
    records = platoon.bus.read(
        platoon.vehicles[0].vehicle_id, platoon.vehicles[0].token, "recognized-plates"
    )
    assert records
    for record in records:
        reporter = record.payload["reporter"]
        assert reporter not in ("cav-0", "cav-1")  # raw identity never shared


def test_streaming_download_time_integrates_across_knots():
    """A download starting in a bad second speeds up when the link recovers."""
    session = StreamingSession([(0.0, 1.0), (2.0, 100.0)])
    # 10 Mb starting at t=0: 2 s at 1 Mbps (2 Mb) + 0.08 s at 100 Mbps.
    assert session.download_time(0.0, 10e6) == pytest.approx(2.08)


def test_streaming_over_cellular_substrate_degrades_with_speed():
    """Cross-module: the Fig-2 LTE substrate drives infotainment QoE --
    streaming that is clean while parked falls apart at highway speed."""
    from repro.net import cellular_bandwidth_trace

    def qoe(mph):
        trace = cellular_bandwidth_trace(mph, 300.0,
                                         rng=np.random.default_rng(5))
        return StreamingSession(trace).play(240.0)

    parked = qoe(0)
    highway = qoe(70)
    assert parked.rebuffer_events == 0
    assert highway.rebuffer_events > 5
    assert highway.rebuffer_seconds > parked.rebuffer_seconds

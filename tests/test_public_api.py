"""Guards on the public API surface: exports resolve and are documented."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.analysis",
    "repro.sim",
    "repro.hw",
    "repro.net",
    "repro.topology",
    "repro.nn",
    "repro.vision",
    "repro.vcu",
    "repro.offload",
    "repro.edgeos",
    "repro.ddi",
    "repro.faults",
    "repro.libvdap",
    "repro.apps",
    "repro.workloads",
    "repro.obs",
    "repro.scenario",
    "repro.scenarios",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_every_export_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} exported but missing"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_every_public_callable_is_documented(module_name):
    """Every exported class/function carries a docstring (deliverable (e))."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented exports {undocumented}"


def _walk_all_modules():
    """Every importable module under repro, not just subpackage roots."""
    import pkgutil

    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if not info.name.endswith(".__main__"):
            yield info.name


@pytest.mark.parametrize("module_name", sorted(_walk_all_modules()))
def test_every_declared_name_imports(module_name):
    """__all__ in every module (leaf or package) resolves name-by-name."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), (
            f"{module_name}.__all__ declares {name!r} but importing it fails"
        )


def test_every_module_declares_all():
    """API001's contract, enforced dynamically: public modules export __all__."""
    missing = [
        name
        for name in _walk_all_modules()
        if not hasattr(importlib.import_module(name), "__all__")
    ]
    assert not missing, f"public modules without __all__: {missing}"


def test_every_module_has_a_docstring():
    import os

    root = os.path.dirname(repro.__file__)
    missing = []
    # dirs.sort() pins the walk (and the failure message) deterministically.
    for dirpath, dirs, files in os.walk(root):  # vdaplint: disable=DET004
        dirs.sort()
        for fname in sorted(files):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            with open(path, encoding="utf-8") as fh:
                head = fh.read(400).lstrip()
            if not head.startswith(('"""', "'''", '#!', 'r"""')):
                missing.append(os.path.relpath(path, root))
    assert not missing, f"modules without docstrings: {missing}"


def test_version_exposed():
    assert repro.__version__

"""Tests for the common model library, pBEAM pipeline, and API facade."""

import numpy as np
import pytest

from repro.ddi import DDIService, DiskDB, Record
from repro.edgeos import DataSharingBus
from repro.hw import catalog
from repro.libvdap import (
    ApiError,
    CommonModelLibrary,
    LibVDAP,
    build_pbeam,
    train_cbeam,
)
from repro.libvdap.models import CompressedVariant, ModelEntry
from repro.nn.zoo import SPEC_REGISTRY
from repro.offload import Task, TaskGraph
from repro.sim import Simulator
from repro.topology import build_default_world
from repro.vcu import DSF, MHEP
from repro.hw.processor import WorkloadClass
from repro.workloads import DriverProfile, fleet_dataset


# -- model library ------------------------------------------------------------


def test_library_defaults_present():
    library = CommonModelLibrary()
    names = [e.name for e in library.list()]
    assert "inception_v3" in names and "yolo_v2" in names


def test_library_category_filter():
    library = CommonModelLibrary()
    assert all(e.category == "video" for e in library.list("video"))
    assert library.list("nlp") == []


def test_library_duplicate_and_missing():
    library = CommonModelLibrary()
    with pytest.raises(ValueError):
        library.register(library.get("yolo_v2"))
    with pytest.raises(KeyError):
        library.get("nonexistent")


def test_compressed_variant_is_smaller_and_faster():
    entry = CommonModelLibrary().get("inception_v3")
    assert entry.compressed.size_bytes < entry.full.size_bytes / 5
    mncs = catalog.intel_mncs()
    assert entry.compressed.inference_time_s(mncs) < entry.full.inference_time_s(mncs)


def test_deployable_on_small_device():
    """The paper: full models are 'too large' for the edge; compressed fit."""
    library = CommonModelLibrary()
    mncs = catalog.intel_mncs()  # 0.5 GB of device memory
    entry = library.get("yolo_v2")  # 203 MB full
    assert entry.fits_on(mncs, compressed=True)
    deployable = {e.name for e in library.deployable_on(mncs)}
    assert "yolo_v2" in deployable


# -- pBEAM ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def cbeam_corpus():
    rng = np.random.default_rng(0)
    return fleet_dataset(10, 100, rng)


def test_cbeam_learns_the_fleet(cbeam_corpus):
    x, y = cbeam_corpus
    model = train_cbeam(x, y, epochs=10)
    assert model.accuracy(x, y) > 0.9


def test_pbeam_personalization_gain_for_idiosyncratic_driver(cbeam_corpus):
    """Figure 9's payoff: pBEAM fits the local driver better than cBEAM."""
    x, y = cbeam_corpus
    cbeam = train_cbeam(x, y, epochs=10)
    driver = DriverProfile("outlier", aggressiveness=2.5,
                           speed_preference_mps=4.0, smoothness=0.7)
    result = build_pbeam(cbeam, driver, rng=np.random.default_rng(1))
    assert result.pbeam_accuracy_on_driver > result.cbeam_accuracy_on_driver
    assert result.pbeam_accuracy_on_driver > 0.9


def test_pbeam_download_is_compressed(cbeam_corpus):
    x, y = cbeam_corpus
    cbeam = train_cbeam(x, y, epochs=5)
    dense_bytes = cbeam.size_bytes()
    driver = DriverProfile("d", aggressiveness=1.5)
    result = build_pbeam(cbeam, driver, rng=np.random.default_rng(2))
    assert result.download_bytes < dense_bytes / 3
    assert result.compression.compression_ratio > 3


# -- API facade -------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def api(tmp_path):
    sim = Simulator()
    mhep = MHEP(sim)
    mhep.register(catalog.intel_i7_6700())
    mhep.register(catalog.jetson_tx2_maxp())
    dsf = DSF(sim, mhep)
    ddi = DDIService(FakeClock(), DiskDB(str(tmp_path)))
    sharing = DataSharingBus()
    world = build_default_world()
    return sim, LibVDAP(dsf, ddi, sharing, world=world)


def test_api_list_and_get_models(api):
    _sim, lib = api
    models = lib.call("GET", "/models")
    assert any(m["name"] == "inception_v3" for m in models)
    one = lib.call("GET", "/models/yolo_v2")
    assert one["task"] == "object detection"


def test_api_resources_route(api):
    _sim, lib = api
    resources = lib.call("GET", "/resources")
    assert "Intel i7-6700" in resources


def test_api_task_submission_runs_on_vcu(api):
    sim, lib = api
    graph = TaskGraph.chain("job", [Task("t", 99.75, WorkloadClass.DNN)])
    proc = lib.call("POST", "/tasks", graph=graph)
    sim.run()
    assert proc.value.latency_s == pytest.approx(1.0)


def test_api_offload_planning(api):
    _sim, lib = api
    graph = TaskGraph.chain(
        "heavy",
        [Task("t", 30.0, WorkloadClass.DNN, output_bytes=1000, source_bytes=300_000)],
    )
    decision = lib.call("POST", "/offload/plan", graph=graph, deadline_s=5.0)
    assert decision.meets_deadline


def test_api_data_roundtrip(api):
    _sim, lib = api
    record = Record(stream="obd", timestamp=1.0, x_m=0.0, y_m=0.0,
                    payload={"speed_mps": 10})
    lib.call("POST", "/data", record=record)
    result = lib.call("GET", "/data/obd", t0=0.0, t1=5.0)
    assert len(result.records) == 1


def test_api_topic_roundtrip(api):
    _sim, lib = api
    token = lib.sharing.register_service("svc")
    lib.sharing.create_topic("alerts", readers=["svc"], writers=["svc"])
    lib.call("POST", "/topics/alerts", service="svc", token=token, payload="ping")
    records = lib.call("GET", "/topics/alerts", service="svc", token=token)
    assert [r.payload for r in records] == ["ping"]


def test_api_unknown_route_and_missing_param(api):
    _sim, lib = api
    with pytest.raises(ApiError):
        lib.call("GET", "/nope")
    with pytest.raises(ApiError):
        lib.call("POST", "/tasks")  # graph missing


def test_api_without_world_rejects_offload(tmp_path):
    sim = Simulator()
    mhep = MHEP(sim)
    mhep.register(catalog.intel_i7_6700())
    lib = LibVDAP(DSF(sim, mhep), DDIService(FakeClock(), DiskDB(str(tmp_path))),
                  DataSharingBus(), world=None)
    graph = TaskGraph.chain("g", [Task("t", 1.0, WorkloadClass.DNN)])
    with pytest.raises(ApiError):
        lib.call("POST", "/offload/plan", graph=graph)

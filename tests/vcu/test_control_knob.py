"""Tests for the DSF control knob and remaining VCU surfaces."""

import pytest

from repro.hw import catalog
from repro.libvdap import pbeam_size_report
from repro.nn import make_mlp, prune
from repro.sim import Simulator
from repro.vcu import DSF, MHEP


def platform():
    sim = Simulator()
    mhep = MHEP(sim)
    mhep.register(catalog.intel_i7_6700())
    return sim, mhep, DSF(sim, mhep)


def test_control_knob_grants_exclusive_device_access():
    """Paper SIV-B2: 'DSF also provides the access interfaces of all
    computing resources, which we called control knob.'"""
    sim, mhep, dsf = platform()
    log = []

    def holder(sim):
        grant = dsf.acquire("Intel i7-6700")
        yield grant
        log.append(("held", sim.now))
        yield sim.timeout(5.0)
        dsf.release("Intel i7-6700", grant)

    def contender(sim):
        yield sim.timeout(1.0)
        grant = dsf.acquire("Intel i7-6700")
        yield grant
        log.append(("contender", sim.now))
        dsf.release("Intel i7-6700", grant)

    sim.process(holder(sim))
    sim.process(contender(sim))
    sim.run()
    assert log == [("held", 0.0), ("contender", 5.0)]


def test_control_knob_priority():
    sim, mhep, dsf = platform()
    order = []

    def holder(sim):
        grant = dsf.acquire("Intel i7-6700")
        yield grant
        yield sim.timeout(2.0)
        dsf.release("Intel i7-6700", grant)

    def requester(sim, tag, priority, delay):
        yield sim.timeout(delay)
        grant = dsf.acquire("Intel i7-6700", priority=priority)
        yield grant
        order.append(tag)
        dsf.release("Intel i7-6700", grant)

    sim.process(holder(sim))
    sim.process(requester(sim, "low", 5, 0.5))
    sim.process(requester(sim, "high", 0, 1.0))
    sim.run()
    assert order == ["high", "low"]


def test_unknown_device_raises():
    _sim, mhep, dsf = platform()
    with pytest.raises(KeyError):
        dsf.acquire("Quantum Annealer")
    with pytest.raises(KeyError):
        mhep.device("Quantum Annealer")


def test_dsf_policy_validation():
    sim = Simulator()
    mhep = MHEP(sim)
    with pytest.raises(ValueError):
        DSF(sim, mhep, policy="vibes")


def test_pbeam_size_report_reflects_pruning():
    model = make_mlp(6, (48,), 4, seed=0)
    dense = pbeam_size_report(model, bits=32)
    prune(model, 0.7)
    sparse = pbeam_size_report(model, bits=5)
    assert sparse.compressed_bytes < dense.compressed_bytes
    assert sparse.sparsity == pytest.approx(0.7, abs=0.05)

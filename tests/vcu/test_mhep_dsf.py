"""Tests for mHEP device management and DSF scheduling."""

import pytest

from repro.hw import WorkloadClass, catalog
from repro.offload import Task, TaskGraph
from repro.sim import Simulator
from repro.vcu import DSF, FIRST_LEVEL, MHEP, SECOND_LEVEL, ApplicationProfile, QoSClass


def platform():
    sim = Simulator()
    mhep = MHEP(sim)
    mhep.register(catalog.intel_i7_6700(), level=FIRST_LEVEL)
    mhep.register(catalog.jetson_tx2_maxp(), level=FIRST_LEVEL)
    return sim, mhep, DSF(sim, mhep)


def dnn_job(name="job", gops=10.0):
    return TaskGraph.chain(name, [Task(f"{name}-t", gops, WorkloadClass.DNN)])


def test_register_levels_and_duplicates():
    sim = Simulator()
    mhep = MHEP(sim)
    mhep.register(catalog.intel_mncs(), level=FIRST_LEVEL)
    with pytest.raises(ValueError):
        mhep.register(catalog.intel_mncs())
    with pytest.raises(ValueError):
        mhep.register(catalog.passenger_phone(), level=3)


def test_unregister_marks_offline():
    sim = Simulator()
    mhep = MHEP(sim)
    mhep.register(catalog.passenger_phone(), level=SECOND_LEVEL)
    assert len(mhep.online_devices) == 1
    mhep.unregister("Passenger phone")
    assert mhep.online_devices == []
    with pytest.raises(KeyError):
        mhep.unregister("Passenger phone")


def test_devices_for_workload_filters_capability():
    sim, mhep, _dsf = platform()
    dnn = {d.name for d in mhep.devices_for(WorkloadClass.DNN)}
    assert dnn == {"Intel i7-6700", "Jetson TX2 Max-P"}


def test_profiles_expose_dynamic_state():
    sim, mhep, dsf = platform()
    profiles = mhep.profiles()
    assert profiles["Intel i7-6700"]["queue_length"] == 0
    assert profiles["Jetson TX2 Max-P"]["peak_gops"] == 1330.0


def test_dsf_runs_job_and_records_latency():
    sim, mhep, dsf = platform()
    proc = dsf.submit(dnn_job(gops=99.75))  # exactly 1 s on the TX2 Max-P
    sim.run()
    result = proc.value
    # The GPU is the fastest DNN device: 99.75 / (1330 * 0.075) = 1.0 s.
    assert result.latency_s == pytest.approx(1.0)
    assert result.task_devices["job-t"] == "Jetson TX2 Max-P"


def test_dsf_respects_dependencies():
    sim, mhep, dsf = platform()
    graph = TaskGraph("dag")
    graph.add_task(Task("a", 99.75, WorkloadClass.DNN))
    graph.add_task(Task("b", 99.75, WorkloadClass.DNN))
    graph.add_edge("a", "b")
    proc = dsf.submit(graph)
    sim.run()
    result = proc.value
    assert result.task_finish["b"] > result.task_finish["a"]
    assert result.latency_s == pytest.approx(2.0)


def test_dsf_spreads_parallel_tasks_across_devices():
    sim, mhep, dsf = platform()
    graph = TaskGraph("parallel")
    for i in range(2):
        graph.add_task(Task(f"t{i}", 50.0, WorkloadClass.DNN))
    proc = dsf.submit(graph)
    sim.run()
    devices = set(proc.value.task_devices.values())
    # With the GPU busy, the second task should land on the CPU.
    assert len(devices) == 2


def test_dsf_queues_when_single_device():
    sim = Simulator()
    mhep = MHEP(sim)
    mhep.register(catalog.jetson_tx2_maxp())
    dsf = DSF(sim, mhep)
    p1 = dsf.submit(dnn_job("j1", gops=99.75))
    p2 = dsf.submit(dnn_job("j2", gops=99.75))
    sim.run()
    finishes = sorted([p1.value.finished_at, p2.value.finished_at])
    assert finishes == pytest.approx([1.0, 2.0])


def test_dsf_no_capable_device_fails_job():
    sim = Simulator()
    mhep = MHEP(sim)
    mhep.register(catalog.jetson_tx2_maxp())  # GPUs can't run CONTROL... they can barely
    dsf = DSF(sim, mhep)
    # ASIC supports nothing but DNN-ish classes; craft an impossible task by
    # removing all devices.
    mhep.unregister("Jetson TX2 Max-P")
    proc = dsf.submit(dnn_job())
    sim.run()
    assert proc.triggered and not proc.ok


def test_dsf_energy_accounting():
    sim, mhep, dsf = platform()
    dsf.submit(dnn_job(gops=99.75))
    sim.run()
    # 1 s on the TX2 Max-P at 15 W.
    assert dsf.energy.busy_joules("Jetson TX2 Max-P") == pytest.approx(15.0)


def test_dsf_device_utilization_tracked():
    sim, mhep, dsf = platform()
    dsf.submit(dnn_job(gops=99.75))
    sim.run()
    gpu = mhep.device("Jetson TX2 Max-P")
    assert gpu.busy_seconds == pytest.approx(1.0)
    assert gpu.tasks_completed == 1
    assert gpu.utilization(sim.now) == pytest.approx(1.0)


def test_second_hep_join_speeds_up_backlog():
    """Plug-and-play: a passenger phone relieves a weak on-board controller."""

    def run(with_phone: bool) -> float:
        sim = Simulator()
        mhep = MHEP(sim)
        mhep.register(catalog.onboard_controller())
        if with_phone:
            mhep.register(catalog.passenger_phone(), level=SECOND_LEVEL)
        dsf = DSF(sim, mhep)
        procs = [dsf.submit(dnn_job(f"j{i}", gops=20.0)) for i in range(6)]
        sim.run()
        return max(p.value.finished_at for p in procs)

    assert run(with_phone=True) < run(with_phone=False)


def test_application_profile_validation():
    factory = lambda: dnn_job()
    with pytest.raises(ValueError):
        ApplicationProfile("x", qos=9, deadline_s=1.0, graph_factory=factory)
    with pytest.raises(ValueError):
        ApplicationProfile("x", qos=QoSClass.INTERACTIVE, deadline_s=0.0,
                           graph_factory=factory)
    profile = ApplicationProfile(
        "adas", qos=QoSClass.SAFETY_CRITICAL, deadline_s=0.1, graph_factory=factory
    )
    assert profile.priority == 0

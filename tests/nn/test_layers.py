"""Unit tests for nn layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Sequential


def numerical_grad(f, x, eps=1e-5):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        hi = f()
        x[idx] = old - eps
        lo = f()
        x[idx] = old
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def test_dense_forward_shape_and_value():
    layer = Dense(3, 2, rng=np.random.default_rng(0))
    layer.W[...] = np.arange(6).reshape(3, 2)
    layer.b[...] = [1.0, -1.0]
    out = layer.forward(np.array([[1.0, 0.0, 0.0]]))
    assert out.shape == (1, 2)
    assert out[0, 0] == pytest.approx(1.0)  # 0*1 + 1 bias
    assert out[0, 1] == pytest.approx(0.0)  # 1*1 - 1 bias


def test_dense_validation():
    with pytest.raises(ValueError):
        Dense(0, 2)


def test_dense_backward_matches_numerical_gradient():
    rng = np.random.default_rng(1)
    layer = Dense(4, 3, rng=rng)
    x = rng.normal(size=(5, 4))
    target = rng.normal(size=(5, 3))

    def loss():
        out = layer.forward(x)
        return 0.5 * ((out - target) ** 2).sum()

    out = layer.forward(x, training=True)
    layer.backward(out - target)
    num_dW = numerical_grad(loss, layer.W)
    num_db = numerical_grad(loss, layer.b)
    assert np.allclose(layer.dW, num_dW, atol=1e-5)
    assert np.allclose(layer.db, num_db, atol=1e-5)


def test_dense_backward_requires_training_forward():
    layer = Dense(2, 2)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((1, 2)))


def test_relu_forward_and_backward():
    layer = ReLU()
    x = np.array([[-1.0, 2.0, 0.0]])
    out = layer.forward(x, training=True)
    assert np.array_equal(out, [[0.0, 2.0, 0.0]])
    grad = layer.backward(np.ones_like(x))
    assert np.array_equal(grad, [[0.0, 1.0, 0.0]])


def test_dropout_identity_at_inference():
    layer = Dropout(0.9)
    x = np.ones((4, 4))
    assert np.array_equal(layer.forward(x, training=False), x)


def test_dropout_preserves_expectation_roughly():
    layer = Dropout(0.5, rng=np.random.default_rng(0))
    x = np.ones((200, 200))
    out = layer.forward(x, training=True)
    assert out.mean() == pytest.approx(1.0, abs=0.05)


def test_dropout_validation():
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_conv_forward_known_value():
    layer = Conv2D(1, 1, kernel=2, rng=np.random.default_rng(0))
    layer.W[...] = np.ones((1, 1, 2, 2))
    layer.b[...] = 0.0
    x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
    out = layer.forward(x)
    # Each output = sum of 2x2 window.
    assert out.shape == (1, 1, 2, 2)
    assert out[0, 0, 0, 0] == pytest.approx(0 + 1 + 3 + 4)
    assert out[0, 0, 1, 1] == pytest.approx(4 + 5 + 7 + 8)


def test_conv_padding_preserves_size():
    layer = Conv2D(2, 4, kernel=3, pad=1)
    out = layer.forward(np.zeros((1, 2, 8, 8)))
    assert out.shape == (1, 4, 8, 8)
    assert layer.output_shape((2, 8, 8)) == (4, 8, 8)


def test_conv_stride():
    layer = Conv2D(1, 1, kernel=2, stride=2)
    out = layer.forward(np.zeros((1, 1, 8, 8)))
    assert out.shape == (1, 1, 4, 4)


def test_conv_backward_matches_numerical_gradient():
    rng = np.random.default_rng(2)
    layer = Conv2D(2, 3, kernel=3, pad=1, rng=rng)
    x = rng.normal(size=(2, 2, 5, 5))
    target = rng.normal(size=(2, 3, 5, 5))

    def loss():
        out = layer.forward(x)
        return 0.5 * ((out - target) ** 2).sum()

    out = layer.forward(x, training=True)
    dx = layer.backward(out - target)
    num_dW = numerical_grad(loss, layer.W)
    num_dx = numerical_grad(loss, x)
    assert np.allclose(layer.dW, num_dW, atol=1e-4)
    assert np.allclose(dx, num_dx, atol=1e-4)


def test_conv_flops_formula():
    layer = Conv2D(3, 8, kernel=3)
    # Output 8 x 6 x 6 on an 8x8 input; 2*8*36*27 FLOPs.
    assert layer.flops((3, 8, 8)) == 2 * 8 * 6 * 6 * 3 * 3 * 3


def test_conv_validation():
    with pytest.raises(ValueError):
        Conv2D(1, 1, kernel=0)


def test_maxpool_forward_backward():
    layer = MaxPool2D(2)
    x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    out = layer.forward(x, training=True)
    assert out.shape == (1, 1, 1, 1) and out[0, 0, 0, 0] == 4.0
    dx = layer.backward(np.ones((1, 1, 1, 1)))
    assert dx[0, 0, 1, 1] == 1.0 and dx.sum() == 1.0


def test_maxpool_output_shape():
    assert MaxPool2D(2).output_shape((4, 10, 10)) == (4, 5, 5)


def test_flatten_roundtrip():
    layer = Flatten()
    x = np.arange(24, dtype=float).reshape(2, 3, 2, 2)
    out = layer.forward(x, training=True)
    assert out.shape == (2, 12)
    back = layer.backward(out)
    assert back.shape == x.shape

"""Tests for Sequential, training, and the model zoo."""

import numpy as np
import pytest

from repro.nn import (
    INCEPTION_V3,
    SGD,
    SPEC_REGISTRY,
    Sequential,
    cross_entropy,
    make_mlp,
    make_tiny_cnn,
    softmax,
    train_classifier,
)
from repro.hw import catalog


def two_blob_data(n=200, seed=0):
    """Linearly separable 2-class blobs."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(loc=[-2.0, 0.0], scale=0.5, size=(n // 2, 2))
    x1 = rng.normal(loc=[2.0, 0.0], scale=0.5, size=(n // 2, 2))
    x = np.vstack([x0, x1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return x, y


def test_softmax_rows_sum_to_one():
    probs = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert probs[0].argmax() == 2


def test_softmax_is_shift_invariant_and_stable():
    a = softmax(np.array([[1000.0, 1001.0]]))
    b = softmax(np.array([[0.0, 1.0]]))
    assert np.allclose(a, b)


def test_cross_entropy_perfect_prediction_is_zero():
    probs = np.array([[1.0, 0.0], [0.0, 1.0]])
    assert cross_entropy(probs, np.array([0, 1])) == pytest.approx(0.0, abs=1e-9)


def test_network_requires_layers():
    with pytest.raises(ValueError):
        Sequential([], input_shape=(2,))


def test_mlp_shapes_and_param_count():
    net = make_mlp(4, (8,), 3)
    assert net.output_shape() == (3,)
    # 4*8+8 + 8*3+3 = 67
    assert net.param_count == 67
    assert net.size_bytes() == 67 * 4.0


def test_mlp_flops():
    net = make_mlp(4, (8,), 3)
    # Dense: 2*4*8, ReLU: 8, Dense: 2*8*3
    assert net.flops_per_sample() == 64 + 8 + 48


def test_training_learns_separable_blobs():
    x, y = two_blob_data()
    net = make_mlp(2, (8,), 2, seed=1)
    result = train_classifier(net, x, y, epochs=30, optimizer=SGD(lr=0.1),
                              rng=np.random.default_rng(0))
    assert result.train_accuracy > 0.95
    assert result.losses[-1] < result.losses[0]


def test_training_validates_inputs():
    net = make_mlp(2, (4,), 2)
    with pytest.raises(ValueError):
        train_classifier(net, np.zeros((3, 2)), np.zeros(2, dtype=int))
    with pytest.raises(ValueError):
        train_classifier(net, np.zeros((0, 2)), np.zeros(0, dtype=int))


def test_sgd_validation():
    with pytest.raises(ValueError):
        SGD(lr=0.0)
    with pytest.raises(ValueError):
        SGD(momentum=1.0)


def test_frozen_params_do_not_move():
    x, y = two_blob_data()
    net = make_mlp(2, (8,), 2, seed=1)
    first_dense = [l for l in net.layers if l.params][0]
    before = first_dense.W.copy()
    train_classifier(
        net, x, y, epochs=3, frozen={id(first_dense.W), id(first_dense.b)},
        rng=np.random.default_rng(0),
    )
    assert np.array_equal(first_dense.W, before)


def test_weight_roundtrip_save_load(tmp_path):
    net = make_mlp(3, (5,), 2, seed=3)
    x = np.random.default_rng(0).normal(size=(4, 3))
    expected = net.forward(x)
    path = str(tmp_path / "weights.npz")
    net.save(path)
    other = make_mlp(3, (5,), 2, seed=99)
    assert not np.allclose(other.forward(x), expected)
    other.load(path)
    assert np.allclose(other.forward(x), expected)


def test_set_weights_shape_mismatch_raises():
    net = make_mlp(3, (5,), 2)
    other = make_mlp(3, (6,), 2)
    with pytest.raises(ValueError):
        net.set_weights(other.get_weights())


def test_tiny_cnn_runs_and_counts_flops():
    net = make_tiny_cnn(input_shape=(1, 16, 16), classes=2)
    out = net.forward(np.zeros((3, 1, 16, 16)))
    assert out.shape == (3, 2)
    assert net.flops_per_sample() > 0


def test_tiny_cnn_trains_on_trivial_task():
    rng = np.random.default_rng(0)
    # Class 1 images have a bright centre block.
    x0 = rng.normal(0.0, 0.1, size=(40, 1, 16, 16))
    x1 = rng.normal(0.0, 0.1, size=(40, 1, 16, 16))
    x1[:, :, 6:10, 6:10] += 2.0
    x = np.vstack([x0, x1])
    y = np.array([0] * 40 + [1] * 40)
    net = make_tiny_cnn(input_shape=(1, 16, 16), classes=2, seed=2)
    result = train_classifier(net, x, y, epochs=8, batch_size=16,
                              optimizer=SGD(lr=0.05), rng=rng)
    assert result.train_accuracy > 0.9


def test_inception_spec_figure3_times():
    """Inception v3 through the Figure 3 catalog: ordering and magnitudes."""
    times_ms = {
        label: INCEPTION_V3.inference_time_s(factory()) * 1e3
        for label, factory in catalog.FIGURE3_DEVICES
    }
    # Paper: 334.5, 242.8, 114.3, 153.9, 26.8 -- check each within 15%.
    paper = {"DSP-based": 334.5, "GPU#1": 242.8, "GPU#2": 114.3,
             "CPU-based": 153.9, "GPU#3": 26.8}
    for label, expected in paper.items():
        assert times_ms[label] == pytest.approx(expected, rel=0.15), label


def test_spec_registry_contents():
    assert "inception_v3" in SPEC_REGISTRY
    assert SPEC_REGISTRY["inception_v3"].size_bytes == pytest.approx(23.9e6 * 4)


def test_adam_validation():
    from repro.nn import Adam

    with pytest.raises(ValueError):
        Adam(lr=0.0)
    with pytest.raises(ValueError):
        Adam(beta1=1.0)


def test_adam_learns_separable_blobs():
    from repro.nn import Adam

    x, y = two_blob_data()
    net = make_mlp(2, (8,), 2, seed=1)
    result = train_classifier(net, x, y, epochs=30, optimizer=Adam(lr=0.01),
                              rng=np.random.default_rng(0))
    assert result.train_accuracy > 0.95


def test_adam_respects_masks_and_frozen():
    from repro.nn import Adam
    from repro.nn import prune

    x, y = two_blob_data()
    net = make_mlp(2, (8,), 2, seed=1)
    masks = prune(net, 0.5)
    first_dense = [l for l in net.layers if l.params][0]
    before_bias = first_dense.b.copy()
    train_classifier(net, x, y, epochs=3, optimizer=Adam(lr=0.01),
                     masks=masks, frozen={id(first_dense.b)},
                     rng=np.random.default_rng(0))
    assert np.array_equal(first_dense.b, before_bias)
    for _l, name, arr in net.parameters():
        if name == "W":
            assert (arr == 0).mean() >= 0.4

"""Tests for Deep Compression and transfer learning."""

import numpy as np
import pytest

from repro.nn import (
    deep_compress,
    freeze_masks,
    kmeans_1d,
    make_mlp,
    measure,
    prune,
    quantize,
    train_classifier,
    transfer_learn,
    SGD,
)


def blob_data(centers, n_per=60, seed=0, scale=0.4):
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for label, c in enumerate(centers):
        xs.append(rng.normal(loc=c, scale=scale, size=(n_per, len(c))))
        ys.append(np.full(n_per, label))
    return np.vstack(xs), np.concatenate(ys)


def trained_net(seed=0):
    """An 8-feature classifier big enough that codebooks don't dominate."""
    pad = [0.0] * 6
    x, y = blob_data([[-2.0, 0.0, *pad], [2.0, 0.0, *pad]], seed=seed)
    net = make_mlp(8, (64,), 2, seed=seed)
    train_classifier(net, x, y, epochs=20, optimizer=SGD(lr=0.1),
                     rng=np.random.default_rng(seed))
    return net, x, y


def test_prune_achieves_requested_sparsity():
    net, _, _ = trained_net()
    prune(net, sparsity=0.5)
    weights = [arr for _, name, arr in net.parameters() if name == "W"]
    for w in weights:
        zero_frac = (w == 0).mean()
        assert zero_frac == pytest.approx(0.5, abs=0.1)


def test_prune_zero_sparsity_is_noop():
    net, _, _ = trained_net()
    before = net.get_weights()
    prune(net, sparsity=0.0)
    for a, b in zip(before, net.get_weights()):
        assert np.array_equal(a, b)


def test_prune_validation():
    net, _, _ = trained_net()
    with pytest.raises(ValueError):
        prune(net, sparsity=1.0)


def test_prune_keeps_largest_magnitudes():
    net, _, _ = trained_net()
    dense = [l for l in net.layers if l.params][0]
    flat_before = np.abs(dense.W.copy().ravel())
    prune(net, sparsity=0.75)
    surviving = np.abs(dense.W.ravel())
    kept = surviving[surviving > 0]
    # Every kept weight is at least as large as the smallest pruned one.
    assert kept.min() >= np.partition(flat_before, len(flat_before) // 4)[0]


def test_masked_retraining_preserves_sparsity():
    net, x, y = trained_net()
    masks = prune(net, sparsity=0.6)
    train_classifier(net, x, y, epochs=5, masks=masks,
                     rng=np.random.default_rng(1))
    for _, name, arr in net.parameters():
        if name == "W":
            assert (arr == 0).mean() >= 0.5


def test_kmeans_1d_recovers_two_clusters():
    values = np.array([0.0, 0.1, -0.1, 5.0, 5.1, 4.9])
    centroids, assignment = kmeans_1d(values, k=2)
    assert sorted(np.round(centroids, 1)) == [0.0, 5.0]
    assert len(set(assignment[:3])) == 1
    assert len(set(assignment[3:])) == 1


def test_kmeans_1d_edge_cases():
    c, a = kmeans_1d(np.zeros(0), k=4)
    assert c.size == 0 and a.size == 0
    c, a = kmeans_1d(np.array([2.0, 2.0]), k=4)
    assert c.size == 1 and c[0] == 2.0
    with pytest.raises(ValueError):
        kmeans_1d(np.array([1.0]), k=0)


def test_quantize_limits_distinct_values():
    net, _, _ = trained_net()
    quantize(net, bits=3)
    for _, name, arr in net.parameters():
        if name == "W":
            distinct = np.unique(arr[arr != 0.0])
            assert len(distinct) <= 8


def test_quantize_validation():
    net, _, _ = trained_net()
    with pytest.raises(ValueError):
        quantize(net, bits=0)


def test_deep_compress_shrinks_size_and_keeps_accuracy():
    net, x, y = trained_net()
    base_accuracy = net.accuracy(x, y)
    report = deep_compress(net, x, y, sparsity=0.6, bits=5, finetune_epochs=5,
                           rng=np.random.default_rng(0))
    assert report.compression_ratio > 3.0
    assert report.sparsity == pytest.approx(0.6, abs=0.1)
    # Compression must not destroy the model (paper: compressed models
    # "run smoothly on the edge node").
    assert net.accuracy(x, y) >= base_accuracy - 0.05


def test_measure_dense_network():
    net = make_mlp(2, (16,), 2)
    report = measure(net, bits=32)
    assert report.total_weights == 2 * 16 + 16 * 2
    assert report.sparsity == 0.0
    assert report.original_bytes == net.size_bytes()


def test_freeze_masks_validation():
    net = make_mlp(2, (8, 8), 2)
    with pytest.raises(ValueError):
        freeze_masks(net, trainable_layers=0)
    with pytest.raises(ValueError):
        freeze_masks(net, trainable_layers=10)


def test_transfer_learn_freezes_features_and_adapts_head():
    # Common task: separate along x-axis. Personal task: along y-axis-shifted
    # clusters that share the feature space.
    x_common, y_common = blob_data([[-2, 0], [2, 0]], seed=0)
    net = make_mlp(2, (16,), 2, seed=0)
    train_classifier(net, x_common, y_common, epochs=20, optimizer=SGD(lr=0.1),
                     rng=np.random.default_rng(0))
    feature_layer = [l for l in net.layers if l.params][0]
    frozen_before = feature_layer.W.copy()

    x_personal, y_personal = blob_data([[-2, 1], [2, -1]], seed=5)
    result = transfer_learn(net, x_personal, y_personal, trainable_layers=1,
                            epochs=20, lr=0.1, rng=np.random.default_rng(1))
    assert np.array_equal(feature_layer.W, frozen_before)
    assert result.train_accuracy > 0.9


def test_transfer_learn_personalization_beats_common_model():
    """The pBEAM claim: a transferred model fits the personal driver better
    than the raw common model."""
    x_common, y_common = blob_data([[-2, 0], [2, 0]], seed=0)
    net = make_mlp(2, (16,), 2, seed=0)
    train_classifier(net, x_common, y_common, epochs=20, optimizer=SGD(lr=0.1),
                     rng=np.random.default_rng(0))
    # Personal distribution: decision boundary rotated; common model is poor.
    x_personal, y_personal = blob_data([[0, -2], [0, 2]], seed=7)
    common_accuracy = net.accuracy(x_personal, y_personal)
    transfer_learn(net, x_personal, y_personal, trainable_layers=1,
                   epochs=30, lr=0.1, rng=np.random.default_rng(2))
    assert net.accuracy(x_personal, y_personal) > common_accuracy

"""Matrix runner acceptance: DSL-compiled cells hash identically to the
same configs built in Python, partitioned and single-process alike."""

import os

import pytest

from repro.fleet.config import FleetConfig
from repro.fleet.coordinator import run_inline, run_single_process
from repro.scenarios import load_scenario, run_cell, run_matrix

SCENARIO_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "scenarios"
)


def smoke_scenario():
    return load_scenario(os.path.join(SCENARIO_DIR, "fleet_smoke.yaml"))


def test_shipped_smoke_scenario_matches_hand_built_config():
    """The shipped 4-partition calendar scenario compiles to the exact
    config a test would build by hand."""
    cell = smoke_scenario().cell(0)
    hand_built = FleetConfig(
        seed=42, vehicles=8, partitions=4, duration_s=12.0,
        barrier_s=1.0, scheduler="calendar", workload="uniform",
        v2v_latency_s=1.0, beacon_period_s=2.0,
    )
    assert cell.config == hand_built


def test_dsl_trace_hashes_match_python_built_config_both_backends():
    """Per-vehicle blake2b trace hashes from the DSL-compiled config are
    byte-identical to the Python-built config's -- for the 4-partition
    calendar fleet AND the single-process heap reference."""
    cell = smoke_scenario().cell(0)
    hand_built = FleetConfig(
        seed=42, vehicles=8, partitions=4, duration_s=12.0,
        barrier_s=1.0, scheduler="calendar", workload="uniform",
        v2v_latency_s=1.0, beacon_period_s=2.0,
    )
    dsl_fleet = run_inline(cell.config)
    python_fleet = run_inline(hand_built)
    assert dsl_fleet.vehicle_hashes == python_fleet.vehicle_hashes
    dsl_reference = run_single_process(cell.config)
    python_reference = run_single_process(hand_built)
    assert dsl_reference.vehicle_hashes == python_reference.vehicle_hashes
    # The substrate's own contract ties the two backends together.
    assert dsl_fleet.vehicle_hashes == dsl_reference.vehicle_hashes


def test_run_cell_check_verdict():
    outcome = run_cell(smoke_scenario().cell(0), mode="inline", check=True)
    assert outcome.reference_ok is True
    assert outcome.name == "base"
    assert len(outcome.result.vehicle_hashes) == 8


def test_run_cell_unchecked_has_no_verdict():
    outcome = run_cell(smoke_scenario().cell(0), mode="reference")
    assert outcome.reference_ok is None


def test_run_cell_rejects_unknown_mode():
    with pytest.raises(ValueError):
        run_cell(smoke_scenario().cell(0), mode="imaginary")


def test_run_matrix_covers_every_cell_in_order():
    scenario = load_scenario(
        os.path.join(SCENARIO_DIR, "skewed_sweep.yaml")
    )
    outcomes = run_matrix(scenario, mode="reference")
    assert [o.name for o in outcomes] == [c.name for c in scenario.cells]
    # Partition count never changes the reference trace.
    by_workload = {}
    for outcome in outcomes:
        workload = dict(outcome.cell.overrides)["workload"]
        hashes = outcome.result.vehicle_hashes
        by_workload.setdefault(workload, hashes)
        assert by_workload[workload] == hashes


def test_crash_recovery_scenario_compiles_with_faults_and_plan():
    scenario = load_scenario(
        os.path.join(SCENARIO_DIR, "crash_recovery.yaml")
    )
    config = scenario.cell(0).config
    assert config.kill_plan is not None
    assert config.plan == ((0, 1), (2, 3), (4, 5))
    assert config.style_spec is not None
    assert config.style_spec.service_table == (2, 2, 3, 1, 2, 2)

"""Tests for the scenario DSL, compiler, and matrix runner."""

"""Compiler lowering: scenario documents vs hand-built FleetConfigs."""

import pytest

from repro.faults.prockill import KillPhase
from repro.fleet.config import FleetConfig
from repro.scenarios import ScenarioError, compile_text, load_scenario

SMOKE = (
    "name: smoke\n"
    "fleet:\n"
    "  seed: 42\n"
    "  vehicles: 8\n"
    "  partitions: 4\n"
    "  duration_s: 12.0\n"
    "  barrier_s: 1.0\n"
    "  scheduler: calendar\n"
    "  workload: uniform\n"
    "links:\n"
    "  v2v_latency_s: 1.0\n"
    "  beacon_period_s: 2.0\n"
)


def test_plain_scenario_lowers_to_an_equal_config():
    """Field names are FleetConfig kwargs verbatim, so a plain scenario
    compiles to a config *equal* to the hand-built one -- the property
    the byte-identical trace-hash check rests on."""
    scenario = compile_text(SMOKE)
    assert len(scenario.cells) == 1
    assert scenario.cells[0].config == FleetConfig(
        seed=42, vehicles=8, partitions=4, duration_s=12.0,
        barrier_s=1.0, scheduler="calendar", workload="uniform",
        v2v_latency_s=1.0, beacon_period_s=2.0,
    )


def test_unset_fields_keep_dataclass_defaults():
    scenario = compile_text("fleet:\n  vehicles: 4\n")
    assert scenario.cells[0].config == FleetConfig(vehicles=4)


def test_sweep_produces_one_config_per_cell():
    scenario = compile_text(
        "fleet:\n"
        "  vehicles: 8\n"
        "sweep:\n"
        "  partitions: [1, 2, 4]\n"
    )
    assert [c.config.partitions for c in scenario.cells] == [1, 2, 4]
    assert [c.name for c in scenario.cells] == [
        "partitions=1", "partitions=2", "partitions=4",
    ]


def test_styled_roster_lowers_to_a_service_table():
    scenario = compile_text(
        "fleet:\n"
        "  vehicles: 3\n"
        "  partitions: 1\n"
        "  workload: calm\n"
        "styles:\n"
        "  calm:\n"
        "    services: 2\n"
        "    cost_weight: 1.5\n"
        "vehicles:\n"
        "  - id: 0\n"
        "    style: calm\n"
        "  - id: 1\n"
        "    services: 5\n"
        "  - id: 2\n"
        "    style: uniform\n"
    )
    config = scenario.cells[0].config
    spec = config.style_spec
    assert spec is not None
    assert spec.service_table[0] == 2          # custom style
    assert spec.service_table[1] == 5          # explicit per-vehicle count
    assert spec.service_cost_weight == 1.5
    assert config.style.service_count(0) == 2
    assert config.style.service_count(1) == 5


def test_builtin_workload_without_roster_keeps_style_spec_none():
    scenario = compile_text("fleet:\n  vehicles: 4\n  workload: skewed\n")
    assert scenario.cells[0].config.style_spec is None


def test_faults_lower_to_a_kill_plan():
    scenario = compile_text(
        "fleet:\n"
        "  vehicles: 4\n"
        "  partitions: 2\n"
        "faults:\n"
        "  kills:\n"
        "    - partition: 1\n"
        "      round: 2\n"
        "    - partition: 0\n"
        "      round: 5\n"
        "      phase: before-ack\n"
    )
    plan = scenario.cells[0].config.kill_plan
    assert plan is not None
    kills = sorted(plan.kills, key=lambda k: (k.partition, k.barrier_index))
    assert (kills[0].partition, kills[0].barrier_index) == (0, 5)
    assert kills[0].phase == KillPhase.BEFORE_ACK
    assert kills[1].phase == KillPhase.ON_ADVANCE


def test_plan_shards_lower_verbatim():
    scenario = compile_text(
        "fleet:\n"
        "  vehicles: 4\n"
        "  partitions: 2\n"
        "plan:\n"
        "  shards:\n"
        "    - [0, 2]\n"
        "    - [1, 3]\n"
    )
    assert scenario.cells[0].config.plan == ((0, 2), (1, 3))


def test_invalid_document_raises_scenario_error_with_issues():
    with pytest.raises(ScenarioError) as err:
        compile_text("fleet:\n  vehicles: -2\n", "bad.yaml")
    assert err.value.path == "bad.yaml"
    assert any(issue.rule == "SCN001" for issue in err.value.issues)
    assert "bad.yaml:2" in str(err.value)


def test_budget_fields_surface_on_the_scenario():
    scenario = compile_text(
        "fleet:\n"
        "  vehicles: 4\n"
        "budget:\n"
        "  cost: 100.0\n"
        "  cells: 3\n"
    )
    assert scenario.budget_cost == 100.0
    assert scenario.budget_cells == 3


def test_cell_accessor_bounds():
    scenario = compile_text(SMOKE)
    assert scenario.cell(0) is scenario.cells[0]
    with pytest.raises(IndexError):
        scenario.cell(1)


def test_name_defaults_to_the_file_basename(tmp_path):
    path = tmp_path / "my_run.yaml"
    path.write_text("fleet:\n  vehicles: 4\n", encoding="utf-8")
    scenario = load_scenario(str(path))
    assert scenario.name == "my_run"

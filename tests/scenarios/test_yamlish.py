"""The YAML-subset loader: values, line numbers, and error reporting."""

import pytest

from repro.scenarios import (
    MappingNode,
    ScalarNode,
    ScenarioSyntaxError,
    SequenceNode,
    parse_text,
)


def test_scalar_types():
    doc = parse_text(
        "a: 1\n"
        "b: 2.5\n"
        "c: true\n"
        "d: false\n"
        "e: null\n"
        "f: ~\n"
        "g: hello world\n"
        "h: 'quoted # not a comment'\n"
        "i: -3\n"
    )
    values = {key: node.value for key, node in doc.items()}
    assert values == {
        "a": 1, "b": 2.5, "c": True, "d": False, "e": None, "f": None,
        "g": "hello world", "h": "quoted # not a comment", "i": -3,
    }
    assert isinstance(doc.get("a").value, int)
    assert isinstance(doc.get("b").value, float)


def test_every_node_carries_its_source_line():
    doc = parse_text(
        "top: 1\n"            # line 1
        "block:\n"            # line 2
        "  inner: yes-ish\n"  # line 3
        "items:\n"            # line 4
        "  - 10\n"            # line 5
        "  - 20\n"            # line 6
    )
    assert doc.get("top").line == 1
    assert doc.key_line("block") == 2
    assert doc.get("block").get("inner").line == 3
    seq = doc.get("items")
    assert [item.line for item in seq.items] == [5, 6]


def test_comments_and_blank_lines_are_skipped():
    doc = parse_text(
        "# leading comment\n"
        "\n"
        "key: value  # trailing comment\n"
    )
    assert doc.get("key").value == "value"
    assert doc.get("key").line == 3


def test_nested_mappings_and_sequences():
    doc = parse_text(
        "outer:\n"
        "  seq:\n"
        "    - name: a\n"
        "      size: 1\n"
        "    - name: b\n"
        "      size: 2\n"
    )
    seq = doc.get("outer").get("seq")
    assert isinstance(seq, SequenceNode)
    assert [item.get("name").value for item in seq.items] == ["a", "b"]
    assert [item.get("size").value for item in seq.items] == [1, 2]


def test_flow_sequence_of_scalars():
    doc = parse_text("axis: [1, 2.5, x]\n")
    items = doc.get("axis").items
    assert [item.value for item in items] == [1, 2.5, "x"]


def test_nested_block_sequences():
    doc = parse_text(
        "shards:\n"
        "  - [0, 1]\n"
        "  - [2, 3]\n"
    )
    shards = doc.get("shards")
    assert [[e.value for e in shard.items] for shard in shards.items] == [
        [0, 1], [2, 3],
    ]


def test_duplicate_key_is_an_error_naming_the_first_line():
    with pytest.raises(ScenarioSyntaxError) as err:
        parse_text("a: 1\nb: 2\na: 3\n", "dup.yaml")
    assert "dup.yaml:3" in str(err.value)
    assert "line 1" in str(err.value)


def test_tab_indentation_is_an_error():
    with pytest.raises(ScenarioSyntaxError) as err:
        parse_text("a:\n\tb: 1\n", "tabs.yaml")
    assert err.value.line == 2


def test_error_carries_path_and_line():
    with pytest.raises(ScenarioSyntaxError) as err:
        parse_text("- just a sequence\n", "top.yaml")
    assert err.value.path == "top.yaml"
    assert "top.yaml" in str(err.value)


def test_mapping_node_accessors():
    doc = parse_text("a: 1\nb: 2\n")
    assert isinstance(doc, MappingNode)
    assert "a" in doc and "missing" not in doc
    assert list(doc.keys()) == ["a", "b"]
    assert isinstance(doc.get("a"), ScalarNode)
    assert doc.get("missing") is None

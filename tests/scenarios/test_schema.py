"""Schema semantics: issue anchoring, matrix expansion, settings maps."""

from repro.scenarios import parse_text, validate
from repro.scenarios.schema import (
    base_settings,
    config_defaults,
    effective_vehicles,
    expand_cells,
    sweep_axes,
)


def issues_for(text):
    return [(i.line, i.rule) for i in validate(parse_text(text))]


def test_valid_minimal_document_is_clean():
    assert issues_for("fleet:\n  vehicles: 4\n") == []


def test_missing_fleet_section_is_reported():
    issues = validate(parse_text("name: nothing\n"))
    assert any(
        i.rule == "SCN001" and "fleet" in i.message for i in issues
    )


def test_unknown_top_level_section():
    issues = validate(parse_text("fleet:\n  vehicles: 4\nflee: {}\n"))
    assert any("flee" in i.message and i.rule == "SCN001" for i in issues)


def test_roster_count_mismatch_anchors_on_declared_count():
    text = (
        "fleet:\n"
        "  vehicles: 3\n"   # line 2: contradicts the 2-entry roster
        "vehicles:\n"
        "  - id: 0\n"
        "  - id: 1\n"
    )
    assert (2, "SCN001") in issues_for(text)


def test_partitions_exceeding_vehicles_in_a_swept_cell():
    text = (
        "fleet:\n"
        "  vehicles: 4\n"
        "sweep:\n"
        "  partitions: [2, 8]\n"  # line 4: the 8-partition cell is bad
    )
    assert (4, "SCN001") in issues_for(text)


def test_expand_cells_is_row_major_over_sorted_axes():
    doc = parse_text(
        "fleet:\n"
        "  vehicles: 8\n"
        "sweep:\n"
        "  workload: [uniform, skewed]\n"
        "  partitions: [1, 2]\n"
    )
    names = [cell.name for cell in expand_cells(doc)]
    assert names == [
        "partitions=1/workload=uniform",
        "partitions=1/workload=skewed",
        "partitions=2/workload=uniform",
        "partitions=2/workload=skewed",
    ]


def test_no_sweep_expands_to_single_base_cell():
    doc = parse_text("fleet:\n  vehicles: 4\n")
    cells = expand_cells(doc)
    assert len(cells) == 1
    assert cells[0].name == "base"
    assert cells[0].overrides == ()


def test_malformed_axis_values_drop_the_axis():
    doc = parse_text(
        "fleet:\n"
        "  vehicles: 4\n"
        "sweep:\n"
        "  partitions: [2, nope]\n"
    )
    assert sweep_axes(doc) == []
    assert len(expand_cells(doc)) == 1


def test_base_settings_skip_malformed_entries():
    doc = parse_text(
        "fleet:\n"
        "  vehicles: 4\n"
        "  duration_s: -1.0\n"
    )
    settings = base_settings(doc)
    assert settings["vehicles"].value == 4
    assert "duration_s" not in settings


def test_effective_vehicles_prefers_the_roster():
    doc = parse_text(
        "fleet:\n"
        "  vehicles: 9\n"
        "vehicles:\n"
        "  - id: 0\n"
        "  - id: 1\n"
    )
    assert effective_vehicles(doc, {"vehicles": 9}) == 2


def test_config_defaults_track_the_dataclass():
    from repro.fleet.config import FleetConfig

    defaults = config_defaults()
    assert defaults["vehicles"] == FleetConfig().vehicles
    assert defaults["scheduler"] == FleetConfig().scheduler


def test_issues_sorted_and_deduplicated():
    text = (
        "fleet:\n"
        "  bogus_a: 1\n"
        "  bogus_b: 2\n"
    )
    issues = validate(parse_text(text))
    assert issues == sorted(issues)
    assert len(issues) == len(set(issues))

"""Tests for task graphs and placement evaluation."""

import pytest

from repro.hw import WorkloadClass
from repro.offload import Placement, Task, TaskGraph, evaluate_placement
from repro.topology import Tier, build_default_world


def simple_chain():
    """motion-detect -> plate-detect -> plate-recognize (the paper's A3 split)."""
    return TaskGraph.chain(
        "plate",
        [
            Task("motion", 0.05, WorkloadClass.VISION, output_bytes=200_000,
                 source_bytes=1_000_000),
            Task("detect", 2.0, WorkloadClass.DNN, output_bytes=20_000),
            Task("recognize", 1.0, WorkloadClass.DNN, output_bytes=100),
        ],
    )


def test_task_validation():
    with pytest.raises(ValueError):
        Task("bad", -1.0, WorkloadClass.DNN)


def test_duplicate_task_rejected():
    graph = TaskGraph("g")
    graph.add_task(Task("a", 1.0, WorkloadClass.DNN))
    with pytest.raises(ValueError):
        graph.add_task(Task("a", 1.0, WorkloadClass.DNN))


def test_edge_to_unknown_task_rejected():
    graph = TaskGraph("g")
    graph.add_task(Task("a", 1.0, WorkloadClass.DNN))
    with pytest.raises(KeyError):
        graph.add_edge("a", "missing")


def test_cycle_rejected():
    graph = TaskGraph("g")
    graph.add_task(Task("a", 1.0, WorkloadClass.DNN))
    graph.add_task(Task("b", 1.0, WorkloadClass.DNN))
    graph.add_edge("a", "b")
    with pytest.raises(ValueError):
        graph.add_edge("b", "a")


def test_chain_structure():
    graph = simple_chain()
    assert len(graph) == 3
    assert graph.roots == ["motion"]
    assert graph.sinks == ["recognize"]
    assert graph.task_names == ["motion", "detect", "recognize"]
    assert graph.total_work_gop() == pytest.approx(3.05)


def test_topological_order_respects_dependencies():
    graph = TaskGraph("diamond")
    for name in "abcd":
        graph.add_task(Task(name, 1.0, WorkloadClass.DNN))
    graph.add_edge("a", "b")
    graph.add_edge("a", "c")
    graph.add_edge("b", "d")
    graph.add_edge("c", "d")
    order = graph.task_names
    assert order.index("a") < order.index("b") < order.index("d")
    assert order.index("a") < order.index("c") < order.index("d")


def test_placement_uniform_and_validation():
    graph = simple_chain()
    placement = Placement.uniform(graph, Tier.CLOUD)
    placement.validate(graph)
    with pytest.raises(ValueError):
        Placement({"motion": Tier.CLOUD}).validate(graph)
    with pytest.raises(ValueError):
        Placement({n: "mars" for n in graph.task_names}).validate(graph)


def test_local_placement_has_no_uplink():
    graph = simple_chain()
    world = build_default_world()
    evaluation = evaluate_placement(graph, Placement.uniform(graph, Tier.VEHICLE), world)
    assert evaluation.feasible
    assert evaluation.uplink_bytes == 0.0
    assert evaluation.vehicle_energy_j > 0.0


def test_cloud_placement_uploads_source_bytes():
    graph = simple_chain()
    world = build_default_world()
    evaluation = evaluate_placement(graph, Placement.uniform(graph, Tier.CLOUD), world)
    assert evaluation.uplink_bytes == pytest.approx(1_000_000)
    assert evaluation.vehicle_energy_j == 0.0


def test_split_placement_uplinks_intermediate_output():
    graph = simple_chain()
    world = build_default_world()
    placement = Placement(
        {"motion": Tier.VEHICLE, "detect": Tier.EDGE, "recognize": Tier.EDGE}
    )
    evaluation = evaluate_placement(graph, placement, world)
    # Only motion's 200 KB output crosses the vehicle boundary.
    assert evaluation.uplink_bytes == pytest.approx(200_000)


def test_latency_includes_transfer_and_return():
    graph = TaskGraph("single")
    graph.add_task(
        Task("t", 1.0, WorkloadClass.DNN, output_bytes=1_000_000, source_bytes=2_000_000)
    )
    world = build_default_world()
    local = evaluate_placement(graph, Placement({"t": Tier.VEHICLE}), world)
    cloud = evaluate_placement(graph, Placement({"t": Tier.CLOUD}), world)
    link = world.links.between(Tier.VEHICLE, Tier.CLOUD)
    expected_transfers = link.transfer_time(2_000_000) + link.transfer_time(1_000_000)
    # Cloud compute is faster, but the transfers dominate.
    assert cloud.latency_s > expected_transfers
    assert local.latency_s < cloud.latency_s


def test_critical_path_uses_slowest_branch():
    graph = TaskGraph("fork")
    graph.add_task(Task("src", 0.0, WorkloadClass.CONTROL, output_bytes=0.0))
    graph.add_task(Task("fast", 0.1, WorkloadClass.DNN))
    graph.add_task(Task("slow", 10.0, WorkloadClass.DNN))
    graph.add_edge("src", "fast")
    graph.add_edge("src", "slow")
    world = build_default_world()
    evaluation = evaluate_placement(graph, Placement.uniform(graph, Tier.VEHICLE), world)
    slow_proc = world.vehicle.best_processor_for(WorkloadClass.DNN)
    assert evaluation.latency_s >= slow_proc.execution_time(10.0, WorkloadClass.DNN)


def test_infeasible_when_tier_lacks_processor():
    world = build_default_world(vehicle_processors=[])
    graph = simple_chain()
    evaluation = evaluate_placement(graph, Placement.uniform(graph, Tier.VEHICLE), world)
    assert not evaluation.feasible
    assert "no processor" in evaluation.infeasible_reason

"""Tests for offloading strategies."""

import pytest

from repro.hw import WorkloadClass
from repro.offload import (
    CloudOnly,
    DynamicVDAP,
    EdgeOnly,
    Exhaustive,
    Greedy,
    LocalOnly,
    Task,
    TaskGraph,
)
from repro.topology import Tier, build_default_world


def plate_graph(frame_bytes=1_000_000):
    return TaskGraph.chain(
        "plate",
        [
            Task("motion", 0.05, WorkloadClass.VISION, output_bytes=200_000,
                 source_bytes=frame_bytes),
            Task("detect", 5.0, WorkloadClass.DNN, output_bytes=20_000),
            Task("recognize", 2.0, WorkloadClass.DNN, output_bytes=100),
        ],
    )


@pytest.fixture
def world():
    return build_default_world()


def test_uniform_strategies_place_everything_on_their_tier(world):
    graph = plate_graph()
    for strategy, tier in (
        (LocalOnly(), Tier.VEHICLE),
        (CloudOnly(), Tier.CLOUD),
        (EdgeOnly(), Tier.EDGE),
    ):
        decision = strategy.decide(graph, world)
        assert set(decision.placement.assignment.values()) == {tier}
        assert decision.evaluation.feasible


def test_exhaustive_beats_or_matches_all_baselines(world):
    graph = plate_graph()
    best = Exhaustive().decide(graph, world).evaluation.latency_s
    for strategy in (LocalOnly(), CloudOnly(), EdgeOnly(), Greedy()):
        assert best <= strategy.decide(graph, world).evaluation.latency_s + 1e-12


def test_exhaustive_task_limit():
    graph = TaskGraph("big")
    for i in range(12):
        graph.add_task(Task(f"t{i}", 1.0, WorkloadClass.DNN))
    with pytest.raises(ValueError):
        Exhaustive(max_tasks=10).decide(graph, build_default_world())


def test_greedy_is_feasible_and_reasonable(world):
    graph = plate_graph()
    decision = Greedy().decide(graph, world)
    assert decision.evaluation.feasible
    local = LocalOnly().decide(graph, world).evaluation.latency_s
    assert decision.evaluation.latency_s <= local + 1e-12


def test_dynamic_vdap_picks_cheapest_placement_meeting_deadline(world):
    graph = plate_graph()
    # Generous deadline: local execution qualifies, which uses zero uplink.
    decision = DynamicVDAP().decide(graph, world, deadline_s=60.0)
    assert decision.meets_deadline
    assert decision.evaluation.uplink_bytes == 0.0


def test_dynamic_vdap_tightened_deadline_forces_offload(world):
    # Make local execution slow: strip the vehicle down to a weak CPU.
    from repro.hw import ProcessorKind, ProcessorModel

    weak = ProcessorModel(
        name="weak-ecu", kind=ProcessorKind.CPU, peak_gops=5.0, tdp_watts=5.0
    )
    slow_world = build_default_world(vehicle_processors=[weak])
    graph = plate_graph()
    local_latency = LocalOnly().decide(graph, slow_world).evaluation.latency_s
    decision = DynamicVDAP().decide(graph, slow_world, deadline_s=local_latency / 4)
    assert decision.meets_deadline
    # Some tasks must have left the vehicle.
    tiers = set(decision.placement.assignment.values())
    assert tiers != {Tier.VEHICLE}


def test_dynamic_vdap_impossible_deadline_flags_miss(world):
    graph = plate_graph()
    decision = DynamicVDAP().decide(graph, world, deadline_s=1e-9)
    assert not decision.meets_deadline
    # Falls back to the latency-optimal placement.
    best = Exhaustive().decide(graph, world).evaluation.latency_s
    assert decision.evaluation.latency_s == pytest.approx(best)


def test_dynamic_vdap_no_deadline_returns_latency_optimal(world):
    graph = plate_graph()
    decision = DynamicVDAP().decide(graph, world, deadline_s=None)
    best = Exhaustive().decide(graph, world).evaluation.latency_s
    assert decision.evaluation.latency_s == pytest.approx(best)


def test_paper_architecture_ordering_for_heavy_dnn(world):
    """SIII: for a heavy DNN workload on realistic links, the edge beats
    both in-vehicle-only and cloud-only architectures."""
    graph = TaskGraph.chain(
        "heavy",
        [
            Task("preprocess", 0.02, WorkloadClass.VISION, output_bytes=300_000,
                 source_bytes=2_000_000),
            Task("inference", 30.0, WorkloadClass.DNN, output_bytes=1_000),
        ],
    )
    local = LocalOnly().decide(graph, world).evaluation.latency_s
    cloud = CloudOnly().decide(graph, world).evaluation.latency_s
    edge = DynamicVDAP().decide(graph, world).evaluation.latency_s
    assert edge < local
    assert edge < cloud

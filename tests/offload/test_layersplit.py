"""Tests for layer-wise DNN partitioning (the Neurosurgeon-style split)."""

import pytest

from repro.hw import catalog
from repro.offload import LayerProfile, best_split, inception_v3_layers
from repro.topology import Tier, build_default_world

INPUT_BYTES = 299 * 299 * 3.0


def weak_vehicle_world():
    return build_default_world(vehicle_processors=[catalog.intel_mncs()])


def strong_vehicle_world():
    return build_default_world(
        vehicle_processors=[catalog.jetson_tx2_maxp(), catalog.intel_i7_6700()]
    )


def test_layer_profile_totals():
    layers = inception_v3_layers()
    assert sum(l.gflop for l in layers) == pytest.approx(11.4)
    # The stem inflates activations above the input size.
    assert layers[0].output_bytes > INPUT_BYTES
    # The final output is tiny (logits).
    assert layers[-1].output_bytes < 10_000


def test_best_split_validation():
    world = weak_vehicle_world()
    with pytest.raises(ValueError):
        best_split([], world, INPUT_BYTES)
    with pytest.raises(ValueError):
        best_split(inception_v3_layers(), world, INPUT_BYTES, remote_tier=Tier.VEHICLE)


def test_split_latency_accounts_all_components():
    world = weak_vehicle_world()
    decision = best_split(inception_v3_layers(), world, INPUT_BYTES)
    total = (decision.local_compute_s + decision.transfer_s
             + decision.remote_compute_s)
    assert decision.latency_s == pytest.approx(total)


def test_weak_vehicle_fast_link_prefers_heavy_offload():
    """With a feeble VPU and 27 Mbps DSRC, most layers go to the edge."""
    world = weak_vehicle_world()
    decision = best_split(inception_v3_layers(), world, INPUT_BYTES)
    assert decision.cut <= 1
    assert decision.remote_compute_s > 0


def test_strong_vehicle_slow_link_stays_local():
    """A Jetson on board with a dying link: run everything locally."""
    world = strong_vehicle_world()
    world.links.vehicle_edge.bandwidth_mbps = 0.05
    decision = best_split(inception_v3_layers(), world, INPUT_BYTES)
    assert decision.cut == len(inception_v3_layers())
    assert decision.all_local


def test_split_point_moves_with_bandwidth():
    """The crossover the paper wants: the cut migrates toward the vehicle
    as bandwidth degrades."""
    world = weak_vehicle_world()
    cuts = []
    for bandwidth in (27.0, 2.0, 0.2, 0.02):
        world.links.vehicle_edge.bandwidth_mbps = bandwidth
        cuts.append(best_split(inception_v3_layers(), world, INPUT_BYTES).cut)
    assert cuts[0] < cuts[-1]
    assert cuts == sorted(cuts)


def test_mid_split_never_cuts_at_inflated_activation():
    """Cutting right after the stem ships MORE bytes than the raw input;
    the optimizer must never pick a cut strictly worse than cut=0."""
    world = weak_vehicle_world()
    layers = inception_v3_layers()
    for bandwidth in (27.0, 5.0, 1.0):
        world.links.vehicle_edge.bandwidth_mbps = bandwidth
        decision = best_split(layers, world, INPUT_BYTES)
        if 0 < decision.cut < len(layers):
            assert decision.uplink_bytes <= INPUT_BYTES


def test_cloud_split_pays_wan_latency():
    world = weak_vehicle_world()
    edge = best_split(inception_v3_layers(), world, INPUT_BYTES, remote_tier=Tier.EDGE)
    cloud = best_split(inception_v3_layers(), world, INPUT_BYTES, remote_tier=Tier.CLOUD)
    assert edge.latency_s < cloud.latency_s


def test_single_layer_chain():
    world = strong_vehicle_world()
    layers = [LayerProfile("only", 5.0, 1000.0)]
    decision = best_split(layers, world, INPUT_BYTES)
    assert decision.cut in (0, 1)


def test_speech_encoder_profile_shape():
    from repro.offload import speech_encoder_layers

    layers = speech_encoder_layers()
    sizes = [layer.output_bytes for layer in layers]
    # Monotonically shrinking activations; compute concentrated late.
    assert sizes == sorted(sizes, reverse=True)
    assert layers[-1].gflop + layers[-2].gflop > sum(
        l.gflop for l in layers[:3]
    )


def test_speech_encoder_admits_partial_splits():
    from repro.offload import speech_encoder_layers

    world = weak_vehicle_world()
    world.links.vehicle_edge.bandwidth_mbps = 10.0
    decision = best_split(speech_encoder_layers(), world, 320_000.0)
    assert 0 < decision.cut < 5
    # The partial split ships less than the raw input.
    assert decision.uplink_bytes < 320_000.0

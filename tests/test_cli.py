"""Tests for the python -m repro command-line interface."""

import pytest

from repro.__main__ import main


def test_cli_requires_a_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_unknown_command(capsys):
    with pytest.raises(SystemExit):
        main(["teleport"])


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Lane Detection" in out and "Haar" in out


def test_cli_fig3(capsys):
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "Tesla V100" in out and "Myriad" in out


def test_cli_fig2_short(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "70MPH 1080P" in out


def test_cli_drive(capsys):
    assert main(["drive", "--seconds", "30"]) == 0
    out = capsys.readouterr().out
    assert "adas-perception" in out and "amber-search" in out

"""Partition runtime: invariance, canonical delivery, determinism."""

from dataclasses import replace

import pytest

from repro.fleet import FleetConfig, PartitionRuntime, VehicleTraceHash
from repro.fleet.transport import Envelope


def drive(config, partitions):
    """Run ``config`` over ``partitions`` in-process runtimes, exchanging
    envelopes at every barrier, and return merged per-vehicle hashes."""
    base = replace(config, partitions=partitions)
    runtimes = [PartitionRuntime(base.spec_for(p)) for p in range(partitions)]
    for runtime in runtimes:
        runtime.launch()
    inbound = ()
    for round_index, barrier_s in enumerate(base.barriers()):
        results = [r.advance(round_index, barrier_s, inbound)
                   for r in runtimes]
        inbound = tuple(e for res in results for e in res.outbound)
    hashes = {}
    for runtime in runtimes:
        hashes.update(runtime.vehicle_hashes())
    return hashes, runtimes


@pytest.fixture(scope="module")
def small_config():
    return FleetConfig(seed=11, vehicles=4, partitions=1, duration_s=6.0)


class TestPartitionInvariance:
    def test_hashes_identical_across_1_2_4_partitions(self, small_config):
        h1, _ = drive(small_config, 1)
        h2, _ = drive(small_config, 2)
        h4, _ = drive(small_config, 4)
        assert h1 == h2 == h4
        assert set(h1) == {0, 1, 2, 3}

    def test_same_config_reruns_identically(self, small_config):
        h_a, rts_a = drive(small_config, 2)
        h_b, rts_b = drive(small_config, 2)
        assert h_a == h_b
        assert [r.sanitizer.trace_hash for r in rts_a] == [
            r.sanitizer.trace_hash for r in rts_b
        ]

    def test_different_seed_different_traces(self, small_config):
        h_a, _ = drive(small_config, 1)
        other = replace(small_config, seed=12)
        h_b, _ = drive(other, 1)
        assert h_a != h_b


class TestAdvanceContract:
    def test_advance_before_launch_rejected(self, small_config):
        runtime = PartitionRuntime(small_config.spec_for(0))
        with pytest.raises(RuntimeError, match="before launch"):
            runtime.advance(0, 1.0)

    def test_double_launch_rejected(self, small_config):
        runtime = PartitionRuntime(small_config.spec_for(0))
        runtime.launch()
        with pytest.raises(RuntimeError, match="already launched"):
            runtime.launch()

    def test_stale_envelope_rejected(self, small_config):
        runtime = PartitionRuntime(small_config.spec_for(0))
        runtime.launch()
        runtime.advance(0, 1.0)
        stale = Envelope(src=1, dst=0, sent_s=0.2, deliver_s=0.7, seq=0,
                         payload="late")
        with pytest.raises(ValueError, match="conservative sync"):
            runtime.advance(1, 2.0, (stale,))

    def test_foreign_envelopes_ignored(self, small_config):
        config = replace(small_config, partitions=2)
        runtime = PartitionRuntime(config.spec_for(0))  # owns 0 and 2
        runtime.launch()
        foreign = Envelope(src=0, dst=1, sent_s=0.5, deliver_s=1.5, seq=0,
                           payload="not-mine")
        result = runtime.advance(0, 1.0, (foreign,))
        assert runtime.bus.received == 0
        assert result.checkpoint.time == 1.0

    def test_checkpoints_are_monotonic(self, small_config):
        runtime = PartitionRuntime(small_config.spec_for(0))
        runtime.launch()
        previous = None
        for round_index, barrier_s in enumerate(small_config.barriers()):
            checkpoint = runtime.advance(round_index, barrier_s).checkpoint
            if previous is not None:
                assert checkpoint.time > previous.time
                assert checkpoint.events_fired >= previous.events_fired
            previous = checkpoint


class TestVehicleTraceHash:
    def test_records_change_the_digest(self):
        a, b = VehicleTraceHash(0), VehicleTraceHash(0)
        assert a.hexdigest == b.hexdigest
        a.record_state(1.0, 3, 0, 12.5)
        assert a.hexdigest != b.hexdigest
        b.record_state(1.0, 3, 0, 12.5)
        assert a.hexdigest == b.hexdigest
        assert a.records == b.records == 1

    def test_send_and_receive_fold_differently(self):
        env = Envelope(src=0, dst=1, sent_s=0.5, deliver_s=1.5, seq=0,
                       payload="p")
        a, b = VehicleTraceHash(0), VehicleTraceHash(0)
        a.record_send(env)
        b.record_receive(env)
        assert a.hexdigest != b.hexdigest


class TestMetricsInvariance:
    def test_mergeable_views_match_across_partitionings(self, small_config):
        from repro.obs import merge_many, mergeable_view

        _, rts1 = drive(small_config, 1)
        _, rts2 = drive(small_config, 2)
        single = mergeable_view(
            merge_many([r.metrics_snapshot() for r in rts1])
        )
        sharded = mergeable_view(
            merge_many([r.metrics_snapshot() for r in rts2])
        )
        assert single == sharded

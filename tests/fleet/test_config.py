"""FleetConfig / PartitionSpec geometry and validation."""

import pickle

import pytest

from repro.faults import KillPhase, KillPlan
from repro.fleet import FleetConfig, PartitionSpec, shard_vehicles


class TestShardVehicles:
    def test_round_robin(self):
        assert shard_vehicles(5, 2) == [(0, 2, 4), (1, 3)]

    def test_single_partition_owns_everything(self):
        assert shard_vehicles(4, 1) == [(0, 1, 2, 3)]

    def test_every_vehicle_exactly_once(self):
        shards = shard_vehicles(13, 5)
        flat = sorted(v for shard in shards for v in shard)
        assert flat == list(range(13))

    def test_more_partitions_than_vehicles_rejected(self):
        with pytest.raises(ValueError):
            shard_vehicles(2, 3)


class TestBarriers:
    def test_default_step_is_the_lookahead(self):
        cfg = FleetConfig(vehicles=2, partitions=1, v2v_latency_s=2.0,
                          duration_s=8.0)
        assert cfg.barrier_step_s == 2.0
        assert cfg.barriers() == [2.0, 4.0, 6.0, 8.0]

    def test_final_barrier_is_exactly_the_duration(self):
        cfg = FleetConfig(vehicles=2, partitions=1, v2v_latency_s=1.0,
                          duration_s=5.5)
        barriers = cfg.barriers()
        assert barriers[-1] == 5.5
        assert barriers == [1.0, 2.0, 3.0, 4.0, 5.0, 5.5]

    def test_short_drive_is_one_barrier(self):
        cfg = FleetConfig(vehicles=2, partitions=1, v2v_latency_s=2.0,
                          duration_s=1.0)
        assert cfg.barriers() == [1.0]

    def test_barriers_strictly_increase(self):
        cfg = FleetConfig(vehicles=2, partitions=1, v2v_latency_s=0.7,
                          duration_s=10.0)
        barriers = cfg.barriers()
        assert all(b > a for a, b in zip(barriers, barriers[1:]))
        assert barriers[-1] == 10.0

    def test_step_beyond_lookahead_rejected(self):
        with pytest.raises(ValueError, match="conservative sync"):
            FleetConfig(vehicles=2, partitions=1, v2v_latency_s=1.0,
                        barrier_s=1.5)

    def test_step_below_lookahead_allowed(self):
        cfg = FleetConfig(vehicles=2, partitions=1, v2v_latency_s=2.0,
                          barrier_s=0.5, duration_s=2.0)
        assert cfg.barriers() == [0.5, 1.0, 1.5, 2.0]


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"vehicles": 0},
        {"vehicles": 2, "partitions": 0},
        {"vehicles": 2, "partitions": 3},
        {"duration_s": 0.0},
        {"tick_s": -1.0},
        {"v2v_latency_s": 0.0},
        {"beacon_period_s": 0.0},
        {"barrier_deadline_s": 0.0},
    ])
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FleetConfig(**kwargs)


class TestNeighbors:
    def test_ring(self):
        cfg = FleetConfig(vehicles=4, partitions=1)
        assert cfg.neighbors(0) == (1, 3)
        assert cfg.neighbors(2) == (1, 3)

    def test_pair_has_one_neighbor(self):
        cfg = FleetConfig(vehicles=2, partitions=1)
        assert cfg.neighbors(0) == (1,)
        assert cfg.neighbors(1) == (0,)

    def test_singleton_has_none(self):
        cfg = FleetConfig(vehicles=1, partitions=1)
        assert cfg.neighbors(0) == ()


class TestPartitionSpec:
    def test_spec_carries_only_own_faults(self):
        cfg = FleetConfig(
            vehicles=4, partitions=2, kill_plan=KillPlan.single(1, 2),
            straggle_s=(((0, 1), 2.0), ((1, 3), 4.0)),
        )
        spec0, spec1 = cfg.spec_for(0), cfg.spec_for(1)
        assert spec0.kill_plan is None
        assert spec1.kill_plan.kill_for(1, 2) is not None
        assert spec0.straggle_for(1) == 2.0
        assert spec0.straggle_for(3) == 0.0
        assert spec1.straggle_for(3) == 4.0

    def test_disarmed_clears_every_fault(self):
        cfg = FleetConfig(
            vehicles=4, partitions=2,
            kill_plan=KillPlan.single(0, 1, KillPhase.ON_ADVANCE),
            straggle_s=(((0, 2), 9.0),),
        )
        spec = cfg.spec_for(0).disarmed()
        assert spec.kill_plan is None
        assert spec.straggle_for(2) == 0.0
        assert spec.vehicle_indices == (0, 2)

    def test_spec_is_picklable(self):
        cfg = FleetConfig(vehicles=4, partitions=2,
                          kill_plan=KillPlan.single(1, 0))
        spec = cfg.spec_for(1)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_empty_shard_rejected(self):
        cfg = FleetConfig(vehicles=2, partitions=1)
        with pytest.raises(ValueError):
            PartitionSpec(config=cfg, partition=0, vehicle_indices=())

    def test_vehicle_seeds_distinct(self):
        cfg = FleetConfig(seed=7, vehicles=16, partitions=2)
        seeds = {cfg.vehicle_seed(v) for v in range(16)}
        assert len(seeds) == 16

"""FleetConfig / PartitionSpec geometry and validation."""

import pickle

import pytest

from repro.faults import KillPhase, KillPlan
from repro.fleet import FleetConfig, PartitionSpec, shard_vehicles


class TestShardVehicles:
    def test_round_robin(self):
        assert shard_vehicles(5, 2) == [(0, 2, 4), (1, 3)]

    def test_single_partition_owns_everything(self):
        assert shard_vehicles(4, 1) == [(0, 1, 2, 3)]

    def test_every_vehicle_exactly_once(self):
        shards = shard_vehicles(13, 5)
        flat = sorted(v for shard in shards for v in shard)
        assert flat == list(range(13))

    def test_more_partitions_than_vehicles_rejected(self):
        with pytest.raises(ValueError):
            shard_vehicles(2, 3)

    def test_lpt_isolates_the_heavies(self):
        # Two heavy vehicles at 0 and 4 (the skewed-style shape): LPT
        # gives each its own partition and splits the rest.
        costs = [3.0, 1.0, 1.0, 1.0, 3.0, 1.0, 1.0, 1.0]
        assert shard_vehicles(8, 4, costs) == [
            (0,), (4,), (1, 3, 6), (2, 5, 7)]

    def test_lpt_may_leave_a_partition_empty(self):
        # Zero-cost vehicles pile onto the lowest-index zero-load
        # partition, legally idling the last one.
        shards = shard_vehicles(3, 3, [1.0, 0.0, 0.0])
        assert shards == [(0,), (1, 2), ()]

    def test_lpt_uniform_costs_reduce_to_balanced_counts(self):
        shards = shard_vehicles(8, 4, [1.0] * 8)
        assert sorted(len(s) for s in shards) == [2, 2, 2, 2]
        assert sorted(v for s in shards for v in s) == list(range(8))

    def test_lpt_ties_break_by_lowest_index(self):
        first = shard_vehicles(6, 2, [2.0, 2.0, 1.0, 1.0, 1.0, 1.0])
        assert first == shard_vehicles(6, 2, [2.0, 2.0, 1.0, 1.0, 1.0, 1.0])
        assert first[0][0] == 0

    def test_cost_length_and_sign_validated(self):
        with pytest.raises(ValueError, match="one cost per vehicle"):
            shard_vehicles(4, 2, [1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            shard_vehicles(2, 2, [1.0, -0.5])


class TestBarriers:
    def test_default_step_is_the_lookahead(self):
        cfg = FleetConfig(vehicles=2, partitions=1, v2v_latency_s=2.0,
                          duration_s=8.0)
        assert cfg.barrier_step_s == 2.0
        assert cfg.barriers() == [2.0, 4.0, 6.0, 8.0]

    def test_final_barrier_is_exactly_the_duration(self):
        cfg = FleetConfig(vehicles=2, partitions=1, v2v_latency_s=1.0,
                          duration_s=5.5)
        barriers = cfg.barriers()
        assert barriers[-1] == 5.5
        assert barriers == [1.0, 2.0, 3.0, 4.0, 5.0, 5.5]

    def test_short_drive_is_one_barrier(self):
        cfg = FleetConfig(vehicles=2, partitions=1, v2v_latency_s=2.0,
                          duration_s=1.0)
        assert cfg.barriers() == [1.0]

    def test_barriers_strictly_increase(self):
        cfg = FleetConfig(vehicles=2, partitions=1, v2v_latency_s=0.7,
                          duration_s=10.0)
        barriers = cfg.barriers()
        assert all(b > a for a, b in zip(barriers, barriers[1:]))
        assert barriers[-1] == 10.0

    def test_step_beyond_lookahead_rejected(self):
        with pytest.raises(ValueError, match="conservative sync"):
            FleetConfig(vehicles=2, partitions=1, v2v_latency_s=1.0,
                        barrier_s=1.5)

    def test_rejection_names_the_derived_lookahead(self):
        # The error must teach the fix: it states the derived lookahead
        # (and its provenance) next to the offending step.
        with pytest.raises(ValueError, match=r"derived lookahead 1\.0"):
            FleetConfig(vehicles=2, partitions=1, v2v_latency_s=1.0,
                        barrier_s=1.5)

    def test_step_below_lookahead_allowed(self):
        cfg = FleetConfig(vehicles=2, partitions=1, v2v_latency_s=2.0,
                          barrier_s=0.5, duration_s=2.0)
        assert cfg.barriers() == [0.5, 1.0, 1.5, 2.0]


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"vehicles": 0},
        {"vehicles": 2, "partitions": 0},
        {"vehicles": 2, "partitions": 3},
        {"duration_s": 0.0},
        {"tick_s": -1.0},
        {"v2v_latency_s": 0.0},
        {"beacon_period_s": 0.0},
        {"barrier_deadline_s": 0.0},
    ])
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FleetConfig(**kwargs)


class TestNeighbors:
    def test_ring(self):
        cfg = FleetConfig(vehicles=4, partitions=1)
        assert cfg.neighbors(0) == (1, 3)
        assert cfg.neighbors(2) == (1, 3)

    def test_pair_has_one_neighbor(self):
        cfg = FleetConfig(vehicles=2, partitions=1)
        assert cfg.neighbors(0) == (1,)
        assert cfg.neighbors(1) == (0,)

    def test_singleton_has_none(self):
        cfg = FleetConfig(vehicles=1, partitions=1)
        assert cfg.neighbors(0) == ()


class TestPartitionSpec:
    def test_spec_carries_only_own_faults(self):
        cfg = FleetConfig(
            vehicles=4, partitions=2, kill_plan=KillPlan.single(1, 2),
            straggle_s=(((0, 1), 2.0), ((1, 3), 4.0)),
        )
        spec0, spec1 = cfg.spec_for(0), cfg.spec_for(1)
        assert spec0.kill_plan is None
        assert spec1.kill_plan.kill_for(1, 2) is not None
        assert spec0.straggle_for(1) == 2.0
        assert spec0.straggle_for(3) == 0.0
        assert spec1.straggle_for(3) == 4.0

    def test_disarmed_clears_every_fault(self):
        cfg = FleetConfig(
            vehicles=4, partitions=2,
            kill_plan=KillPlan.single(0, 1, KillPhase.ON_ADVANCE),
            straggle_s=(((0, 2), 9.0),),
        )
        spec = cfg.spec_for(0).disarmed()
        assert spec.kill_plan is None
        assert spec.straggle_for(2) == 0.0
        assert spec.vehicle_indices == (0, 2)

    def test_spec_is_picklable(self):
        cfg = FleetConfig(vehicles=4, partitions=2,
                          kill_plan=KillPlan.single(1, 0))
        spec = cfg.spec_for(1)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_empty_shard_allowed(self):
        # A cost-balanced plan may idle a partition entirely.
        cfg = FleetConfig(vehicles=2, partitions=1)
        spec = PartitionSpec(config=cfg, partition=0, vehicle_indices=())
        assert spec.vehicle_indices == ()

    def test_unsorted_or_duplicate_shard_rejected(self):
        cfg = FleetConfig(vehicles=4, partitions=2)
        with pytest.raises(ValueError, match="sorted, once"):
            PartitionSpec(config=cfg, partition=0, vehicle_indices=(2, 0))
        with pytest.raises(ValueError, match="sorted, once"):
            PartitionSpec(config=cfg, partition=0, vehicle_indices=(1, 1))

    def test_vehicle_seeds_distinct(self):
        cfg = FleetConfig(seed=7, vehicles=16, partitions=2)
        seeds = {cfg.vehicle_seed(v) for v in range(16)}
        assert len(seeds) == 16


class TestWorkloadStyles:
    def test_uniform_is_the_default(self):
        cfg = FleetConfig(vehicles=4, partitions=2)
        assert cfg.workload == "uniform"
        assert [cfg.service_count(v) for v in range(4)] == [1, 1, 1, 1]

    def test_skewed_loads_every_fourth_vehicle(self):
        cfg = FleetConfig(vehicles=8, partitions=4, workload="skewed")
        counts = [cfg.service_count(v) for v in range(8)]
        assert counts == [7, 1, 1, 1, 7, 1, 1, 1]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            FleetConfig(vehicles=2, partitions=1, workload="chaotic")


class TestConfigPlan:
    def test_plan_overrides_round_robin_shards(self):
        cfg = FleetConfig(vehicles=4, partitions=2,
                          plan=((0,), (1, 2, 3)))
        assert cfg.shards() == [(0,), (1, 2, 3)]
        assert cfg.spec_for(0).vehicle_indices == (0,)
        assert cfg.spec_for(1).vehicle_indices == (1, 2, 3)

    def test_plan_lists_are_normalized_to_tuples(self):
        cfg = FleetConfig(vehicles=4, partitions=2, plan=[[0], [1, 2, 3]])
        assert cfg.plan == ((0,), (1, 2, 3))

    @pytest.mark.parametrize("plan", [
        ((0,), (1, 2)),            # vehicle 3 unassigned
        ((0,), (1, 2, 3), ()),     # wrong partition count
        ((0, 1), (1, 2, 3)),       # vehicle 1 assigned twice
        ((1, 0), (2, 3)),          # unsorted shard
    ])
    def test_invalid_plans_rejected(self, plan):
        with pytest.raises(ValueError):
            FleetConfig(vehicles=4, partitions=2, plan=plan)

"""Envelope ordering and the deadline-bounded pipe endpoint."""

import multiprocessing as mp
import pickle

import pytest

from repro.fleet import (
    AdvanceCmd,
    BarrierTimeout,
    Envelope,
    Heartbeat,
    Hello,
    PipeEndpoint,
    RoundAck,
    WorkerGone,
    sort_envelopes,
)


def env(src=0, dst=1, sent=0.5, deliver=1.5, seq=0, payload="x"):
    return Envelope(src=src, dst=dst, sent_s=sent, deliver_s=deliver,
                    seq=seq, payload=payload)


class TestEnvelopeOrdering:
    def test_sorts_by_due_time_first(self):
        late, early = env(deliver=3.0), env(deliver=2.0)
        assert sort_envelopes([late, early]) == [early, late]

    def test_ties_break_by_dst_then_src_then_seq(self):
        batch = [
            env(dst=2, src=1, seq=0),
            env(dst=1, src=2, seq=0),
            env(dst=1, src=1, seq=1),
            env(dst=1, src=1, seq=0),
        ]
        ordered = sort_envelopes(batch)
        assert [(e.dst, e.src, e.seq) for e in ordered] == [
            (1, 1, 0), (1, 1, 1), (1, 2, 0), (2, 1, 0),
        ]

    def test_order_is_input_permutation_invariant(self):
        import itertools

        batch = [env(dst=d, seq=s, deliver=1.0 + d) for d in (2, 0, 1)
                 for s in (1, 0)]
        reference = sort_envelopes(batch)
        for perm in itertools.permutations(batch):
            assert sort_envelopes(list(perm)) == reference


class TestProtocolMessages:
    @pytest.mark.parametrize("message", [
        Hello(partition=1, vehicles=(1, 3), pid=1234),
        Heartbeat(partition=0, round_index=2),
        AdvanceCmd(round_index=3, barrier_s=4.0, inbound=(env(),)),
        RoundAck(round_index=3, barrier_s=4.0, outbound=(env(),),
                 partition_hash="abc", vehicle_hashes={1: "h"},
                 events_fired=10, queue_depth=2),
    ])
    def test_picklable(self, message):
        assert pickle.loads(pickle.dumps(message)) == message


class TestPipeEndpoint:
    def test_roundtrip(self):
        a, b = mp.Pipe(duplex=True)
        left, right = PipeEndpoint(a), PipeEndpoint(b)
        left.send(Heartbeat(partition=0, round_index=1))
        assert right.recv(deadline_s=5.0) == Heartbeat(0, 1)

    def test_deadline_raises_barrier_timeout(self):
        a, _b = mp.Pipe(duplex=True)
        with pytest.raises(BarrierTimeout):
            PipeEndpoint(a).recv(deadline_s=0.05)

    def test_closed_peer_raises_worker_gone(self):
        a, b = mp.Pipe(duplex=True)
        b.close()
        with pytest.raises(WorkerGone):
            PipeEndpoint(a).recv(deadline_s=1.0)

    def test_buffered_message_survives_peer_close(self):
        a, b = mp.Pipe(duplex=True)
        PipeEndpoint(b).send("last words")
        b.close()
        assert PipeEndpoint(a).recv(deadline_s=1.0) == "last words"

    def test_close_is_idempotent(self):
        a, _b = mp.Pipe(duplex=True)
        endpoint = PipeEndpoint(a)
        endpoint.close()
        endpoint.close()

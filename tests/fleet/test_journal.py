"""The recovery journal's commit/replay contract."""

import pytest

from repro.fleet import Envelope, PartitionJournal, ReplayDivergence


def env(seq=0):
    return Envelope(src=0, dst=1, sent_s=0.5, deliver_s=1.5, seq=seq,
                    payload="b")


class TestRecording:
    def test_rounds_must_be_contiguous(self):
        journal = PartitionJournal(partition=0)
        journal.record_advance(0, 1.0, ())
        with pytest.raises(ValueError, match="expected round 1"):
            journal.record_advance(2, 3.0, ())

    def test_resend_of_current_round_is_idempotent(self):
        journal = PartitionJournal(partition=0)
        first = journal.record_advance(0, 1.0, (env(),))
        again = journal.record_advance(0, 1.0, (env(),))
        assert again is first
        assert len(journal.entries) == 1

    def test_committed_prefix_stops_at_first_uncommitted(self):
        journal = PartitionJournal(partition=0)
        for k in range(3):
            journal.record_advance(k, float(k + 1), ())
        journal.commit(0, "h0")
        journal.commit(1, "h1")
        committed = journal.committed_entries()
        assert [e.round_index for e in committed] == [0, 1]
        assert journal.last_committed_round == 1

    def test_empty_journal_has_no_commits(self):
        journal = PartitionJournal(partition=3)
        assert journal.committed_entries() == []
        assert journal.last_committed_round == -1


class TestReplayVerification:
    def test_matching_hash_passes(self):
        journal = PartitionJournal(partition=0)
        journal.record_advance(0, 1.0, ())
        journal.commit(0, "abc")
        journal.verify_replay(0, "abc")

    def test_divergent_hash_raises(self):
        journal = PartitionJournal(partition=0)
        journal.record_advance(0, 1.0, ())
        journal.commit(0, "abc")
        with pytest.raises(ReplayDivergence, match="not event-identical"):
            journal.verify_replay(0, "xyz")

    def test_contradictory_recommit_raises(self):
        journal = PartitionJournal(partition=0)
        journal.record_advance(0, 1.0, ())
        journal.commit(0, "abc")
        journal.commit(0, "abc")  # same hash: fine
        with pytest.raises(ReplayDivergence):
            journal.commit(0, "def")

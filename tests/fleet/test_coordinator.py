"""Coordinator end-to-end: equality, recovery, stragglers, clean shutdown.

These tests spawn real worker processes.  Configs stay tiny (4 vehicles,
a few barriers) so each run is well under a second of work per process.
"""

from dataclasses import replace

import pytest

from repro.faults import KillPhase, KillPlan
from repro.fleet import (
    FleetConfig,
    FleetCoordinator,
    FleetError,
    RecoveryPolicy,
    run_single_process,
)


@pytest.fixture(scope="module")
def config():
    return FleetConfig(seed=5, vehicles=4, partitions=2, duration_s=5.0,
                       barrier_deadline_s=60.0)


@pytest.fixture(scope="module")
def reference(config):
    return run_single_process(config)


class TestEquality:
    def test_partitioned_run_matches_single_process(self, config, reference):
        with FleetCoordinator(config) as coordinator:
            result = coordinator.run()
        assert result.vehicle_hashes == reference.vehicle_hashes
        assert result.metrics == reference.metrics
        assert result.stats.events_fired == reference.stats.events_fired
        assert result.stats.respawns == 0

    def test_four_partitions_match_too(self, config, reference):
        with FleetCoordinator(replace(config, partitions=4)) as coordinator:
            result = coordinator.run()
        assert result.vehicle_hashes == reference.vehicle_hashes
        assert result.metrics == reference.metrics

    def test_report_renders(self, config, reference):
        text = reference.report().to_text()
        assert "cav-000" in text
        assert "rounds: 5" in text


class TestCrashRecovery:
    @pytest.mark.parametrize("phase", [KillPhase.ON_ADVANCE,
                                       KillPhase.BEFORE_ACK])
    def test_killed_worker_recovers_to_identical_hashes(
        self, config, reference, phase
    ):
        killed = replace(config, kill_plan=KillPlan.single(1, 2, phase))
        with FleetCoordinator(killed) as coordinator:
            result = coordinator.run()
        assert result.stats.respawns == 1
        assert result.vehicle_hashes == reference.vehicle_hashes
        assert result.metrics == reference.metrics

    def test_kill_at_first_barrier_recovers(self, config, reference):
        killed = replace(
            config, kill_plan=KillPlan.single(0, 0, KillPhase.ON_ADVANCE)
        )
        with FleetCoordinator(killed) as coordinator:
            result = coordinator.run()
        assert result.stats.respawns == 1
        assert result.stats.rounds_replayed == 0  # nothing committed yet
        assert result.vehicle_hashes == reference.vehicle_hashes

    def test_two_kills_same_partition_within_budget(self, config, reference):
        killed = replace(config, kill_plan=KillPlan(kills=(
            *KillPlan.single(0, 1, KillPhase.BEFORE_ACK).kills,
            *KillPlan.single(1, 3, KillPhase.ON_ADVANCE).kills,
        )))
        with FleetCoordinator(killed) as coordinator:
            result = coordinator.run()
        assert result.stats.respawns == 2
        assert result.vehicle_hashes == reference.vehicle_hashes


class TestStragglers:
    def test_straggler_rescued_by_backoff_retry(self, config, reference):
        slow = replace(config, barrier_deadline_s=0.6,
                       straggle_s=(((1, 1), 1.0),))
        with FleetCoordinator(slow) as coordinator:
            result = coordinator.run()
        assert result.stats.stragglers >= 1
        assert result.stats.respawns == 0
        assert result.vehicle_hashes == reference.vehicle_hashes

    def test_hopeless_straggler_fails_over(self, config, reference):
        stuck = replace(config, barrier_deadline_s=0.4,
                        straggle_s=(((1, 1), 30.0),))
        policy = RecoveryPolicy(straggler_retries=1, straggler_backoff=1.5)
        with FleetCoordinator(stuck, policy=policy) as coordinator:
            result = coordinator.run()
        assert result.stats.respawns == 1
        assert result.vehicle_hashes == reference.vehicle_hashes


class TestLifecycle:
    def test_exit_terminates_all_workers(self, config):
        coordinator = FleetCoordinator(config)
        with coordinator:
            coordinator._spawn_all()
            handles = list(coordinator.workers.values())
            assert all(h.alive for h in handles)
        assert coordinator.workers == {}
        assert all(not h.alive for h in handles)

    def test_shutdown_mid_run_leaves_no_orphans(self, config):
        coordinator = FleetCoordinator(config)
        coordinator._spawn_all()
        handles = list(coordinator.workers.values())
        coordinator.shutdown()
        for handle in handles:
            assert not handle.process.is_alive()
        coordinator.shutdown()  # idempotent

    def test_coordinator_runs_exactly_once(self, config):
        with FleetCoordinator(config) as coordinator:
            coordinator.run()
            with pytest.raises(RuntimeError, match="exactly once"):
                coordinator.run()

    def test_respawn_budget_enforced(self, config):
        # Partition 1 stalls forever on every early round; with a zero
        # respawn budget the first failover must abort the fleet.
        stuck = replace(config, barrier_deadline_s=0.3,
                        straggle_s=(((1, 0), 30.0),))
        policy = RecoveryPolicy(max_respawns=0, straggler_retries=0)
        with FleetCoordinator(stuck, policy=policy) as coordinator:
            with pytest.raises(FleetError, match="respawn budget"):
                coordinator.run()

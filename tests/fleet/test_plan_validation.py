"""validate_shards error surfaces: every violation names its vehicles."""

import pytest

from repro.fleet.config import FleetConfig, validate_shards


def test_shard_count_mismatch():
    with pytest.raises(ValueError, match=r"3 shards for 2 partitions"):
        validate_shards(((0,), (1,), (2,)), vehicles=3, partitions=2)


def test_unknown_vehicle_ids_are_named():
    with pytest.raises(
        ValueError, match=r"unknown vehicle ids \[7, 9\] \(valid ids are 0..3\)"
    ):
        validate_shards(((0, 9), (1, 2, 3, 7)), vehicles=4, partitions=2)


def test_duplicate_vehicle_ids_are_named():
    with pytest.raises(
        ValueError, match=r"ids \[1\] to more than one shard"
    ):
        validate_shards(((0, 1), (1, 2, 3)), vehicles=4, partitions=2)


def test_unassigned_vehicle_ids_are_named():
    with pytest.raises(ValueError, match=r"ids \[2, 3\] unassigned"):
        validate_shards(((0,), (1,)), vehicles=4, partitions=2)


def test_unsorted_shard_rejected():
    with pytest.raises(ValueError, match="sorted"):
        validate_shards(((1, 0), (2, 3)), vehicles=4, partitions=2)


def test_empty_shard_is_allowed():
    validate_shards(((0, 1, 2, 3), ()), vehicles=4, partitions=2)


def test_fleet_config_surfaces_plan_errors():
    with pytest.raises(ValueError, match=r"unknown vehicle ids \[5\]"):
        FleetConfig(vehicles=4, partitions=2, plan=((0, 1), (2, 5)))
    with pytest.raises(ValueError, match=r"\[3\] unassigned"):
        FleetConfig(vehicles=4, partitions=2, plan=((0, 1), (2,)))


def test_fleet_config_accepts_a_complete_plan():
    config = FleetConfig(vehicles=4, partitions=2, plan=((0, 3), (1, 2)))
    assert config.shards() == [(0, 3), (1, 2)]

"""Integration: the distributed executor vs the analytic placement model."""

import pytest

from repro.hw import WorkloadClass
from repro.offload import (
    DynamicVDAP,
    Placement,
    Task,
    TaskGraph,
    evaluate_placement,
)
from repro.offload.executor import DistributedExecutor
from repro.sim import Simulator
from repro.topology import Tier, build_default_world


def plate_graph(name="plate"):
    return TaskGraph.chain(
        name,
        [
            Task("motion", 0.05, WorkloadClass.VISION, output_bytes=200_000,
                 source_bytes=1_000_000),
            Task("detect", 5.0, WorkloadClass.DNN, output_bytes=20_000),
            Task("recognize", 2.0, WorkloadClass.DNN, output_bytes=100),
        ],
    )


def run_once(placement_dict, graph=None):
    world = build_default_world()
    sim = Simulator()
    executor = DistributedExecutor(sim, world)
    graph = graph or plate_graph()
    placement = Placement(placement_dict)
    proc = executor.submit(graph, placement)
    sim.run()
    analytic = evaluate_placement(graph, placement, world)
    return proc.value, analytic


@pytest.mark.parametrize("tiers", [
    {"motion": Tier.VEHICLE, "detect": Tier.VEHICLE, "recognize": Tier.VEHICLE},
    {"motion": Tier.EDGE, "detect": Tier.EDGE, "recognize": Tier.EDGE},
    {"motion": Tier.CLOUD, "detect": Tier.CLOUD, "recognize": Tier.CLOUD},
    {"motion": Tier.VEHICLE, "detect": Tier.EDGE, "recognize": Tier.EDGE},
    {"motion": Tier.VEHICLE, "detect": Tier.EDGE, "recognize": Tier.CLOUD},
])
def test_uncontended_execution_matches_analytic_model(tiers):
    """Single job, idle system: simulation == closed-form, every placement."""
    result, analytic = run_once(tiers)
    assert result.latency_s == pytest.approx(analytic.latency_s, rel=1e-9)


def test_fanout_graph_matches_analytic_model():
    graph = TaskGraph("fan")
    graph.add_task(Task("src", 0.01, WorkloadClass.VISION, output_bytes=50_000,
                        source_bytes=400_000))
    graph.add_task(Task("a", 3.0, WorkloadClass.DNN, output_bytes=1_000))
    graph.add_task(Task("b", 8.0, WorkloadClass.DNN, output_bytes=1_000))
    graph.add_edge("src", "a")
    graph.add_edge("src", "b")
    placement = {"src": Tier.VEHICLE, "a": Tier.EDGE, "b": Tier.EDGE}
    result, analytic = run_once(placement, graph=graph)
    # The edge GPU serializes a and b; the analytic model assumes they run
    # in parallel -- so simulation must be >= analytic, and equal only when
    # serialization is off the critical path.
    assert result.latency_s >= analytic.latency_s - 1e-9


def test_contention_pushes_latency_above_analytic_prediction():
    """Ten simultaneous jobs on the edge GPU: the analytic single-job
    number is optimistic, the simulated tail shows queueing."""
    world = build_default_world()
    sim = Simulator()
    executor = DistributedExecutor(sim, world)
    placement_dict = {
        "motion": Tier.VEHICLE, "detect": Tier.EDGE, "recognize": Tier.EDGE,
    }
    graphs = [plate_graph(f"job-{i}") for i in range(10)]
    procs = [
        executor.submit(g, Placement(dict(placement_dict))) for g in graphs
    ]
    sim.run()
    analytic = evaluate_placement(
        plate_graph(), Placement(placement_dict), build_default_world()
    )
    latencies = sorted(p.value.latency_s for p in procs)
    assert latencies[0] >= analytic.latency_s - 1e-9
    assert latencies[-1] > 2 * analytic.latency_s  # the queue is real


def test_executor_reports_transfer_time_component():
    result, analytic = run_once(
        {"motion": Tier.VEHICLE, "detect": Tier.EDGE, "recognize": Tier.EDGE}
    )
    assert result.transfer_seconds > 0
    assert result.transfer_seconds < result.latency_s


def test_executor_infeasible_tier_fails_job():
    world = build_default_world(vehicle_processors=[])
    sim = Simulator()
    executor = DistributedExecutor(sim, world)
    graph = plate_graph()
    proc = executor.submit(graph, Placement.uniform(graph, Tier.VEHICLE))
    sim.run()
    assert proc.triggered and not proc.ok


def test_executor_agrees_with_dynamic_vdap_choice():
    """The strategy's chosen placement, executed, meets the deadline it was
    chosen for (uncontended)."""
    world = build_default_world()
    graph = plate_graph()
    decision = DynamicVDAP().decide(graph, world, deadline_s=2.0)
    sim = Simulator()
    executor = DistributedExecutor(sim, world)
    proc = executor.submit(plate_graph(), decision.placement)
    sim.run()
    assert proc.value.latency_s <= 2.0
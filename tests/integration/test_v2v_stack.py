"""Integration: the V2V stack -- beacons, firewall, sharing, migration."""

import numpy as np

from repro.apps import PlateSighting
from repro.apps.collab import RESULTS_TOPIC, CollabReport, CollabVehicle
from repro.ddi import CloudDataServer, DiskDB, Record, UplinkMigrator
from repro.edgeos import (
    DataSharingBus,
    Direction,
    Firewall,
    Interface,
    LocationFuzzer,
    PacketMeta,
    PseudonymManager,
)
from repro.net import DsrcMedium, DsrcRadio, LinkModel


def test_range_gated_collaboration():
    """Vehicles only consume shared results from peers their DSRC radio can
    actually hear: out-of-range vehicles fall back to local recognition."""
    medium = DsrcMedium(range_m=300.0)
    bus = DataSharingBus()
    bus.create_topic(RESULTS_TOPIC, readers=[], writers=[])

    positions = {"cav-0": 0.0, "cav-1": 150.0, "cav-2": 5_000.0}
    vehicles = {}
    radios = {}
    for vid, position in positions.items():
        pseudonyms = PseudonymManager(vid, b"platoon")
        radio = DsrcRadio(vehicle_id=vid, pseudonym_fn=pseudonyms.pseudonym)
        medium.join(radio, lambda t, x=position: x)
        radios[vid] = radio
        vehicles[vid] = CollabVehicle(vid, bus, pseudonyms, collaborate=True)

    medium.beacon_round(0.0)
    # cav-0 and cav-1 hear each other; cav-2 hears nobody.
    assert len(radios["cav-0"].table.neighbors(0.0)) == 1
    assert len(radios["cav-2"].table.neighbors(0.0)) == 0

    # The same candidate is seen by all three.
    sighting = PlateSighting(time_s=0.0, position_m=100.0, plate="ABC-1", quality=0.9)
    report = CollabReport()
    vehicles["cav-0"].process(sighting, report)
    # cav-1 is in range of cav-0: reuse allowed.
    vehicles["cav-1"].collaborate = len(radios["cav-1"].table.neighbors(0.0)) > 0
    vehicles["cav-1"].process(sighting, report)
    # cav-2 heard nobody: must compute locally.
    vehicles["cav-2"].collaborate = len(radios["cav-2"].table.neighbors(0.0)) > 0
    vehicles["cav-2"].process(sighting, report)

    assert report.recognitions_reused == 1      # cav-1 reused cav-0's result
    assert report.recognitions_executed == 2    # cav-0 and the isolated cav-2


def test_firewall_admits_collaboration_topic_traffic():
    """The default vehicle policy allows the plate-sharing topic over DSRC
    but blocks the same topic arriving over Bluetooth."""
    firewall = Firewall.vehicle_default()
    dsrc_pkt = PacketMeta(Interface.DSRC, Direction.IN, "peer-pseudonym",
                          "recognized-plates")
    bt_pkt = PacketMeta(Interface.BLUETOOTH, Direction.IN, "peer-pseudonym",
                        "recognized-plates")
    assert firewall.permits(dsrc_pkt)
    assert not firewall.permits(bt_pkt)


def test_full_data_path_vehicle_to_open_dataset(tmp_path):
    """Sensor record -> DDI disk -> privacy fuzzing -> uplink migration ->
    community query, end to end."""
    disk = DiskDB(str(tmp_path / "ddi"))
    rng = np.random.default_rng(0)
    for t in range(10):
        disk.put(Record("obd", float(t), float(rng.uniform(0, 400)), 0.0,
                        {"speed_mps": 12.0 + t}))
    server = CloudDataServer()
    migrator = UplinkMigrator(
        disk, server, ["obd"], fuzzer=LocationFuzzer(grid_m=500.0)
    )
    lte = LinkModel(name="lte", bandwidth_mbps=10.0, rtt_s=0.07)
    while not migrator.fully_migrated(100.0):
        assert migrator.run_round(100.0, lte) > 0

    community = server.open_query("obd", 0.0, 100.0)
    assert len(community) == 10
    # The open dataset carries fuzzed locations and intact telemetry.
    assert all(r.x_m == 250.0 for r in community)
    assert [r.payload["speed_mps"] for r in community] == [12.0 + t for t in range(10)]

"""Tests for the high-level DriveScenario orchestrator."""

import pytest

from repro.apps import make_adas_service, make_amber_service
from repro.hw import catalog
from repro.scenario import DriveScenario
from repro.topology import SpeedProfile, build_default_world


def scenario(tmp_path=None, **kwargs):
    world = build_default_world(
        speed_mps=15.0,
        edge_count=3,
        edge_spacing_m=600.0,
        vehicle_processors=[catalog.intel_i7_6700(), catalog.intel_mncs()],
    )
    # Coverage gaps between RSUs: shrink the radii.
    for edge in world.edges:
        edge.coverage_radius_m = 200.0
    return DriveScenario(world=world, ddi_root=str(tmp_path) if tmp_path else None,
                         **kwargs)


def test_scenario_validation(tmp_path):
    with pytest.raises(ValueError):
        DriveScenario(tick_s=0.0)
    s = scenario()
    with pytest.raises(ValueError):
        s.add_service(make_adas_service(), period_s=0.0)
    with pytest.raises(ValueError):
        s.run(0.0)
    with pytest.raises(RuntimeError):
        s.attach_obd(SpeedProfile([(0.0, 15.0)]))


def test_dsrc_quality_follows_coverage():
    s = scenario()
    # t=0: vehicle at x=0, on top of xedge-0 -> full rate.
    assert s.dsrc_quality_at(0.0) == pytest.approx(27.0)
    # Vehicle at x=300 (t=20): between cells (gap) -> dead.
    assert s.dsrc_quality_at(20.0) < 1.0


def test_drive_produces_consistent_report(tmp_path):
    s = scenario(tmp_path)
    s.add_service(make_adas_service(deadline_s=0.6), period_s=1.0)
    s.add_service(make_amber_service(deadline_s=3.0), period_s=5.0)
    s.attach_obd(SpeedProfile([(0.0, 15.0)]))
    report = s.run(120.0)

    adas = report.service("adas-perception")
    amber = report.service("amber-search")
    # Invocation counts respect the periods (minus any hung ticks).
    assert 0 < amber.invocations <= adas.invocations
    assert adas.invocations + adas.hung_ticks >= 100
    # Latency summaries populated and sane.
    assert adas.latency.count == adas.invocations
    assert 0 < adas.latency.mean < 10.0
    # The drive crosses coverage gaps: pipelines must have switched.
    assert adas.switches >= 2
    # On-board work burned energy; DDI collected every tick.
    assert report.vehicle_energy_j > 0.0
    assert report.ddi_records == 120


def test_coverage_gaps_force_onboard_or_hang(tmp_path):
    s = scenario(tmp_path)
    s.add_service(make_adas_service(deadline_s=0.6), period_s=1.0)
    report = s.run(120.0)
    timeline = report.service("adas-perception").pipeline_timeline
    values = set(timeline.values)
    # In gaps the service runs on board (or hangs); near RSUs it offloads.
    assert "onboard" in values
    assert values & {"detect-on-edge", "perception-on-edge"}


def test_deadline_misses_counted_against_service_deadline(tmp_path):
    s = scenario(tmp_path)
    # Impossible deadline: every non-hung invocation misses... actually the
    # manager hangs the service instead, so invocations stay at zero.
    s.add_service(make_adas_service(deadline_s=1e-6), period_s=1.0)
    report = s.run(30.0)
    svc = report.service("adas-perception")
    assert svc.invocations == 0
    assert svc.hung_ticks >= 29


def test_distributed_execution_mode_records_real_latencies(tmp_path):
    """With execute_distributed, every invocation's full placed graph runs
    through the executor; executed latencies are >= the analytic values
    (queueing, serialized links)."""
    s = scenario(execute_distributed=True)
    s.add_service(make_adas_service(deadline_s=0.8), period_s=1.0)
    report = s.run(60.0)
    svc = report.service("adas-perception")
    assert svc.executed_latency.count > 0
    # Executed latency accounts everything the analytic model does, plus
    # contention -- so its mean can't be materially below the analytic one.
    assert svc.executed_latency.mean >= svc.latency.mean * 0.8


def test_default_mode_does_not_record_executed_latency(tmp_path):
    s = scenario()
    s.add_service(make_adas_service(deadline_s=0.8), period_s=1.0)
    report = s.run(30.0)
    assert report.service("adas-perception").executed_latency.count == 0

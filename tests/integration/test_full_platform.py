"""Integration tests: whole-platform scenarios across subsystems.

These wire the real components together -- simulator, mHEP/DSF, DDI,
data sharing, elastic management, security -- and drive multi-step
scenarios, including the failure-injection cases DESIGN.md calls out.
"""

import numpy as np
import pytest

from repro.apps import DiagnosticsService, make_adas_service, make_amber_service
from repro.ddi import DDIService, DiskDB, OBDCollector
from repro.edgeos import (
    DataSharingBus,
    ElasticManager,
    SecurityModule,
    ServiceState,
)
from repro.hw import WorkloadClass, catalog
from repro.libvdap import LibVDAP
from repro.offload import Task, TaskGraph
from repro.sim import Simulator
from repro.topology import SpeedProfile, build_default_world
from repro.vcu import DSF, MHEP, SECOND_LEVEL
from repro.workloads import STANDARD_MIX


def boot_platform(tmp_path, processors=None):
    """Bring up the full on-board stack."""
    sim = Simulator()
    mhep = MHEP(sim)
    for proc in processors or (catalog.intel_i7_6700(), catalog.jetson_tx2_maxp()):
        mhep.register(proc)
    dsf = DSF(sim, mhep)
    ddi = DDIService(lambda: sim.now, DiskDB(str(tmp_path / "ddi")))
    sharing = DataSharingBus()
    world = build_default_world()
    lib = LibVDAP(dsf, ddi, sharing, world=world)
    return sim, mhep, dsf, ddi, sharing, world, lib


def test_periodic_service_mix_runs_to_completion(tmp_path):
    """The standard 4-service mix submitted periodically through libvdap
    all completes, with the DSF spreading work across devices."""
    sim, mhep, dsf, _ddi, _sharing, _world, lib = boot_platform(tmp_path)
    procs = []

    def driver(sim):
        for round_idx in range(5):
            for factory, _deadline in STANDARD_MIX:
                procs.append(lib.submit(factory()))
            yield sim.timeout(1.0)

    sim.process(driver(sim))
    sim.run()
    assert len(procs) == 20
    assert all(p.ok for p in procs)
    devices_used = {
        device for p in procs for device in p.value.task_devices.values()
    }
    assert len(devices_used) >= 2  # heterogeneity actually exploited


def test_drive_with_ddi_collection_and_diagnostics(tmp_path):
    """OBD collection into the DDI during a simulated drive, with the
    diagnostics service analyzing through the libvdap data API."""
    sim, _mhep, _dsf, ddi, _sharing, _world, lib = boot_platform(tmp_path)
    profile = SpeedProfile([(0.0, 15.0), (300.0, 0.0)])
    ddi.attach_collector(OBDCollector(profile=profile, rng=np.random.default_rng(0)))

    def collector_loop(sim):
        for _ in range(60):
            ddi.collect_all(sim.now)
            yield sim.timeout(5.0)

    sim.process(collector_loop(sim))
    sim.run()

    result = lib.call("GET", "/data/obd", t0=0.0, t1=300.0)
    assert len(result.records) == 60
    diagnostics = DiagnosticsService()
    for record in result.records:
        diagnostics.check(record)
    # A healthy synthetic vehicle raises no codes.
    assert diagnostics.faults == []


def test_failure_injection_2ndhep_device_leaves_mid_backlog(tmp_path):
    """A passenger phone leaves while jobs are queued: everything still
    completes, on the remaining devices only."""
    sim = Simulator()
    mhep = MHEP(sim)
    mhep.register(catalog.onboard_controller())
    mhep.register(catalog.passenger_phone(), level=SECOND_LEVEL)
    dsf = DSF(sim, mhep)

    jobs = [
        dsf.submit(TaskGraph.chain(f"j{i}", [Task(f"j{i}-t", 10.0, WorkloadClass.DNN)]))
        for i in range(8)
    ]

    def passenger_leaves(sim):
        yield sim.timeout(3.0)
        mhep.unregister("Passenger phone")
        # Late work arrives after the phone is gone.
        jobs.append(
            dsf.submit(TaskGraph.chain("late", [Task("late-t", 10.0, WorkloadClass.DNN)]))
        )

    sim.process(passenger_leaves(sim))
    sim.run()
    assert all(p.ok for p in jobs)
    late = jobs[-1].value
    assert late.task_devices["late-t"] == "On-board controller"


def test_failure_injection_edge_outage_hangs_and_recovers(tmp_path):
    """XEdge connectivity dies: the elastic manager hangs the service that
    needs the edge, then resumes it when coverage returns."""
    world = build_default_world(vehicle_processors=[catalog.onboard_controller()])
    manager = ElasticManager()
    service = make_amber_service(deadline_s=0.8)
    manager.register(service)

    assert not manager.choose(service, world).hung

    # Outage: both radio paths die.
    good_edge = world.links.vehicle_edge.bandwidth_mbps
    good_cloud = world.links.vehicle_cloud.bandwidth_mbps
    world.links.vehicle_edge.bandwidth_mbps = 0.01
    world.links.vehicle_cloud.bandwidth_mbps = 0.01
    assert manager.choose(service, world).hung
    assert service.state is ServiceState.HUNG

    world.links.vehicle_edge.bandwidth_mbps = good_edge
    world.links.vehicle_cloud.bandwidth_mbps = good_cloud
    resumed = manager.choose(service, world)
    assert not resumed.hung
    assert service.hang_count == 1


def test_failure_injection_compromise_recovery_preserves_scheduling(tmp_path):
    """A third-party service is compromised mid-operation; the security
    module reinstalls it and the elastic manager keeps scheduling it."""
    world = build_default_world()
    manager = ElasticManager()
    security = SecurityModule()
    service = make_adas_service(deadline_s=1.0)
    manager.register(service)
    container = security.deploy(service, b"adas-image-v1")
    container.write_file("/tmp/exploit", b"rootkit")

    security.report_compromise(service)
    assert service.state is ServiceState.COMPROMISED
    # While compromised, retune skips it.
    assert manager.retune(world) == []

    recovered = security.monitor(manager.services)
    assert recovered == ["adas-perception"]
    assert container.filesystem == {}
    choice = manager.choose(service, world)
    assert not choice.hung


def test_cross_service_sharing_through_bus(tmp_path):
    """ADAS publishes detections; the AMBER service consumes them under the
    ACL; an unauthorized diagnostics service cannot."""
    _sim, _mhep, _dsf, _ddi, sharing, _world, _lib = boot_platform(tmp_path)
    adas_token = sharing.register_service("adas")
    amber_token = sharing.register_service("amber")
    diag_token = sharing.register_service("diag")
    sharing.create_topic("detections", readers=["amber"], writers=["adas"])

    sharing.publish("adas", adas_token, "detections",
                    {"box": (10, 20, 64, 64), "kind": "vehicle"})
    seen = sharing.read("amber", amber_token, "detections")
    assert len(seen) == 1

    from repro.edgeos import AccessDenied
    with pytest.raises(AccessDenied):
        sharing.read("diag", diag_token, "detections")


def test_offload_plan_matches_dsf_execution_for_local_placement(tmp_path):
    """When the planner keeps a job on the vehicle, the DSF's simulated
    execution time matches the plan's predicted latency."""
    from repro.offload import LocalOnly

    sim, _mhep, dsf, _ddi, _sharing, world, lib = boot_platform(tmp_path)
    graph = TaskGraph.chain(
        "local-job", [Task("t", 50.0, WorkloadClass.DNN, output_bytes=100)]
    )
    decision = LocalOnly().decide(graph, world)
    job = lib.submit(TaskGraph.chain(
        "local-job-2", [Task("t", 50.0, WorkloadClass.DNN, output_bytes=100)]
    ))
    sim.run()
    assert job.value.latency_s == pytest.approx(decision.evaluation.latency_s, rel=1e-6)


def test_elastic_management_driven_by_estimated_links(tmp_path):
    """The manager can operate on *estimated* link quality (the paper's
    open problem): probes feed a LinkEstimator, whose estimate replaces the
    oracle link in the world the manager evaluates against."""
    from repro.net import LinkEstimator

    truth_world = build_default_world(
        vehicle_processors=[catalog.onboard_controller()]
    )
    planning_world = build_default_world(
        vehicle_processors=[catalog.onboard_controller()]
    )
    manager = ElasticManager()
    service = make_amber_service(deadline_s=0.8)
    manager.register(service)
    estimator = LinkEstimator(alpha=0.5)

    # Phase 1: healthy DSRC, probed and estimated.
    for t in range(5):
        estimator.probe_link(float(t), truth_world.links.vehicle_edge)
    planning_world.links.vehicle_edge = estimator.estimate(5.0).as_link("dsrc-est")
    healthy = manager.choose(service, planning_world)
    assert not healthy.hung

    # Phase 2: the real link collapses; probes see it; the estimate follows.
    truth_world.links.vehicle_edge.bandwidth_mbps = 0.01
    truth_world.links.vehicle_cloud.bandwidth_mbps = 0.01
    for t in range(5, 15):
        estimator.probe_link(float(t), truth_world.links.vehicle_edge)
    planning_world.links.vehicle_edge = estimator.estimate(15.0).as_link("dsrc-est")
    planning_world.links.vehicle_cloud.bandwidth_mbps = 0.01
    degraded = manager.choose(service, planning_world)
    assert degraded.hung or degraded.pipeline == "onboard"

"""Integration: the distributed executor surviving injected faults."""

import pytest

from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryPolicy,
)
from repro.hw import WorkloadClass, catalog
from repro.offload import DistributedExecutor, Placement, Task, TaskGraph
from repro.sim import Simulator
from repro.topology import Tier, build_default_world


def simple_graph(name="job", work=5.0):
    return TaskGraph.chain(
        name,
        [
            Task("detect", work, WorkloadClass.DNN, output_bytes=1_000,
                 source_bytes=100_000),
        ],
    )


def edge_placement(graph):
    return Placement.uniform(graph, Tier.EDGE)


def manual_plan(*events, horizon=1_000.0):
    return FaultPlan(seed=0, horizon_s=horizon, events=tuple(events))


def edge_gpu_name():
    return catalog.edge_server_gpu().name


def test_no_faults_no_retry_behaves_exactly_as_before():
    world = build_default_world()
    graph = simple_graph()
    sim = Simulator()
    executor = DistributedExecutor(sim, world)
    proc = executor.submit(graph, edge_placement(graph))
    sim.run()
    baseline = proc.value.latency_s

    sim2 = Simulator()
    injector = FaultInjector(sim2, manual_plan())  # empty plan
    executor2 = DistributedExecutor(sim2, world, faults=injector,
                                    retry=RetryPolicy())
    proc2 = executor2.submit(graph, edge_placement(graph))
    sim2.run()
    assert proc2.value.latency_s == pytest.approx(baseline, rel=1e-9)
    assert proc2.value.retries == 0
    assert not proc2.value.failed


def test_fail_fast_processor_death_kills_the_job():
    world = build_default_world()
    graph = simple_graph(work=50_000.0)  # long enough to be mid-flight
    sim = Simulator()
    plan = manual_plan(
        FaultEvent(FaultKind.PROCESSOR_DOWN, f"edge/{edge_gpu_name()}", 0.5, 5.0),
    )
    injector = FaultInjector(sim, plan, world=world)
    executor = DistributedExecutor(sim, world, faults=injector, retry=None)
    proc = executor.submit(graph, edge_placement(graph), deadline_s=10.0)
    sim.run()
    result = proc.value  # fault-aware executor records, not raises
    assert result.failed
    assert "died mid-task" in result.failure_reason
    assert result.missed_deadline


def test_retry_resumes_after_processor_recovers():
    world = build_default_world()
    graph = simple_graph(work=50_000.0)
    sim = Simulator()
    plan = manual_plan(
        FaultEvent(FaultKind.PROCESSOR_DOWN, f"edge/{edge_gpu_name()}", 0.5, 2.0),
    )
    injector = FaultInjector(sim, plan, world=world)
    executor = DistributedExecutor(
        sim, world, faults=injector,
        retry=RetryPolicy(max_attempts=5, same_tier_attempts=5,
                          base_delay_s=3.0, max_delay_s=3.0),
    )
    proc = executor.submit(graph, edge_placement(graph))
    sim.run()
    result = proc.value
    assert not result.failed
    assert result.retries >= 1
    assert result.replacements == 0  # stayed on the edge


def test_failover_to_surviving_tier_when_home_tier_stays_dead():
    world = build_default_world()
    graph = simple_graph(work=100.0)
    sim = Simulator()
    # The edge GPU dies almost immediately and stays dead a long time.
    plan = manual_plan(
        FaultEvent(FaultKind.PROCESSOR_DOWN, f"edge/{edge_gpu_name()}", 0.1, 900.0),
    )
    injector = FaultInjector(sim, plan, world=world)
    executor = DistributedExecutor(
        sim, world, faults=injector,
        retry=RetryPolicy(max_attempts=4, same_tier_attempts=1, base_delay_s=0.05),
    )
    proc = executor.submit(graph, edge_placement(graph))
    sim.run()
    result = proc.value
    assert not result.failed
    assert result.replacements >= 1  # work moved off the dead edge


def test_link_outage_parks_transfer_until_recovery():
    world = build_default_world()
    graph = simple_graph(work=1.0)
    sim = Simulator()
    plan = manual_plan(
        FaultEvent(FaultKind.LINK_DOWN, "edge-vehicle", 0.0, 5.0),
    )
    injector = FaultInjector(sim, plan, world=world)
    executor = DistributedExecutor(sim, world, faults=injector,
                                   retry=RetryPolicy())
    proc = executor.submit(graph, edge_placement(graph))
    sim.run()
    result = proc.value
    assert not result.failed
    assert result.finished_at > 5.0  # could not even start before recovery


def test_link_outage_without_retry_fails_the_job():
    world = build_default_world()
    graph = simple_graph(work=1.0)
    sim = Simulator()
    plan = manual_plan(
        FaultEvent(FaultKind.LINK_DOWN, "edge-vehicle", 0.0, 5.0),
    )
    injector = FaultInjector(sim, plan, world=world)
    executor = DistributedExecutor(sim, world, faults=injector, retry=None)
    proc = executor.submit(graph, edge_placement(graph))
    sim.run()
    assert proc.value.failed
    assert "down" in proc.value.failure_reason


def test_slowdown_window_stretches_execution():
    world = build_default_world()
    graph = simple_graph(work=5_000.0)
    plan = manual_plan(
        FaultEvent(FaultKind.PROCESSOR_SLOW, f"edge/{edge_gpu_name()}", 0.0,
                   900.0, severity=4.0),
    )

    sim = Simulator()
    executor = DistributedExecutor(sim, world)
    proc = executor.submit(graph, edge_placement(graph))
    sim.run()
    healthy = proc.value.latency_s

    sim2 = Simulator()
    injector = FaultInjector(sim2, plan, world=world)
    executor2 = DistributedExecutor(sim2, world, faults=injector,
                                    retry=RetryPolicy())
    proc2 = executor2.submit(graph, edge_placement(graph))
    sim2.run()
    assert proc2.value.latency_s > healthy * 2  # ~4x compute, same transfers


def test_deadline_accounting():
    world = build_default_world()
    graph = simple_graph(work=5_000.0)
    sim = Simulator()
    executor = DistributedExecutor(sim, world)
    proc = executor.submit(graph, edge_placement(graph), deadline_s=1e-6)
    sim.run()
    assert proc.value.missed_deadline and not proc.value.failed

    sim2 = Simulator()
    executor2 = DistributedExecutor(sim2, world)
    proc2 = executor2.submit(graph, edge_placement(graph), deadline_s=1e6)
    sim2.run()
    assert not proc2.value.missed_deadline

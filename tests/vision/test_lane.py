"""Tests for the lane-detection pipeline."""

import numpy as np
import pytest

from repro.vision import detect_lanes, gaussian_blur, hough_lines, road_scene, sobel_edges


def test_gaussian_blur_smooths_noise():
    rng = np.random.default_rng(0)
    img = rng.normal(0.5, 0.2, size=(50, 50))
    blurred, ops = gaussian_blur(img)
    assert blurred.std() < img.std()
    assert ops == img.size * 2 * 9


def test_gaussian_blur_preserves_constant_image():
    img = np.full((20, 20), 0.5)
    blurred, _ = gaussian_blur(img)
    assert np.allclose(blurred, 0.5)


def test_gaussian_blur_validation():
    with pytest.raises(ValueError):
        gaussian_blur(np.zeros((5, 5)), kernel=4)


def test_sobel_finds_vertical_edge():
    img = np.zeros((20, 20))
    img[:, 10:] = 1.0
    edges, ops = sobel_edges(img)
    ys, xs = np.nonzero(edges)
    assert set(xs) <= {9, 10}
    assert ops == 20 * 20 * 38


def test_sobel_rejects_non_2d():
    with pytest.raises(ValueError):
        sobel_edges(np.zeros((3, 3, 3)))


def test_hough_recovers_vertical_line():
    edges = np.zeros((50, 50), dtype=bool)
    edges[:, 25] = True
    lines, _ops = hough_lines(edges, min_votes=20)
    assert lines
    theta, rho = lines[0]
    # Vertical line: theta ~ 0, rho ~ 25.
    assert abs(theta) < 0.05
    assert rho == pytest.approx(25, abs=2.5)


def test_hough_empty_edges_returns_nothing():
    lines, ops = hough_lines(np.zeros((20, 20), dtype=bool))
    assert lines == [] and ops == 0


def test_hough_op_count_scales_with_edges():
    edges = np.zeros((50, 50), dtype=bool)
    edges[:, 25] = True
    _lines, ops = hough_lines(edges, theta_bins=360)
    assert ops == 50 * 360 * 5


def test_detect_lanes_finds_both_lines_on_scene():
    img, truth = road_scene(rng=np.random.default_rng(1), vehicle_count=0)
    result = detect_lanes(img)
    assert result.found_both_lanes
    thetas = sorted(theta for theta, _rho in result.lines)
    # One left-leaning and one right-leaning boundary.
    assert thetas[0] < 0 < thetas[1]


def test_detect_lanes_reports_positive_ops():
    img, _ = road_scene(rng=np.random.default_rng(2))
    result = detect_lanes(img)
    assert result.ops > 1e6
    assert result.edge_count > 0


def test_detect_lanes_validation():
    img, _ = road_scene(rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        detect_lanes(img, horizon_fraction=1.0)


def test_detect_lanes_robust_across_seeds():
    found = 0
    for seed in range(6):
        img, _ = road_scene(rng=np.random.default_rng(seed), vehicle_count=0)
        if detect_lanes(img).found_both_lanes:
            found += 1
    assert found >= 5

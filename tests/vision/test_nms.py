"""Tests for detection IoU and non-max suppression."""

import pytest

from repro.vision import Detection, non_max_suppression


def det(x, y, size=24, score=1.0):
    return Detection(x=x, y=y, size=size, score=score)


def test_iou_identical_boxes():
    assert det(0, 0).iou(det(0, 0)) == pytest.approx(1.0)


def test_iou_disjoint_boxes():
    assert det(0, 0, 10).iou(det(100, 100, 10)) == 0.0


def test_iou_half_overlap():
    a, b = det(0, 0, 10), det(5, 0, 10)
    # Intersection 50, union 150.
    assert a.iou(b) == pytest.approx(1 / 3)


def test_nms_collapses_cluster_to_best():
    cluster = [det(0, 0, 24, 0.9), det(2, 1, 24, 0.8), det(1, 2, 24, 0.7)]
    kept = non_max_suppression(cluster)
    assert len(kept) == 1
    assert kept[0].score == 0.9


def test_nms_keeps_separate_objects():
    detections = [det(0, 0, 24, 0.9), det(200, 200, 24, 0.8)]
    kept = non_max_suppression(detections)
    assert len(kept) == 2


def test_nms_order_is_by_score():
    detections = [det(200, 200, 24, 0.95), det(0, 0, 24, 0.5)]
    kept = non_max_suppression(detections)
    assert [d.score for d in kept] == [0.95, 0.5]


def test_nms_threshold_validation_and_empty():
    with pytest.raises(ValueError):
        non_max_suppression([], iou_threshold=2.0)
    assert non_max_suppression([]) == []


def test_nms_reduces_sliding_window_blowup():
    """On a real scan, NMS cuts the raw hit count drastically."""
    import numpy as np

    from repro.vision import (
        background_patch,
        road_scene,
        train_haar_detector,
        vehicle_patch,
    )

    rng = np.random.default_rng(3)
    positives = [vehicle_patch(24, rng) for _ in range(50)]
    negatives = [background_patch(24, rng) for _ in range(50)]
    detector = train_haar_detector(positives, negatives, rounds=12, rng=rng)
    img, _truth = road_scene(width=160, height=120, rng=rng, vehicle_count=1)
    raw, _ops = detector.detect(img, step=4)
    if len(raw) > 3:
        kept = non_max_suppression(raw)
        assert len(kept) < len(raw) / 2

"""Tests for Haar and CNN vehicle detectors and the Table I harness."""

import numpy as np
import pytest

from repro.hw import catalog
from repro.vision import (
    HaarFeature,
    background_patch,
    integral_image,
    make_patch_dataset,
    rect_sum,
    road_scene,
    table1_rows,
    train_cnn_detector,
    train_haar_detector,
    vehicle_patch,
)


def test_integral_image_rect_sum_matches_direct():
    rng = np.random.default_rng(0)
    img = rng.random((10, 12))
    ii = integral_image(img)
    assert rect_sum(ii, 3, 2, 5, 4) == pytest.approx(img[2:6, 3:8].sum())
    assert rect_sum(ii, 0, 0, 12, 10) == pytest.approx(img.sum())


def test_integral_image_rejects_non_2d():
    with pytest.raises(ValueError):
        integral_image(np.zeros((2, 2, 2)))


def test_rect_sum_vectorized():
    rng = np.random.default_rng(1)
    img = rng.random((20, 20))
    ii = integral_image(img)
    xs = np.array([0, 5, 10])
    ys = np.array([0, 2, 4])
    sums = rect_sum(ii, xs, ys, 4, 4)
    for i, (x, y) in enumerate(zip(xs, ys)):
        assert sums[i] == pytest.approx(img[y : y + 4, x : x + 4].sum())


def test_haar_feature_validation():
    with pytest.raises(ValueError):
        HaarFeature("diagonal", 0, 0, 1, 1)


def test_haar_feature_two_h_sign():
    # Image brighter on the right: two_h (right - left) should be positive.
    img = np.zeros((24, 24))
    img[:, 12:] = 1.0
    ii = integral_image(img)
    feature = HaarFeature("two_h", 0.0, 0.0, 1.0, 1.0)
    assert feature.evaluate(ii, 0, 0, 24) > 0


def _patches(n, rng):
    positives = [vehicle_patch(24, rng) for _ in range(n)]
    negatives = [background_patch(24, rng) for _ in range(n)]
    return positives, negatives


def test_haar_training_validation():
    with pytest.raises(ValueError):
        train_haar_detector([], [np.zeros((24, 24))])


def test_haar_detector_separates_patches():
    rng = np.random.default_rng(0)
    positives, negatives = _patches(50, rng)
    detector = train_haar_detector(positives, negatives, rounds=12, rng=rng)
    test_pos = [vehicle_patch(24, rng) for _ in range(20)]
    test_neg = [background_patch(24, rng) for _ in range(20)]
    tp = sum(detector.classify_patch(p) for p in test_pos)
    fp = sum(detector.classify_patch(p) for p in test_neg)
    assert tp >= 16  # >= 80% recall
    assert fp <= 4   # <= 20% false positives


def test_haar_detect_finds_vehicle_region_on_scene():
    rng = np.random.default_rng(3)
    positives, negatives = _patches(50, rng)
    detector = train_haar_detector(positives, negatives, rounds=12, rng=rng)
    img, truth = road_scene(width=160, height=120, rng=rng, vehicle_count=1)
    detections, ops = detector.detect(img, step=4)
    assert ops > 0
    vx, vy, vw, vh = truth.vehicle_boxes[0]
    hit = any(
        vx - d.size <= d.x <= vx + vw and vy - d.size <= d.y <= vy + vh
        for d in detections
    )
    assert hit


def test_haar_scan_ops_analytic_matches_executed():
    rng = np.random.default_rng(4)
    positives, negatives = _patches(30, rng)
    detector = train_haar_detector(positives, negatives, rounds=5, rng=rng)
    img, _ = road_scene(width=100, height=80, rng=rng)
    _dets, executed = detector.detect(img, step=2)
    analytic = detector.scan_ops(100, 80, step=2)
    # Analytic count uses ceil-grid; executed uses arange -- within 20%.
    assert executed == pytest.approx(analytic, rel=0.2)


def test_cnn_detector_separates_patches():
    rng = np.random.default_rng(0)
    detector = train_cnn_detector(patch_size=32, train_count=120, epochs=6, rng=rng)
    correct = 0
    for _ in range(20):
        correct += detector.classify_patch(vehicle_patch(32, rng)) is True
        correct += detector.classify_patch(background_patch(32, rng)) is False
    assert correct >= 32  # >= 80% accuracy over 40 trials


def test_cnn_scan_flops_scales_with_area():
    rng = np.random.default_rng(1)
    detector = train_cnn_detector(patch_size=32, train_count=40, epochs=1, rng=rng)
    small = detector.scan_flops(160, 120)
    large = detector.scan_flops(640, 480)
    assert large > 10 * small


def test_patch_dataset_is_balanced():
    x, y = make_patch_dataset(40, 16, np.random.default_rng(0))
    assert x.shape == (40, 1, 16, 16)
    assert (y == 0).sum() == 20 and (y == 1).sum() == 20


def test_table1_ordering_and_ratios():
    """The paper's Table I: lane << Haar << CNN, with Haar ~51x faster
    than the deep detector."""
    rows = table1_rows(rng=np.random.default_rng(0))
    lane, haar, cnn = (row.latency_ms for row in rows)
    assert lane < haar < cnn
    assert 20 < cnn / haar < 110  # paper: 51.9x
    assert 5 < haar / lane < 80   # paper: 19.9x


def test_table1_faster_processor_gives_lower_latency():
    rows_cpu = table1_rows(rng=np.random.default_rng(0))
    rows_v100 = table1_rows(
        processor=catalog.tesla_v100(), rng=np.random.default_rng(0)
    )
    # Same op counts, faster DNN silicon.
    assert rows_v100[2].latency_ms < rows_cpu[2].latency_ms
    assert rows_v100[2].ops == rows_cpu[2].ops

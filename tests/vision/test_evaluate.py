"""Tests for detector evaluation metrics."""

import numpy as np
import pytest

from repro.vision import (
    Detection,
    DetectionMetrics,
    background_patch,
    box_iou,
    evaluate_detector,
    train_haar_detector,
    vehicle_patch,
)


def test_metrics_formulas():
    metrics = DetectionMetrics(true_positives=8, false_positives=2,
                               false_negatives=2, scenes=10)
    assert metrics.precision == pytest.approx(0.8)
    assert metrics.recall == pytest.approx(0.8)
    assert metrics.f1 == pytest.approx(0.8)


def test_metrics_degenerate_cases():
    empty = DetectionMetrics(0, 0, 0, 0)
    assert empty.precision == 0.0 and empty.recall == 0.0 and empty.f1 == 0.0


def test_box_iou_perfect_and_none():
    detection = Detection(x=10, y=10, size=20, score=1.0)
    assert box_iou(detection, (10, 10, 20, 20)) == pytest.approx(1.0)
    assert box_iou(detection, (100, 100, 20, 20)) == 0.0


def test_box_iou_partial():
    detection = Detection(x=0, y=0, size=10, score=1.0)
    # Ground truth shifted by half: intersection 50, union 150.
    assert box_iou(detection, (5, 0, 10, 10)) == pytest.approx(1 / 3)


def test_trained_detector_beats_random_guesser():
    rng = np.random.default_rng(0)
    positives = [vehicle_patch(24, rng) for _ in range(50)]
    negatives = [background_patch(24, rng) for _ in range(50)]
    trained = train_haar_detector(positives, negatives, rounds=12, rng=rng)
    metrics = evaluate_detector(trained, scenes=8, rng=np.random.default_rng(1))
    assert metrics.recall > 0.5
    assert metrics.scenes == 8
    # The evaluation accounts every ground-truth vehicle exactly once.
    assert metrics.true_positives + metrics.false_negatives == 8

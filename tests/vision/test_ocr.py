"""Tests for the plate OCR substrate and its AMBER integration."""

import numpy as np
import pytest

from repro.apps import AmberSearchService, PlateSighting
from repro.vision.ocr import (
    FONT,
    plate_quality_to_noise,
    read_plate,
    render_plate,
)


def test_font_covers_alphanumerics_and_dash():
    for char in "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-":
        assert char in FONT
        assert FONT[char].shape == (7, 5)


def test_font_glyphs_are_distinct():
    glyphs = {char: tuple(arr.ravel()) for char, arr in FONT.items()}
    assert len(set(glyphs.values())) == len(glyphs)


def test_clean_render_reads_back_exactly():
    for text in ("AMBER-911", "XYZ-0042", "Q7W-PLUS"):
        assert read_plate(render_plate(text)) == text


def test_render_validation():
    with pytest.raises(ValueError):
        render_plate("hello!")  # '!' unsupported
    with pytest.raises(ValueError):
        render_plate("ABC", noise=-0.1)


def test_read_validation():
    with pytest.raises(ValueError):
        read_plate(np.zeros((4, 10)))


def test_low_noise_robust_high_noise_fails():
    rng = np.random.default_rng(1)
    clean = render_plate("KIDNAP-1", noise=0.15, rng=rng)
    assert read_plate(clean) == "KIDNAP-1"
    misread = 0
    for i in range(30):
        noisy = render_plate("KIDNAP-1", noise=0.8, rng=np.random.default_rng(i))
        misread += read_plate(noisy) != "KIDNAP-1"
    assert misread > 15


def test_quality_noise_mapping():
    assert plate_quality_to_noise(1.0) == 0.0
    assert plate_quality_to_noise(0.0) == pytest.approx(0.9)
    with pytest.raises(ValueError):
        plate_quality_to_noise(1.5)


def test_accuracy_degrades_monotonically_with_quality():
    def read_rate(quality):
        noise = plate_quality_to_noise(quality)
        ok = 0
        for i in range(40):
            img = render_plate("AMBER-911", noise=noise,
                               rng=np.random.default_rng(i))
            ok += read_plate(img) == "AMBER-911"
        return ok / 40

    rates = [read_rate(q) for q in (0.9, 0.5, 0.2)]
    assert rates[0] > 0.95
    assert rates[0] >= rates[1] >= rates[2]
    assert rates[2] < 0.3


def test_amber_with_real_ocr_finds_good_sightings():
    service = AmberSearchService(target_plate="AMBER-911", use_ocr=True)
    crisp = PlateSighting(time_s=0.0, position_m=0.0, plate="AMBER-911", quality=0.95)
    assert service.process(crisp) is not None


def test_amber_with_real_ocr_misses_blurry_sightings():
    service = AmberSearchService(target_plate="AMBER-911", use_ocr=True)
    hits = 0
    for i in range(20):
        blurry = PlateSighting(time_s=float(i), position_m=0.0,
                               plate="AMBER-911", quality=0.1)
        hits += service.process(blurry) is not None
    assert hits <= 2  # nearly always misread at quality 0.1


def test_amber_ocr_never_false_alarms_on_clean_wrong_plates():
    service = AmberSearchService(target_plate="AMBER-911", use_ocr=True)
    for i in range(20):
        other = PlateSighting(time_s=float(i), position_m=0.0,
                              plate=f"XYZ-{i:04d}", quality=0.95)
        assert service.process(other) is None

"""Scenario builder: the standard OpenVDAP deployment of Figure 4.

One vehicle carrying the VCU, a line of XEdge servers along the road, and a
remote cloud, connected by DSRC (vehicle<->edge), LTE (vehicle<->cloud) and
fiber backhaul (edge<->cloud).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw import catalog
from ..net.channel import LinkModel
from ..net.params import BACKHAUL_PARAMS, DSRC_PARAMS, WIFI_PARAMS, LinkPreset
from .mobility import ConstantSpeed
from .nodes import Cloud, LinkTable, Tier, Vehicle, XEdge

__all__ = ["World", "build_default_world", "link_from_preset", "LTE_LINK_PRESET"]

#: Vehicle <-> cloud over LTE, as the offloading cost model sees it
#: (sustained uplink, internet RTT, moderate loss while moving).
LTE_LINK_PRESET = LinkPreset(name="lte", bandwidth_mbps=10.0, rtt_s=0.070, loss_rate=0.02)


def link_from_preset(preset: LinkPreset) -> LinkModel:
    """Instantiate a LinkModel from a parameter preset."""
    return LinkModel(
        name=preset.name,
        bandwidth_mbps=preset.bandwidth_mbps,
        rtt_s=preset.rtt_s,
        loss_rate=preset.loss_rate,
    )


@dataclass
class World:
    """A wired-up scenario: nodes plus the links between tiers."""

    vehicle: Vehicle
    edges: list[XEdge]
    cloud: Cloud
    links: LinkTable
    peers: list[Vehicle] = field(default_factory=list)

    def node_for_tier(self, tier: str):
        if tier == Tier.VEHICLE:
            return self.vehicle
        if tier == Tier.EDGE:
            if not self.edges:
                raise LookupError("world has no edge servers")
            return self.edges[0]
        if tier == Tier.CLOUD:
            return self.cloud
        raise KeyError(f"unknown tier {tier!r}")

    def serving_edge(self, time_s: float) -> XEdge | None:
        """The nearest XEdge covering the vehicle's position, if any."""
        x = self.vehicle.position(time_s)
        covering = [edge for edge in self.edges if edge.covers(x)]
        if not covering:
            return None
        return min(covering, key=lambda edge: abs(edge.position_m - x))


def build_default_world(
    speed_mps: float = 13.4,
    edge_count: int = 4,
    edge_spacing_m: float = 450.0,
    vehicle_processors=None,
) -> World:
    """The canonical single-vehicle scenario used by examples and ablations.

    The default vehicle VCU carries an embedded CPU, a Jetson-class GPU and
    a Movidius-class DSP stick -- the heterogeneous 1stHEP of SIV-B.
    """
    if vehicle_processors is None:
        vehicle_processors = [
            catalog.intel_i7_6700(),
            catalog.jetson_tx2_maxp(),
            catalog.intel_mncs(),
        ]
    vehicle = Vehicle(
        name="cav-0",
        processors=vehicle_processors,
        mobility=ConstantSpeed(speed_mps=speed_mps),
    )
    edges = [
        XEdge(
            name=f"xedge-{i}",
            processors=[catalog.edge_server_gpu()],
            position_m=i * edge_spacing_m,
            coverage_radius_m=edge_spacing_m / 2.0 + 50.0,
        )
        for i in range(edge_count)
    ]
    cloud = Cloud(processors=[catalog.cloud_server_gpu()])
    links = LinkTable(
        vehicle_edge=link_from_preset(DSRC_PARAMS),
        vehicle_cloud=link_from_preset(LTE_LINK_PRESET),
        edge_cloud=link_from_preset(BACKHAUL_PARAMS),
        vehicle_vehicle=link_from_preset(WIFI_PARAMS),
    )
    return World(vehicle=vehicle, edges=edges, cloud=cloud, links=links)

"""Vehicle mobility models.

The drive experiments need position-vs-time along a road; the offloading
scenarios additionally need dwell times within RSU coverage.  Two models:

* :class:`ConstantSpeed` -- the paper's Figure 2 procedure (fixed MPH).
* :class:`SpeedProfile` -- piecewise-linear speed trace (urban stop-and-go,
  highway cruise) used by the workload generator and pBEAM training data.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

__all__ = ["ConstantSpeed", "SpeedProfile", "urban_profile", "highway_profile"]


@dataclass(frozen=True)
class ConstantSpeed:
    """Straight-line motion at a constant speed."""

    speed_mps: float
    start_position_m: float = 0.0

    def position(self, time_s: float) -> float:
        return self.start_position_m + self.speed_mps * time_s

    def speed(self, time_s: float) -> float:
        return self.speed_mps


class SpeedProfile:
    """Piecewise-linear speed over time; position by trapezoidal integration.

    ``points`` is a list of (time_s, speed_mps) knots, sorted by time; speed
    is linearly interpolated between knots and held constant beyond the
    last knot.
    """

    def __init__(self, points: list[tuple[float, float]], start_position_m: float = 0.0):
        if not points:
            raise ValueError("speed profile needs at least one knot")
        times = [t for t, _ in points]
        if times != sorted(times):
            raise ValueError("profile knots must be sorted by time")
        if any(v < 0 for _, v in points):
            raise ValueError("speeds must be non-negative")
        self.points = list(points)
        self.start_position_m = start_position_m
        # Precompute cumulative distance at each knot.
        self._cum = [0.0]
        for (t0, v0), (t1, v1) in zip(self.points, self.points[1:]):
            self._cum.append(self._cum[-1] + 0.5 * (v0 + v1) * (t1 - t0))

    def speed(self, time_s: float) -> float:
        pts = self.points
        if time_s <= pts[0][0]:
            return pts[0][1]
        if time_s >= pts[-1][0]:
            return pts[-1][1]
        i = bisect.bisect_right([t for t, _ in pts], time_s) - 1
        t0, v0 = pts[i]
        t1, v1 = pts[i + 1]
        frac = (time_s - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)

    def position(self, time_s: float) -> float:
        pts = self.points
        if time_s <= pts[0][0]:
            return self.start_position_m
        if time_s >= pts[-1][0]:
            tail = (time_s - pts[-1][0]) * pts[-1][1]
            return self.start_position_m + self._cum[-1] + tail
        i = bisect.bisect_right([t for t, _ in pts], time_s) - 1
        t0, v0 = pts[i]
        dt = time_s - t0
        v_now = self.speed(time_s)
        return self.start_position_m + self._cum[i] + 0.5 * (v0 + v_now) * dt


def urban_profile(
    duration_s: float, rng: np.random.Generator, mean_speed_mps: float = 10.0
) -> SpeedProfile:
    """Stop-and-go city driving: speed oscillates between 0 and ~2x mean."""
    knots = [(0.0, 0.0)]
    t = 0.0
    while t < duration_s:
        t += rng.uniform(10.0, 40.0)
        if rng.random() < 0.3:
            speed = 0.0  # red light
        else:
            speed = rng.uniform(0.3, 2.0) * mean_speed_mps
        knots.append((t, float(speed)))
    return SpeedProfile(knots)


def highway_profile(
    duration_s: float, rng: np.random.Generator, cruise_mps: float = 29.0
) -> SpeedProfile:
    """Highway cruise with mild speed variation around the set point."""
    knots = [(0.0, cruise_mps)]
    t = 0.0
    while t < duration_s:
        t += rng.uniform(20.0, 60.0)
        knots.append((t, float(cruise_mps * rng.uniform(0.9, 1.1))))
    return SpeedProfile(knots)

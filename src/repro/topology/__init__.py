"""Topology substrate: nodes, mobility, and scenario wiring."""

from .mobility import ConstantSpeed, SpeedProfile, highway_profile, urban_profile
from .nodes import Cloud, LinkTable, Node, Tier, Vehicle, XEdge
from .world import LTE_LINK_PRESET, World, build_default_world, link_from_preset

__all__ = [
    "Cloud",
    "ConstantSpeed",
    "LTE_LINK_PRESET",
    "LinkTable",
    "Node",
    "SpeedProfile",
    "Tier",
    "Vehicle",
    "World",
    "XEdge",
    "build_default_world",
    "highway_profile",
    "link_from_preset",
    "urban_profile",
]

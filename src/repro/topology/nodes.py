"""Node types of the two-tier OpenVDAP architecture (paper Figure 4).

Three tiers of compute location:

* :class:`Vehicle` -- carries the VCU (its processors), the DDI and the
  applications; moves along the road.
* :class:`XEdge` -- an edge server hosted on a base station, RSU or traffic
  signal system, one DSRC/5G hop from the vehicle.
* :class:`Cloud` -- the remote datacenter behind the cellular + backhaul
  path.

Nodes are containers: they own processors and links; behaviour (scheduling,
offloading) lives in `repro.vcu` and `repro.offload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hw.processor import ProcessorModel
from ..net.channel import LinkModel

__all__ = ["Node", "Vehicle", "XEdge", "Cloud", "Tier", "LinkTable"]


class Tier:
    """Placement tier names used throughout the offloading engine."""

    VEHICLE = "vehicle"
    EDGE = "edge"
    CLOUD = "cloud"
    ALL = (VEHICLE, EDGE, CLOUD)


@dataclass
class Node:
    """A compute location with a set of processors.

    ``version`` counts processor-set changes; caches of per-node
    derivations (e.g. compiled placements) compare it to detect staleness.
    """

    name: str
    tier: str
    processors: list[ProcessorModel] = field(default_factory=list)
    version: int = field(default=0, init=False, compare=False)

    def __post_init__(self):
        if self.tier not in Tier.ALL:
            raise ValueError(f"unknown tier {self.tier!r}")

    def add_processor(self, processor: ProcessorModel) -> None:
        self.processors.append(processor)
        self.version += 1

    def remove_processor(self, name: str) -> ProcessorModel:
        for i, proc in enumerate(self.processors):
            if proc.name == name:
                self.version += 1
                return self.processors.pop(i)
        raise KeyError(f"no processor named {name!r} on {self.name}")

    def best_processor_for(self, workload) -> Optional[ProcessorModel]:
        """Fastest device for a workload class, or None if unsupported."""
        candidates = [p for p in self.processors if p.supports(workload)]
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.effective_gops(workload))


@dataclass
class Vehicle(Node):
    """A CAV: mobile node carrying the on-board platform."""

    mobility: object = None  # ConstantSpeed / SpeedProfile

    def __init__(self, name: str, processors=None, mobility=None):
        super().__init__(name=name, tier=Tier.VEHICLE, processors=list(processors or []))
        self.mobility = mobility

    def position(self, time_s: float) -> float:
        if self.mobility is None:
            return 0.0
        return self.mobility.position(time_s)

    def speed(self, time_s: float) -> float:
        if self.mobility is None:
            return 0.0
        return self.mobility.speed(time_s)


@dataclass
class XEdge(Node):
    """Edge server on a RSU / base station / traffic signal system."""

    position_m: float = 0.0
    coverage_radius_m: float = 300.0

    def __init__(self, name: str, processors=None, position_m=0.0, coverage_radius_m=300.0):
        super().__init__(name=name, tier=Tier.EDGE, processors=list(processors or []))
        self.position_m = position_m
        self.coverage_radius_m = coverage_radius_m

    def covers(self, position_m: float) -> bool:
        return abs(position_m - self.position_m) <= self.coverage_radius_m


@dataclass
class Cloud(Node):
    """Remote cloud: conceptually unconstrained resources, far away."""

    def __init__(self, name: str = "cloud", processors=None):
        super().__init__(name=name, tier=Tier.CLOUD, processors=list(processors or []))


@dataclass
class LinkTable:
    """Links between tiers, as the offloading cost model sees them."""

    vehicle_edge: LinkModel
    vehicle_cloud: LinkModel
    edge_cloud: LinkModel
    vehicle_vehicle: Optional[LinkModel] = None

    def between(self, a: str, b: str) -> LinkModel:
        pair = frozenset((a, b))
        if pair == frozenset((Tier.VEHICLE, Tier.EDGE)):
            return self.vehicle_edge
        if pair == frozenset((Tier.VEHICLE, Tier.CLOUD)):
            return self.vehicle_cloud
        if pair == frozenset((Tier.EDGE, Tier.CLOUD)):
            return self.edge_cloud
        if pair == frozenset((Tier.VEHICLE,)) and self.vehicle_vehicle is not None:
            return self.vehicle_vehicle
        raise KeyError(f"no link between {a} and {b}")

"""Deterministic fault plans: what breaks, when, and for how long.

OpenVDAP's core premise (paper SIII-A, SIV-C) is that the vehicular
environment is *unreliable*: processors overheat and throttle, DSRC links
drop during handoff, the cellular path to the cloud disappears in tunnels,
and collectors stall.  A :class:`FaultPlan` is the ground truth of one such
adverse episode -- an explicit, seed-derived schedule of
:class:`FaultEvent` windows.

Plans are *data*, not behaviour: the :class:`~repro.faults.injector.
FaultInjector` replays a plan on the simulation clock, and the resilience
machinery (executor retries, circuit breakers, elastic failover) reacts.
Because generation draws every window from a named
:class:`~repro.sim.random.RngRegistry` stream keyed by (kind, target),
identical seeds yield byte-identical plans -- pinned by
``tests/property/test_fault_determinism.py`` -- and adding a new target
never perturbs the windows of existing ones.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from ..sim.random import RngRegistry

__all__ = ["FaultKind", "FaultEvent", "FaultRates", "FaultPlan", "DEFAULT_RATES"]


class FaultKind(enum.Enum):
    """The failure modes the platform models, one per layer it can hit."""

    PROCESSOR_DOWN = "processor_down"      # device crash / thermal shutdown
    PROCESSOR_SLOW = "processor_slow"      # thermal throttling: severity = slowdown factor
    LINK_DOWN = "link_down"                # handoff outage, tunnel, jammed RF
    LINK_DEGRADED = "link_degraded"        # severity = bandwidth retained (0..1)
    SERVICE_CRASH = "service_crash"        # a pipeline stage / EdgeOS service dies
    COLLECTOR_DROPOUT = "collector_dropout"  # a DDI collector stops sampling
    CLOUD_UNREACHABLE = "cloud_unreachable"  # the uplink's far end is gone


@dataclass(frozen=True)
class FaultEvent:
    """One fault window: a component is faulty during [start, start+duration)."""

    kind: FaultKind
    target: str
    start_s: float
    duration_s: float
    severity: float = 1.0

    def __post_init__(self):
        if self.start_s < 0:
            raise ValueError(f"fault start must be non-negative, got {self.start_s}")
        if self.duration_s <= 0:
            raise ValueError(f"fault duration must be positive, got {self.duration_s}")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def trace_line(self) -> str:
        """Canonical one-line rendering (the determinism contract)."""
        return (
            f"{self.start_s:.6f} +{self.duration_s:.6f} "
            f"{self.kind.value} {self.target} sev={self.severity:.4f}"
        )


@dataclass(frozen=True)
class FaultRates:
    """Poisson-process knobs for one fault kind on one class of target.

    ``mtbf_s`` is the mean time between fault onsets (exponential gaps);
    ``mttr_s`` the mean window duration.  ``severity`` bounds the uniform
    severity draw (slowdown factor for PROCESSOR_SLOW, retained bandwidth
    fraction for LINK_DEGRADED; ignored by the binary kinds).
    """

    mtbf_s: float
    mttr_s: float
    severity: tuple[float, float] = (1.0, 1.0)

    def __post_init__(self):
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise ValueError("mtbf/mttr must be positive")


#: A harsh-but-survivable default mix, roughly one episode per component
#: per few minutes of drive -- the "fault storm" the ablation uses.
DEFAULT_RATES: dict[FaultKind, FaultRates] = {
    FaultKind.PROCESSOR_DOWN: FaultRates(mtbf_s=120.0, mttr_s=8.0),
    FaultKind.PROCESSOR_SLOW: FaultRates(mtbf_s=90.0, mttr_s=15.0, severity=(2.0, 6.0)),
    FaultKind.LINK_DOWN: FaultRates(mtbf_s=60.0, mttr_s=5.0),
    FaultKind.LINK_DEGRADED: FaultRates(mtbf_s=45.0, mttr_s=12.0, severity=(0.05, 0.5)),
    FaultKind.SERVICE_CRASH: FaultRates(mtbf_s=180.0, mttr_s=10.0),
    FaultKind.COLLECTOR_DROPOUT: FaultRates(mtbf_s=150.0, mttr_s=20.0),
    FaultKind.CLOUD_UNREACHABLE: FaultRates(mtbf_s=90.0, mttr_s=10.0),
}


@dataclass(frozen=True)
class FaultPlan:
    """A seed-stamped, time-sorted schedule of fault windows."""

    seed: int
    horizon_s: float
    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(
            self,
            "events",
            tuple(
                sorted(
                    self.events,
                    key=lambda e: (e.start_s, e.kind.value, e.target, e.duration_s),
                )
            ),
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon_s: float,
        processors: list[str] | None = None,
        links: list[str] | None = None,
        services: list[str] | None = None,
        collectors: list[str] | None = None,
        cloud: bool = True,
        rates: dict[FaultKind, FaultRates] | None = None,
    ) -> "FaultPlan":
        """Draw a plan from independent per-(kind, target) renewal processes.

        ``processors`` are ``"tier/device-name"`` keys, ``links`` are
        ``"a-b"`` tier-pair keys (see :mod:`repro.faults.injector` for the
        key helpers).  Every (kind, target) pair draws from its own named
        RNG stream, so the schedule for one component is independent of
        which other components exist.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        rates = {**DEFAULT_RATES, **(rates or {})}
        registry = RngRegistry(seed=seed)
        targets: list[tuple[FaultKind, str]] = []
        for proc in processors or []:
            targets.append((FaultKind.PROCESSOR_DOWN, proc))
            targets.append((FaultKind.PROCESSOR_SLOW, proc))
        for link in links or []:
            targets.append((FaultKind.LINK_DOWN, link))
            targets.append((FaultKind.LINK_DEGRADED, link))
        for service in services or []:
            targets.append((FaultKind.SERVICE_CRASH, service))
        for stream in collectors or []:
            targets.append((FaultKind.COLLECTOR_DROPOUT, stream))
        if cloud:
            targets.append((FaultKind.CLOUD_UNREACHABLE, "cloud"))

        events: list[FaultEvent] = []
        for kind, target in targets:
            rate = rates[kind]
            rng = registry.stream(f"fault/{kind.value}/{target}")
            t = float(rng.exponential(rate.mtbf_s))
            while t < horizon_s:
                duration = max(1e-3, float(rng.exponential(rate.mttr_s)))
                duration = min(duration, horizon_s - t)
                lo, hi = rate.severity
                severity = float(rng.uniform(lo, hi)) if hi > lo else float(lo)
                events.append(FaultEvent(kind, target, t, duration, severity))
                # Next onset only after this window closes (no self-overlap).
                t += duration + float(rng.exponential(rate.mtbf_s))
        return cls(seed=seed, horizon_s=horizon_s, events=tuple(events))

    # -- views -------------------------------------------------------------

    def for_target(self, target: str) -> list[FaultEvent]:
        """All windows hitting one component, in time order."""
        return [e for e in self.events if e.target == target]

    def for_kind(self, kind: FaultKind) -> list[FaultEvent]:
        """All windows of one failure mode, in time order."""
        return [e for e in self.events if e.kind is kind]

    def __len__(self) -> int:
        return len(self.events)

    def active_at(
        self, time_s: float, kind: FaultKind | None = None, target: str | None = None
    ) -> list[FaultEvent]:
        """Windows covering ``time_s``, optionally filtered by kind/target.

        This is the clock-free view of the plan: components that are not
        simulation processes (the per-second elastic retune loop, the
        uplink migrator's rounds) consult it directly instead of going
        through the injector.
        """
        return [
            e
            for e in self.events
            if e.start_s <= time_s < e.end_s
            and (kind is None or e.kind is kind)
            and (target is None or e.target == target)
        ]

    def is_active_at(self, kind: FaultKind, target: str, time_s: float) -> bool:
        """Whether one (kind, target) pair is faulty at ``time_s``."""
        return bool(self.active_at(time_s, kind=kind, target=target))

    # -- the determinism contract -----------------------------------------

    def trace(self) -> str:
        """Canonical text rendering; identical seeds => identical bytes."""
        header = f"# fault-plan seed={self.seed} horizon={self.horizon_s:.6f}"
        return "\n".join([header, *(e.trace_line() for e in self.events)])

    def to_json(self) -> str:
        """Serialize (for persisting a plan next to an experiment's results)."""
        return json.dumps(
            {
                "seed": self.seed,
                "horizon_s": self.horizon_s,
                "events": [
                    {
                        "kind": e.kind.value,
                        "target": e.target,
                        "start_s": e.start_s,
                        "duration_s": e.duration_s,
                        "severity": e.severity,
                    }
                    for e in self.events
                ],
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        obj = json.loads(text)
        return cls(
            seed=obj["seed"],
            horizon_s=obj["horizon_s"],
            events=tuple(
                FaultEvent(
                    FaultKind(e["kind"]), e["target"], e["start_s"],
                    e["duration_s"], e["severity"],
                )
                for e in obj["events"]
            ),
        )

"""Reusable resilience primitives: retry policies and circuit breakers.

These are deliberately clock-agnostic -- a :class:`RetryPolicy` is pure
arithmetic over the attempt number, and a :class:`CircuitBreaker` takes
``now_s`` explicitly -- so the same objects work inside the simulation
(executor retries on the sim clock) and outside it (the uplink migrator's
per-round wall-clock loop).  Determinism matters more than jitter here:
backoff delays are exact, so two runs of the same seeded scenario replay
identical retry schedules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["RetryPolicy", "BreakerState", "CircuitBreaker", "CircuitOpenError"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget for one unit of work.

    ``same_tier_attempts`` is executor-specific: how many attempts to burn
    on the originally-placed tier before failing over to a surviving one.
    ``attempt_timeout_s`` bounds a single attempt (racing it against a
    deadline) so work stuck behind a dead component cannot hang a job.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    same_tier_attempts: int = 2
    attempt_timeout_s: float | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 1 <= self.same_tier_attempts <= self.max_attempts:
            raise ValueError("same_tier_attempts must be in [1, max_attempts]")

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based failure count)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)

    def delays(self) -> list[float]:
        """The full backoff schedule (one entry per retry)."""
        return [self.delay_s(i) for i in range(self.max_attempts - 1)]


class BreakerState(enum.Enum):
    """Classic three-state circuit-breaker lifecycle."""

    CLOSED = "closed"        # healthy: requests flow
    OPEN = "open"            # tripped: requests short-circuit
    HALF_OPEN = "half_open"  # cooling done: one probe allowed through


class CircuitOpenError(RuntimeError):
    """Raised by callers that treat a short-circuited request as an error."""


class CircuitBreaker:
    """Failure-counting breaker guarding an unreliable dependency.

    ``failure_threshold`` consecutive failures trip the breaker OPEN; after
    ``reset_timeout_s`` it admits a single HALF_OPEN probe.  A successful
    probe closes it, a failed one re-opens it (restarting the cooldown).
    """

    def __init__(self, failure_threshold: int = 3, reset_timeout_s: float = 30.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_s: float | None = None
        # Lifetime counters (observability).
        self.opens = 0
        self.failures = 0
        self.successes = 0
        self.short_circuits = 0

    def allow(self, now_s: float) -> bool:
        """Whether a request may proceed at ``now_s`` (may move to HALF_OPEN)."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now_s - (self.opened_at_s or 0.0) >= self.reset_timeout_s:
                self.state = BreakerState.HALF_OPEN
                return True
            self.short_circuits += 1
            return False
        # HALF_OPEN: exactly one probe is in flight; hold the rest.
        self.short_circuits += 1
        return False

    def record_success(self, now_s: float) -> None:
        """Report that a permitted request succeeded."""
        self.successes += 1
        self.consecutive_failures = 0
        self.state = BreakerState.CLOSED
        self.opened_at_s = None

    def record_failure(self, now_s: float) -> None:
        """Report that a permitted request failed."""
        self.failures += 1
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            if self.state is not BreakerState.OPEN:
                self.opens += 1
            self.state = BreakerState.OPEN
            self.opened_at_s = now_s

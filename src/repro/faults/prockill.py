"""Process-kill faults: crash a fleet partition worker at a chosen barrier.

The faults in :mod:`repro.faults.plan` live *inside* the simulation: a
processor goes down on the sim clock and the platform reacts on the sim
clock.  A :class:`KillPlan` targets the layer underneath -- the OS
processes that host fleet partitions (:mod:`repro.fleet`).  Each
:class:`WorkerKill` names a partition, a barrier round, and a phase within
the round; when its round arrives, the worker delivers ``SIGKILL`` to
itself, exactly the failure a crashed container or OOM-killed worker
produces (no cleanup, no goodbye message, pipe goes EOF).

Kill plans are data, picklable, and seed-derivable, so a crash experiment
is as reproducible as a drive: the same plan kills the same worker at the
same barrier every run, and the coordinator's seed+replay recovery must
converge to the same event-trace hashes as an unkilled run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.random import RngRegistry

__all__ = ["KillPhase", "WorkerKill", "KillPlan"]


class KillPhase:
    """Where in a barrier round the worker dies.

    ``ON_ADVANCE`` -- immediately on receiving the round's advance command
    (no work done; replay re-runs the round from the last barrier).
    ``BEFORE_ACK`` -- after simulating the round but before acking it (the
    round's work is lost with the process: the nastier case, because the
    worker *did* the work and recovery must prove the redo is identical).
    """

    ON_ADVANCE = "on-advance"
    BEFORE_ACK = "before-ack"

    ALL = (ON_ADVANCE, BEFORE_ACK)


@dataclass(frozen=True)
class WorkerKill:
    """One scheduled crash: partition ``partition`` dies in round ``barrier_index``."""

    partition: int
    barrier_index: int
    phase: str = KillPhase.BEFORE_ACK

    def __post_init__(self):
        if self.partition < 0:
            raise ValueError(f"partition must be >= 0, got {self.partition}")
        if self.barrier_index < 0:
            raise ValueError(f"barrier index must be >= 0, got {self.barrier_index}")
        if self.phase not in KillPhase.ALL:
            raise ValueError(f"unknown kill phase {self.phase!r}")


@dataclass(frozen=True)
class KillPlan:
    """A set of scheduled worker crashes (at most one per partition+round)."""

    kills: tuple[WorkerKill, ...] = field(default_factory=tuple)

    def __post_init__(self):
        seen = set()
        for kill in self.kills:
            key = (kill.partition, kill.barrier_index)
            if key in seen:
                raise ValueError(
                    f"duplicate kill for partition {kill.partition} "
                    f"at barrier {kill.barrier_index}"
                )
            seen.add(key)

    def kill_for(self, partition: int, barrier_index: int) -> WorkerKill | None:
        """The scheduled crash for one partition+round, if any."""
        for kill in self.kills:
            if kill.partition == partition and kill.barrier_index == barrier_index:
                return kill
        return None

    def for_partition(self, partition: int) -> "KillPlan":
        """The sub-plan a single worker needs to carry."""
        return KillPlan(
            kills=tuple(k for k in self.kills if k.partition == partition)
        )

    def __len__(self) -> int:
        return len(self.kills)

    @classmethod
    def single(
        cls, partition: int, barrier_index: int, phase: str = KillPhase.BEFORE_ACK
    ) -> "KillPlan":
        """Plan exactly one crash (the common test/CI shape)."""
        return cls(kills=(WorkerKill(partition, barrier_index, phase),))

    @classmethod
    def generate(
        cls, seed: int, partitions: int, barriers: int, kills: int = 1
    ) -> "KillPlan":
        """Draw ``kills`` distinct (partition, barrier, phase) crashes.

        Seed-deterministic via the platform's named-stream registry, so a
        chaos run is replayable: same seed, same crashes.
        """
        if partitions <= 0 or barriers <= 0:
            raise ValueError("partitions and barriers must be positive")
        slots = partitions * barriers
        if not 0 <= kills <= slots:
            raise ValueError(f"kills must be in [0, {slots}], got {kills}")
        rng = RngRegistry(seed=seed).stream("fault/worker_kill")
        chosen = rng.choice(slots, size=kills, replace=False)
        events = []
        for slot in sorted(int(s) for s in chosen):
            phase = KillPhase.ALL[int(rng.integers(len(KillPhase.ALL)))]
            events.append(
                WorkerKill(
                    partition=slot % partitions,
                    barrier_index=slot // partitions,
                    phase=phase,
                )
            )
        return cls(kills=tuple(events))

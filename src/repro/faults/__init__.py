"""Fault model: deterministic injection plans plus resilience primitives.

The unreliable-environment half of the OpenVDAP argument (paper SIII-A,
SIV-C): :mod:`repro.faults.plan` describes *what breaks when* as
seed-reproducible data, :mod:`repro.faults.injector` replays a plan on the
simulation clock, and :mod:`repro.faults.resilience` supplies the
retry/backoff and circuit-breaker machinery the rest of the platform uses
to survive it.  :mod:`repro.faults.prockill` targets the layer underneath
the simulation -- OS worker processes hosting fleet partitions
(:mod:`repro.fleet`) -- with seed-deterministic SIGKILL schedules.
"""

from .injector import (
    CLOUD_KEY,
    FaultInjector,
    collector_key,
    link_key,
    processor_key,
    service_key,
    world_fault_targets,
)
from .plan import DEFAULT_RATES, FaultEvent, FaultKind, FaultPlan, FaultRates
from .prockill import KillPhase, KillPlan, WorkerKill
from .resilience import BreakerState, CircuitBreaker, CircuitOpenError, RetryPolicy

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "CLOUD_KEY",
    "DEFAULT_RATES",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRates",
    "KillPhase",
    "KillPlan",
    "RetryPolicy",
    "WorkerKill",
    "collector_key",
    "link_key",
    "processor_key",
    "service_key",
    "world_fault_targets",
]

"""Replays a :class:`~repro.faults.plan.FaultPlan` on the simulation clock.

The injector is the bridge between a fault plan (pure data) and the live
platform: it walks the plan's windows as a simulation process, maintains
the current health state of every component, and lets consumers either

* **poll** -- ``processor_down(tier, name)``, ``link_down(a, b)``,
  ``cloud_unreachable()`` -- before starting work, or
* **subscribe** -- ``watch_down(key)`` fires when a component next fails
  (so an executing task can race its completion against the processor
  dying under it), and ``wait_up(key)`` fires when it recovers (so a
  retry loop can park until the link returns).

Every state transition is appended to :attr:`FaultInjector.trace`, a
``(time, transition, key)`` log whose rendering is byte-stable for a given
plan -- the injector adds no randomness of its own.
"""

from __future__ import annotations

from ..sim.core import Event, Simulator
from ..topology.nodes import Tier
from ..topology.world import World
from .plan import FaultEvent, FaultKind, FaultPlan

__all__ = [
    "FaultInjector",
    "processor_key",
    "link_key",
    "service_key",
    "collector_key",
    "CLOUD_KEY",
    "world_fault_targets",
]

#: Namespaced state key for the cloud endpoint's reachability.
CLOUD_KEY = "cloud:cloud"

#: Fault kinds that make a component binary-unavailable (vs. degraded).
_DOWN_KINDS = {
    FaultKind.PROCESSOR_DOWN,
    FaultKind.LINK_DOWN,
    FaultKind.SERVICE_CRASH,
    FaultKind.COLLECTOR_DROPOUT,
    FaultKind.CLOUD_UNREACHABLE,
}

_CATEGORY = {
    FaultKind.PROCESSOR_DOWN: "proc",
    FaultKind.PROCESSOR_SLOW: "proc",
    FaultKind.LINK_DOWN: "link",
    FaultKind.LINK_DEGRADED: "link",
    FaultKind.SERVICE_CRASH: "service",
    FaultKind.COLLECTOR_DROPOUT: "collector",
    FaultKind.CLOUD_UNREACHABLE: "cloud",
}


def processor_key(tier: str, name: str) -> str:
    """State key for one device: ``proc:<tier>/<device-name>``."""
    return f"proc:{tier}/{name}"


def link_key(a: str, b: str) -> str:
    """State key for one tier-pair link, order-insensitive."""
    return "link:" + "-".join(sorted((a, b)))


def service_key(name: str) -> str:
    """State key for one EdgeOS service / pipeline stage."""
    return f"service:{name}"


def collector_key(stream: str) -> str:
    """State key for one DDI collector stream."""
    return f"collector:{stream}"


def _state_key(event: FaultEvent) -> str:
    category = _CATEGORY[event.kind]
    # The formatted key *is* the product; callers cache per fault event.
    return CLOUD_KEY if category == "cloud" else f"{category}:{event.target}"  # vdaplint: disable=PERF005


def world_fault_targets(world: World) -> tuple[list[str], list[str]]:
    """(processor, link) plan targets covering every component of a world.

    Processor targets are ``"tier/device"`` (matching :func:`processor_key`
    minus the namespace); link targets are the sorted tier-pair names.
    """
    processors: list[str] = []
    for tier in (Tier.VEHICLE, Tier.EDGE, Tier.CLOUD):
        try:
            node = world.node_for_tier(tier)
        except LookupError:
            continue
        processors.extend(f"{tier}/{proc.name}" for proc in node.processors)
    links = [
        "-".join(sorted((Tier.VEHICLE, Tier.EDGE))),
        "-".join(sorted((Tier.VEHICLE, Tier.CLOUD))),
        "-".join(sorted((Tier.EDGE, Tier.CLOUD))),
    ]
    return processors, links


class FaultInjector:
    """Drives a fault plan against live state on a shared simulator.

    If a ``world`` is supplied, LINK_DEGRADED windows are additionally
    *applied* to the world's link models (bandwidth scaled by the retained
    fraction, restored on recovery), so analytic consumers like
    ``evaluate_placement`` see degraded links without knowing about faults.
    """

    def __init__(self, sim: Simulator, plan: FaultPlan, world: World | None = None):
        self.sim = sim
        self.plan = plan
        self.world = world
        self.trace: list[tuple[float, str, str]] = []
        self._down_count: dict[str, int] = {}
        self._slow: dict[str, list[float]] = {}
        self._degrade: dict[str, list[float]] = {}
        self._down_watchers: dict[str, list[Event]] = {}
        self._up_waiters: dict[str, list[Event]] = {}
        self._nominal_bandwidth: dict[str, float] = {}
        self.process = (
            sim.process(self._driver(), name="fault-injector") if plan.events else None
        )

    # -- driver ------------------------------------------------------------

    def _timeline(self) -> list[tuple[float, int, FaultEvent, bool]]:
        """(time, phase, event, is_start); recoveries sort before onsets."""
        entries: list[tuple[float, int, FaultEvent, bool]] = []
        for event in self.plan.events:
            entries.append((event.start_s, 1, event, True))
            entries.append((event.end_s, 0, event, False))
        entries.sort(key=lambda e: (e[0], e[1], e[2].kind.value, e[2].target))
        return entries

    def _driver(self):
        for when, _phase, event, is_start in self._timeline():
            now = self.sim.now
            if when > now:
                yield self.sim.timeout(when - now)
            if is_start:
                self._apply(event)
            else:
                self._revert(event)

    # -- state transitions -------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        key = _state_key(event)
        if event.kind in _DOWN_KINDS:
            self._down_count[key] = self._down_count.get(key, 0) + 1
            if self._down_count[key] == 1:
                self._record("down", key)
                for watcher in self._down_watchers.pop(key, []):
                    watcher.succeed(key)
        elif event.kind is FaultKind.PROCESSOR_SLOW:
            self._slow.setdefault(key, []).append(event.severity)
            self._record("slow", key)
        elif event.kind is FaultKind.LINK_DEGRADED:
            self._degrade.setdefault(key, []).append(event.severity)
            self._record("degraded", key)
            self._apply_link_bandwidth(event.target, key)

    def _revert(self, event: FaultEvent) -> None:
        key = _state_key(event)
        if event.kind in _DOWN_KINDS:
            self._down_count[key] -= 1
            if self._down_count[key] == 0:
                self._record("up", key)
                for waiter in self._up_waiters.pop(key, []):
                    waiter.succeed(key)
        elif event.kind is FaultKind.PROCESSOR_SLOW:
            self._slow[key].remove(event.severity)
            self._record("slow-end", key)
        elif event.kind is FaultKind.LINK_DEGRADED:
            self._degrade[key].remove(event.severity)
            self._record("degraded-end", key)
            self._apply_link_bandwidth(event.target, key)

    def _record(self, transition: str, key: str) -> None:
        self.trace.append((self.sim.now, transition, key))

    def _apply_link_bandwidth(self, target: str, key: str) -> None:
        if self.world is None:
            return
        tiers = target.split("-")
        try:
            link = self.world.links.between(tiers[0], tiers[-1])
        except KeyError:
            return
        if key not in self._nominal_bandwidth:
            self._nominal_bandwidth[key] = link.bandwidth_mbps
        retained = min(self._degrade.get(key) or [1.0])
        link.bandwidth_mbps = max(1e-6, self._nominal_bandwidth[key] * retained)
        if not self._degrade.get(key):
            link.bandwidth_mbps = self._nominal_bandwidth.pop(key)

    # -- polling API -------------------------------------------------------

    def is_down(self, key: str) -> bool:
        """Whether the component behind a state key is currently down."""
        return self._down_count.get(key, 0) > 0

    def processor_down(self, tier: str, name: str) -> bool:
        """Whether one device is inside a PROCESSOR_DOWN window."""
        return self.is_down(processor_key(tier, name))

    def processor_slowdown(self, tier: str, name: str) -> float:
        """Current execution-time multiplier for a device (1.0 = healthy)."""
        factors = self._slow.get(processor_key(tier, name))
        return max(factors) if factors else 1.0

    def link_down(self, a: str, b: str) -> bool:
        """Whether the link between two tiers is inside an outage window."""
        return self.is_down(link_key(a, b))

    def link_quality(self, a: str, b: str) -> float:
        """Retained bandwidth fraction on a link (1.0 = undegraded)."""
        factors = self._degrade.get(link_key(a, b))
        return min(factors) if factors else 1.0

    def service_crashed(self, name: str) -> bool:
        """Whether a service / pipeline stage is inside a crash window."""
        return self.is_down(service_key(name))

    def collector_down(self, stream: str) -> bool:
        """Whether a DDI collector stream is inside a dropout window."""
        return self.is_down(collector_key(stream))

    def cloud_unreachable(self) -> bool:
        """Whether the cloud endpoint is currently unreachable."""
        return self.is_down(CLOUD_KEY)

    def active(self) -> dict[str, int]:
        """Snapshot of currently-down components (key -> active windows)."""
        return {k: v for k, v in self._down_count.items() if v > 0}

    # -- subscription API --------------------------------------------------

    def watch_down(self, key: str) -> Event:
        """Event firing the next time ``key`` transitions up -> down.

        If the component is *already* down this still waits for the next
        onset; poll :meth:`is_down` first.  A component that never fails
        again leaves the event pending forever -- always race it against
        the work it guards, never wait on it alone.
        """
        event = self.sim.event()
        self._down_watchers.setdefault(key, []).append(event)
        return event

    def wait_up(self, key: str) -> Event:
        """Event firing when ``key`` recovers; immediate if already up."""
        event = self.sim.event()
        if not self.is_down(key):
            event.succeed(key)
        else:
            self._up_waiters.setdefault(key, []).append(event)
        return event

    # -- trace -------------------------------------------------------------

    def trace_text(self) -> str:
        """Canonical rendering of the realized transition log."""
        return "\n".join(
            f"{when:.6f} {transition} {key}" for when, transition, key in self.trace
        )

"""Fleet configuration: what a partitioned simulation is made of.

A :class:`FleetConfig` fully determines a fleet run -- vehicle count,
partition count, barrier cadence, V2V link latency, seeds -- so that one
config yields identical per-vehicle event traces whether it runs as a
single in-process simulator or as N coordinated worker processes.  The
conservative-time-sync invariant lives here: the barrier step may never
exceed the cross-partition lookahead (the minimum V2V link latency),
which is what guarantees a message sent in round *k* cannot be due before
round *k+1* starts.

A :class:`PartitionSpec` is the picklable sub-config one worker process
receives: the shared config, its partition index, and its vehicle shard.
Respawned workers get the same spec (minus any armed kill plan), which is
why seed+replay recovery reproduces the original run exactly.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from ..faults.prockill import KillPlan
from ..sim.queues import QUEUE_BACKENDS
from ..workloads.styles import STYLES, WorkloadStyle

__all__ = ["FleetConfig", "PartitionPlan", "PartitionSpec", "shard_vehicles"]


def shard_vehicles(
    vehicles: int, partitions: int,
    costs: Optional[Sequence[float]] = None,
) -> list[tuple[int, ...]]:
    """Assign vehicle indices to partitions.

    Without ``costs``: stable round-robin (the PR-6 default).  With
    ``costs`` (one non-negative weight per vehicle): greedy LPT --
    vehicles in descending cost order, each onto the currently lightest
    partition, ties broken by lowest index on both sides -- which is
    deterministic and within 4/3 of the optimal makespan.  Cost-balanced
    shards may be uneven, including empty (a planner may leave a
    partition idle rather than split a heavy vehicle's neighbours).
    """
    if vehicles < 1:
        raise ValueError(f"need at least one vehicle, got {vehicles}")
    if not 1 <= partitions <= vehicles:
        raise ValueError(
            f"partitions must be in [1, {vehicles}], got {partitions}"
        )
    if costs is None:
        return [
            tuple(v for v in range(vehicles) if v % partitions == p)
            for p in range(partitions)
        ]
    if len(costs) != vehicles:
        raise ValueError(
            f"need one cost per vehicle: got {len(costs)} for {vehicles}"
        )
    if any(c < 0 for c in costs):
        raise ValueError("vehicle costs must be non-negative")
    shards: list[list[int]] = [[] for _ in range(partitions)]
    loads = [0.0] * partitions
    for vehicle in sorted(range(vehicles), key=lambda v: (-costs[v], v)):
        target = min(range(partitions), key=lambda p: (loads[p], p))
        shards[target].append(vehicle)
        loads[target] += costs[vehicle]
    return [tuple(sorted(shard)) for shard in shards]


@dataclass(frozen=True)
class PartitionPlan:
    """A cost-balanced shard assignment, as emitted by ``--plan``.

    The JSON document the planner writes and :class:`FleetConfig`
    consumes.  ``shards`` is the contract: every vehicle exactly once,
    one (possibly empty) shard per partition.  The remaining fields are
    provenance -- the costs the partitioner balanced, the lookahead the
    commgraph proved, the workload the costs assumed -- so an executed
    plan can be audited against the config it runs under.
    """

    vehicles: int
    partitions: int
    shards: tuple[tuple[int, ...], ...]
    costs: tuple[float, ...] = ()
    method: str = "greedy-lpt"
    seed: int = 0
    workload: str = "uniform"
    lookahead_s: float | None = None
    barrier_s: float | None = None

    def __post_init__(self):
        object.__setattr__(
            self, "shards", tuple(tuple(shard) for shard in self.shards)
        )
        object.__setattr__(self, "costs", tuple(self.costs))
        validate_shards(self.shards, self.vehicles, self.partitions)
        if self.costs and len(self.costs) != self.vehicles:
            raise ValueError(
                f"plan carries {len(self.costs)} costs for "
                f"{self.vehicles} vehicles"
            )

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "method": self.method,
            "seed": self.seed,
            "vehicles": self.vehicles,
            "partitions": self.partitions,
            "workload": self.workload,
            "lookahead_s": self.lookahead_s,
            "barrier_s": self.barrier_s,
            "costs": list(self.costs),
            "shards": [list(shard) for shard in self.shards],
        }

    def dumps(self) -> str:
        """Stable JSON text (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, document: dict) -> "PartitionPlan":
        return cls(
            vehicles=document["vehicles"],
            partitions=document["partitions"],
            shards=tuple(tuple(s) for s in document["shards"]),
            costs=tuple(document.get("costs", ())),
            method=document.get("method", "greedy-lpt"),
            seed=document.get("seed", 0),
            workload=document.get("workload", "uniform"),
            lookahead_s=document.get("lookahead_s"),
            barrier_s=document.get("barrier_s"),
        )

    @classmethod
    def load(cls, path: str) -> "PartitionPlan":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())

    def shards_for(self, config: "FleetConfig") -> tuple[tuple[int, ...], ...]:
        """This plan's shards, after checking it matches ``config``."""
        for name in ("vehicles", "partitions", "workload"):
            mine, theirs = getattr(self, name), getattr(config, name)
            if mine != theirs:
                raise ValueError(
                    f"plan was emitted for {name}={mine!r} but the config "
                    f"has {name}={theirs!r}"
                )
        return self.shards


def validate_shards(shards: Sequence[Sequence[int]], vehicles: int,
                    partitions: int) -> None:
    """Shard-assignment contract: every vehicle exactly once; empty OK.

    Violations name the offending vehicle ids (unknown, duplicated, or
    unassigned) so a mis-sharded plan fails loudly at load time instead
    of silently dropping or double-running vehicles.
    """
    if len(shards) != partitions:
        raise ValueError(
            f"plan has {len(shards)} shards for {partitions} partitions"
        )
    assigned = [v for shard in shards for v in shard]
    unknown = sorted({v for v in assigned if not 0 <= v < vehicles})
    if unknown:
        raise ValueError(
            f"plan names unknown vehicle ids {unknown} "
            f"(valid ids are 0..{vehicles - 1})"
        )
    seen: set[int] = set()
    duplicates: set[int] = set()
    for vehicle in assigned:
        (duplicates if vehicle in seen else seen).add(vehicle)
    if duplicates:
        raise ValueError(
            f"plan assigns vehicle ids {sorted(duplicates)} to more than "
            "one shard"
        )
    missing = sorted(set(range(vehicles)) - seen)
    if missing:
        raise ValueError(
            f"plan leaves vehicle ids {missing} unassigned "
            f"(every one of the {vehicles} vehicles needs a shard)"
        )
    for shard in shards:
        if list(shard) != sorted(set(shard)):
            raise ValueError("each shard must list vehicles sorted, once")


@dataclass(frozen=True)
class FleetConfig:
    """Everything that defines one fleet run (picklable, seed-stamped).

    ``barrier_s`` defaults to the lookahead (``v2v_latency_s``) -- the
    largest step conservative sync allows.  ``barrier_deadline_s`` is a
    **wall-clock** budget per barrier: a worker that misses it is a
    straggler (retried once with backoff), then failed over.
    """

    seed: int = 0
    vehicles: int = 4
    partitions: int = 2
    duration_s: float = 12.0
    tick_s: float = 1.0
    v2v_latency_s: float = 1.0
    barrier_s: float | None = None
    beacon_period_s: float = 2.0
    with_services: bool = True
    edge_count: int = 2
    edge_spacing_m: float = 450.0
    barrier_deadline_s: float = 60.0
    kill_plan: KillPlan | None = None
    straggle_s: tuple[tuple[tuple[int, int], float], ...] = field(
        default_factory=tuple
    )
    start_method: str | None = None
    workload: str = "uniform"
    #: Event-queue backend each partition kernel runs on (a key of
    #: ``repro.sim.queues.QUEUE_BACKENDS``).  Backends are pop-for-pop
    #: identical, so this never changes vehicle hashes -- and
    #: ``run_single_process`` always uses the ``"heap"`` reference,
    #: making every fleet-vs-reference hash check a cross-scheduler gate.
    scheduler: str = "calendar"
    #: Explicit shard assignment (e.g. from a :class:`PartitionPlan`);
    #: ``None`` falls back to round-robin.
    plan: tuple[tuple[int, ...], ...] | None = None
    #: Explicit workload style object (scenario-compiled rosters carry
    #: per-vehicle service tables here); ``None`` looks ``workload`` up
    #: in the shipped ``STYLES`` registry.
    style_spec: WorkloadStyle | None = None

    def __post_init__(self):
        if self.vehicles < 1:
            raise ValueError("need at least one vehicle")
        if not 1 <= self.partitions <= self.vehicles:
            raise ValueError("partitions must be in [1, vehicles]")
        if self.duration_s <= 0 or self.tick_s <= 0:
            raise ValueError("duration and tick must be positive")
        if self.v2v_latency_s <= 0:
            raise ValueError("v2v latency must be positive")
        if self.beacon_period_s <= 0:
            raise ValueError("beacon period must be positive")
        if self.barrier_deadline_s <= 0:
            raise ValueError("barrier deadline must be positive")
        if self.style_spec is None and self.workload not in STYLES:
            raise ValueError(
                f"unknown workload style {self.workload!r} "
                f"(have: {', '.join(sorted(STYLES))})"
            )
        if self.scheduler not in QUEUE_BACKENDS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r} "
                f"(have: {', '.join(sorted(QUEUE_BACKENDS))})"
            )
        if self.plan is not None:
            object.__setattr__(
                self, "plan", tuple(tuple(shard) for shard in self.plan)
            )
            validate_shards(self.plan, self.vehicles, self.partitions)
        step = self.barrier_step_s
        if step <= 0:
            raise ValueError("barrier step must be positive")
        if step > self.lookahead_s + 1e-12:
            raise ValueError(
                f"conservative sync violated: barrier step {step} exceeds "
                f"derived lookahead {self.lookahead_s} (min V2V link latency)"
            )

    # -- derived geometry --------------------------------------------------

    @property
    def lookahead_s(self) -> float:
        """The cross-partition lookahead this config guarantees."""
        return self.v2v_latency_s

    @property
    def barrier_step_s(self) -> float:
        """The time-sync round length (defaults to the lookahead)."""
        return self.barrier_s if self.barrier_s is not None else self.v2v_latency_s

    def barriers(self) -> list[float]:
        """The barrier times: ``step, 2*step, ..., duration`` (inclusive)."""
        step = self.barrier_step_s
        count = max(1, math.ceil(self.duration_s / step - 1e-9))
        times = [step * k for k in range(1, count)]
        times.append(self.duration_s)
        return times

    def shards(self) -> list[tuple[int, ...]]:
        """Vehicle indices per partition (the plan, else round-robin)."""
        if self.plan is not None:
            return list(self.plan)
        return shard_vehicles(self.vehicles, self.partitions)

    # -- per-vehicle derivations -------------------------------------------

    @property
    def style(self) -> WorkloadStyle:
        """The workload style this fleet runs (explicit spec wins)."""
        if self.style_spec is not None:
            return self.style_spec
        return STYLES[self.workload]

    def service_count(self, index: int) -> int:
        """Managed service instances vehicle ``index`` runs (style-driven)."""
        return self.style.service_count(index) if self.with_services else 0

    def vehicle_label(self, index: int) -> str:
        """Stable display/trace name for one vehicle."""
        return f"cav-{index:03d}"

    def vehicle_seed(self, index: int) -> int:
        """Independent per-vehicle seed (same derivation as RngRegistry.fork)."""
        return self.seed * 1_000_003 + index

    def vehicle_speed_mps(self, index: int) -> float:
        """Deterministic per-vehicle cruise speed (staggers the traces).

        Derived from the per-vehicle seed (not the partition layout), so
        it is partition-invariant but does change with ``seed`` -- the
        hook that makes the fleet's event traces seed-sensitive.
        """
        jitter = np.random.default_rng(self.vehicle_seed(index)).uniform()
        return 8.0 + 1.5 * (index % 6) + round(float(jitter), 3)

    def neighbors(self, index: int) -> tuple[int, ...]:
        """Ring-topology V2V neighbours of one vehicle (global indices)."""
        if self.vehicles < 2:
            return ()
        if self.vehicles == 2:
            return (1 - index,)
        return tuple(
            sorted({(index - 1) % self.vehicles, (index + 1) % self.vehicles})
        )

    def straggle_for(self, partition: int, round_index: int) -> float:
        """Injected wall-clock stall for one (partition, round), if any."""
        for (part, rnd), seconds in self.straggle_s:
            if part == partition and rnd == round_index:
                return seconds
        return 0.0

    def spec_for(self, partition: int) -> "PartitionSpec":
        """The spec handed to one worker process."""
        shard = self.shards()[partition]
        kill = (
            self.kill_plan.for_partition(partition)
            if self.kill_plan is not None and len(self.kill_plan.for_partition(partition))
            else None
        )
        return PartitionSpec(
            config=self,
            partition=partition,
            vehicle_indices=shard,
            kill_plan=kill,
            straggle_s=tuple(
                (key, seconds)
                for key, seconds in self.straggle_s
                if key[0] == partition
            ),
        )


@dataclass(frozen=True)
class PartitionSpec:
    """One worker's slice of the fleet (picklable; crosses the process gap).

    ``kill_plan`` and ``straggle_s`` carry only this partition's scheduled
    faults and are *disarmed* on respawn -- the fault already fired once,
    and a recovered worker that re-stalled or re-crashed on the replayed
    round would livelock the failover loop.
    """

    config: FleetConfig
    partition: int
    vehicle_indices: tuple[int, ...]
    kill_plan: KillPlan | None = None
    straggle_s: tuple[tuple[tuple[int, int], float], ...] = ()

    def __post_init__(self):
        # Empty shards are legal (a cost-balanced plan may idle a
        # partition); the shard just has to be canonical.
        if list(self.vehicle_indices) != sorted(set(self.vehicle_indices)):
            raise ValueError("a shard must list vehicles sorted, once")

    def straggle_for(self, round_index: int) -> float:
        """Injected wall-clock stall for one round of this partition."""
        for (_part, rnd), seconds in self.straggle_s:
            if rnd == round_index:
                return seconds
        return 0.0

    def disarmed(self) -> "PartitionSpec":
        """The same spec with every armed fault removed (for respawns)."""
        return replace(self, kill_plan=None, straggle_s=())

"""Fleet configuration: what a partitioned simulation is made of.

A :class:`FleetConfig` fully determines a fleet run -- vehicle count,
partition count, barrier cadence, V2V link latency, seeds -- so that one
config yields identical per-vehicle event traces whether it runs as a
single in-process simulator or as N coordinated worker processes.  The
conservative-time-sync invariant lives here: the barrier step may never
exceed the cross-partition lookahead (the minimum V2V link latency),
which is what guarantees a message sent in round *k* cannot be due before
round *k+1* starts.

A :class:`PartitionSpec` is the picklable sub-config one worker process
receives: the shared config, its partition index, and its vehicle shard.
Respawned workers get the same spec (minus any armed kill plan), which is
why seed+replay recovery reproduces the original run exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from ..faults.prockill import KillPlan

__all__ = ["FleetConfig", "PartitionSpec", "shard_vehicles"]


def shard_vehicles(vehicles: int, partitions: int) -> list[tuple[int, ...]]:
    """Round-robin vehicle indices over partitions (stable, load-balanced)."""
    if vehicles < 1:
        raise ValueError(f"need at least one vehicle, got {vehicles}")
    if not 1 <= partitions <= vehicles:
        raise ValueError(
            f"partitions must be in [1, {vehicles}], got {partitions}"
        )
    return [
        tuple(v for v in range(vehicles) if v % partitions == p)
        for p in range(partitions)
    ]


@dataclass(frozen=True)
class FleetConfig:
    """Everything that defines one fleet run (picklable, seed-stamped).

    ``barrier_s`` defaults to the lookahead (``v2v_latency_s``) -- the
    largest step conservative sync allows.  ``barrier_deadline_s`` is a
    **wall-clock** budget per barrier: a worker that misses it is a
    straggler (retried once with backoff), then failed over.
    """

    seed: int = 0
    vehicles: int = 4
    partitions: int = 2
    duration_s: float = 12.0
    tick_s: float = 1.0
    v2v_latency_s: float = 1.0
    barrier_s: float | None = None
    beacon_period_s: float = 2.0
    with_services: bool = True
    edge_count: int = 2
    edge_spacing_m: float = 450.0
    barrier_deadline_s: float = 60.0
    kill_plan: KillPlan | None = None
    straggle_s: tuple[tuple[tuple[int, int], float], ...] = field(
        default_factory=tuple
    )
    start_method: str | None = None

    def __post_init__(self):
        if self.vehicles < 1:
            raise ValueError("need at least one vehicle")
        if not 1 <= self.partitions <= self.vehicles:
            raise ValueError("partitions must be in [1, vehicles]")
        if self.duration_s <= 0 or self.tick_s <= 0:
            raise ValueError("duration and tick must be positive")
        if self.v2v_latency_s <= 0:
            raise ValueError("v2v latency must be positive")
        if self.beacon_period_s <= 0:
            raise ValueError("beacon period must be positive")
        if self.barrier_deadline_s <= 0:
            raise ValueError("barrier deadline must be positive")
        step = self.barrier_step_s
        if step <= 0:
            raise ValueError("barrier step must be positive")
        if step > self.v2v_latency_s + 1e-12:
            raise ValueError(
                f"conservative sync violated: barrier step {step} exceeds "
                f"lookahead (min V2V latency) {self.v2v_latency_s}"
            )

    # -- derived geometry --------------------------------------------------

    @property
    def barrier_step_s(self) -> float:
        """The time-sync round length (defaults to the lookahead)."""
        return self.barrier_s if self.barrier_s is not None else self.v2v_latency_s

    def barriers(self) -> list[float]:
        """The barrier times: ``step, 2*step, ..., duration`` (inclusive)."""
        step = self.barrier_step_s
        count = max(1, math.ceil(self.duration_s / step - 1e-9))
        times = [step * k for k in range(1, count)]
        times.append(self.duration_s)
        return times

    def shards(self) -> list[tuple[int, ...]]:
        """Vehicle indices per partition (round-robin)."""
        return shard_vehicles(self.vehicles, self.partitions)

    # -- per-vehicle derivations -------------------------------------------

    def vehicle_label(self, index: int) -> str:
        """Stable display/trace name for one vehicle."""
        return f"cav-{index:03d}"

    def vehicle_seed(self, index: int) -> int:
        """Independent per-vehicle seed (same derivation as RngRegistry.fork)."""
        return self.seed * 1_000_003 + index

    def vehicle_speed_mps(self, index: int) -> float:
        """Deterministic per-vehicle cruise speed (staggers the traces).

        Derived from the per-vehicle seed (not the partition layout), so
        it is partition-invariant but does change with ``seed`` -- the
        hook that makes the fleet's event traces seed-sensitive.
        """
        jitter = np.random.default_rng(self.vehicle_seed(index)).uniform()
        return 8.0 + 1.5 * (index % 6) + round(float(jitter), 3)

    def neighbors(self, index: int) -> tuple[int, ...]:
        """Ring-topology V2V neighbours of one vehicle (global indices)."""
        if self.vehicles < 2:
            return ()
        if self.vehicles == 2:
            return (1 - index,)
        return tuple(
            sorted({(index - 1) % self.vehicles, (index + 1) % self.vehicles})
        )

    def straggle_for(self, partition: int, round_index: int) -> float:
        """Injected wall-clock stall for one (partition, round), if any."""
        for (part, rnd), seconds in self.straggle_s:
            if part == partition and rnd == round_index:
                return seconds
        return 0.0

    def spec_for(self, partition: int) -> "PartitionSpec":
        """The spec handed to one worker process."""
        shard = self.shards()[partition]
        kill = (
            self.kill_plan.for_partition(partition)
            if self.kill_plan is not None and len(self.kill_plan.for_partition(partition))
            else None
        )
        return PartitionSpec(
            config=self,
            partition=partition,
            vehicle_indices=shard,
            kill_plan=kill,
            straggle_s=tuple(
                (key, seconds)
                for key, seconds in self.straggle_s
                if key[0] == partition
            ),
        )


@dataclass(frozen=True)
class PartitionSpec:
    """One worker's slice of the fleet (picklable; crosses the process gap).

    ``kill_plan`` and ``straggle_s`` carry only this partition's scheduled
    faults and are *disarmed* on respawn -- the fault already fired once,
    and a recovered worker that re-stalled or re-crashed on the replayed
    round would livelock the failover loop.
    """

    config: FleetConfig
    partition: int
    vehicle_indices: tuple[int, ...]
    kill_plan: KillPlan | None = None
    straggle_s: tuple[tuple[tuple[int, int], float], ...] = ()

    def __post_init__(self):
        if not self.vehicle_indices:
            raise ValueError("a partition must own at least one vehicle")

    def straggle_for(self, round_index: int) -> float:
        """Injected wall-clock stall for one round of this partition."""
        for (_part, rnd), seconds in self.straggle_s:
            if rnd == round_index:
                return seconds
        return 0.0

    def disarmed(self) -> "PartitionSpec":
        """The same spec with every armed fault removed (for respawns)."""
        return replace(self, kill_plan=None, straggle_s=())

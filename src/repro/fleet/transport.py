"""Wire protocol between the fleet coordinator and partition workers.

Everything that crosses the process boundary is defined here as a small
picklable dataclass, so the protocol is explicit and testable without
spawning anything.  The flow per time-sync round:

1. coordinator -> worker: :class:`AdvanceCmd` (target barrier + the
   inbound :class:`Envelope` batch this partition must deliver),
2. worker -> coordinator: :class:`RoundAck` (outbound envelopes produced
   during the round, the kernel trace hash after the barrier, per-vehicle
   domain hashes, and a kernel checkpoint summary).

A worker that crashes mid-round simply never acks -- the pipe goes EOF or
the wall-clock deadline lapses, which :class:`PipeEndpoint.recv` converts
into :class:`WorkerGone` / :class:`BarrierTimeout` for the coordinator's
recovery machinery to classify.

Wall-clock time appears *only* here (deadline arithmetic on OS pipes);
simulation code stays on the virtual clock.
"""

from __future__ import annotations

import time  # vdaplint: disable=DET001
from dataclasses import dataclass, field
from typing import Any

from multiprocessing.connection import Connection

__all__ = [
    "AdvanceCmd",
    "BarrierTimeout",
    "Envelope",
    "FinishAck",
    "FinishCmd",
    "Heartbeat",
    "Hello",
    "PipeEndpoint",
    "RoundAck",
    "WorkerFailed",
    "WorkerGone",
    "sort_envelopes",
]


class WorkerGone(Exception):
    """The worker's pipe closed without a reply (process died)."""


class BarrierTimeout(Exception):
    """The worker missed its wall-clock barrier deadline (straggler)."""


@dataclass(frozen=True)
class Envelope:
    """One cross-vehicle message in flight between partitions.

    ``sent_s`` is the sim time the source emitted it; ``deliver_s`` is the
    sim time it is due (``sent_s + link latency``).  Conservative sync
    guarantees ``deliver_s`` falls strictly after the barrier that ships
    the envelope, so delivery is always scheduled in the future.
    """

    src: int
    dst: int
    sent_s: float
    deliver_s: float
    seq: int
    payload: Any

    @property
    def sort_key(self) -> tuple[float, int, int, int]:
        """Canonical delivery order: (due time, receiver, sender, seq)."""
        return (self.deliver_s, self.dst, self.src, self.seq)


def sort_envelopes(envelopes: list[Envelope]) -> list[Envelope]:
    """Canonical, partition-invariant ordering for a delivery batch."""
    return sorted(envelopes, key=lambda e: e.sort_key)


@dataclass(frozen=True)
class Hello:
    """Worker's first message: it booted and built its partition."""

    partition: int
    vehicles: tuple[int, ...]
    pid: int


@dataclass(frozen=True)
class Heartbeat:
    """Worker liveness ping: it received round ``round_index`` and is working.

    Sent immediately on receipt of an :class:`AdvanceCmd`, before any
    simulation work, so the coordinator can tell a *straggler* (heartbeat
    seen, ack missing: slow but alive, worth a backoff retry) from a
    *crash* (pipe EOF / silence: respawn and replay).
    """

    partition: int
    round_index: int


@dataclass(frozen=True)
class AdvanceCmd:
    """Coordinator order: deliver ``inbound`` then simulate to ``barrier_s``."""

    round_index: int
    barrier_s: float
    inbound: tuple[Envelope, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class RoundAck:
    """Worker reply: the round committed on its side.

    ``partition_hash`` is the kernel event-trace hash after this barrier
    (replay-identity evidence); ``vehicle_hashes`` are the per-vehicle
    domain-event hashes (partition-invariant equality evidence).
    """

    round_index: int
    barrier_s: float
    outbound: tuple[Envelope, ...]
    partition_hash: str
    vehicle_hashes: dict[int, str]
    events_fired: int
    queue_depth: int
    #: Wall-clock seconds the worker spent inside ``advance`` this round
    #: (diagnostic only -- never hashed, so plans stay trace-invariant).
    advance_wall_s: float = 0.0


@dataclass(frozen=True)
class FinishCmd:
    """Coordinator order: the final barrier committed; report and exit."""


@dataclass(frozen=True)
class FinishAck:
    """Worker's final report: hashes, metrics snapshot, scenario summaries."""

    partition: int
    partition_hash: str
    vehicle_hashes: dict[int, str]
    events_fired: int
    metrics: dict[str, Any]
    vehicle_reports: dict[int, dict[str, Any]]


@dataclass(frozen=True)
class WorkerFailed:
    """Worker caught an exception and is shutting down (clean failure path)."""

    partition: int
    error: str


class PipeEndpoint:
    """One end of a coordinator<->worker duplex pipe with deadline recv.

    Wraps :class:`multiprocessing.connection.Connection` so that every
    receive is bounded by a wall-clock deadline and every failure mode is
    a typed exception the recovery layer can branch on.
    """

    def __init__(self, conn: Connection):
        self._conn = conn

    def send(self, message: Any) -> None:
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerGone(f"pipe closed while sending: {exc}") from exc

    def recv(self, deadline_s: float) -> Any:
        """Receive one message within ``deadline_s`` wall seconds.

        Raises :class:`BarrierTimeout` if the deadline lapses with the
        peer still alive, :class:`WorkerGone` if the pipe hits EOF.
        """
        deadline = time.monotonic() + deadline_s  # vdaplint: disable=DET001
        while True:
            remaining = deadline - time.monotonic()  # vdaplint: disable=DET001
            if remaining <= 0:
                raise BarrierTimeout(
                    f"no message within {deadline_s:.3f}s wall deadline"
                )
            try:
                if self._conn.poll(min(remaining, 0.05)):
                    return self._conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise WorkerGone(f"pipe closed: {exc}") from exc

    def recv_blocking(self) -> Any:
        """Receive with no deadline (worker side: the coordinator paces us)."""
        try:
            return self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise WorkerGone(f"pipe closed: {exc}") from exc

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass

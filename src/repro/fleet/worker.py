"""Partition worker: the child-process side of the fleet, plus its handle.

:func:`partition_worker_main` is the child entry point -- a plain loop
over coordinator commands driving one :class:`~repro.fleet.runtime.
PartitionRuntime`.  It is intentionally dumb: all policy (deadlines,
retries, recovery) lives in the coordinator; the worker just advances,
acks, and -- if its :class:`~repro.faults.prockill.KillPlan` says so --
SIGKILLs itself at the scheduled barrier, exactly as an OOM-killed or
crashed container would (no cleanup, no farewell; the pipe goes EOF).

:class:`WorkerHandle` is the parent-side view: the OS process, the pipe
endpoint, and respawn bookkeeping.  :func:`spawn_worker` prefers the
``fork`` start method (cheap, and the spec is already picklable for the
``spawn`` fallback).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time  # vdaplint: disable=DET001
from dataclasses import dataclass, field

from ..faults.prockill import KillPhase
from .config import PartitionSpec
from .transport import (
    AdvanceCmd,
    FinishAck,
    FinishCmd,
    Heartbeat,
    Hello,
    PipeEndpoint,
    WorkerFailed,
    WorkerGone,
)

__all__ = ["WorkerHandle", "partition_worker_main", "spawn_worker"]


def _self_destruct() -> None:
    """Die the way a crashed worker dies: SIGKILL, no cleanup, no goodbye."""
    os.kill(os.getpid(), signal.SIGKILL)


def partition_worker_main(conn, spec: PartitionSpec) -> None:
    """Child entry point: run one partition under coordinator command."""
    # Workers must not share the parent's signal disposition for Ctrl-C:
    # the coordinator owns shutdown and terminates children explicitly.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    pipe = PipeEndpoint(conn)
    try:
        from .runtime import PartitionRuntime

        runtime = PartitionRuntime(spec)
        runtime.launch()
        pipe.send(
            Hello(
                partition=spec.partition,
                vehicles=spec.vehicle_indices,
                pid=os.getpid(),
            )
        )
        while True:
            try:
                command = pipe.recv_blocking()
            except WorkerGone:
                return  # coordinator went away; nothing left to serve
            if isinstance(command, AdvanceCmd):
                pipe.send(Heartbeat(spec.partition, command.round_index))
                kill = (
                    spec.kill_plan.kill_for(spec.partition, command.round_index)
                    if spec.kill_plan is not None
                    else None
                )
                if kill is not None and kill.phase == KillPhase.ON_ADVANCE:
                    _self_destruct()
                stall_s = spec.straggle_for(command.round_index)
                if stall_s > 0:
                    time.sleep(stall_s)  # vdaplint: disable=DET001,SIM001
                started = time.perf_counter()  # vdaplint: disable=DET001
                result = runtime.advance(
                    command.round_index, command.barrier_s, command.inbound
                )
                advance_wall_s = time.perf_counter() - started  # vdaplint: disable=DET001
                if kill is not None and kill.phase == KillPhase.BEFORE_ACK:
                    _self_destruct()
                pipe.send(result.to_ack(advance_wall_s=advance_wall_s))
            elif isinstance(command, FinishCmd):
                reports = runtime.finalize()
                pipe.send(
                    FinishAck(
                        partition=spec.partition,
                        partition_hash=runtime.sanitizer.trace_hash,
                        vehicle_hashes=runtime.vehicle_hashes(),
                        events_fired=runtime.sim.events_fired,
                        metrics=runtime.metrics_snapshot(),
                        vehicle_reports=reports,
                    )
                )
                return
            else:
                raise RuntimeError(f"unknown command: {command!r}")
    except Exception as exc:  # noqa: BLE001 - report, then die loudly
        try:
            pipe.send(WorkerFailed(partition=spec.partition, error=repr(exc)))
        except WorkerGone:
            pass
        raise
    finally:
        pipe.close()


@dataclass
class WorkerHandle:
    """Parent-side handle on one partition worker."""

    spec: PartitionSpec
    process: mp.Process
    pipe: PipeEndpoint
    respawns: int = 0
    stragglers: int = 0
    hello: Hello | None = field(default=None, repr=False)

    @property
    def partition(self) -> int:
        return self.spec.partition

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def terminate(self, join_s: float = 5.0) -> None:
        """Hard-stop the worker and reap it (idempotent; never raises)."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=join_s)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=join_s)
        self.pipe.close()


def _context(start_method: str | None) -> mp.context.BaseContext:
    if start_method is None:
        start_method = (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
    return mp.get_context(start_method)


def spawn_worker(
    spec: PartitionSpec, start_method: str | None = None
) -> WorkerHandle:
    """Start one partition worker process and return its handle.

    The caller still has to receive the worker's :class:`Hello` (build
    failures surface as :class:`WorkerGone` on that first receive).
    """
    ctx = _context(start_method if start_method is not None
                   else spec.config.start_method)
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=partition_worker_main,
        args=(child_conn, spec),
        name=f"fleet-p{spec.partition}",
        daemon=True,
    )
    process.start()
    child_conn.close()
    return WorkerHandle(spec=spec, process=process, pipe=PipeEndpoint(parent_conn))

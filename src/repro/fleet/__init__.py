"""repro.fleet: crash-tolerant partitioned multi-process simulation.

The fleet substrate scales the platform's single-vehicle determinism
story to many vehicles across OS processes without giving any of it up:

* :mod:`repro.fleet.config` -- :class:`FleetConfig` (one config, any
  partition count, same traces) and per-worker :class:`PartitionSpec`;
* :mod:`repro.fleet.runtime` -- :class:`PartitionRuntime`, a shard of
  vehicles on one kernel, advanced in conservative time-sync rounds with
  all V2V traffic barrier-exchanged in canonical order;
* :mod:`repro.fleet.transport` -- the picklable coordinator<->worker
  protocol plus deadline-bounded pipes;
* :mod:`repro.fleet.journal` / :mod:`repro.fleet.recovery` -- the
  seed+replay crash-recovery contract: journal every inbound batch,
  respawn from spec, replay to the last committed barrier, prove the
  replay hash-identical;
* :mod:`repro.fleet.worker` -- the child process entry point and handle;
* :mod:`repro.fleet.coordinator` -- :class:`FleetCoordinator` (the
  control plane: barriers, deadlines, straggler backoff, failover) and
  :func:`run_single_process`, the unsharded golden reference a
  partitioned run must match hash for hash.
"""

from .config import FleetConfig, PartitionPlan, PartitionSpec, shard_vehicles
from .coordinator import (
    FleetCoordinator,
    FleetResult,
    FleetStats,
    run_inline,
    run_single_process,
)
from .journal import JournalEntry, PartitionJournal, ReplayDivergence
from .recovery import FleetError, RecoveryPolicy, respawn_and_replay
from .runtime import PartitionRuntime, RoundResult, V2VBus, VehicleTraceHash
from .transport import (
    AdvanceCmd,
    BarrierTimeout,
    Envelope,
    FinishAck,
    FinishCmd,
    Heartbeat,
    Hello,
    PipeEndpoint,
    RoundAck,
    WorkerFailed,
    WorkerGone,
    sort_envelopes,
)
from .worker import WorkerHandle, partition_worker_main, spawn_worker

__all__ = [
    "AdvanceCmd",
    "BarrierTimeout",
    "Envelope",
    "FinishAck",
    "FinishCmd",
    "FleetConfig",
    "FleetCoordinator",
    "FleetError",
    "FleetResult",
    "FleetStats",
    "Heartbeat",
    "Hello",
    "JournalEntry",
    "PartitionJournal",
    "PartitionPlan",
    "PartitionRuntime",
    "PartitionSpec",
    "PipeEndpoint",
    "RecoveryPolicy",
    "ReplayDivergence",
    "RoundAck",
    "RoundResult",
    "V2VBus",
    "VehicleTraceHash",
    "WorkerFailed",
    "WorkerGone",
    "WorkerHandle",
    "partition_worker_main",
    "respawn_and_replay",
    "run_inline",
    "run_single_process",
    "shard_vehicles",
    "sort_envelopes",
    "spawn_worker",
]

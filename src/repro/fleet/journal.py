"""Per-partition recovery journal: everything needed to replay a worker.

A partition worker is deterministic given (a) its :class:`PartitionSpec`
and (b) the exact sequence of inbound envelope batches it was told to
deliver.  Generators are not picklable, so there is no mid-flight state
snapshot to ship -- instead the coordinator journals (b) as each round is
*sent*, and stamps the worker's kernel trace hash as each round is
*committed* (acked).  Crash recovery is then seed+replay: respawn from
the spec, re-send every committed round's inbound batch, and check the
replayed hash against the journalled one at each barrier.  A hash
mismatch means the run was not deterministic and recovery refuses to
continue (better loud than silently divergent).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .transport import Envelope

__all__ = ["JournalEntry", "PartitionJournal", "ReplayDivergence"]


class ReplayDivergence(Exception):
    """A replayed round produced a different trace hash than the original."""


@dataclass
class JournalEntry:
    """One round's replay record for one partition."""

    round_index: int
    barrier_s: float
    inbound: tuple[Envelope, ...]
    committed_hash: str | None = None

    @property
    def committed(self) -> bool:
        return self.committed_hash is not None


@dataclass
class PartitionJournal:
    """Ordered round log for one partition (append-only, commit-stamped)."""

    partition: int
    entries: list[JournalEntry] = field(default_factory=list)

    def record_advance(
        self, round_index: int, barrier_s: float, inbound: tuple[Envelope, ...]
    ) -> JournalEntry:
        """Log a round as it is sent to the worker (idempotent per round).

        Re-sending the same round after a straggler retry or crash keeps
        the original entry; recovery depends on the inbound batch for a
        round never changing once journalled.
        """
        if self.entries and round_index == self.entries[-1].round_index:
            return self.entries[-1]
        expected = self.entries[-1].round_index + 1 if self.entries else 0
        if round_index != expected:
            raise ValueError(
                f"journal for partition {self.partition} expected round "
                f"{expected}, got {round_index}"
            )
        entry = JournalEntry(round_index, barrier_s, inbound)
        self.entries.append(entry)
        return entry

    def commit(self, round_index: int, trace_hash: str) -> None:
        """Stamp a round as acked with the worker's post-barrier hash."""
        entry = self.entries[round_index]
        if entry.round_index != round_index:
            raise ValueError("journal entries out of order")
        if entry.committed and entry.committed_hash != trace_hash:
            raise ReplayDivergence(
                f"partition {self.partition} round {round_index}: commit hash "
                f"{trace_hash} contradicts journalled {entry.committed_hash}"
            )
        entry.committed_hash = trace_hash

    def committed_entries(self) -> list[JournalEntry]:
        """The committed prefix: rounds a replayed worker must reproduce."""
        out = []
        for entry in self.entries:
            if not entry.committed:
                break
            out.append(entry)
        return out

    def verify_replay(self, round_index: int, trace_hash: str) -> None:
        """Check a replayed round's hash against the journalled commit."""
        entry = self.entries[round_index]
        if entry.committed_hash != trace_hash:
            raise ReplayDivergence(
                f"partition {self.partition} round {round_index}: replay hash "
                f"{trace_hash} != journalled {entry.committed_hash} -- "
                f"recovered run is not event-identical"
            )

    @property
    def last_committed_round(self) -> int:
        """Index of the newest committed round, or -1 if none."""
        committed = self.committed_entries()
        return committed[-1].round_index if committed else -1

"""Crash recovery: respawn a partition from seed and replay its journal.

A dead worker takes its whole in-flight simulation with it -- generator
processes are not picklable, so there is no state snapshot to restore.
What *is* recoverable is the run itself: partitions are deterministic
functions of (spec, inbound batches), and the coordinator journals every
inbound batch it ever sent.  :func:`respawn_and_replay` therefore

1. spawns a fresh worker from the dead one's spec with the kill plan
   *disarmed* (the crash already happened; replaying it would livelock),
2. re-sends every **committed** round's inbound batch, in order,
3. checks the replayed kernel trace hash against the journalled commit at
   every barrier -- a mismatch is a :class:`~repro.fleet.journal.
   ReplayDivergence`, the loud failure mode for a nondeterministic run,
4. discards the replayed rounds' outbound envelopes (they were already
   routed to the other partitions the first time).

The caller then re-issues the round that never committed and carries on.
Recovery is bounded by :class:`RecoveryPolicy`: a partition that dies
more than ``max_respawns`` times fails the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import PartitionSpec
from .journal import PartitionJournal
from .transport import (
    AdvanceCmd,
    Heartbeat,
    Hello,
    PipeEndpoint,
    RoundAck,
    WorkerFailed,
)
from .worker import WorkerHandle, spawn_worker

__all__ = ["FleetError", "RecoveryPolicy", "recv_ack", "respawn_and_replay"]


class FleetError(RuntimeError):
    """The fleet cannot make progress (protocol breach, respawn budget)."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """How hard the coordinator fights for a partition before giving up.

    A straggler (heartbeat seen, ack missing at the wall deadline) gets
    ``straggler_retries`` extra waits, each ``straggler_backoff`` times
    longer; after that it is killed and handled as a crash.  A partition
    may be respawned at most ``max_respawns`` times over the whole run.
    """

    max_respawns: int = 3
    straggler_retries: int = 1
    straggler_backoff: float = 2.0

    def __post_init__(self):
        if self.max_respawns < 0 or self.straggler_retries < 0:
            raise ValueError("retry budgets must be non-negative")
        if self.straggler_backoff < 1.0:
            raise ValueError("straggler backoff must be >= 1.0")


def recv_ack(pipe: PipeEndpoint, deadline_s: float, round_index: int) -> RoundAck:
    """Receive the :class:`RoundAck` for one round, skipping heartbeats.

    Raises :class:`FleetError` on a protocol breach or a worker-reported
    failure; :class:`WorkerGone` / :class:`BarrierTimeout` propagate from
    the pipe for the caller's recovery logic.
    """
    while True:
        message = pipe.recv(deadline_s)
        if isinstance(message, Heartbeat):
            continue
        if isinstance(message, WorkerFailed):
            raise FleetError(
                f"partition {message.partition} failed: {message.error}"
            )
        if not isinstance(message, RoundAck):
            raise FleetError(f"expected RoundAck, got {message!r}")
        if message.round_index != round_index:
            raise FleetError(
                f"ack for round {message.round_index}, expected {round_index}"
            )
        return message


def respawn_and_replay(
    spec: PartitionSpec,
    journal: PartitionJournal,
    deadline_s: float,
    previous: WorkerHandle | None = None,
) -> WorkerHandle:
    """Bring a crashed partition back to its last committed barrier.

    Returns a live handle whose simulation state is event-identical to
    the dead worker's at the last commit (proven hash-by-hash against the
    journal).  ``previous`` carries respawn/straggler bookkeeping forward.
    """
    handle = spawn_worker(spec.disarmed())
    if previous is not None:
        handle.respawns = previous.respawns + 1
        handle.stragglers = previous.stragglers
    hello = handle.pipe.recv(deadline_s)
    if not isinstance(hello, Hello):
        handle.terminate()
        raise FleetError(f"respawned worker sent {hello!r}, expected Hello")
    handle.hello = hello
    try:
        for entry in journal.committed_entries():
            handle.pipe.send(
                AdvanceCmd(entry.round_index, entry.barrier_s, entry.inbound)
            )
            ack = recv_ack(handle.pipe, deadline_s, entry.round_index)
            journal.verify_replay(entry.round_index, ack.partition_hash)
            # ack.outbound intentionally dropped: those envelopes were
            # routed to the other partitions before the crash.
    except BaseException:
        handle.terminate()
        raise
    return handle

"""Partition runtime: one shard of the fleet on one deterministic kernel.

A :class:`PartitionRuntime` hosts every vehicle assigned to one partition
as a full :class:`~repro.scenario.DriveScenario` (own world, own VCU, own
per-vehicle seed) sharing a single :class:`~repro.sim.core.Simulator`.
It advances in conservative time-sync rounds: deliver the round's inbound
envelope batch, run to the barrier, hand back what the shard sent.

Determinism is enforced at two grains:

* **Per-vehicle domain hashes** (:class:`VehicleTraceHash`) fold every
  V2V send, every V2V receive, and a per-barrier state record into a
  rolling BLAKE2 digest.  These depend only on the vehicle's own timeline
  and the canonical envelope order, so they are *partition-invariant*: a
  4-partition fleet must match a single-process run vehicle for vehicle.
* **The kernel trace hash** (via
  :class:`~repro.analysis.sanitizer.DeterminismSanitizer`) covers every
  event the partition's loop fires.  It differs between partitionings
  (different kernels, different event sets) but must be *replay-stable*:
  a respawned worker re-fed the same inbound batches must reproduce it
  barrier for barrier.

The canonical-order rule: **all** V2V traffic -- including messages whose
receiver lives on the same partition -- routes through the barrier
exchange and is sorted by ``(deliver_s, dst, src, seq)`` before delivery
scheduling.  That single sort point is what makes event order independent
of how vehicles are sharded.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable

from ..analysis.sanitizer import DeterminismSanitizer
from ..apps import make_adas_service
from ..obs.recorder import Collector
from ..scenario import DriveScenario, ScenarioReport
from ..sim.core import KernelCheckpoint, Simulator
from ..topology.world import build_default_world
from .config import PartitionSpec
from .transport import Envelope, RoundAck, sort_envelopes

__all__ = [
    "PartitionRuntime",
    "RoundResult",
    "V2VBus",
    "VehicleTraceHash",
    "fmt_float",
]


def fmt_float(value: float) -> str:
    """Canonical float text for hashing (9 significant digits)."""
    return f"{value:.9g}"


class VehicleTraceHash:
    """Rolling digest of one vehicle's externally visible behaviour."""

    def __init__(self, vehicle: int):
        self.vehicle = vehicle
        self.records = 0
        self._hash = hashlib.blake2b(digest_size=16)

    def _fold(self, record: str) -> None:
        self.records += 1
        self._hash.update(record.encode())
        self._hash.update(b"\n")

    # The f-strings below *are* the hashed trace lines: the formatted text
    # is the externally visible behaviour being digested, so it cannot be
    # guarded or precomputed away.

    def record_send(self, env: Envelope) -> None:
        self._fold(
            f"send|{fmt_float(env.sent_s)}|{env.dst}|{env.seq}|{env.payload!r}"  # vdaplint: disable=PERF005
        )

    def record_receive(self, env: Envelope) -> None:
        self._fold(
            f"rx|{fmt_float(env.deliver_s)}|{env.src}|{env.seq}|{env.payload!r}"  # vdaplint: disable=PERF005
        )

    def record_state(
        self, barrier_s: float, invocations: int, misses: int, energy_j: float
    ) -> None:
        self._fold(
            f"state|{fmt_float(barrier_s)}|{invocations}|{misses}|"  # vdaplint: disable=PERF005
            f"{fmt_float(energy_j)}"
        )

    @property
    def hexdigest(self) -> str:
        return self._hash.copy().hexdigest()


class V2VBus:
    """Cross-vehicle messaging for one partition, barrier-exchanged.

    :meth:`send` queues an envelope for the *coordinator* regardless of
    where the receiver lives; :meth:`deliver` schedules an inbound batch
    (already canonically sorted) onto the shard's simulator at each
    envelope's due time.  Envelopes addressed to vehicles outside this
    shard are ignored on delivery -- the coordinator fans the same batch
    to every partition in the single-process reference path.
    """

    def __init__(self, sim: Simulator, latency_s: float, local: frozenset[int]):
        if latency_s <= 0:
            raise ValueError("V2V latency must be positive")
        self.sim = sim
        self.latency_s = latency_s
        self.local = local
        self.on_send: Callable[[Envelope], None] | None = None
        self.on_receive: Callable[[Envelope], None] | None = None
        self._outbox: list[Envelope] = []
        self._seq: dict[int, int] = {}
        self.sent = 0
        self.received = 0

    def send(self, src: int, dst: int, payload: Any) -> Envelope:
        """Emit one message at the current sim time (src must be local)."""
        if src not in self.local:
            raise ValueError(f"vehicle {src} is not on this partition")
        seq = self._seq.get(src, 0)
        self._seq[src] = seq + 1
        now = self.sim.now
        env = Envelope(
            src=src, dst=dst, sent_s=now, deliver_s=now + self.latency_s,
            seq=seq, payload=payload,
        )
        self._outbox.append(env)
        self.sent += 1
        if self.on_send is not None:
            self.on_send(env)
        return env

    def drain_outbox(self) -> tuple[Envelope, ...]:
        """Everything sent since the last barrier, in send order."""
        out, self._outbox = tuple(self._outbox), []
        return out

    def deliver(self, inbound: tuple[Envelope, ...]) -> int:
        """Schedule an inbound batch; returns how many were local.

        Must be called with the clock parked at a barrier.  The batch is
        re-sorted canonically here so scheduling order (and therefore
        equal-time firing order) never depends on the caller.
        """
        count = 0
        for env in sort_envelopes([e for e in inbound if e.dst in self.local]):
            if env.deliver_s < self.sim.now:
                raise ValueError(
                    f"stale envelope: due {env.deliver_s} but now {self.sim.now} "
                    f"(conservative sync violated)"
                )
            self.sim.process(
                # Per-envelope process identity is load-bearing for traces.
                self._deliver_one(env), name=f"v2v/rx-{env.dst:03d}"  # vdaplint: disable=PERF005
            )
            count += 1
        return count

    def _deliver_one(self, env: Envelope):
        yield self.sim.timeout(env.deliver_s - self.sim.now)
        self.received += 1
        if self.on_receive is not None:
            self.on_receive(env)


@dataclass(frozen=True)
class RoundResult:
    """What one barrier round produced on one partition."""

    round_index: int
    barrier_s: float
    outbound: tuple[Envelope, ...]
    checkpoint: KernelCheckpoint
    partition_hash: str
    vehicle_hashes: dict[int, str] = field(default_factory=dict)

    def to_ack(self, advance_wall_s: float = 0.0) -> RoundAck:
        """The wire form a worker sends back to the coordinator."""
        return RoundAck(
            round_index=self.round_index,
            barrier_s=self.barrier_s,
            outbound=self.outbound,
            partition_hash=self.partition_hash,
            vehicle_hashes=self.vehicle_hashes,
            events_fired=self.checkpoint.events_fired,
            queue_depth=self.checkpoint.queue_depth,
            advance_wall_s=advance_wall_s,
        )


class PartitionRuntime:
    """The in-process half of a fleet worker (also runs coordinator-side
    for the single-process golden reference)."""

    def __init__(self, spec: PartitionSpec):
        self.spec = spec
        self.config = spec.config
        self.collector = Collector()
        self.sim = Simulator(obs=self.collector, queue=self.config.scheduler)
        self.sanitizer = DeterminismSanitizer(self.sim, keep_records=False)
        self.bus = V2VBus(
            self.sim,
            latency_s=self.config.v2v_latency_s,
            local=frozenset(spec.vehicle_indices),
        )
        self.bus.on_send = self._on_send
        self.bus.on_receive = self._on_receive
        self.hashes = {v: VehicleTraceHash(v) for v in spec.vehicle_indices}
        self.scenarios: dict[int, DriveScenario] = {}
        self.reports: dict[int, ScenarioReport] = {}
        for v in spec.vehicle_indices:
            world = build_default_world(
                speed_mps=self.config.vehicle_speed_mps(v),
                edge_count=self.config.edge_count,
                edge_spacing_m=self.config.edge_spacing_m,
            )
            scenario = DriveScenario(
                world=world,
                seed=self.config.vehicle_seed(v),
                tick_s=self.config.tick_s,
                sim=self.sim,
                label=self.config.vehicle_label(v),
            )
            # The workload style decides how many service instances this
            # vehicle runs; copies get distinct names so the elastic
            # manager and the reports keep them apart.
            for copy in range(self.config.service_count(v)):
                service = make_adas_service(deadline_s=0.6)
                if copy:
                    service.name = f"{service.name}#{copy}"
                scenario.add_service(service, period_s=1.0)
            self.scenarios[v] = scenario
        self._launched = False

    # -- trace-hash hooks --------------------------------------------------

    def _on_send(self, env: Envelope) -> None:
        self.hashes[env.src].record_send(env)
        self.sim.obs.count(
            "fleet.v2v_tx", vehicle=self.config.vehicle_label(env.src)
        )

    def _on_receive(self, env: Envelope) -> None:
        self.hashes[env.dst].record_receive(env)
        self.sim.obs.count(
            "fleet.v2v_rx", vehicle=self.config.vehicle_label(env.dst)
        )

    # -- vehicle processes -------------------------------------------------

    def _vehicle_invocations(self, vehicle: int) -> int:
        report = self.reports[vehicle]
        return sum(s.invocations for s in report.services.values())

    def _vehicle_misses(self, vehicle: int) -> int:
        report = self.reports[vehicle]
        return sum(s.deadline_misses for s in report.services.values())

    def _beacon_loop(self, vehicle: int):
        """Periodic V2V beacon to the vehicle's ring neighbours."""
        config = self.config
        scenario = self.scenarios[vehicle]
        neighbors = config.neighbors(vehicle)
        while True:
            yield self.sim.timeout(config.beacon_period_s)
            now = self.sim.now
            if now >= config.duration_s:
                return
            position = round(scenario.world.vehicle.position(now), 3)
            payload = ("beacon", position, self._vehicle_invocations(vehicle))
            for dst in neighbors:
                self.bus.send(vehicle, dst, payload)

    def launch(self) -> None:
        """Register every vehicle's drive loop and beacon (idempotent-guarded)."""
        if self._launched:
            raise RuntimeError("partition already launched")
        self._launched = True
        for v in self.spec.vehicle_indices:
            self.reports[v] = self.scenarios[v].launch(self.config.duration_s)
            self.sim.process(
                self._beacon_loop(v),
                name=f"{self.config.vehicle_label(v)}/beacon",
            )

    # -- barrier rounds ----------------------------------------------------

    def advance(
        self,
        round_index: int,
        barrier_s: float,
        inbound: tuple[Envelope, ...] = (),
    ) -> RoundResult:
        """Deliver ``inbound``, simulate to ``barrier_s``, report the round."""
        if not self._launched:
            raise RuntimeError("advance() before launch()")
        self.bus.deliver(inbound)
        checkpoint = self.sim.run_to_barrier(barrier_s)
        for v in self.spec.vehicle_indices:
            self.hashes[v].record_state(
                barrier_s,
                self._vehicle_invocations(v),
                self._vehicle_misses(v),
                self.scenarios[v].dsf.energy.busy_joules(),
            )
        return RoundResult(
            round_index=round_index,
            barrier_s=barrier_s,
            outbound=self.bus.drain_outbox(),
            checkpoint=checkpoint,
            partition_hash=self.sanitizer.trace_hash,
            vehicle_hashes=self.vehicle_hashes(),
        )

    def vehicle_hashes(self) -> dict[int, str]:
        """Current per-vehicle domain-event digests."""
        return {v: h.hexdigest for v, h in self.hashes.items()}

    # -- completion --------------------------------------------------------

    def finalize(self) -> dict[int, dict[str, Any]]:
        """Complete every scenario; returns JSON-friendly vehicle reports."""
        out: dict[int, dict[str, Any]] = {}
        for v in self.spec.vehicle_indices:
            report = self.scenarios[v].finalize()
            out[v] = {
                "label": self.config.vehicle_label(v),
                "vehicle_energy_j": report.vehicle_energy_j,
                "services": {
                    name: {
                        "invocations": service.invocations,
                        "deadline_misses": service.deadline_misses,
                        "hung_ticks": service.hung_ticks,
                        "pipeline_switches": service.switches,
                    }
                    for name, service in sorted(report.services.items())
                },
                "v2v_records": self.hashes[v].records,
            }
        return out

    def metrics_snapshot(self) -> dict:
        """The partition collector's raw metric snapshot."""
        return self.collector.snapshot()

"""Fleet coordinator: conservative time sync over N partition workers.

The :class:`FleetCoordinator` is the control plane of the crash-tolerant
substrate.  Per time-sync round it (1) sends every worker an
:class:`~repro.fleet.transport.AdvanceCmd` carrying the inbound envelopes
due on that shard, journalling the batch first, (2) collects acks under a
wall-clock barrier deadline, classifying silence as *straggler*
(heartbeat seen: wait again with backoff) or *crash* (pipe EOF: respawn
from seed and replay the journal via :mod:`repro.fleet.recovery`), and
(3) commits each ack's kernel trace hash and routes its outbound
envelopes to the destination shards for the next round.

:func:`run_single_process` is the golden reference: the same config, the
same barrier exchange, one in-process runtime hosting every vehicle.
Because all V2V traffic routes through the barriers in both modes, a
partitioned run must reproduce the reference's per-vehicle trace hashes
and merged mergeable-view metrics exactly -- that equality is the
substrate's correctness contract and is asserted in CI, with and without
a worker killed mid-run.

Use the coordinator as a context manager: exit terminates and joins every
worker (KeyboardInterrupt included), so no orphan processes survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..obs.metrics import merge_many, mergeable_view
from ..obs.report import Report
from .config import FleetConfig
from .journal import PartitionJournal
from .recovery import FleetError, RecoveryPolicy, recv_ack, respawn_and_replay
from .runtime import PartitionRuntime
from .transport import (
    AdvanceCmd,
    BarrierTimeout,
    Envelope,
    FinishAck,
    FinishCmd,
    Heartbeat,
    Hello,
    WorkerFailed,
    WorkerGone,
    sort_envelopes,
)
from .worker import WorkerHandle, spawn_worker

__all__ = [
    "FleetCoordinator",
    "FleetResult",
    "FleetStats",
    "run_inline",
    "run_single_process",
]


@dataclass
class FleetStats:
    """What it took to complete the run."""

    rounds: int = 0
    envelopes_routed: int = 0
    stragglers: int = 0
    respawns: int = 0
    rounds_replayed: int = 0
    events_fired: int = 0
    #: Wall-clock seconds each partition spent advancing (diagnostic).
    partition_busy_s: dict[int, float] = field(default_factory=dict)
    #: Kernel events fired per partition (deterministic load signal).
    partition_events: dict[int, int] = field(default_factory=dict)

    def busy_spread_s(self) -> float:
        """Max-minus-min per-partition busy time: the imbalance signal."""
        if len(self.partition_busy_s) < 2:
            return 0.0
        values = self.partition_busy_s.values()
        return max(values) - min(values)

    def critical_events(self) -> int:
        """Events on the busiest partition: the per-round critical path.

        On hardware with a core per partition, round wall time tracks
        the heaviest shard, so this (unlike wall-clock) is the
        deterministic figure a partition plan is judged on.
        """
        return max(self.partition_events.values(), default=0)

    def as_dict(self) -> dict[str, float]:
        return {
            "rounds": self.rounds,
            "envelopes_routed": self.envelopes_routed,
            "stragglers": self.stragglers,
            "respawns": self.respawns,
            "rounds_replayed": self.rounds_replayed,
            "events_fired": self.events_fired,
            "critical_events": self.critical_events(),
            "busy_spread_s": round(self.busy_spread_s(), 6),
        }


@dataclass
class FleetResult:
    """The merged outcome of a fleet run (any partition count)."""

    config: FleetConfig
    vehicle_hashes: dict[int, str]
    partition_hashes: dict[int, str]
    vehicle_reports: dict[int, dict[str, Any]]
    metrics: dict
    stats: FleetStats = field(default_factory=FleetStats)

    def report(self) -> Report:
        """A unified :class:`~repro.obs.report.Report` of the run."""
        report = Report(
            "fleet_run",
            f"{self.config.vehicles} vehicles / {self.config.partitions} "
            f"partitions / {self.config.duration_s:g}s drive",
        )
        report.add_column("vehicle", 10)
        report.add_column("trace_hash", 18)
        report.add_column("energy_j", 12, fmt=".1f")
        report.add_column("invocations", 12)
        for vehicle in sorted(self.vehicle_hashes):
            info = self.vehicle_reports.get(vehicle, {})
            services = info.get("services", {})
            report.add_row(
                vehicle=info.get("label", str(vehicle)),
                trace_hash=self.vehicle_hashes[vehicle][:16],
                energy_j=info.get("vehicle_energy_j", 0.0),
                invocations=sum(
                    s.get("invocations", 0) for s in services.values()
                ),
            )
        for key, value in sorted(self.stats.as_dict().items()):
            report.note(f"{key}: {value}")
        return report


class FleetCoordinator:
    """Drives a partitioned fleet run end to end; owns the worker pool."""

    def __init__(
        self, config: FleetConfig, policy: RecoveryPolicy | None = None
    ):
        self.config = config
        self.policy = policy or RecoveryPolicy()
        self.stats = FleetStats()
        self.workers: dict[int, WorkerHandle] = {}
        self.journals = {
            p: PartitionJournal(p) for p in range(config.partitions)
        }
        self._dst_partition = {
            v: p
            for p, shard in enumerate(config.shards())
            for v in shard
        }
        self._finished = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Terminate and join every worker; close pipes (idempotent)."""
        for handle in self.workers.values():
            handle.terminate()
        self.workers.clear()

    # -- worker pool -------------------------------------------------------

    def _spawn_all(self) -> None:
        for p in range(self.config.partitions):
            self.workers[p] = spawn_worker(self.config.spec_for(p))
        for p, handle in self.workers.items():
            hello = handle.pipe.recv(self.config.barrier_deadline_s)
            if isinstance(hello, WorkerFailed):
                raise FleetError(
                    f"partition {p} failed to boot: {hello.error}"
                )
            if not isinstance(hello, Hello):
                raise FleetError(f"partition {p} sent {hello!r} before Hello")
            handle.hello = hello

    def _recover(self, partition: int) -> WorkerHandle:
        """Replace a dead/stuck worker with a replayed twin."""
        old = self.workers[partition]
        old.terminate()
        if old.respawns >= self.policy.max_respawns:
            raise FleetError(
                f"partition {partition} exceeded respawn budget "
                f"({self.policy.max_respawns})"
            )
        journal = self.journals[partition]
        handle = respawn_and_replay(
            old.spec,
            journal,
            self.config.barrier_deadline_s,
            previous=old,
        )
        self.workers[partition] = handle
        self.stats.respawns += 1
        self.stats.rounds_replayed += len(journal.committed_entries())
        return handle

    # -- the round protocol ------------------------------------------------

    def _send_advance(self, partition: int, cmd: AdvanceCmd) -> None:
        try:
            self.workers[partition].pipe.send(cmd)
        except WorkerGone:
            # Died between rounds: recover, then re-issue this round.
            self._recover(partition)
            self.workers[partition].pipe.send(cmd)

    def _await_ack(self, partition: int, cmd: AdvanceCmd):
        """Collect one round's ack, surviving stragglers and crashes."""
        deadline = self.config.barrier_deadline_s
        straggler_waits = 0
        while True:
            handle = self.workers[partition]
            try:
                return recv_ack(handle.pipe, deadline, cmd.round_index)
            except BarrierTimeout:
                if straggler_waits < self.policy.straggler_retries:
                    straggler_waits += 1
                    handle.stragglers += 1
                    self.stats.stragglers += 1
                    deadline *= self.policy.straggler_backoff
                    continue
                # Out of patience: treat the stuck worker as dead.
                self.stats.stragglers += 1
            except WorkerGone:
                pass
            self._recover(partition)
            self.workers[partition].pipe.send(cmd)
            deadline = self.config.barrier_deadline_s
            straggler_waits = 0

    def _collect_finish(self, partition: int) -> FinishAck:
        handle = self.workers[partition]
        handle.pipe.send(FinishCmd())
        while True:
            message = handle.pipe.recv(self.config.barrier_deadline_s)
            if isinstance(message, Heartbeat):
                continue
            if isinstance(message, WorkerFailed):
                raise FleetError(
                    f"partition {partition} failed at finish: {message.error}"
                )
            if not isinstance(message, FinishAck):
                raise FleetError(f"expected FinishAck, got {message!r}")
            return message

    # -- entry point -------------------------------------------------------

    def run(self) -> FleetResult:
        """Execute the whole drive; returns the merged fleet result."""
        if self._finished:
            raise RuntimeError("a coordinator runs exactly once")
        self._finished = True
        self._spawn_all()
        pending: dict[int, list[Envelope]] = {
            p: [] for p in range(self.config.partitions)
        }
        for round_index, barrier_s in enumerate(self.config.barriers()):
            commands: dict[int, AdvanceCmd] = {}
            for p in range(self.config.partitions):
                inbound = tuple(sort_envelopes(pending[p]))
                self.journals[p].record_advance(round_index, barrier_s, inbound)
                cmd = AdvanceCmd(round_index, barrier_s, inbound)
                commands[p] = cmd
                self._send_advance(p, cmd)
            pending = {p: [] for p in range(self.config.partitions)}
            for p in range(self.config.partitions):
                ack = self._await_ack(p, commands[p])
                self.journals[p].commit(round_index, ack.partition_hash)
                self.stats.partition_busy_s[p] = (
                    self.stats.partition_busy_s.get(p, 0.0)
                    + ack.advance_wall_s
                )
                for env in ack.outbound:
                    pending[self._dst_partition[env.dst]].append(env)
                    self.stats.envelopes_routed += 1
            self.stats.rounds += 1
        finishes = {
            p: self._collect_finish(p) for p in range(self.config.partitions)
        }
        self.shutdown()
        return self._merge(finishes)

    def _merge(self, finishes: dict[int, FinishAck]) -> FleetResult:
        vehicle_hashes: dict[int, str] = {}
        vehicle_reports: dict[int, dict[str, Any]] = {}
        for p, ack in finishes.items():
            vehicle_hashes.update(ack.vehicle_hashes)
            vehicle_reports.update(ack.vehicle_reports)
            self.stats.events_fired += ack.events_fired
            self.stats.partition_events[p] = ack.events_fired
        merged = mergeable_view(
            merge_many([finishes[p].metrics for p in sorted(finishes)])
        )
        return FleetResult(
            config=self.config,
            vehicle_hashes=dict(sorted(vehicle_hashes.items())),
            partition_hashes={
                p: finishes[p].partition_hash for p in sorted(finishes)
            },
            vehicle_reports=dict(sorted(vehicle_reports.items())),
            metrics=merged,
            stats=self.stats,
        )


def run_inline(config: FleetConfig) -> FleetResult:
    """A partitioned run without processes: N runtimes, one thread.

    Drives the exact coordinator round protocol -- journal-order
    delivery, canonical envelope sort, per-round routing -- but hosts
    every :class:`PartitionRuntime` in this process.  No fault injection
    and no recovery, so it is the cheap way to exercise *shard geometry*
    (plans, uneven and empty shards) against the single-process
    reference; the process-level path stays covered by the coordinator.
    """
    shards = config.shards()
    dst_partition = {v: p for p, shard in enumerate(shards) for v in shard}
    runtimes = {
        p: PartitionRuntime(config.spec_for(p).disarmed())
        for p in range(config.partitions)
    }
    stats = FleetStats()
    for runtime in runtimes.values():
        runtime.launch()
    pending: dict[int, list[Envelope]] = {
        p: [] for p in range(config.partitions)
    }
    for round_index, barrier_s in enumerate(config.barriers()):
        results = {
            p: runtimes[p].advance(
                round_index, barrier_s, tuple(sort_envelopes(pending[p]))
            )
            for p in range(config.partitions)
        }
        pending = {p: [] for p in range(config.partitions)}
        for p in sorted(results):
            for env in results[p].outbound:
                pending[dst_partition[env.dst]].append(env)
                stats.envelopes_routed += 1
        stats.rounds += 1
    vehicle_hashes: dict[int, str] = {}
    vehicle_reports: dict[int, dict[str, Any]] = {}
    for p, runtime in runtimes.items():
        vehicle_reports.update(runtime.finalize())
        vehicle_hashes.update(runtime.vehicle_hashes())
        stats.events_fired += runtime.sim.events_fired
        stats.partition_events[p] = runtime.sim.events_fired
    return FleetResult(
        config=config,
        vehicle_hashes=dict(sorted(vehicle_hashes.items())),
        partition_hashes={
            p: runtimes[p].sanitizer.trace_hash for p in sorted(runtimes)
        },
        vehicle_reports=dict(sorted(vehicle_reports.items())),
        metrics=mergeable_view(
            merge_many(
                [runtimes[p].metrics_snapshot() for p in sorted(runtimes)]
            )
        ),
        stats=stats,
    )


def run_single_process(config: FleetConfig) -> FleetResult:
    """The unsharded golden reference for ``config`` (no processes).

    Hosts every vehicle on one in-process runtime and drives the same
    barrier exchange the coordinator uses, so its per-vehicle hashes and
    mergeable-view metrics are the ground truth a partitioned run of the
    same config must reproduce exactly.
    """
    # ``plan`` is shard geometry, not behaviour: the reference collapses
    # to one partition, so any explicit plan must be dropped with it.
    # The reference also pins the heap scheduler, so checking a fleet run
    # against it cross-checks whatever backend the config selected.
    reference = replace(
        config, partitions=1, plan=None, kill_plan=None, straggle_s=(),
        scheduler="heap",
    )
    runtime = PartitionRuntime(reference.spec_for(0))
    runtime.launch()
    stats = FleetStats()
    inbound: tuple[Envelope, ...] = ()
    for round_index, barrier_s in enumerate(reference.barriers()):
        result = runtime.advance(
            round_index, barrier_s, tuple(sort_envelopes(list(inbound)))
        )
        inbound = result.outbound
        stats.rounds += 1
        stats.envelopes_routed += len(result.outbound)
    vehicle_reports = runtime.finalize()
    stats.events_fired = runtime.sim.events_fired
    stats.partition_events[0] = runtime.sim.events_fired
    return FleetResult(
        config=reference,
        vehicle_hashes=dict(sorted(runtime.vehicle_hashes().items())),
        partition_hashes={0: runtime.sanitizer.trace_hash},
        vehicle_reports=vehicle_reports,
        metrics=mergeable_view(merge_many([runtime.metrics_snapshot()])),
        stats=stats,
    )

"""Data Sharing module: authenticated inter-service pub/sub with ACLs.

Paper SIV-C: "the Data Sharing module provides a mechanism for data sharing
between different services with a high security, which will authenticate
the service and perform fine grain access control" -- e.g. both the
pedestrian-detection service and the mobile A3 service read the camera
topic, and A3 publishes its results to the vehicle-recorder service.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["AccessDenied", "SharedRecord", "DataSharingBus"]


class AccessDenied(PermissionError):
    """Raised on unauthenticated or unauthorized topic access."""


@dataclass(frozen=True)
class SharedRecord:
    """One published datum."""

    topic: str
    publisher: str
    payload: Any
    sequence: int


@dataclass
class _TopicACL:
    readers: set = field(default_factory=set)
    writers: set = field(default_factory=set)


class DataSharingBus:
    """Topic-based sharing with per-service credentials and per-topic ACLs."""

    def __init__(self):
        self._tokens: dict[str, str] = {}
        self._acls: dict[str, _TopicACL] = {}
        self._log: list[SharedRecord] = []
        self._subscribers: dict[str, list[tuple[str, Callable[[SharedRecord], None]]]] = {}
        self._sequence = 0
        self.audit: list[tuple[str, str, str, bool]] = []  # (service, op, topic, ok)

    # -- identity ---------------------------------------------------------------

    def register_service(self, name: str) -> str:
        """Enroll a service; returns its secret credential token."""
        if name in self._tokens:
            raise ValueError(f"service {name!r} already registered")
        token = secrets.token_hex(16)
        self._tokens[name] = token
        return token

    def _authenticate(self, name: str, token: str) -> None:
        if self._tokens.get(name) != token:
            self.audit.append((name, "auth", "-", False))
            raise AccessDenied(f"authentication failed for {name!r}")

    # -- ACL management -------------------------------------------------------------

    def create_topic(self, topic: str, readers: list[str], writers: list[str]) -> None:
        if topic in self._acls:
            raise ValueError(f"topic {topic!r} already exists")
        self._acls[topic] = _TopicACL(readers=set(readers), writers=set(writers))
        self._subscribers[topic] = []

    def grant(self, topic: str, service: str, read: bool = False, write: bool = False) -> None:
        acl = self._acls[topic]
        if read:
            acl.readers.add(service)
        if write:
            acl.writers.add(service)

    def revoke(self, topic: str, service: str) -> None:
        acl = self._acls[topic]
        acl.readers.discard(service)
        acl.writers.discard(service)

    # -- data plane ------------------------------------------------------------------

    def publish(self, service: str, token: str, topic: str, payload: Any) -> SharedRecord:
        self._authenticate(service, token)
        acl = self._acls.get(topic)
        if acl is None or service not in acl.writers:
            self.audit.append((service, "publish", topic, False))
            raise AccessDenied(f"{service!r} may not publish to {topic!r}")
        record = SharedRecord(
            topic=topic, publisher=service, payload=payload, sequence=self._sequence
        )
        self._sequence += 1
        self._log.append(record)
        self.audit.append((service, "publish", topic, True))
        for subscriber, callback in self._subscribers[topic]:
            if subscriber in acl.readers:
                callback(record)
        return record

    def read(self, service: str, token: str, topic: str, since: int = 0) -> list[SharedRecord]:
        self._authenticate(service, token)
        acl = self._acls.get(topic)
        if acl is None or service not in acl.readers:
            self.audit.append((service, "read", topic, False))
            raise AccessDenied(f"{service!r} may not read {topic!r}")
        self.audit.append((service, "read", topic, True))
        return [r for r in self._log if r.topic == topic and r.sequence >= since]

    def subscribe(
        self, service: str, token: str, topic: str, callback: Callable[[SharedRecord], None]
    ) -> None:
        self._authenticate(service, token)
        acl = self._acls.get(topic)
        if acl is None or service not in acl.readers:
            self.audit.append((service, "subscribe", topic, False))
            raise AccessDenied(f"{service!r} may not subscribe to {topic!r}")
        self._subscribers[topic].append((service, callback))
        self.audit.append((service, "subscribe", topic, True))

"""EdgeOS health watchdog: per-component liveness from heartbeats.

Every platform component that matters to scheduling -- a tier's node, an
EdgeOS service, a DDI collector -- is registered with the watchdog and
expected to heartbeat periodically.  :meth:`HealthWatchdog.sweep` (called
from the platform's housekeeping loop, or once per elastic retune) marks a
component down after ``miss_threshold`` missed intervals and back up on
the next heartbeat, keeping a flap count and a transition log.

The watchdog is the *consumer-facing* health truth: the fault injector
knows the ground truth of the plan, but the platform only learns about a
failure the way a real one would -- by silence.  :meth:`drive` wires the
two together for simulations: it spawns a process that heartbeats on
behalf of every component the injector currently reports as up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.injector import FaultInjector
from ..sim.core import Simulator

__all__ = ["ComponentHealth", "HealthWatchdog"]


@dataclass
class ComponentHealth:
    """Liveness record for one watched component."""

    name: str
    last_heartbeat_s: float
    healthy: bool = True
    flaps: int = 0                      # up->down transitions
    down_since_s: float | None = None
    total_down_s: float = 0.0
    meta: dict = field(default_factory=dict)


class HealthWatchdog:
    """Tracks component liveness and answers "is it safe to place work there".

    ``tier:<name>`` component names get first-class treatment via
    :meth:`tier_healthy`, which the ElasticManager's failover consults.
    """

    def __init__(self, heartbeat_interval_s: float = 1.0, miss_threshold: int = 3):
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss threshold must be >= 1")
        self.heartbeat_interval_s = heartbeat_interval_s
        self.miss_threshold = miss_threshold
        self._components: dict[str, ComponentHealth] = {}
        self.transitions: list[tuple[float, str, str]] = []  # (t, event, name)

    # -- registration / reporting -----------------------------------------

    def register(self, name: str, now_s: float = 0.0, **meta) -> ComponentHealth:
        """Start watching a component (idempotent)."""
        if name not in self._components:
            self._components[name] = ComponentHealth(
                name=name, last_heartbeat_s=now_s, meta=dict(meta)
            )
        return self._components[name]

    def heartbeat(self, name: str, now_s: float) -> None:
        """A component reported in; revives it if it was marked down."""
        comp = self._components.get(name)
        if comp is None:
            comp = self.register(name, now_s)
        comp.last_heartbeat_s = now_s
        if not comp.healthy:
            comp.healthy = True
            if comp.down_since_s is not None:
                comp.total_down_s += now_s - comp.down_since_s
            comp.down_since_s = None
            self.transitions.append((now_s, "up", name))

    def sweep(self, now_s: float) -> list[str]:
        """Mark silent components down; returns the newly-down names."""
        deadline = self.heartbeat_interval_s * self.miss_threshold
        newly_down = []
        for comp in self._components.values():
            if comp.healthy and now_s - comp.last_heartbeat_s > deadline:
                comp.healthy = False
                comp.flaps += 1
                comp.down_since_s = now_s
                newly_down.append(comp.name)
                self.transitions.append((now_s, "down", comp.name))
        return newly_down

    # -- queries -----------------------------------------------------------

    def healthy(self, name: str) -> bool:
        """Liveness of one component; unknown components count as healthy."""
        comp = self._components.get(name)
        return comp.healthy if comp is not None else True

    def tier_healthy(self, tier: str) -> bool:
        """Whether a placement tier is safe: its ``tier:<name>`` component
        (if watched) is alive."""
        return self.healthy(f"tier:{tier}")

    def component(self, name: str) -> ComponentHealth:
        """The full record for one component (KeyError if unwatched)."""
        return self._components[name]

    def status(self) -> dict[str, bool]:
        """Snapshot: component name -> liveness."""
        return {name: comp.healthy for name, comp in self._components.items()}

    @property
    def down_components(self) -> list[str]:
        """Names of everything currently marked down."""
        return sorted(n for n, c in self._components.items() if not c.healthy)

    # -- simulation wiring -------------------------------------------------

    def drive(
        self,
        sim: Simulator,
        faults: FaultInjector,
        components: dict[str, str],
        horizon_s: float,
    ):
        """Spawn a process heartbeating for fault-injected components.

        ``components`` maps watchdog component names to injector state keys
        (e.g. ``{"tier:edge": "proc:edge/edge-gpu"}``); while a key is up
        in the injector, its component heartbeats every interval, so the
        watchdog observes the fault plan the way a monitor would -- through
        missed heartbeats, ``miss_threshold`` intervals late.
        """
        for name in components:
            self.register(name, now_s=sim.now)

        def pulse():
            while sim.now < horizon_s:
                for name, key in components.items():
                    if not faults.is_down(key):
                        self.heartbeat(name, sim.now)
                self.sweep(sim.now)
                yield sim.timeout(self.heartbeat_interval_s)

        return sim.process(pulse(), name="health-watchdog")

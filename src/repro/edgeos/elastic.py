"""Elastic Management: pipeline selection and service hang-up/resume.

Paper SIV-C: "The Elastic Management module can choose an optimal pipeline
of a Polymorphic Service to get a smallest end-to-end latency ... or
achieve other goals, such as energy efficiency. ... some services will be
hung up, which cannot be responded to within the required time no matter
what ... Once the network quality fails to meet the response time
requirement, it can dynamically adjust the pipeline ... If the network
quality and computation resources cannot support this service, the service
will be hung up until meeting requirements again."

:class:`ElasticManager.retune` is the periodic re-evaluation: it scores
every pipeline of every managed service against the current world (whose
links the caller updates as network quality moves) and switches, hangs or
resumes accordingly.  This module is where the DEIR *Differentiation*
property lives -- each service is treated per its own QoS and deadline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..offload.placement import PlacementEvaluation, evaluate_placement
from ..topology.world import World
from .service import Pipeline, PolymorphicService, ServiceState

__all__ = ["PipelineChoice", "ElasticManager"]

GOAL_LATENCY = "latency"
GOAL_ENERGY = "energy"


@dataclass(frozen=True)
class PipelineChoice:
    """Outcome of one service's re-evaluation."""

    service: str
    pipeline: str | None  # None => hung up
    evaluation: PlacementEvaluation | None
    switched: bool
    hung: bool


class ElasticManager:
    """Manages every service on the vehicle (paper Figure 6)."""

    def __init__(self, goal: str = GOAL_LATENCY):
        if goal not in (GOAL_LATENCY, GOAL_ENERGY):
            raise ValueError(f"unknown goal {goal!r}")
        self.goal = goal
        self._services: dict[str, PolymorphicService] = {}
        self.switch_log: list[PipelineChoice] = []

    def register(self, service: PolymorphicService) -> None:
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already registered")
        self._services[service.name] = service

    def unregister(self, name: str) -> PolymorphicService:
        if name not in self._services:
            raise KeyError(f"unknown service {name!r}")
        return self._services.pop(name)

    def service(self, name: str) -> PolymorphicService:
        return self._services[name]

    @property
    def services(self) -> list[PolymorphicService]:
        return list(self._services.values())

    # -- pipeline scoring ------------------------------------------------------

    def _score(self, evaluation: PlacementEvaluation) -> tuple:
        if self.goal == GOAL_ENERGY:
            return (evaluation.vehicle_energy_j, evaluation.latency_s)
        return (evaluation.latency_s, evaluation.vehicle_energy_j)

    def evaluate_pipelines(
        self, service: PolymorphicService, world: World
    ) -> dict[str, PlacementEvaluation]:
        """Cost of every pipeline of a service under current conditions."""
        graph = service.graph_factory()
        out = {}
        for pipeline in service.pipelines:
            out[pipeline.name] = evaluate_placement(graph, pipeline.placement(), world)
        return out

    def choose(self, service: PolymorphicService, world: World) -> PipelineChoice:
        """Pick the best pipeline meeting the deadline, or hang the service."""
        evaluations = self.evaluate_pipelines(service, world)
        feasible = {
            name: ev
            for name, ev in evaluations.items()
            if ev.feasible and ev.latency_s <= service.deadline_s
        }
        previous = service.active_pipeline
        was_hung = service.state is ServiceState.HUNG

        if not feasible:
            if service.state is ServiceState.RUNNING:
                service.hang_count += 1
            service.state = ServiceState.HUNG
            service.active_pipeline = None
            choice = PipelineChoice(
                service=service.name, pipeline=None, evaluation=None,
                switched=previous is not None, hung=True,
            )
        else:
            best_name = min(feasible, key=lambda n: self._score(feasible[n]))
            service.state = ServiceState.RUNNING
            service.active_pipeline = best_name
            choice = PipelineChoice(
                service=service.name,
                pipeline=best_name,
                evaluation=feasible[best_name],
                switched=(previous != best_name) or was_hung,
                hung=False,
            )
        self.switch_log.append(choice)
        return choice

    def retune(self, world: World) -> list[PipelineChoice]:
        """Re-evaluate all managed services against the current world."""
        return [
            self.choose(service, world)
            for service in self._services.values()
            if service.state
            in (ServiceState.RUNNING, ServiceState.HUNG)
        ]

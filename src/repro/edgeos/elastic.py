"""Elastic Management: pipeline selection and service hang-up/resume.

Paper SIV-C: "The Elastic Management module can choose an optimal pipeline
of a Polymorphic Service to get a smallest end-to-end latency ... or
achieve other goals, such as energy efficiency. ... some services will be
hung up, which cannot be responded to within the required time no matter
what ... Once the network quality fails to meet the response time
requirement, it can dynamically adjust the pipeline ... If the network
quality and computation resources cannot support this service, the service
will be hung up until meeting requirements again."

:class:`ElasticManager.retune` is the periodic re-evaluation: it scores
every pipeline of every managed service against the current world (whose
links the caller updates as network quality moves) and switches, hangs or
resumes accordingly.  This module is where the DEIR *Differentiation*
property lives -- each service is treated per its own QoS and deadline.

Resilience extensions (paper SIII-A's unreliable environment):

* **hysteresis** -- ``switch_margin`` keeps the current pipeline unless a
  challenger beats it by a relative margin, so a link flapping around the
  QoS threshold does not thrash the service between pipelines;
* **degraded mode** -- ``degrade_before_hang`` falls back to the best
  *feasible* pipeline (rather than hanging up) when nothing meets the
  deadline, preferring stale-but-alive service for non-critical classes;
* **health-aware failover** -- choices can consult a
  :class:`~repro.edgeos.watchdog.HealthWatchdog`: pipelines that place
  work on an unhealthy tier are excluded until that tier recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..offload.placement import (
    CompiledPlacement,
    PlacementEvaluation,
    compile_placement,
)
from ..topology.world import World
from .service import Pipeline, PolymorphicService, ServiceState
from .watchdog import HealthWatchdog

__all__ = ["PipelineChoice", "ElasticManager"]

GOAL_LATENCY = "latency"
GOAL_ENERGY = "energy"


@dataclass(frozen=True)
class PipelineChoice:
    """Outcome of one service's re-evaluation."""

    service: str
    pipeline: str | None  # None => hung up
    evaluation: PlacementEvaluation | None
    switched: bool
    hung: bool
    degraded: bool = False


class ElasticManager:
    """Manages every service on the vehicle (paper Figure 6).

    ``switch_margin`` > 0 enables hysteresis (a challenger must improve the
    incumbent's score by that relative fraction to force a switch);
    ``degrade_before_hang`` enables the degraded-mode fallback.  Both
    default off, preserving the paper's original hang-up semantics.
    """

    def __init__(
        self,
        goal: str = GOAL_LATENCY,
        switch_margin: float = 0.0,
        degrade_before_hang: bool = False,
    ):
        if goal not in (GOAL_LATENCY, GOAL_ENERGY):
            raise ValueError(f"unknown goal {goal!r}")
        if switch_margin < 0:
            raise ValueError("switch_margin must be non-negative")
        self.goal = goal
        self.switch_margin = switch_margin
        self.degrade_before_hang = degrade_before_hang
        self._services: dict[str, PolymorphicService] = {}
        self.switch_log: list[PipelineChoice] = []
        # (service, pipeline) -> (graph_factory, world, compiled plan).
        # Retune re-scores every pipeline every tick against a structurally
        # constant graph; the compiled plan re-reads only live link state.
        self._compiled: dict[tuple[str, str], tuple] = {}

    def register(self, service: PolymorphicService) -> None:
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already registered")
        self._services[service.name] = service

    def unregister(self, name: str) -> PolymorphicService:
        if name not in self._services:
            raise KeyError(f"unknown service {name!r}")
        for key in [k for k in self._compiled if k[0] == name]:
            del self._compiled[key]
        return self._services.pop(name)

    def service(self, name: str) -> PolymorphicService:
        return self._services[name]

    @property
    def services(self) -> list[PolymorphicService]:
        return list(self._services.values())

    # -- pipeline scoring ------------------------------------------------------

    def _score(self, evaluation: PlacementEvaluation) -> tuple:
        if self.goal == GOAL_ENERGY:
            return (evaluation.vehicle_energy_j, evaluation.latency_s)
        return (evaluation.latency_s, evaluation.vehicle_energy_j)

    @staticmethod
    def _pipeline_healthy(pipeline: Pipeline, health: HealthWatchdog | None) -> bool:
        if health is None:
            return True
        return all(health.tier_healthy(tier) for tier in pipeline.assignment.values())

    def _compiled_for(
        self,
        service: PolymorphicService,
        pipeline: Pipeline,
        world: World,
        graph_cache: list,
    ) -> CompiledPlacement:
        """The (cached) compiled plan for one pipeline of a service.

        Recompiles when the service's graph factory was swapped, the world
        changed identity, or a resolved node's processor set changed.  The
        graph is built at most once per call batch via ``graph_cache`` (a
        one-slot list), since compilation is its only remaining consumer.
        """
        key = (service.name, pipeline.name)
        cached = self._compiled.get(key)
        if (
            cached is not None
            and cached[0] is service.graph_factory
            and cached[1] is world
            and cached[2].fresh
        ):
            return cached[2]
        if not graph_cache:
            graph_cache.append(service.graph_factory())
        compiled = compile_placement(graph_cache[0], pipeline.placement(), world)
        self._compiled[key] = (service.graph_factory, world, compiled)
        return compiled

    def evaluate_pipelines(
        self,
        service: PolymorphicService,
        world: World,
        health: HealthWatchdog | None = None,
    ) -> dict[str, PlacementEvaluation]:
        """Cost of every pipeline of a service under current conditions.

        Pipelines placing work on a tier the watchdog marks unhealthy are
        excluded entirely -- failover happens by scoring only survivors.
        """
        graph_cache: list = []
        out = {}
        for pipeline in service.pipelines:
            if not self._pipeline_healthy(pipeline, health):
                continue
            out[pipeline.name] = self._compiled_for(
                service, pipeline, world, graph_cache
            ).evaluate()
        return out

    def _pick(
        self,
        candidates: dict[str, PlacementEvaluation],
        previous: str | None,
    ) -> str:
        """Best candidate, with hysteresis in favour of the incumbent."""
        best_name = min(candidates, key=lambda n: self._score(candidates[n]))
        if (
            self.switch_margin > 0.0
            and previous is not None
            and previous in candidates
            and best_name != previous
        ):
            best = self._score(candidates[best_name])[0]
            incumbent = self._score(candidates[previous])[0]
            # Keep the incumbent unless the challenger clears the margin.
            if best > incumbent * (1.0 - self.switch_margin):
                return previous
        return best_name

    def choose(
        self,
        service: PolymorphicService,
        world: World,
        health: HealthWatchdog | None = None,
    ) -> PipelineChoice:
        """Pick the best pipeline meeting the deadline, or degrade/hang."""
        evaluations = self.evaluate_pipelines(service, world, health=health)
        feasible = {
            name: ev
            for name, ev in evaluations.items()
            if ev.feasible and ev.latency_s <= service.deadline_s
        }
        previous = service.active_pipeline
        was_down = service.state in (ServiceState.HUNG, ServiceState.DEGRADED)

        if feasible:
            best_name = self._pick(feasible, previous)
            service.state = ServiceState.RUNNING
            service.active_pipeline = best_name
            choice = PipelineChoice(
                service=service.name,
                pipeline=best_name,
                evaluation=feasible[best_name],
                switched=(previous != best_name) or was_down,
                hung=False,
            )
        else:
            runnable = {
                name: ev for name, ev in evaluations.items() if ev.feasible
            }
            if self.degrade_before_hang and runnable:
                # Nothing meets the deadline, but something still runs:
                # serve best-effort on the cheapest surviving pipeline
                # rather than going dark (resume upgrades it later).
                best_name = self._pick(runnable, previous)
                service.state = ServiceState.DEGRADED
                service.active_pipeline = best_name
                choice = PipelineChoice(
                    service=service.name,
                    pipeline=best_name,
                    evaluation=runnable[best_name],
                    switched=previous != best_name,
                    hung=False,
                    degraded=True,
                )
            else:
                if service.state is ServiceState.RUNNING:
                    service.hang_count += 1
                service.state = ServiceState.HUNG
                service.active_pipeline = None
                choice = PipelineChoice(
                    service=service.name, pipeline=None, evaluation=None,
                    switched=previous is not None, hung=True,
                )
        self.switch_log.append(choice)
        return choice

    def retune(
        self, world: World, health: HealthWatchdog | None = None
    ) -> list[PipelineChoice]:
        """Re-evaluate all managed services against the current world."""
        return [
            self.choose(service, world, health=health)
            for service in self._services.values()
            if service.state
            in (ServiceState.RUNNING, ServiceState.DEGRADED, ServiceState.HUNG)
        ]

"""Privacy module: pseudonym rotation and location generalization.

Paper SIV-C: "To protect the privacy of data sharing between vehicles, some
identity privacy protection schemes will be provided by the Privacy module.
For example, the vehicle can use the pseudonym, generated and periodically
updated by the Privacy module, for privacy protection in data sharing."

Paper SIII-D also flags GPS-trace analysis ("home address, medical
disease") -- the :class:`LocationFuzzer` generalizes coordinates onto a
grid before they leave the vehicle.
"""

from __future__ import annotations

import hashlib
import hmac
import math

__all__ = ["PseudonymManager", "LocationFuzzer"]


class PseudonymManager:
    """Unlinkable, periodically-rotated vehicle pseudonyms.

    A pseudonym is HMAC(secret, vehicle_id || epoch): stable within an
    epoch (so short-lived sessions keep working), unlinkable across epochs
    without the secret, and verifiable by the issuer.
    """

    def __init__(self, vehicle_id: str, secret: bytes, rotation_period_s: float = 300.0):
        if rotation_period_s <= 0:
            raise ValueError("rotation period must be positive")
        if not secret:
            raise ValueError("secret must be non-empty")
        self.vehicle_id = vehicle_id
        self._secret = secret
        self.rotation_period_s = rotation_period_s

    def epoch_of(self, time_s: float) -> int:
        return int(time_s // self.rotation_period_s)

    def pseudonym(self, time_s: float) -> str:
        """The pseudonym valid at simulation time ``time_s``."""
        message = f"{self.vehicle_id}|{self.epoch_of(time_s)}".encode()
        return hmac.new(self._secret, message, hashlib.sha256).hexdigest()[:16]

    def verify(self, pseudonym: str, time_s: float, slack_epochs: int = 1) -> bool:
        """Issuer-side check: does this pseudonym belong to this vehicle,
        within ``slack_epochs`` of clock skew?"""
        epoch = self.epoch_of(time_s)
        for candidate in range(epoch - slack_epochs, epoch + slack_epochs + 1):
            message = f"{self.vehicle_id}|{candidate}".encode()
            expected = hmac.new(self._secret, message, hashlib.sha256).hexdigest()[:16]
            if hmac.compare_digest(expected, pseudonym):
                return True
        return False


class LocationFuzzer:
    """Grid generalization of (latitude-like, longitude-like) coordinates.

    ``grid_m`` is the cell size: all positions within a cell report the
    cell centre, so an observer learns the area, not the address.
    """

    def __init__(self, grid_m: float = 500.0):
        if grid_m <= 0:
            raise ValueError("grid size must be positive")
        self.grid_m = grid_m

    def generalize(self, x_m: float, y_m: float) -> tuple[float, float]:
        """Snap a metric coordinate pair to its cell centre."""
        gx = (math.floor(x_m / self.grid_m) + 0.5) * self.grid_m
        gy = (math.floor(y_m / self.grid_m) + 0.5) * self.grid_m
        return gx, gy

    def error_bound_m(self) -> float:
        """Worst-case displacement introduced by generalization."""
        return self.grid_m * math.sqrt(2) / 2.0

"""Service migration between vehicles (paper SIII-D).

"This problem will become more serious in the context supporting
collaboration between vehicles.  For example, the service might be
migrated from a neighbor vehicle which may not be trustworthy."

The migration protocol here addresses exactly that: a container image plus
state is transferred over a V2V link, but it is only *admitted* if (a) the
image's measurement matches a trusted registry entry, and (b) the sender's
pseudonym verifies.  Admitted services land in a fresh container; rejected
migrations are quarantined and audited.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..net.channel import LinkModel
from .privacy import PseudonymManager
from .security import Container

__all__ = ["MigrationOffer", "MigrationResult", "MigrationManager"]


@dataclass(frozen=True)
class MigrationOffer:
    """What a neighbour vehicle sends: image, state, and provenance."""

    service_name: str
    image: bytes
    state: dict
    sender_pseudonym: str
    sent_at_s: float


@dataclass(frozen=True)
class MigrationResult:
    """Outcome of one admission decision."""

    accepted: bool
    reason: str
    transfer_s: float = 0.0
    container: Container | None = None


class MigrationManager:
    """Receiver-side admission control for migrated services."""

    def __init__(self, trusted_images: dict[str, str] | None = None):
        # service name -> sha256 hex of the pristine image
        self._trusted: dict[str, str] = dict(trusted_images or {})
        self._peers: dict[str, PseudonymManager] = {}
        self.quarantine: list[MigrationOffer] = []
        self.audit: list[tuple[str, bool, str]] = []

    @staticmethod
    def measure(image: bytes) -> str:
        return hashlib.sha256(image).hexdigest()

    def trust_image(self, service_name: str, image: bytes) -> None:
        """Register a pristine image measurement (e.g. from the app store)."""
        self._trusted[service_name] = self.measure(image)

    def trust_peer(self, pseudonyms: PseudonymManager) -> None:
        """Register a peer whose pseudonyms we can verify (shared secret
        provisioned through the platform's identity service)."""
        self._peers[pseudonyms.vehicle_id] = pseudonyms

    def _verify_sender(self, offer: MigrationOffer) -> bool:
        return any(
            manager.verify(offer.sender_pseudonym, offer.sent_at_s)
            for manager in self._peers.values()
        )

    def receive(
        self, offer: MigrationOffer, link: LinkModel | None = None
    ) -> MigrationResult:
        """Admit or quarantine a migration offer.

        ``link`` (V2V DSRC/Wi-Fi) is used to cost the image+state transfer.
        """
        transfer_s = 0.0
        if link is not None:
            state_bytes = float(len(repr(offer.state).encode()))
            transfer_s = link.transfer_time(len(offer.image) + state_bytes)

        if offer.service_name not in self._trusted:
            self.quarantine.append(offer)
            self.audit.append((offer.service_name, False, "unknown image"))
            return MigrationResult(False, "unknown image", transfer_s)

        if self.measure(offer.image) != self._trusted[offer.service_name]:
            self.quarantine.append(offer)
            self.audit.append((offer.service_name, False, "image tampered"))
            return MigrationResult(False, "image tampered", transfer_s)

        if not self._verify_sender(offer):
            self.quarantine.append(offer)
            self.audit.append((offer.service_name, False, "untrusted sender"))
            return MigrationResult(False, "untrusted sender", transfer_s)

        container = Container(owner=offer.service_name, image=offer.image)
        for path, data in offer.state.items():
            container.write_file(path, data)
        self.audit.append((offer.service_name, True, "admitted"))
        return MigrationResult(True, "admitted", transfer_s, container=container)

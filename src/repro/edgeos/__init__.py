"""EdgeOSv: elastic management, security, privacy, and data sharing."""

from .elastic import GOAL_ENERGY, GOAL_LATENCY, ElasticManager, PipelineChoice
from .firewall import Direction, Firewall, Interface, PacketMeta, Rule
from .migration import MigrationManager, MigrationOffer, MigrationResult
from .pipelines import downward_closed_cuts, generate_pipelines, service_from_graph
from .privacy import LocationFuzzer, PseudonymManager
from .security import AttestationError, Container, SecurityModule, TEEEnclave
from .service import Pipeline, PolymorphicService, ServiceState
from .sharing import AccessDenied, DataSharingBus, SharedRecord
from .watchdog import ComponentHealth, HealthWatchdog

__all__ = [
    "AccessDenied",
    "AttestationError",
    "ComponentHealth",
    "Container",
    "DataSharingBus",
    "downward_closed_cuts",
    "generate_pipelines",
    "service_from_graph",
    "Direction",
    "ElasticManager",
    "Firewall",
    "Interface",
    "PacketMeta",
    "Rule",
    "GOAL_ENERGY",
    "GOAL_LATENCY",
    "HealthWatchdog",
    "LocationFuzzer",
    "MigrationManager",
    "MigrationOffer",
    "MigrationResult",
    "Pipeline",
    "PipelineChoice",
    "PolymorphicService",
    "PseudonymManager",
    "SecurityModule",
    "ServiceState",
    "SharedRecord",
    "TEEEnclave",
]

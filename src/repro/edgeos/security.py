"""Security module: TEE enclaves, containers, compromise monitoring.

Paper SIV-C: "the Security module ... relies on the trusted execution
environment (TEE) technique.  The major benefits of using TEE can ensure
all services running on top be securely isolated via encryption of their
corresponding memory space.  For other non-TEE supported services, the
containerization ... is a good candidate for isolation and migration ...
Moreover, the Security module monitors services and prevents them from
compromising.  Once the service is compromised, this module will remove
the compromised one and re-install an initialized one" (Reliability).

The simulation models the *semantics* that matter to the platform:
encrypted enclave memory unreadable without the session key, attestation
over a code measurement, per-container namespaces, and the
remove-and-reinstall recovery loop.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

from .service import PolymorphicService, ServiceState

__all__ = ["AttestationError", "TEEEnclave", "Container", "SecurityModule"]


class AttestationError(RuntimeError):
    """Raised when an enclave's measurement does not match expectations."""


def _measure(code: bytes) -> str:
    return hashlib.sha256(code).hexdigest()


class TEEEnclave:
    """An encrypted execution compartment with remote attestation.

    Memory written into the enclave is stored XOR-encrypted under a
    per-enclave key; reads require the session key handed out at creation.
    ``attest`` reproduces the measured-launch check: the quote is an HMAC
    of the code measurement under the platform key.
    """

    def __init__(self, owner: str, code: bytes, platform_key: bytes):
        self.owner = owner
        self._measurement = _measure(code)
        self._platform_key = platform_key
        self._session_key = hashlib.sha256(platform_key + owner.encode()).digest()
        self._memory: dict[str, bytes] = {}

    @property
    def session_key(self) -> bytes:
        return self._session_key

    @property
    def measurement(self) -> str:
        return self._measurement

    def _crypt(self, data: bytes) -> bytes:
        key = self._session_key
        return bytes(b ^ key[i % len(key)] for i, b in enumerate(data))

    def write(self, address: str, data: bytes) -> None:
        self._memory[address] = self._crypt(data)

    def read(self, address: str, session_key: bytes) -> bytes:
        """Decrypt; a wrong key yields garbage, never plaintext."""
        stored = self._memory[address]
        if session_key == self._session_key:
            return self._crypt(stored)
        # Attackers with the wrong key see only ciphertext-derived bytes.
        return bytes(b ^ session_key[i % len(session_key)] for i, b in enumerate(stored))

    def raw_memory(self, address: str) -> bytes:
        """What a physical attacker dumping DRAM would see (ciphertext)."""
        return self._memory[address]

    def quote(self) -> str:
        """Attestation quote: HMAC(platform_key, measurement)."""
        return hmac.new(
            self._platform_key, self._measurement.encode(), hashlib.sha256
        ).hexdigest()

    def verify_quote(self, expected_code: bytes) -> None:
        expected = hmac.new(
            self._platform_key, _measure(expected_code).encode(), hashlib.sha256
        ).hexdigest()
        if not hmac.compare_digest(expected, self.quote()):
            raise AttestationError(f"enclave {self.owner!r} failed attestation")


@dataclass
class Container:
    """Lightweight namespace isolation for non-TEE services."""

    owner: str
    image: bytes  # pristine service code, used for reinstall
    filesystem: dict[str, bytes] = field(default_factory=dict)
    generation: int = 0
    compromised: bool = False

    def write_file(self, path: str, data: bytes) -> None:
        self.filesystem[path] = data

    def read_file(self, path: str) -> bytes:
        return self.filesystem[path]

    def reinstall(self) -> None:
        """Wipe state and restart from the pristine image."""
        self.filesystem.clear()
        self.compromised = False
        self.generation += 1


class SecurityModule:
    """Creates isolation compartments and runs the compromise-recovery loop."""

    def __init__(self, platform_key: bytes = b"openvdap-platform-key"):
        self._platform_key = platform_key
        self._enclaves: dict[str, TEEEnclave] = {}
        self._containers: dict[str, Container] = {}
        self._images: dict[str, bytes] = {}
        self.reinstalls: int = 0

    def deploy(self, service: PolymorphicService, code: bytes):
        """Give the service its compartment: TEE if required, else container."""
        if service.name in self._enclaves or service.name in self._containers:
            raise ValueError(f"service {service.name!r} already deployed")
        self._images[service.name] = code
        if service.requires_tee:
            enclave = TEEEnclave(service.name, code, self._platform_key)
            self._enclaves[service.name] = enclave
            return enclave
        container = Container(owner=service.name, image=code)
        self._containers[service.name] = container
        return container

    def enclave(self, name: str) -> TEEEnclave:
        return self._enclaves[name]

    def container(self, name: str) -> Container:
        return self._containers[name]

    def report_compromise(self, service: PolymorphicService) -> None:
        """Mark a service compromised (detected by the monitor)."""
        service.state = ServiceState.COMPROMISED
        container = self._containers.get(service.name)
        if container is not None:
            container.compromised = True

    def monitor(self, services: list[PolymorphicService]) -> list[str]:
        """Sweep services; remove-and-reinstall any compromised ones.

        Returns the names of services that were recovered.
        """
        recovered = []
        for service in services:
            if service.state is not ServiceState.COMPROMISED:
                continue
            container = self._containers.get(service.name)
            if container is not None:
                container.reinstall()
            else:
                # TEE service: rebuild the enclave from the pristine image.
                old = self._enclaves.pop(service.name, None)
                if old is not None:
                    self._enclaves[service.name] = TEEEnclave(
                        service.name, self._images[service.name], self._platform_key
                    )
            service.state = ServiceState.RUNNING
            service.reinstall_count += 1
            self.reinstalls += 1
            recovered.append(service.name)
        return recovered

"""Wireless-interface firewall (paper SIII-D).

"The availability of diverse on-board wireless communication interfaces
(e.g., DSRC, cellular network, Bluetooth) make the CAV be more vulnerable
to be attacked ... the firewall as a basic can be used to protect some
attacks."

A first-match rule engine over (interface, direction, peer, port/topic)
tuples with a default-deny policy for inbound traffic on every wireless
interface, stateful allow-replies, and per-rule hit counters plus an audit
trail of drops -- the instrumentation the Security module's monitor reads.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass

__all__ = ["Direction", "Interface", "Rule", "PacketMeta", "Firewall"]


class Direction:
    """Traffic direction relative to the vehicle."""

    IN = "in"
    OUT = "out"
    ALL = (IN, OUT)


class Interface:
    """The paper's on-board wireless interfaces."""

    DSRC = "dsrc"
    CELLULAR = "cellular"
    WIFI = "wifi"
    BLUETOOTH = "bluetooth"
    ALL = (DSRC, CELLULAR, WIFI, BLUETOOTH)


@dataclass(frozen=True)
class Rule:
    """One firewall rule; glob patterns match peers and services."""

    action: str  # "allow" | "deny"
    interface: str = "*"
    direction: str = "*"
    peer: str = "*"  # peer identity / pseudonym pattern
    service: str = "*"  # destination service / topic pattern

    def __post_init__(self):
        if self.action not in ("allow", "deny"):
            raise ValueError(f"action must be allow/deny, got {self.action!r}")
        if self.interface != "*" and self.interface not in Interface.ALL:
            raise ValueError(f"unknown interface {self.interface!r}")
        if self.direction != "*" and self.direction not in Direction.ALL:
            raise ValueError(f"unknown direction {self.direction!r}")

    def matches(self, packet: "PacketMeta") -> bool:
        return (
            self.interface in ("*", packet.interface)
            and self.direction in ("*", packet.direction)
            and fnmatch.fnmatch(packet.peer, self.peer)
            and fnmatch.fnmatch(packet.service, self.service)
        )


@dataclass(frozen=True)
class PacketMeta:
    """What the filter sees of one packet/connection attempt."""

    interface: str
    direction: str
    peer: str
    service: str


@dataclass
class _RuleStats:
    rule: Rule
    hits: int = 0


class Firewall:
    """First-match filter with default-deny for inbound wireless traffic.

    Outbound traffic defaults to allow (the vehicle initiates its own
    connections); every inbound flow needs an explicit allow or an
    established outbound flow to the same (interface, peer, service).
    """

    def __init__(self, rules: list[Rule] | None = None):
        self._rules = [_RuleStats(rule) for rule in (rules or [])]
        self._established: set[tuple[str, str, str]] = set()
        self.dropped: list[PacketMeta] = []

    def add_rule(self, rule: Rule, position: int | None = None) -> None:
        entry = _RuleStats(rule)
        if position is None:
            self._rules.append(entry)
        else:
            self._rules.insert(position, entry)

    @property
    def rules(self) -> list[Rule]:
        return [entry.rule for entry in self._rules]

    def hits(self, index: int) -> int:
        return self._rules[index].hits

    def permits(self, packet: PacketMeta) -> bool:
        """First-match evaluation; updates state and audit."""
        for entry in self._rules:
            if entry.rule.matches(packet):
                entry.hits += 1
                allowed = entry.rule.action == "allow"
                self._track(packet, allowed)
                return allowed
        # No rule matched: stateful default.
        key = (packet.interface, packet.peer, packet.service)
        if packet.direction == Direction.OUT:
            self._established.add(key)
            return True
        if key in self._established:
            return True  # reply to a flow we initiated
        self.dropped.append(packet)
        return False

    def _track(self, packet: PacketMeta, allowed: bool) -> None:
        key = (packet.interface, packet.peer, packet.service)
        if allowed and packet.direction == Direction.OUT:
            self._established.add(key)
        if not allowed:
            self.dropped.append(packet)

    @classmethod
    def vehicle_default(cls) -> "Firewall":
        """The shipping policy: V2V safety beacons and platform services in,
        everything else inbound denied; diagnostics port reachable only
        over Bluetooth from paired devices."""
        return cls(
            rules=[
                Rule("allow", Interface.DSRC, Direction.IN, service="safety-beacon"),
                Rule("allow", Interface.DSRC, Direction.IN, service="recognized-plates"),
                Rule("allow", Interface.CELLULAR, Direction.IN, peer="cloud.openvdap.org",
                     service="model-update"),
                Rule("allow", Interface.BLUETOOTH, Direction.IN, peer="paired:*",
                     service="obd-diagnostics"),
                Rule("deny", "*", Direction.IN, service="obd-diagnostics"),
            ]
        )

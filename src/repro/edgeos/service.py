"""Polymorphic services: one service, multiple execution pipelines.

Paper SIV-C: "each service offers multiple execution pipelines in response
to various network and computational constraints" -- e.g. the kidnapper
search (mobile A3) runs (1) fully on board, (2) fully on the edge/cloud,
or (3) split with motion detection on board and recognition remote.

A :class:`Pipeline` is a fixed tier assignment over the service's task
graph; :class:`PolymorphicService` carries the graph factory, its QoS
metadata and the pipeline list, plus the lifecycle state Elastic
Management drives it through.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from ..offload.placement import Placement
from ..offload.task import TaskGraph
from ..vcu.profiles import QoSClass

__all__ = ["Pipeline", "ServiceState", "PolymorphicService"]


@dataclass(frozen=True)
class Pipeline:
    """One execution option: a name plus a tier per task."""

    name: str
    assignment: dict[str, str]

    def placement(self) -> Placement:
        return Placement(dict(self.assignment))


class ServiceState(enum.Enum):
    """Lifecycle states Elastic Management / Security move services through."""

    RUNNING = "running"
    DEGRADED = "degraded"  # best-effort fallback pipeline, deadline not met
    HUNG = "hung"          # no pipeline meets the deadline (paper SIV-C)
    COMPROMISED = "compromised"
    REINSTALLING = "reinstalling"
    STOPPED = "stopped"


@dataclass
class PolymorphicService:
    """A managed service: graph, QoS, pipelines, and runtime state."""

    name: str
    qos: int
    deadline_s: float
    graph_factory: Callable[[], TaskGraph]
    pipelines: list[Pipeline]
    requires_tee: bool = False
    state: ServiceState = ServiceState.RUNNING
    active_pipeline: str | None = None
    hang_count: int = 0
    reinstall_count: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.qos not in QoSClass.ALL:
            raise ValueError(f"unknown QoS class {self.qos}")
        if self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if not self.pipelines:
            raise ValueError(f"service {self.name!r} needs at least one pipeline")
        names = [p.name for p in self.pipelines]
        if len(names) != len(set(names)):
            raise ValueError("pipeline names must be unique")

    def pipeline(self, name: str) -> Pipeline:
        for pipeline in self.pipelines:
            if pipeline.name == name:
                return pipeline
        raise KeyError(f"service {self.name!r} has no pipeline {name!r}")

    @property
    def is_running(self) -> bool:
        return self.state is ServiceState.RUNNING

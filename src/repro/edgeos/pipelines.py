"""Automatic pipeline generation for polymorphic services.

The paper's services each hand-list their pipelines ("all on board", "all
on the edge", "split ...").  For arbitrary third-party task graphs libvdap
shouldn't require that by hand: this module enumerates the *downward-closed
cuts* of the DAG -- every way to run a dependency-closed prefix on the
vehicle and the rest on a remote tier -- which is exactly the space of
placements where no intermediate result ever travels backwards.

Sensor-bound tasks (those with ``source_bytes``) are pinned to the
vehicle: a camera cannot be offloaded.
"""

from __future__ import annotations

import itertools

from typing import Callable

from ..offload.task import TaskGraph
from ..topology.nodes import Tier
from .service import Pipeline, PolymorphicService

__all__ = ["generate_pipelines", "downward_closed_cuts", "service_from_graph"]


def downward_closed_cuts(graph: TaskGraph) -> list[frozenset]:
    """All dependency-closed task subsets (candidates for the local side).

    A set S is downward closed when every predecessor of a member is also
    a member -- running S locally and the complement remotely never needs
    a remote->local->remote round trip.  Exponential in the worst case, so
    callers should keep graphs small (services are; the paper's largest
    pipeline has three stages).
    """
    names = graph.task_names
    if len(names) > 16:
        raise ValueError(f"graph too large to enumerate cuts: {len(names)} tasks")
    cuts = []
    for r in range(len(names) + 1):
        for combo in itertools.combinations(names, r):
            subset = frozenset(combo)
            closed = all(
                # all() is order-insensitive, so unordered iteration is safe.
                set(graph.predecessors(name)) <= subset for name in subset  # vdaplint: disable=DET003
            )
            if closed:
                cuts.append(subset)
    return cuts


def generate_pipelines(
    graph: TaskGraph,
    remote_tiers: tuple[str, ...] = (Tier.EDGE,),
    pin_sources_local: bool = True,
) -> list[Pipeline]:
    """Every downward-closed split of ``graph``, as named pipelines.

    Names are ``onboard`` (everything local), ``all-<tier>`` (everything
    remote), and ``split-<k>-<tier>`` for proper splits with k local tasks.
    Duplicate assignments (from symmetric cuts) are collapsed.
    """
    for tier in remote_tiers:
        if tier not in (Tier.EDGE, Tier.CLOUD):
            raise ValueError(f"remote tier must be edge/cloud, got {tier!r}")
    pinned = {
        task.name for task in graph.tasks if pin_sources_local and task.source_bytes > 0
    }
    pipelines: list[Pipeline] = []
    seen: set[tuple] = set()
    for local_set in downward_closed_cuts(graph):
        if not pinned <= local_set and len(local_set) < len(graph):
            # A pinned sensor task would leave the vehicle: skip, unless
            # this is the degenerate "everything remote with no pinned
            # tasks" case handled by the subset check itself.
            if pinned - local_set:
                continue
        for tier in remote_tiers:
            assignment = {
                name: (Tier.VEHICLE if name in local_set else tier)
                for name in graph.task_names
            }
            key = tuple(sorted(assignment.items()))
            if key in seen:
                continue
            seen.add(key)
            local_count = len(local_set)
            if local_count == len(graph):
                name = "onboard"
            elif local_count == 0:
                name = f"all-{tier}"
            else:
                name = f"split-{local_count}-{tier}"
            # Splits with equal local counts but different sets need
            # distinct names.
            suffix = 0
            base = name
            while any(p.name == name for p in pipelines):
                suffix += 1
                name = f"{base}.{suffix}"
            pipelines.append(Pipeline(name, assignment))
            if local_count == len(graph):
                break  # "onboard" is tier-independent; emit once
    return pipelines


def service_from_graph(
    name: str,
    qos: int,
    deadline_s: float,
    graph_factory: Callable[[], TaskGraph],
    remote_tiers: tuple[str, ...] = (Tier.EDGE,),
    requires_tee: bool = False,
) -> PolymorphicService:
    """A managed polymorphic service with auto-generated pipelines.

    This is how a third-party developer registers an app through libvdap
    without hand-writing pipelines: give the platform your task graph and
    QoS; Elastic Management explores every dependency-respecting split.
    """
    pipelines = generate_pipelines(graph_factory(), remote_tiers=remote_tiers)
    return PolymorphicService(
        name=name,
        qos=qos,
        deadline_s=deadline_s,
        graph_factory=graph_factory,
        pipelines=pipelines,
        requires_tee=requires_tee,
    )

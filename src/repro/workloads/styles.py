"""Fleet workload styles: per-vehicle service-load shapes.

A :class:`WorkloadStyle` answers one question deterministically: how
many managed service instances does vehicle ``i`` run?  ``uniform`` is
the PR-6 fleet (one ADAS service everywhere); ``skewed`` gives every
``heavy_stride``-th vehicle a stack of services, which is what makes
round-robin sharding pathological (the heavies land on one partition)
and cost-balanced plans worth emitting.

``service_cost_weight`` is a *planner cost annotation*: the relative
per-tick cost of one managed service instance, consumed by
:mod:`repro.analysis.cost` when rolling vehicle costs up per style.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["STYLES", "WorkloadStyle"]


@dataclass(frozen=True)
class WorkloadStyle:
    """One named per-vehicle load shape."""

    name: str
    base_services: int = 1
    heavy_services: int = 1
    #: Every Nth vehicle (0, N, 2N, ...) is heavy; 0 disables heavies.
    heavy_stride: int = 0
    #: Planner cost annotation: relative cost of one service instance.
    service_cost_weight: float = 1.0
    #: Explicit per-vehicle service counts (scenario rosters).  Non-empty
    #: tables override the stride rule; indices wrap, so a table built
    #: for N vehicles stays total for any probe index.
    service_table: tuple[int, ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self, "service_table", tuple(int(n) for n in self.service_table)
        )
        if any(n < 0 for n in self.service_table):
            raise ValueError("service_table entries must be non-negative")

    def is_heavy(self, vehicle: int) -> bool:
        return self.heavy_stride > 0 and vehicle % self.heavy_stride == 0

    def service_count(self, vehicle: int) -> int:
        """Managed service instances vehicle ``vehicle`` runs."""
        if self.service_table:
            return self.service_table[vehicle % len(self.service_table)]
        return self.heavy_services if self.is_heavy(vehicle) else self.base_services


#: The shipped styles.  ``skewed`` with stride 4 is deliberately adverse
#: to round-robin at 8 vehicles / 4 partitions: vehicles 0 and 4 -- the
#: two heavies -- both land on partition 0 under ``i % partitions``.
STYLES: dict[str, WorkloadStyle] = {
    "uniform": WorkloadStyle("uniform"),
    "skewed": WorkloadStyle("skewed", base_services=1, heavy_services=7,
                            heavy_stride=4),
}

"""Workload generators: driver-behaviour data and canonical service graphs."""

from .driving import (
    FEATURES,
    MANEUVERS,
    DriverProfile,
    driver_dataset,
    fleet_dataset,
    maneuver_window,
    random_profile,
)
from .services import (
    STANDARD_MIX,
    adas_frame_graph,
    amber_search_graph,
    diagnostics_graph,
    infotainment_chunk_graph,
)
from .styles import STYLES, WorkloadStyle

__all__ = [
    "DriverProfile",
    "FEATURES",
    "MANEUVERS",
    "STANDARD_MIX",
    "STYLES",
    "WorkloadStyle",
    "adas_frame_graph",
    "amber_search_graph",
    "diagnostics_graph",
    "driver_dataset",
    "fleet_dataset",
    "infotainment_chunk_graph",
    "maneuver_window",
    "random_profile",
]

"""Canonical service workloads: the task graphs of the paper's four service
classes (SII), with costs taken from the vision/nn substrates.

These are the graphs the offloading ablations schedule: per-frame ADAS
perception, the A3 plate-search split pipeline, an infotainment decode
chunk, and a diagnostics batch -- the mix the paper's introduction
motivates.
"""

from __future__ import annotations

from ..hw.processor import WorkloadClass
from ..offload.task import Task, TaskGraph

__all__ = [
    "adas_frame_graph",
    "amber_search_graph",
    "infotainment_chunk_graph",
    "diagnostics_graph",
    "STANDARD_MIX",
]

#: A 640x480x3 camera frame, lightly compressed.
FRAME_BYTES = 400_000


def adas_frame_graph(
    lane_gop: float = 0.022, detect_gop: float = 30.5
) -> TaskGraph:
    """Per-frame ADAS perception: lane detection + CNN vehicle detection.

    Default costs are the measured op counts of the vision substrate
    (Table I): ~22 Mops of classic CV and ~30 Gops of CNN scan.
    """
    graph = TaskGraph("adas-frame")
    graph.add_task(
        Task("capture", 0.001, WorkloadClass.IO, output_bytes=FRAME_BYTES,
             source_bytes=FRAME_BYTES)
    )
    graph.add_task(Task("lane-detect", lane_gop, WorkloadClass.VISION, output_bytes=500))
    graph.add_task(Task("vehicle-detect", detect_gop, WorkloadClass.DNN, output_bytes=2_000))
    graph.add_task(Task("fuse-alert", 0.002, WorkloadClass.CONTROL, output_bytes=200))
    graph.add_edge("capture", "lane-detect")
    graph.add_edge("capture", "vehicle-detect")
    graph.add_edge("lane-detect", "fuse-alert")
    graph.add_edge("vehicle-detect", "fuse-alert")
    return graph


def amber_search_graph() -> TaskGraph:
    """The A3 kidnapper search: motion -> plate detect -> plate recognize
    (the three-way split of paper SIV-C and [17])."""
    return TaskGraph.chain(
        "amber-search",
        [
            Task("motion-detect", 0.05, WorkloadClass.VISION,
                 output_bytes=150_000, source_bytes=FRAME_BYTES),
            Task("plate-detect", 6.0, WorkloadClass.DNN, output_bytes=30_000),
            Task("plate-recognize", 3.0, WorkloadClass.DNN, output_bytes=100),
        ],
    )


def infotainment_chunk_graph(chunk_bytes: float = 2_500_000) -> TaskGraph:
    """One 4-second media chunk: download implied by source, then decode."""
    return TaskGraph.chain(
        "infotainment-chunk",
        [
            Task("decode", 1.2, WorkloadClass.SIGNAL,
                 output_bytes=50_000, source_bytes=chunk_bytes),
            Task("render", 0.3, WorkloadClass.SIGNAL, output_bytes=0.0),
        ],
    )


def diagnostics_graph() -> TaskGraph:
    """Quiet background analysis of collected OBD data (SII-A)."""
    return TaskGraph.chain(
        "diagnostics",
        [
            Task("aggregate", 0.01, WorkloadClass.IO, output_bytes=50_000,
                 source_bytes=500_000),
            Task("fault-predict", 0.8, WorkloadClass.DNN, output_bytes=1_000),
        ],
    )


#: The standard mixed workload of the ablations: (graph factory, deadline s).
STANDARD_MIX = (
    (adas_frame_graph, 0.25),
    (amber_search_graph, 2.0),
    (infotainment_chunk_graph, 4.0),
    (diagnostics_graph, 30.0),
)

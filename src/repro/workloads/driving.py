"""Synthetic driver-behaviour data: the stand-in for the paper's field data.

pBEAM (paper SIV-E) needs labelled driving data: a Common Driving Behavior
Model is trained "based on a large training dataset which includes many
drivers' driving data.  The input data includes the location, speed,
acceleration, and so on."  Real field data is proprietary, so this module
generates it parametrically with ground truth:

* A :class:`DriverProfile` fixes a driver's idiosyncrasy (aggressiveness,
  smoothness, speed preference).
* :func:`maneuver_window` synthesizes one feature window (speed/accel/jerk
  statistics) for a labelled maneuver, shifted by the driver's profile.
* :func:`driver_dataset` builds an (X, y) classification set for one
  driver; pooling many drivers gives the cBEAM training set.

Because profiles shift the feature distributions, a common model trained
on the pool genuinely underfits an idiosyncratic driver -- which is the
property the pBEAM transfer-learning pipeline exists to fix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MANEUVERS",
    "FEATURES",
    "DriverProfile",
    "maneuver_window",
    "driver_dataset",
    "fleet_dataset",
    "random_profile",
]

#: Classification targets: what the driver is doing in a window.
MANEUVERS = ("cruise", "accelerate", "brake", "turn")

#: Feature vector layout of one 5-second window.
FEATURES = (
    "mean_speed_mps",
    "std_speed_mps",
    "mean_accel_mps2",
    "max_abs_accel_mps2",
    "mean_abs_jerk_mps3",
    "steering_rate_dps",
)

#: Per-maneuver base feature means for a 'neutral' driver:
#: (mean_speed, std_speed, mean_accel, max|accel|, mean|jerk|, steering).
_BASE_MEANS = {
    "cruise": (22.0, 0.5, 0.0, 0.4, 0.2, 1.0),
    "accelerate": (15.0, 2.5, 1.8, 2.5, 1.0, 1.5),
    "brake": (14.0, 3.0, -2.2, 3.0, 1.4, 1.5),
    "turn": (9.0, 1.2, -0.3, 1.2, 0.8, 14.0),
}
_BASE_STDS = (2.0, 0.5, 0.55, 0.7, 0.4, 2.0)


@dataclass(frozen=True)
class DriverProfile:
    """One driver's idiosyncrasy.

    * ``aggressiveness`` scales acceleration/jerk magnitudes (1.0 neutral;
      insurance-grade 'aggressive' drivers land around 1.6+).
    * ``speed_preference_mps`` shifts cruising speed.
    * ``smoothness`` scales the in-class variance (low = very consistent).
    """

    driver_id: str
    aggressiveness: float = 1.0
    speed_preference_mps: float = 0.0
    smoothness: float = 1.0

    def __post_init__(self):
        if self.aggressiveness <= 0 or self.smoothness <= 0:
            raise ValueError("profile scales must be positive")


def maneuver_window(
    maneuver: str, profile: DriverProfile, rng: np.random.Generator
) -> np.ndarray:
    """One feature window for (maneuver, driver)."""
    if maneuver not in MANEUVERS:
        raise ValueError(f"unknown maneuver {maneuver!r}")
    means = np.array(_BASE_MEANS[maneuver], dtype=float)
    means[0] += profile.speed_preference_mps
    # Aggressiveness both inflates the dynamic features and *shifts* them:
    # an aggressive driver's cruise involves throttle jabs that look like a
    # mild acceleration to a fleet-trained model -- which is exactly why a
    # common model underfits idiosyncratic drivers and pBEAM exists.
    drift = profile.aggressiveness - 1.0
    means[2] = means[2] * profile.aggressiveness + 1.3 * drift
    means[3] = means[3] * profile.aggressiveness + 2.0 * abs(drift)
    means[4] = means[4] * profile.aggressiveness + 1.4 * abs(drift)
    means[5] *= 0.5 + 0.5 * profile.aggressiveness
    stds = np.array(_BASE_STDS) * profile.smoothness
    return rng.normal(means, stds)


def driver_dataset(
    profile: DriverProfile,
    windows: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """(X, y) of ``windows`` labelled maneuver windows for one driver."""
    if windows < 1:
        raise ValueError("need at least one window")
    labels = rng.integers(0, len(MANEUVERS), size=windows)
    x = np.stack(
        [maneuver_window(MANEUVERS[label], profile, rng) for label in labels]
    )
    return x, labels


def random_profile(driver_id: str, rng: np.random.Generator) -> DriverProfile:
    """A fleet driver with mild idiosyncrasy (cBEAM population)."""
    return DriverProfile(
        driver_id=driver_id,
        aggressiveness=float(rng.uniform(0.8, 1.3)),
        speed_preference_mps=float(rng.uniform(-2.0, 2.0)),
        smoothness=float(rng.uniform(0.8, 1.2)),
    )


def fleet_dataset(
    driver_count: int,
    windows_per_driver: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Pooled training data over many drivers (the cloud's cBEAM corpus)."""
    xs, ys = [], []
    for i in range(driver_count):
        profile = random_profile(f"fleet-{i}", rng)
        x, y = driver_dataset(profile, windows_per_driver, rng)
        xs.append(x)
        ys.append(y)
    return np.vstack(xs), np.concatenate(ys)

"""Shared-resource primitives for the simulation kernel.

Three classic abstractions:

* :class:`Resource` -- a server pool with finite capacity and a FIFO (or
  priority) request queue; models processors, radio channels, DB handles.
* :class:`Container` -- a continuous level (energy in a battery, bytes of
  buffer) with put/get semantics.
* :class:`Store` -- a queue of discrete items (packets, tasks) with
  blocking get.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any

from .core import Event, SimulationError, Simulator

__all__ = ["Resource", "Container", "Store", "PriorityStore"]


class _Request(Event):
    """A pending claim on a :class:`Resource`; use as a context token."""

    def __init__(self, resource: "Resource", priority: int):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """Finite-capacity server pool with an optional priority queue.

    Requests are granted in (priority, arrival) order; lower priority value
    is served first.  ``release`` must be passed the granted request token.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users: list[_Request] = []
        self._waiting: list[tuple[int, int, _Request]] = []
        self._counter = itertools.count()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, priority: int = 0) -> _Request:
        req = _Request(self, priority)
        if len(self.users) < self.capacity and not self._waiting:
            self.users.append(req)
            req.succeed(req)
        else:
            heapq.heappush(self._waiting, (priority, next(self._counter), req))
        return req

    def release(self, request: _Request) -> None:
        if request in self.users:
            self.users.remove(request)
        else:
            # Cancelling a queued request is allowed (e.g. on interrupt).
            self._waiting = [
                entry for entry in self._waiting if entry[2] is not request
            ]
            heapq.heapify(self._waiting)
        self._grant()

    def _grant(self) -> None:
        while self._waiting and len(self.users) < self.capacity:
            _prio, _seq, req = heapq.heappop(self._waiting)
            self.users.append(req)
            req.succeed(req)


class Container:
    """A continuous quantity with bounded capacity (fuel, energy, bytes)."""

    def __init__(self, sim: Simulator, capacity: float = float("inf"), init: float = 0.0):
        if init < 0 or init > capacity:
            raise SimulationError("initial level outside [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = init
        self._getters: list[tuple[int, float, Event]] = []
        self._putters: list[tuple[int, float, Event]] = []
        self._counter = itertools.count()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        event = Event(self.sim)
        self._putters.append((next(self._counter), amount, event))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        event = Event(self.sim)
        self._getters.append((next(self._counter), amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                seq, amount, event = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.pop(0)
                    event.succeed(amount)
                    progressed = True
            if self._getters:
                seq, amount, event = self._getters[0]
                if self._level >= amount:
                    self._level -= amount
                    self._getters.pop(0)
                    event.succeed(amount)
                    progressed = True


class Store:
    """FIFO store of discrete items with blocking get and bounded capacity."""

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        self.sim = sim
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Any, Event]] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        self._putters.append((item, event))
        self._settle()
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        self._getters.append(event)
        self._settle()
        return event

    def _pop_item(self) -> Any:
        return self.items.pop(0)

    def _accepts(self) -> bool:
        return len(self.items) < self.capacity

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and self._accepts():
                item, event = self._putters.pop(0)
                self._insert(item)
                event.succeed(item)
                progressed = True
            if self._getters and self.items:
                event = self._getters.pop(0)
                event.succeed(self._pop_item())
                progressed = True

    def _insert(self, item: Any) -> None:
        self.items.append(item)


class PriorityStore(Store):
    """A store whose get() returns the smallest item (heap order).

    Items must be orderable; wrap payloads in ``(priority, seq, payload)``
    tuples when the payloads themselves do not define ordering.
    """

    def _insert(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _pop_item(self) -> Any:
        return heapq.heappop(self.items)

"""Deterministic per-component random streams.

Every stochastic component draws from its own named stream so that adding a
new component (or reordering draws inside one) never perturbs the others.
Streams are derived from a master seed via ``numpy.random.SeedSequence``
spawning keyed by the stream name, which is stable across runs and Python
processes.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of named, reproducible ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identical stream.
        """
        if name not in self._streams:
            # Derive a child seed from the master seed and a stable hash of
            # the name (zlib.crc32 is deterministic across processes, unlike
            # the builtin hash()).
            child = np.random.SeedSequence([self.seed, zlib.crc32(name.encode())])
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def fork(self, salt: int) -> "RngRegistry":
        """A new registry whose streams are independent of this one."""
        return RngRegistry(seed=self.seed * 1_000_003 + salt)

"""Discrete-event simulation kernel: event loop, processes, resources, RNG."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    KernelCheckpoint,
    Process,
    Race,
    SimulationError,
    Simulator,
    Timeout,
)
from .queues import CalendarQueue, EventQueue, HeapQueue, make_queue
from .random import RngRegistry
from .resources import Container, PriorityStore, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Container",
    "Event",
    "EventQueue",
    "HeapQueue",
    "Interrupt",
    "KernelCheckpoint",
    "PriorityStore",
    "Process",
    "Race",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "make_queue",
]

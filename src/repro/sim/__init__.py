"""Discrete-event simulation kernel: event loop, processes, resources, RNG."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    KernelCheckpoint,
    Process,
    Race,
    SimulationError,
    Simulator,
    Timeout,
)
from .random import RngRegistry
from .resources import Container, PriorityStore, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Interrupt",
    "KernelCheckpoint",
    "PriorityStore",
    "Process",
    "Race",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]

"""Pluggable event-queue backends for the simulation kernel.

The kernel orders its future events by ``(when, priority, seq)``: absolute
simulation time first, then an explicit scheduling priority, then the
strictly increasing sequence number the simulator stamps at scheduling
time.  The ``seq`` component is the FIFO tiebreak that makes event order
-- and therefore every trace hash the platform commits to -- a pure
function of the schedule: two events scheduled for the same instant fire
in the order they were scheduled, on every backend.

Backends implement the small :class:`EventQueue` protocol
(``push`` / ``pop`` / ``peek`` / ``remove`` / ``len``) and are selected
per simulator via ``Simulator(queue=...)``:

* :class:`HeapQueue` -- the binary-heap reference (the seed kernel's
  behaviour, ``heapq`` underneath).  O(log n) push/pop with tiny C
  constants; the golden baseline every other backend must match
  pop-for-pop.
* :class:`CalendarQueue` -- dynamically resizing time buckets.  Events
  hash into a bucket by ``when // width``; within a bucket they are kept
  sorted by the full ``(when, priority, seq)`` key, and buckets drain in
  time order.  Push and pop are O(1) amortized when the bucket width
  tracks the mean inter-event gap, which the queue maintains by resizing
  (see :meth:`CalendarQueue._resize`) whenever occupancy drifts.

Both backends yield *identical* pop sequences for identical push
sequences (property-tested in ``tests/property/test_queue_equivalence``),
so swapping backends never changes simulation results -- only wall-clock
speed.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Iterator

__all__ = ["EventQueue", "HeapQueue", "CalendarQueue", "make_queue"]

#: An entry is ``(when, priority, seq, event)``; ``seq`` is unique per
#: simulator, so tuple comparison never reaches the (uncomparable) event.
Entry = tuple


class EventQueue:
    """Ordering contract for kernel event queues.

    Implementations store ``(when, priority, seq, event)`` entries and
    release them in ascending ``(when, priority, seq)`` order.  ``seq``
    values are unique and strictly increasing per simulator, which gives
    same-time, same-priority events FIFO semantics -- the determinism
    contract's load-bearing tiebreak.
    """

    def push(self, when: float, priority: int, seq: int, event: Any) -> None:
        """Insert one entry."""
        raise NotImplementedError

    def pop(self) -> Entry:
        """Remove and return the smallest entry (IndexError when empty)."""
        raise NotImplementedError

    def peek(self) -> float:
        """Time of the next entry, or ``+inf`` when empty."""
        raise NotImplementedError

    def remove(self, when: float, priority: int, seq: int) -> bool:
        """Remove the entry with this exact key; True if it was present.

        Cancellation hook (timer wheels, retracted timeouts): the key is
        the full ordering triple, so at most one entry can match.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[Entry]:
        """Entries in pop order (non-destructive; for debugging/tests)."""
        raise NotImplementedError


class HeapQueue(EventQueue):
    """The binary-heap reference backend (``heapq`` underneath)."""

    def __init__(self):
        self._items: list[Entry] = []

    def push(self, when: float, priority: int, seq: int, event: Any) -> None:
        heappush(self._items, (when, priority, seq, event))

    def pop(self) -> Entry:
        return heappop(self._items)

    def peek(self) -> float:
        return self._items[0][0] if self._items else float("inf")

    def remove(self, when: float, priority: int, seq: int) -> bool:
        key = (when, priority, seq)
        for i, entry in enumerate(self._items):
            if entry[:3] == key:
                last = self._items.pop()
                if i < len(self._items):
                    self._items[i] = last
                    heapq.heapify(self._items)
                return True
        return False

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Entry]:
        return iter(sorted(self._items, key=lambda e: e[:3]))


class CalendarQueue(EventQueue):
    """Dynamically resizing bucket queue keyed on simulation time.

    Design (a hashed-calendar variant): entries land in the bucket
    numbered ``floor(when / width)``, stored in a dict so the calendar
    is sparse -- idle stretches of simulated time cost nothing.  Bucket
    numbers are tracked in a small auxiliary heap, so ``pop`` costs
    O(log active-buckets) at bucket boundaries and O(1) within a bucket.
    Within a bucket, entries stay sorted by the full
    ``(when, priority, seq)`` key (binary-insertion on push), preserving
    the FIFO ``seq`` tiebreak byte-for-byte with :class:`HeapQueue`.

    Resize policy: the queue targets ``TARGET_OCCUPANCY`` entries per
    active bucket.  When mean occupancy leaves
    ``[TARGET/4, TARGET*4]`` at a resize checkpoint (every
    ``RESIZE_CHECK`` pushes), the width is re-derived from the current
    time span of queued events and the calendar is rebuilt -- O(n), but
    amortized over at least ``RESIZE_CHECK`` operations.
    """

    #: Desired mean entries per active bucket after a resize.
    TARGET_OCCUPANCY = 2.0
    #: Pushes between occupancy checks (amortizes rebuild cost).
    RESIZE_CHECK = 256

    def __init__(self, width: float = 1.0):
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        self._width = float(width)
        self._buckets: dict[int, list[Entry]] = {}
        self._bucket_heap: list[int] = []  # may hold stale (emptied) numbers
        self._size = 0
        self._pushes_until_check = self.RESIZE_CHECK

    # -- protocol ----------------------------------------------------------

    def push(self, when: float, priority: int, seq: int, event: Any) -> None:
        entry = (when, priority, seq, event)
        number = int(when / self._width)
        bucket = self._buckets.get(number)
        if bucket is None:
            self._buckets[number] = [entry]
            heappush(self._bucket_heap, number)
        elif entry[:3] >= bucket[-1][:3]:
            # Kernel pushes are mostly time-ordered: appending beats bisect.
            bucket.append(entry)
        else:
            self._insort(bucket, entry)
        self._size += 1
        self._pushes_until_check -= 1
        if self._pushes_until_check <= 0:
            self._maybe_resize()

    def pop(self) -> Entry:
        bucket = self._current_bucket()
        if bucket is None:
            raise IndexError("pop from an empty CalendarQueue")
        entry = bucket.pop(0)
        if not bucket:
            del self._buckets[self._bucket_heap[0]]
            heappop(self._bucket_heap)
        self._size -= 1
        return entry

    def peek(self) -> float:
        bucket = self._current_bucket()
        return bucket[0][0] if bucket is not None else float("inf")

    def remove(self, when: float, priority: int, seq: int) -> bool:
        number = int(when / self._width)
        bucket = self._buckets.get(number)
        if not bucket:
            return False
        key = (when, priority, seq)
        lo, hi = 0, len(bucket)
        while lo < hi:
            mid = (lo + hi) // 2
            if bucket[mid][:3] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(bucket) and bucket[lo][:3] == key:
            bucket.pop(lo)
            self._size -= 1
            if not bucket:
                # The bucket heap is cleaned lazily by _current_bucket.
                del self._buckets[number]
            return True
        return False

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Entry]:
        entries: list[Entry] = []
        for bucket in self._buckets.values():
            entries.extend(bucket)
        entries.sort(key=lambda e: e[:3])
        return iter(entries)

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _insort(bucket: list[Entry], entry: Entry) -> None:
        key = entry[:3]
        lo, hi = 0, len(bucket)
        while lo < hi:
            mid = (lo + hi) // 2
            if bucket[mid][:3] < key:
                lo = mid + 1
            else:
                hi = mid
        bucket.insert(lo, entry)

    def _current_bucket(self) -> list[Entry] | None:
        """The non-empty bucket with the smallest number, or None.

        Pops stale heap entries (buckets emptied by :meth:`remove`) on
        the way -- lazy deletion keeps ``remove`` O(log bucket).
        """
        heap = self._bucket_heap
        buckets = self._buckets
        while heap:
            bucket = buckets.get(heap[0])
            if bucket:
                return bucket
            heappop(heap)
        return None

    def _maybe_resize(self) -> None:
        self._pushes_until_check = self.RESIZE_CHECK
        active = len(self._buckets)
        if active == 0:
            return
        occupancy = self._size / active
        target = self.TARGET_OCCUPANCY
        if target / 4.0 <= occupancy <= target * 4.0:
            return
        self._resize()

    def _resize(self) -> None:
        """Re-derive the bucket width from the queued time span; rebuild."""
        entries: list[Entry] = []
        for bucket in self._buckets.values():
            entries.extend(bucket)
        if len(entries) < 2:
            return
        lo = min(e[0] for e in entries)
        hi = max(e[0] for e in entries)
        span = hi - lo
        if span <= 0.0:
            # Everything at one instant: widen so it shares one bucket.
            width = max(self._width * 2.0, 1.0)
        else:
            width = span / max(1.0, len(entries) / self.TARGET_OCCUPANCY)
        self._width = width
        buckets: dict[int, list[Entry]] = {}
        for entry in entries:
            buckets.setdefault(int(entry[0] / width), []).append(entry)
        for bucket in buckets.values():
            bucket.sort(key=lambda e: e[:3])
        self._buckets = buckets
        self._bucket_heap = list(buckets)
        heapq.heapify(self._bucket_heap)


#: Names accepted by ``Simulator(queue=...)`` and ``FleetConfig.scheduler``.
QUEUE_BACKENDS = {
    "heap": HeapQueue,
    "calendar": CalendarQueue,
}


def make_queue(queue: "EventQueue | str | None") -> EventQueue:
    """Resolve a queue selection to a fresh backend instance.

    ``None`` means the reference :class:`HeapQueue`; a string picks a
    registered backend by name; an :class:`EventQueue` instance is used
    as-is (it must be empty and unshared).
    """
    if queue is None:
        return HeapQueue()
    if isinstance(queue, str):
        try:
            backend = QUEUE_BACKENDS[queue]
        except KeyError:
            raise ValueError(
                f"unknown queue backend {queue!r} "
                f"(have: {', '.join(sorted(QUEUE_BACKENDS))})"
            ) from None
        return backend()
    if isinstance(queue, EventQueue):
        if len(queue) != 0:
            raise ValueError("queue backend must start empty")
        return queue
    raise TypeError(
        f"queue must be an EventQueue, a backend name, or None; "
        f"got {type(queue).__name__}"
    )

"""Deterministic discrete-event simulation kernel.

This is the substrate every other subsystem runs on.  It provides a
SimPy-flavoured programming model -- generator-based processes that yield
events -- implemented from scratch so the whole platform is dependency-free
and fully deterministic: events that share a timestamp fire in the order
they were scheduled.

Typical usage::

    sim = Simulator()

    def driver(sim):
        yield sim.timeout(1.0)
        result = yield sim.process(worker(sim))
        return result

    proc = sim.process(driver(sim))
    sim.run()
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable, NamedTuple, Optional

from ..obs.recorder import NULL_RECORDER, Recorder
from .queues import EventQueue, make_queue

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Race",
    "Interrupt",
    "KernelCheckpoint",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for illegal kernel operations (e.g. running time backwards)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *pending* until :meth:`succeed` or :meth:`fail` is called,
    after which its callbacks are scheduled on the event loop.  Events carry
    a ``value`` (the result handed to waiters) and may hold an exception if
    they failed.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False

    @property
    def triggered(self) -> bool:
        """True once a value/exception is set and the firing is scheduled."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event loop has fired this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before it triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._schedule_event(self)
        return self

    def _resolve(self) -> None:
        """Run callbacks; called by the event loop when this event fires."""
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or []:
            callback(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, sim: "Simulator", delay_s: float, value: Any = None):
        if delay_s < 0:
            raise SimulationError(f"negative timeout delay: {delay_s}")
        super().__init__(sim)
        self.delay_s = delay_s
        self._value = value
        self._triggered = True
        sim._schedule_event(self, delay=delay_s)


class Process(Event):
    """A running generator; also an event that fires when it finishes.

    The process's return value (via ``return`` in the generator) becomes the
    event value, so ``result = yield sim.process(...)`` works.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._spawned_at = sim.now
        # Bootstrap: step the generator at the current time.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._step)
        bootstrap.succeed()

    @property
    def short_name(self) -> str:
        """The name with per-invocation suffixes stripped (label-safe)."""
        return self.name.split("@", 1)[0]

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        wake = Event(self.sim)
        wake.callbacks.append(lambda _evt: self._step_throw(Interrupt(cause)))
        wake.succeed()

    def try_interrupt(self, cause: Any = None) -> bool:
        """Interrupt the process if it is still alive; no-op otherwise.

        Supervisor and watchdog paths race their deadline against the work
        they guard, and both can fire in the same event round -- a process
        that finished just before its supervisor's timeout is not an error.
        Returns True if the interrupt was delivered, False if the process
        had already finished.
        """
        if self.triggered:
            return False
        self.interrupt(cause)
        return True

    # -- internal stepping ------------------------------------------------

    def _detach(self) -> None:
        target = self._waiting_on
        if (
            target is not None
            and target.callbacks is not None
            and self._step in target.callbacks
        ):
            target.callbacks.remove(self._step)
        self._waiting_on = None

    def _record_completion(self, ok: bool) -> None:
        """Span the process lifetime into the recorder (no-op when null)."""
        sim = self.sim
        obs = sim.obs
        if obs.enabled:
            obs.async_span(
                self.name, self._spawned_at, sim.now,
                track="sim.process", ok=ok,
            )
            name = self.short_name
            pending = sim._pending_completions
            pending[name] = pending.get(name, 0) + 1

    def _step_throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._detach()
        try:
            yielded = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            self._record_completion(ok=True)
            return
        except BaseException as err:  # noqa: BLE001 - propagate via event
            self.fail(err)
            self._record_completion(ok=False)
            return
        self._wait_on(yielded)

    def _step(self, trigger: Optional[Event] = None) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        sim = self.sim
        if sim.obs.enabled:
            name = self.short_name
            pending = sim._pending_steps
            pending[name] = pending.get(name, 0) + 1
        try:
            if trigger is not None and trigger._exception is not None:
                yielded = self.generator.throw(trigger._exception)
            else:
                send_value = None if trigger is None else trigger._value
                yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            self._record_completion(ok=True)
            return
        except BaseException as err:  # noqa: BLE001 - propagate via event
            self.fail(err)
            self._record_completion(ok=False)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if not isinstance(yielded, Event):
            self._step_throw(
                SimulationError(f"process {self.name} yielded non-event: {yielded!r}")
            )
            return
        if yielded.processed:
            # Already fired: resume on the next loop iteration at current time.
            relay = Event(self.sim)
            relay._triggered = True
            relay._value = yielded._value
            relay._exception = yielded._exception
            relay.callbacks.append(self._step)
            self.sim._schedule_event(relay)
        else:
            self._waiting_on = yielded
            yielded.callbacks.append(self._step)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)
        if not self.triggered and self._check():
            self.succeed(self._results())

    def _results(self) -> dict:
        return {
            i: evt._value
            for i, evt in enumerate(self.events)
            if evt.processed and evt._exception is None
        }

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        if self._check():
            self.succeed(self._results())

    def _check(self) -> bool:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any constituent event has fired."""

    def _check(self) -> bool:
        return any(evt.processed and evt.ok for evt in self.events)


class AllOf(_Condition):
    """Fires when all constituent events have fired."""

    def _check(self) -> bool:
        return all(evt.processed and evt.ok for evt in self.events)


class Race(Event):
    """First-event-wins composition: fires with ``(index, value)``.

    Unlike :class:`AnyOf`, a race identifies *which* constituent fired
    first, which is what retry loops need to distinguish "work finished"
    from "deadline elapsed" or "component failed".  If the winning event
    failed, the race fails with the same exception.  Later events are left
    untouched (a Timeout that loses simply fires into the void).
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise SimulationError("race() needs at least one event")
        for index, event in enumerate(self.events):
            if self.triggered:
                break
            if event.processed:
                self._settle(index, event)
            else:
                event.callbacks.append(
                    lambda evt, i=index: self._settle(i, evt)
                )

    def _settle(self, index: int, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed((index, event._value))


class KernelCheckpoint(NamedTuple):
    """Barrier-aligned kernel state digest: where a run stands right now.

    Cheap enough to take at every time-sync barrier; the fleet substrate
    ships one per round so a coordinator can sanity-check progress
    (monotonic time, monotonic event count) without seeing the queue.
    """

    time: float
    events_fired: int
    queue_depth: int
    next_event_s: float


class Simulator:
    """The event loop: a priority queue of (time, priority, seq, event).

    ``obs`` installs an instrumentation recorder (see :mod:`repro.obs`):
    the kernel then counts events fired and per-process steps, samples
    queue depth, and spans every process lifetime onto the trace.  The
    default is the shared no-op recorder, which costs one predicate per
    event.  Subsystems holding a simulator reference record through
    ``sim.obs``, so installing one collector instruments all of them.

    Trace taps (:meth:`add_trace_tap`) are the first-class export hook for
    event-trace hashing: each tap is called as ``tap(event, when)`` for
    every event the loop fires, in firing order.  Zero-cost when no tap is
    installed (one truthiness check per event).

    ``queue`` selects the event-queue backend (see :mod:`repro.sim.queues`):
    ``None`` or ``"heap"`` for the binary-heap reference, ``"calendar"``
    for the resizing calendar queue, or any :class:`~repro.sim.queues.
    EventQueue` instance.  Backends are pop-for-pop identical, so the
    choice affects wall-clock speed only -- never event order, simulated
    results, or trace hashes.
    """

    def __init__(
        self,
        obs: Recorder | None = None,
        queue: "EventQueue | str | None" = None,
    ):
        self._now = 0.0
        self._queue: EventQueue = make_queue(queue)
        self._counter = itertools.count()
        self._stopped = False
        self._fired = 0
        self._taps: list[Callable[[Event, float], None]] = []
        # Per-run accounting the loop batches and flushes through ``obs``
        # once per run()/step() instead of per event (see _flush_pending).
        self._pending_steps: dict[str, int] = {}
        self._pending_completions: dict[str, int] = {}
        self._flush_hooks: list[Callable[[Recorder], None]] = []
        self.obs: Recorder = obs if obs is not None else NULL_RECORDER
        if obs is not None:
            obs.bind_clock(lambda: self._now)

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events the loop has fired since construction."""
        return self._fired

    # -- trace taps --------------------------------------------------------

    def add_trace_tap(self, tap: Callable[[Event, float], None]) -> None:
        """Install a per-fired-event callback ``tap(event, when)``.

        Taps observe the canonical firing order (the determinism
        contract's event trace); they must not schedule events or mutate
        simulation state.
        """
        self._taps.append(tap)

    def remove_trace_tap(self, tap: Callable[[Event, float], None]) -> None:
        """Uninstall a previously added tap (ValueError if absent)."""
        self._taps.remove(tap)

    def checkpoint(self) -> KernelCheckpoint:
        """A :class:`KernelCheckpoint` of the loop's current state."""
        return KernelCheckpoint(
            time=self._now,
            events_fired=self._fired,
            queue_depth=len(self._queue),
            next_event_s=self.peek(),
        )

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay_s: float, value: Any = None) -> Timeout:
        return Timeout(self, delay_s, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def race(self, *events: Event) -> Race:
        """First-wins composition; yields ``(winner_index, winner_value)``."""
        return Race(self, events)

    def with_timeout(self, event: Event, timeout_s: float) -> Race:
        """Race ``event`` against a deadline.

        Yields ``(0, value)`` if the event won or ``(1, None)`` if the
        deadline elapsed first -- the timeout-race every retry loop needs::

            winner, value = yield sim.with_timeout(work, budget_s)
            if winner == 1:
                ...  # timed out; back off and retry
        """
        return Race(self, (event, self.timeout(timeout_s)))

    # -- scheduling --------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0, priority: int = 0) -> None:
        self._queue.push(self._now + delay, priority, next(self._counter), event)

    def stop(self) -> None:
        """Halt :meth:`run` after the current event finishes."""
        self._stopped = True

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue.peek()

    def add_flush_hook(self, hook: Callable[[Recorder], None]) -> None:
        """Register a batched-accounting flush callback.

        Subsystems that accumulate per-event observations locally (e.g.
        the DSF's per-task exec/energy accounting) register a hook; the
        kernel invokes every hook once per :meth:`run` / :meth:`step`,
        after its own pending accounting, so deferred metrics land in the
        recorder before any post-run export or snapshot.
        """
        self._flush_hooks.append(hook)

    def _flush_pending(self, obs: Recorder) -> None:
        """Fold batched per-process accounting into the recorder.

        Counter sums are order-independent, but flush in sorted name
        order anyway so the flush itself is deterministic.
        """
        steps = self._pending_steps
        if steps:
            for name in sorted(steps):
                obs.count("sim.process_steps", steps[name], process=name)
            steps.clear()
        completions = self._pending_completions
        if completions:
            for name in sorted(completions):
                obs.count("sim.processes_completed", completions[name], process=name)
            completions.clear()
        for hook in self._flush_hooks:
            hook(obs)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or stop().

        Returns the simulation time at exit.  ``until`` is an absolute time;
        the clock is advanced to it even if no event lands exactly there.

        Kernel accounting (events fired, queue-depth samples, per-process
        step counts) is accumulated in locals and flushed to ``obs`` once
        at exit: the resulting metric values are exactly what per-event
        recording would produce, without per-event recorder calls.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"cannot run backwards: until={until} < now={self._now}")
        self._stopped = False
        obs = self.obs
        record = obs.enabled
        queue = self._queue
        taps = self._taps
        fired = 0
        depths: list[int] = []
        try:
            while queue and not self._stopped:
                when = queue.peek()
                if until is not None and when > until:
                    break
                event = queue.pop()[3]
                self._now = when
                fired += 1
                if record:
                    depths.append(len(queue))
                if taps:
                    for tap in taps:
                        tap(event, when)
                event._resolve()
        finally:
            self._fired += fired
            if record and fired:
                obs.count("sim.events_fired", fired)
                obs.observe_batch("sim.queue_depth", depths)
            if record:
                self._flush_pending(obs)
        if until is not None and not self._stopped:
            self._now = max(self._now, until)
        return self._now

    def run_to_barrier(self, barrier_s: float) -> KernelCheckpoint:
        """Barrier-aligned run: advance exactly to ``barrier_s``.

        The conservative-time-sync primitive: fires every event at
        ``t <= barrier_s``, leaves the clock pinned at the barrier even if
        no event lands there, and returns a :class:`KernelCheckpoint`
        taken at the barrier.  Unlike :meth:`run`, a barrier in the past
        is always an error (a coordinator must never rewind a partition).
        """
        if barrier_s < self._now:
            raise SimulationError(
                f"barrier {barrier_s} is behind the clock (now={self._now})"
            )
        self.run(until=barrier_s)
        return self.checkpoint()

    def step(self) -> float:
        """Process exactly one event; returns the new time."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = self._queue.pop()
        self._now = when
        self._fired += 1
        obs = self.obs
        if obs.enabled:
            obs.count("sim.events_fired")
        if self._taps:
            for tap in self._taps:
                tap(event, when)
        event._resolve()
        if obs.enabled:
            self._flush_pending(obs)
        return self._now

"""Sequential network container with size/FLOP accounting and (de)serialization."""

from __future__ import annotations

import numpy as np

from .layers import Layer

__all__ = ["Sequential", "softmax", "cross_entropy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean negative log-likelihood of integer ``labels`` under ``probs``."""
    n = probs.shape[0]
    clipped = np.clip(probs[np.arange(n), labels], 1e-12, 1.0)
    return float(-np.log(clipped).mean())


class Sequential:
    """An ordered stack of layers with a classification head.

    ``input_shape`` is the per-sample shape (no batch dim); it drives FLOP
    and output-shape accounting.
    """

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...]):
        if not layers:
            raise ValueError("network needs at least one layer")
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)

    # -- inference / training ------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return softmax(self.forward(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(x) == labels).mean())

    # -- accounting ------------------------------------------------------------

    def parameters(self) -> list[tuple[Layer, str, np.ndarray]]:
        """All trainable arrays as (layer, name, array) triples."""
        out = []
        for layer in self.layers:
            for name, array in layer.params.items():
                out.append((layer, name, array))
        return out

    @property
    def param_count(self) -> int:
        return sum(arr.size for _, _, arr in self.parameters())

    def size_bytes(self, bits_per_weight: float = 32.0) -> float:
        """Dense storage footprint of the weights."""
        return self.param_count * bits_per_weight / 8.0

    def flops_per_sample(self) -> int:
        """Forward-pass FLOPs for one input sample."""
        total = 0
        shape = self.input_shape
        for layer in self.layers:
            total += layer.flops(shape)
            shape = layer.output_shape(shape)
        return total

    def output_shape(self) -> tuple[int, ...]:
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    # -- (de)serialization -------------------------------------------------------

    def get_weights(self) -> list[np.ndarray]:
        return [arr.copy() for _, _, arr in self.parameters()]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        triples = self.parameters()
        if len(weights) != len(triples):
            raise ValueError(
                f"weight count mismatch: got {len(weights)}, need {len(triples)}"
            )
        for (layer, name, current), new in zip(triples, weights):
            if current.shape != new.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {current.shape} vs {new.shape}"
                )
            current[...] = new

    def save(self, path: str) -> None:
        arrays = {f"arr_{i}": arr for i, arr in enumerate(self.get_weights())}
        np.savez(path, **arrays)

    def load(self, path: str) -> None:
        data = np.load(path)
        self.set_weights([data[f"arr_{i}"] for i in range(len(data.files))])

"""Neural-network layers in pure numpy.

This is the substrate beneath libvdap's model library and pBEAM (paper
SIV-E): enough of a deep-learning stack to *train*, *compress* and
*transfer* real models, with per-layer FLOP accounting so the platform's
cost models operate on mechanistic numbers rather than guesses.

Conventions: inputs are batched with shape (N, ...); every layer implements
``forward``/``backward``, exposes trainable arrays via ``params`` (a dict of
name -> array, with matching ``grads``) and reports ``flops(input_shape)``
for one sample.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Layer", "Dense", "ReLU", "Conv2D", "MaxPool2D", "Flatten", "Dropout"]


class Layer:
    """Base layer: stateless by default (no params)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> dict[str, np.ndarray]:
        return {}

    @property
    def grads(self) -> dict[str, np.ndarray]:
        return {}

    def flops(self, input_shape: tuple[int, ...]) -> int:
        """Multiply-add-counted FLOPs for ONE sample; default free."""
        return 0

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Dense(Layer):
    """Fully connected layer: y = x W + b, with He initialization."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator | None = None):
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.W = rng.normal(0.0, scale, size=(in_features, out_features))
        self.b = np.zeros(out_features)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x = x
        return x @ self.W + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() before forward(training=True)")
        self.dW = self._x.T @ grad
        self.db = grad.sum(axis=0)
        return grad @ self.W.T

    @property
    def params(self) -> dict[str, np.ndarray]:
        return {"W": self.W, "b": self.b}

    @property
    def grads(self) -> dict[str, np.ndarray]:
        return {"W": self.dW, "b": self.db}

    def flops(self, input_shape):
        return 2 * self.W.shape[0] * self.W.shape[1]

    def output_shape(self, input_shape):
        return (self.W.shape[1],)


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() before forward(training=True)")
        return grad * self._mask

    def flops(self, input_shape):
        return int(np.prod(input_shape))


class Dropout(Layer):
    """Inverted dropout; identity at inference."""

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> tuple[np.ndarray, int, int]:
    """(N, C, H, W) -> (N * out_h * out_w, C * kh * kw) patch matrix."""
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    # Strided view over sliding windows, then reshape to a matrix.
    shape = (n, c, out_h, out_w, kh, kw)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * stride,
        x.strides[3] * stride,
        x.strides[2],
        x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return cols, out_h, out_w


class Conv2D(Layer):
    """2D convolution (valid padding unless ``pad`` given), NCHW layout."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        rng: np.random.Generator | None = None,
    ):
        if kernel < 1 or stride < 1 or pad < 0:
            raise ValueError("invalid conv geometry")
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        scale = np.sqrt(2.0 / fan_in)
        self.W = rng.normal(0.0, scale, size=(out_channels, in_channels, kernel, kernel))
        self.b = np.zeros(out_channels)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self.stride = stride
        self.pad = pad
        self._cache = None

    def _pad(self, x: np.ndarray) -> np.ndarray:
        if self.pad == 0:
            return x
        return np.pad(x, ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)))

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        xp = self._pad(x)
        oc, ic, kh, kw = self.W.shape
        cols, out_h, out_w = _im2col(xp, kh, kw, self.stride)
        w_mat = self.W.reshape(oc, -1)
        out = cols @ w_mat.T + self.b
        n = x.shape[0]
        out = out.reshape(n, out_h, out_w, oc).transpose(0, 3, 1, 2)
        if training:
            self._cache = (x.shape, xp.shape, cols)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() before forward(training=True)")
        x_shape, xp_shape, cols = self._cache
        n, oc, out_h, out_w = grad.shape
        _, ic, kh, kw = self.W.shape
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, oc)
        self.dW = (grad_mat.T @ cols).reshape(self.W.shape)
        self.db = grad_mat.sum(axis=0)
        # Gradient w.r.t. input: scatter col gradients back.
        dcols = grad_mat @ self.W.reshape(oc, -1)
        dxp = np.zeros(xp_shape)
        dpatches = dcols.reshape(n, out_h, out_w, ic, kh, kw)
        for i in range(out_h):
            for j in range(out_w):
                hs, ws = i * self.stride, j * self.stride
                dxp[:, :, hs : hs + kh, ws : ws + kw] += dpatches[:, i, j]
        if self.pad:
            dxp = dxp[:, :, self.pad : -self.pad, self.pad : -self.pad]
        return dxp

    @property
    def params(self):
        return {"W": self.W, "b": self.b}

    @property
    def grads(self):
        return {"W": self.dW, "b": self.db}

    def output_shape(self, input_shape):
        c, h, w = input_shape
        oc, ic, kh, kw = self.W.shape
        out_h = (h + 2 * self.pad - kh) // self.stride + 1
        out_w = (w + 2 * self.pad - kw) // self.stride + 1
        return (oc, out_h, out_w)

    def flops(self, input_shape):
        oc, out_h, out_w = self.output_shape(input_shape)
        _, ic, kh, kw = self.W.shape
        return 2 * oc * out_h * out_w * ic * kh * kw


class MaxPool2D(Layer):
    """Max pooling with square window and equal stride."""

    def __init__(self, size: int = 2):
        if size < 1:
            raise ValueError("pool size must be positive")
        self.size = size
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        out_h, out_w = h // s, w // s
        view = x[:, :, : out_h * s, : out_w * s].reshape(n, c, out_h, s, out_w, s)
        out = view.max(axis=(3, 5))
        if training:
            self._cache = (x.shape, view, out)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() before forward(training=True)")
        x_shape, view, out = self._cache
        s = self.size
        mask = view == out[:, :, :, None, :, None]
        dview = mask * grad[:, :, :, None, :, None]
        n, c, h, w = x_shape
        out_h, out_w = h // s, w // s
        dx = np.zeros(x_shape)
        dx[:, :, : out_h * s, : out_w * s] = dview.reshape(n, c, out_h * s, out_w * s)
        return dx

    def output_shape(self, input_shape):
        c, h, w = input_shape
        return (c, h // self.size, w // self.size)

    def flops(self, input_shape):
        return int(np.prod(input_shape))


class Flatten(Layer):
    """(N, ...) -> (N, prod(...))."""

    def __init__(self):
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward() before forward(training=True)")
        return grad.reshape(self._shape)

    def output_shape(self, input_shape):
        return (int(np.prod(input_shape)),)

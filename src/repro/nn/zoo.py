"""Model zoo: FLOP/size specs of reference models and runnable small nets.

Two kinds of entries:

* :class:`ModelSpec` -- published FLOP and parameter counts for the large
  models the paper benchmarks (Inception v3 for Figure 3) or mentions as
  libvdap's common-model library.  These drive the processor cost models;
  they are obviously not executed in numpy.
* Factory functions (``make_mlp``, ``make_tiny_cnn``) -- small *runnable*
  networks used by pBEAM, the compression pipeline and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.processor import WorkloadClass
from .layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from .network import Sequential

__all__ = [
    "ModelSpec",
    "INCEPTION_V3",
    "MOBILENET_V1",
    "YOLO_V2",
    "RESNET50",
    "TINY_FACE",
    "SPEC_REGISTRY",
    "make_mlp",
    "make_tiny_cnn",
]


@dataclass(frozen=True)
class ModelSpec:
    """Published cost figures of a reference model."""

    name: str
    task: str
    forward_gflop: float  # multiply-add counted as 2 FLOPs
    params_millions: float
    input_shape: tuple[int, int, int]
    workload: WorkloadClass = WorkloadClass.DNN

    @property
    def size_bytes(self) -> float:
        return self.params_millions * 1e6 * 4.0

    def inference_time_s(self, processor) -> float:
        """Per-image latency on a :class:`repro.hw.ProcessorModel`."""
        return processor.execution_time(self.forward_gflop, self.workload)


#: Inception v3: ~5.7 GMACs = 11.4 GFLOPs forward, 23.9 M params (Szegedy'16).
INCEPTION_V3 = ModelSpec(
    name="inception_v3",
    task="image classification (1000 classes)",
    forward_gflop=11.4,
    params_millions=23.9,
    input_shape=(3, 299, 299),
)

MOBILENET_V1 = ModelSpec(
    name="mobilenet_v1",
    task="image classification (compressed-friendly)",
    forward_gflop=1.14,
    params_millions=4.2,
    input_shape=(3, 224, 224),
)

YOLO_V2 = ModelSpec(
    name="yolo_v2",
    task="object detection",
    forward_gflop=34.9,
    params_millions=50.7,
    input_shape=(3, 416, 416),
)

RESNET50 = ModelSpec(
    name="resnet50",
    task="image classification",
    forward_gflop=7.7,
    params_millions=25.6,
    input_shape=(3, 224, 224),
)

TINY_FACE = ModelSpec(
    name="tiny_face",
    task="face/audio keyword processing",
    forward_gflop=0.2,
    params_millions=1.0,
    input_shape=(3, 96, 96),
)

SPEC_REGISTRY: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (INCEPTION_V3, MOBILENET_V1, YOLO_V2, RESNET50, TINY_FACE)
}


def make_mlp(
    in_features: int,
    hidden: tuple[int, ...],
    classes: int,
    seed: int = 0,
) -> Sequential:
    """A ReLU MLP classifier; the architecture behind cBEAM/pBEAM."""
    rng = np.random.default_rng(seed)
    layers = []
    width = in_features
    for h in hidden:
        layers.append(Dense(width, h, rng=rng))
        layers.append(ReLU())
        width = h
    layers.append(Dense(width, classes, rng=rng))
    return Sequential(layers, input_shape=(in_features,))


def make_tiny_cnn(
    input_shape: tuple[int, int, int] = (1, 16, 16),
    classes: int = 2,
    channels: int = 8,
    seed: int = 0,
) -> Sequential:
    """A small conv net (runnable in numpy) for the vision detector tests."""
    rng = np.random.default_rng(seed)
    c, h, w = input_shape
    layers = [
        Conv2D(c, channels, kernel=3, pad=1, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Conv2D(channels, channels * 2, kernel=3, pad=1, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
    ]
    flat = channels * 2 * (h // 4) * (w // 4)
    layers.append(Dense(flat, classes, rng=rng))
    return Sequential(layers, input_shape=input_shape)

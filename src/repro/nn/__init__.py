"""Neural-network substrate: layers, training, compression, transfer, zoo."""

from .compress import CompressionReport, deep_compress, kmeans_1d, measure, prune, quantize
from .layers import Conv2D, Dense, Dropout, Flatten, Layer, MaxPool2D, ReLU
from .network import Sequential, cross_entropy, softmax
from .train import SGD, Adam, TrainResult, train_classifier
from .transfer import freeze_masks, transfer_learn
from .zoo import (
    INCEPTION_V3,
    MOBILENET_V1,
    RESNET50,
    SPEC_REGISTRY,
    TINY_FACE,
    YOLO_V2,
    ModelSpec,
    make_mlp,
    make_tiny_cnn,
)

__all__ = [
    "CompressionReport",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "INCEPTION_V3",
    "Layer",
    "MOBILENET_V1",
    "MaxPool2D",
    "ModelSpec",
    "RESNET50",
    "ReLU",
    "Adam",
    "SGD",
    "SPEC_REGISTRY",
    "Sequential",
    "TINY_FACE",
    "TrainResult",
    "YOLO_V2",
    "cross_entropy",
    "deep_compress",
    "freeze_masks",
    "kmeans_1d",
    "make_mlp",
    "make_tiny_cnn",
    "measure",
    "prune",
    "quantize",
    "softmax",
    "train_classifier",
    "transfer_learn",
]

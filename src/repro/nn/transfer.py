"""Transfer learning: turn a common model (cBEAM) into a personal one (pBEAM).

The paper (SIV-E, Figure 9): a Common Driving Behavior Model is trained on
many drivers in the cloud, compressed, downloaded to the vehicle, and then
*transfer-learned* on the local driver's data from the DDI to obtain the
Personalized Driving Behavior Model.

The mechanism here is the standard freeze-and-fine-tune: early (feature)
layers keep the common weights and are frozen; the head is fine-tuned on
the personal data.
"""

from __future__ import annotations

import numpy as np

from .layers import Dense
from .network import Sequential
from .train import SGD, TrainResult, train_classifier

__all__ = ["transfer_learn", "freeze_masks"]


def freeze_masks(network: Sequential, trainable_layers: int) -> set[int]:
    """Parameter ids of all but the last N parameterized layers.

    The returned set plugs into ``SGD.step(frozen=...)``: frozen parameters
    receive no updates, so the shared feature extractor stays bit-identical
    to the common model.
    """
    parameterized = [layer for layer in network.layers if layer.params]
    if trainable_layers < 1 or trainable_layers > len(parameterized):
        raise ValueError(
            f"trainable_layers must be in [1, {len(parameterized)}], got {trainable_layers}"
        )
    frozen_ids: set[int] = set()
    for layer in parameterized[:-trainable_layers]:
        for _name, param in layer.params.items():
            frozen_ids.add(id(param))
    return frozen_ids


def transfer_learn(
    network: Sequential,
    x: np.ndarray,
    labels: np.ndarray,
    trainable_layers: int = 1,
    epochs: int = 10,
    lr: float = 0.01,
    reinit_head: bool = True,
    rng: np.random.Generator | None = None,
) -> TrainResult:
    """Fine-tune the last ``trainable_layers`` parameterized layers in place.

    Frozen layers receive no optimizer updates, which keeps the shared
    feature extractor bit-identical to the common model -- the property that
    makes the download of one compressed cBEAM reusable across drivers.
    """
    rng = rng or np.random.default_rng(0)
    frozen_ids = freeze_masks(network, trainable_layers)

    if reinit_head:
        parameterized = [layer for layer in network.layers if layer.params]
        for layer in parameterized[-trainable_layers:]:
            if isinstance(layer, Dense):
                scale = np.sqrt(2.0 / layer.W.shape[0])
                layer.W[...] = rng.normal(0.0, scale, size=layer.W.shape)
                layer.b[...] = 0.0

    return train_classifier(
        network,
        x,
        labels,
        epochs=epochs,
        optimizer=SGD(lr=lr),
        rng=rng,
        frozen=frozen_ids,
    )

"""Deep Compression: magnitude pruning + trained quantization (weight sharing).

Reproduces the compression pipeline libvdap relies on (paper SIV-E, citing
Han et al.): "cBEAM is pruned first to reduce the number of connections by
learning only the important connections, then the number of bits for
representing each weight is reduced via the weight sharing technique."

The pipeline:

1. :func:`prune` -- zero the smallest-magnitude fraction of each weight
   matrix and return masks that keep them zero during fine-tuning.
2. :func:`quantize` -- k-means cluster the surviving weights per layer into
   ``2**bits`` shared values.
3. :func:`deep_compress` -- prune, fine-tune under masks, quantize, report.

Compressed size is accounted like the paper's storage format: per nonzero
weight, a ``bits``-bit codebook index plus a 4-bit sparse offset, plus the
fp32 codebook itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import Sequential
from .train import SGD, train_classifier

__all__ = ["CompressionReport", "prune", "quantize", "deep_compress", "kmeans_1d"]

SPARSE_INDEX_BITS = 4  # relative-offset encoding of nonzero positions


@dataclass(frozen=True)
class CompressionReport:
    """Before/after accounting for one compression run."""

    original_bytes: float
    compressed_bytes: float
    sparsity: float
    quantization_bits: int
    nonzero_weights: int
    total_weights: int

    @property
    def compression_ratio(self) -> float:
        return self.original_bytes / self.compressed_bytes


def _weight_arrays(network: Sequential) -> list[np.ndarray]:
    """The prunable arrays: weight matrices/tensors, not biases."""
    return [arr for _, name, arr in network.parameters() if name == "W"]


def prune(network: Sequential, sparsity: float) -> dict[int, np.ndarray]:
    """Zero the smallest ``sparsity`` fraction of each weight array in place.

    Returns masks keyed by ``id(array)`` suitable for
    :meth:`repro.nn.train.SGD.step`.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    masks: dict[int, np.ndarray] = {}
    for weights in _weight_arrays(network):
        k = int(sparsity * weights.size)
        mask = np.ones(weights.shape)
        if k > 0:
            flat = np.abs(weights).ravel()
            threshold = np.partition(flat, k - 1)[k - 1]
            mask = (np.abs(weights) > threshold).astype(float)
        weights *= mask
        masks[id(weights)] = mask
    return masks


def kmeans_1d(values: np.ndarray, k: int, iterations: int = 25) -> tuple[np.ndarray, np.ndarray]:
    """Simple 1-D k-means: linear-initialized centroids over the value range.

    Returns (centroids, assignment) where assignment[i] indexes centroids.
    """
    if k < 1:
        raise ValueError("need at least one cluster")
    if values.size == 0:
        return np.zeros(0), np.zeros(0, dtype=int)
    lo, hi = float(values.min()), float(values.max())
    if lo == hi or k == 1:
        return np.array([values.mean()]), np.zeros(values.size, dtype=int)
    centroids = np.linspace(lo, hi, k)
    assignment = np.zeros(values.size, dtype=int)
    for _ in range(iterations):
        assignment = np.abs(values[:, None] - centroids[None, :]).argmin(axis=1)
        for j in range(k):
            members = values[assignment == j]
            if members.size:
                centroids[j] = members.mean()
    return centroids, assignment


def quantize(network: Sequential, bits: int) -> list[np.ndarray]:
    """Weight sharing: snap each layer's nonzero weights to 2**bits values.

    Mutates the network in place; returns the per-layer codebooks.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"quantization bits must be in [1, 16], got {bits}")
    codebooks = []
    for weights in _weight_arrays(network):
        nonzero = weights[weights != 0.0]
        if nonzero.size == 0:
            codebooks.append(np.zeros(0))
            continue
        centroids, assignment = kmeans_1d(nonzero, 2**bits)
        quantized = centroids[assignment]
        out = weights.copy()
        out[weights != 0.0] = quantized
        weights[...] = out
        codebooks.append(centroids)
    return codebooks


def measure(network: Sequential, bits: int = 32) -> CompressionReport:
    """Size accounting for the network's current (possibly pruned) state."""
    total = 0
    nonzero = 0
    codebook_bytes = 0.0
    for weights in _weight_arrays(network):
        total += weights.size
        nz = int(np.count_nonzero(weights))
        nonzero += nz
        if bits < 32:
            codebook_bytes += (2**bits) * 4.0
    bias_count = sum(
        arr.size for _, name, arr in network.parameters() if name != "W"
    )
    original = (total + bias_count) * 4.0
    if bits >= 32:
        compressed = nonzero * (32 + SPARSE_INDEX_BITS) / 8.0 + bias_count * 4.0
    else:
        compressed = (
            nonzero * (bits + SPARSE_INDEX_BITS) / 8.0
            + codebook_bytes
            + bias_count * 4.0
        )
    sparsity = 1.0 - nonzero / total if total else 0.0
    return CompressionReport(
        original_bytes=original,
        compressed_bytes=compressed,
        sparsity=sparsity,
        quantization_bits=bits,
        nonzero_weights=nonzero,
        total_weights=total,
    )


def deep_compress(
    network: Sequential,
    x: np.ndarray,
    labels: np.ndarray,
    sparsity: float = 0.8,
    bits: int = 5,
    finetune_epochs: int = 5,
    lr: float = 0.01,
    rng: np.random.Generator | None = None,
) -> CompressionReport:
    """Full Deep-Compression pipeline: prune -> fine-tune -> quantize.

    Mutates ``network`` in place and returns the size report.
    """
    masks = prune(network, sparsity)
    if finetune_epochs > 0:
        train_classifier(
            network,
            x,
            labels,
            epochs=finetune_epochs,
            optimizer=SGD(lr=lr),
            rng=rng or np.random.default_rng(0),
            masks=masks,
        )
    quantize(network, bits)
    return measure(network, bits)

"""Training loop: SGD with momentum, minibatches, optional parameter masks.

Masks are how compression-aware retraining works (Deep Compression prunes
weights, then fine-tunes with the pruned positions pinned at zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .network import Sequential, cross_entropy, softmax

__all__ = ["SGD", "Adam", "TrainResult", "train_classifier"]


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.9, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step(
        self,
        network: Sequential,
        masks: dict[int, np.ndarray] | None = None,
        frozen: set[int] | None = None,
    ) -> None:
        """Apply one update from the gradients currently stored in layers.

        ``masks`` maps ``id(param_array)`` to a 0/1 array; masked-out
        positions receive no update and are re-zeroed (pruning support).
        ``frozen`` is a set of ``id(param_array)`` that receive no update at
        all (transfer-learning support).
        """
        for layer, name, param in network.parameters():
            if frozen and id(param) in frozen:
                continue
            grad = layer.grads[name]
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            key = id(param)
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(param)
            velocity = self.momentum * velocity - self.lr * grad
            self._velocity[key] = velocity
            param += velocity
            if masks and key in masks:
                param *= masks[key]


class Adam:
    """Adam optimizer (Kingma & Ba 2015): adaptive per-parameter rates.

    Interface-compatible with :class:`SGD` (``step(network, masks,
    frozen)``), so the compression/transfer pipelines can use either.
    """

    def __init__(
        self,
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(
        self,
        network: Sequential,
        masks: dict[int, np.ndarray] | None = None,
        frozen: set[int] | None = None,
    ) -> None:
        self._t += 1
        for layer, name, param in network.parameters():
            if frozen and id(param) in frozen:
                continue
            grad = layer.grads[name]
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param)
                v = np.zeros_like(param)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[key], self._v[key] = m, v
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.epsilon)
            if masks and key in masks:
                param *= masks[key]


@dataclass
class TrainResult:
    """Loss/accuracy trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    train_accuracy: float = 0.0
    epochs: int = 0


def train_classifier(
    network: Sequential,
    x: np.ndarray,
    labels: np.ndarray,
    epochs: int = 10,
    batch_size: int = 32,
    optimizer: "SGD | Adam | None" = None,
    rng: np.random.Generator | None = None,
    masks: dict[int, np.ndarray] | None = None,
    frozen: set[int] | None = None,
) -> TrainResult:
    """Minibatch cross-entropy training of a softmax classifier."""
    if len(x) != len(labels):
        raise ValueError("inputs and labels must align")
    if len(x) == 0:
        raise ValueError("empty training set")
    optimizer = optimizer or SGD()
    rng = rng or np.random.default_rng(0)
    result = TrainResult()

    for _epoch in range(epochs):
        order = rng.permutation(len(x))
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(x), batch_size):
            idx = order[start : start + batch_size]
            xb, yb = x[idx], labels[idx]
            logits = network.forward(xb, training=True)
            probs = softmax(logits)
            epoch_loss += cross_entropy(probs, yb)
            batches += 1
            # d(cross-entropy softmax)/d(logits) = (p - onehot) / N
            grad = probs.copy()
            grad[np.arange(len(yb)), yb] -= 1.0
            grad /= len(yb)
            network.backward(grad)
            optimizer.step(network, masks=masks, frozen=frozen)
        result.losses.append(epoch_loss / batches)
        result.epochs += 1

    result.train_accuracy = network.accuracy(x, labels)
    return result

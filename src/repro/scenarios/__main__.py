"""Command line for scenario files: expand, run, and check matrices.

Usage::

    python -m repro.scenarios expand scenarios/fleet_smoke.yaml
    python -m repro.scenarios run scenarios/fleet_smoke.yaml --check
    python -m repro.scenarios run scenarios/skewed_sweep.yaml \\
        --cell 2 --mode processes

``run --check`` re-executes every cell's single-process heap reference
and compares per-vehicle trace hashes; any divergence exits non-zero.
Validation failures print the same ``file:line: RULE message`` findings
``vdaplint --scenarios`` emits and exit 2.
"""

from __future__ import annotations

import argparse
import sys

from .compiler import Scenario, ScenarioError, load_scenario
from .runner import MODES, run_cell, run_matrix
from .yamlish import ScenarioSyntaxError

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="run and inspect declarative fleet scenarios",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    expand = commands.add_parser(
        "expand", help="list the matrix cells a scenario expands into"
    )
    expand.add_argument("file", help="scenario file to expand")

    run = commands.add_parser("run", help="execute a scenario's matrix")
    run.add_argument("file", help="scenario file to run")
    run.add_argument("--mode", choices=MODES, default="inline",
                     help="execution backend (default: inline)")
    run.add_argument("--cell", type=int, default=None,
                     help="run one matrix cell by index (default: all)")
    run.add_argument("--check", action="store_true",
                     help="compare each cell against the single-process "
                          "heap reference")
    return parser


def _load(path: str) -> Scenario:
    try:
        return load_scenario(path)
    except (ScenarioError, ScenarioSyntaxError) as exc:
        print(exc, file=sys.stderr)
        raise SystemExit(2) from exc


def _cmd_expand(args: argparse.Namespace) -> int:
    scenario = _load(args.file)
    print(f"{scenario.name}: {len(scenario.cells)} cell(s)")
    for index, cell in enumerate(scenario.cells):
        config = cell.config
        print(
            f"  [{index}] {cell.name}: vehicles={config.vehicles} "
            f"partitions={config.partitions} duration={config.duration_s:g}s "
            f"scheduler={config.scheduler} workload={config.workload}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _load(args.file)
    if args.cell is not None:
        outcomes = [
            run_cell(scenario.cell(args.cell), mode=args.mode,
                     check=args.check)
        ]
    else:
        outcomes = run_matrix(scenario, mode=args.mode, check=args.check)
    failed = 0
    for outcome in outcomes:
        stats = outcome.result.stats
        sample = next(iter(sorted(outcome.result.vehicle_hashes.items())), None)
        digest = f" cav0={sample[1][:12]}" if sample else ""
        if outcome.reference_ok is None:
            verdict = ""
        elif outcome.reference_ok:
            verdict = "  hashes MATCH reference"
        else:
            verdict = "  hashes DIVERGE from reference"
            failed += 1
        print(
            f"{outcome.name}: {stats.events_fired} events / "
            f"{stats.rounds} rounds{digest}{verdict}"
        )
    if failed:
        print(f"{failed} cell(s) diverged from the reference",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    """Entry point for ``python -m repro.scenarios``."""
    args = build_parser().parse_args(argv)
    if args.command == "expand":
        return _cmd_expand(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())

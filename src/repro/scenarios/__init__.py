"""Declarative fleet scenarios: config files with static guarantees.

The scenario DSL (ROADMAP item 3) turns fleet experiments from Python
into data: one file describes the fleet geometry, driver styles, service
mixes, link parameters, fault plans, partition plans, and a ``sweep:``
matrix -- and the static tier (:mod:`repro.analysis.scenario`, behind
``vdaplint --scenarios``) proves it well-formed, unit-consistent,
reference-closed, barrier-feasible, and within budget *before the first
sim event fires*.

Layers, bottom-up:

* :mod:`.yamlish` -- the zero-dependency YAML-subset loader whose every
  node remembers its source line (what makes findings point at files);
* :mod:`.schema` -- the document schema: field tables, SCN001-003
  validation, deterministic ``sweep:`` cell expansion;
* :mod:`.compiler` -- lowering into :class:`~repro.fleet.config.
  FleetConfig` cells (byte-identical traces to hand-built configs);
* :mod:`.runner` -- matrix execution through the fleet substrate, with
  per-cell reference hash checks.

``python -m repro.scenarios`` runs, checks, and expands scenario files
from the command line.
"""

from .compiler import (
    CompiledCell,
    Scenario,
    ScenarioError,
    compile_text,
    load_scenario,
)
from .runner import CellOutcome, MODES, run_cell, run_matrix
from .schema import Issue, validate
from .yamlish import (
    MappingNode,
    ScalarNode,
    ScenarioSyntaxError,
    SequenceNode,
    parse_file,
    parse_text,
)

__all__ = [
    "CellOutcome",
    "CompiledCell",
    "Issue",
    "MODES",
    "MappingNode",
    "ScalarNode",
    "Scenario",
    "ScenarioError",
    "ScenarioSyntaxError",
    "SequenceNode",
    "compile_text",
    "load_scenario",
    "parse_file",
    "parse_text",
    "run_cell",
    "run_matrix",
    "validate",
]

"""A tiny YAML-subset loader that remembers where everything came from.

Scenario files are configuration with *findings*: every schema, unit,
cross-reference, and feasibility diagnostic the static tier emits must
point at a ``file:line`` a human can open.  PyYAML discards positions
(and is a dependency we refuse anyway), so this module parses the small
indentation-structured subset the scenario DSL needs -- block mappings,
block and flow sequences, scalars, comments -- into a node tree in which
**every node carries the 1-based source line it started on**.

Supported grammar (a strict subset of YAML):

* block mappings ``key: value`` / ``key:`` + indented block;
* block sequences ``- item`` (scalar items, nested blocks, or inline
  mapping items ``- key: value`` with aligned continuation keys);
* flow sequences of scalars ``[1, 2.5, skewed]``;
* scalars: quoted strings, integers, floats (incl. scientific), the
  booleans ``true``/``false``, and ``null``/``~``; anything else is a
  bare string;
* ``#`` comments (outside quotes) and blank lines.

Deliberately absent: anchors, aliases, tags, multi-document streams,
multi-line strings, flow mappings, and tabs (tab indentation is a hard
error, exactly as in YAML proper).  Duplicate keys are an error rather
than last-wins -- in a scenario file a duplicate key is always a bug.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = [
    "MappingNode",
    "ScalarNode",
    "ScenarioSyntaxError",
    "SequenceNode",
    "parse_file",
    "parse_text",
]

#: Bare mapping keys: identifier-shaped, optionally dotted/dashed.
_KEY_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.\-]*$")
_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?$")


class ScenarioSyntaxError(ValueError):
    """A scenario file failed to parse; carries the offending line."""

    def __init__(self, message: str, path: str, line: int):
        super().__init__(f"{path}:{line}: {message}")
        self.message = message
        self.path = path
        self.line = line


@dataclass(frozen=True)
class ScalarNode:
    """One parsed scalar value and the line it appeared on."""

    value: object
    line: int


@dataclass
class SequenceNode:
    """A block or flow sequence; ``items`` are child nodes in order."""

    items: list = field(default_factory=list)
    line: int = 1


class MappingNode:
    """An ordered mapping; every entry remembers its key's line."""

    def __init__(self, line: int):
        self.line = line
        self._entries: dict[str, tuple[int, object]] = {}

    def set(self, key: str, line: int, node) -> None:
        self._entries[key] = (line, node)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str):
        """The child node for ``key``, or None."""
        entry = self._entries.get(key)
        return entry[1] if entry is not None else None

    def key_line(self, key: str) -> int:
        """The line the key itself was written on (falls back to ours)."""
        entry = self._entries.get(key)
        return entry[0] if entry is not None else self.line

    def keys(self) -> list[str]:
        """Keys in document order."""
        return list(self._entries)

    def items(self) -> list[tuple[str, object]]:
        """(key, node) pairs in document order."""
        return [(key, node) for key, (_line, node) in self._entries.items()]


@dataclass(frozen=True)
class _Line:
    number: int
    indent: int
    text: str


def _strip_comment(raw: str, path: str, number: int) -> str:
    """Drop a trailing ``#`` comment, honouring quoted strings."""
    quote: str | None = None
    for i, ch in enumerate(raw):
        if quote is not None:
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
        elif ch == "#" and (i == 0 or raw[i - 1] in " \t"):
            return raw[:i].rstrip()
    if quote is not None:
        raise ScenarioSyntaxError("unterminated quoted string", path, number)
    return raw.rstrip()


def _logical_lines(text: str, path: str) -> list[_Line]:
    lines: list[_Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.lstrip(" ")
        indent = len(raw) - len(stripped)
        if stripped.startswith("\t"):
            raise ScenarioSyntaxError(
                "tab characters may not be used for indentation", path, number
            )
        content = _strip_comment(stripped, path, number)
        if not content:
            continue
        lines.append(_Line(number, indent, content))
    return lines


def _find_key_colon(text: str) -> int:
    """Index of the mapping colon (``: `` or trailing ``:``), else -1."""
    quote: str | None = None
    for i, ch in enumerate(text):
        if quote is not None:
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
        elif ch == ":":
            if i == len(text) - 1 or text[i + 1] in " \t":
                return i
    return -1


class _Parser:
    def __init__(self, lines: list[_Line], path: str):
        self.lines = lines
        self.path = path
        self.pos = 0

    def _peek(self) -> _Line | None:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def _advance(self) -> _Line:
        line = self.lines[self.pos]
        self.pos += 1
        return line

    def _error(self, message: str, number: int) -> ScenarioSyntaxError:
        return ScenarioSyntaxError(message, self.path, number)

    # -- blocks ------------------------------------------------------------

    def parse_document(self) -> MappingNode:
        head = self._peek()
        if head is None:
            raise self._error("empty scenario document", 1)
        node = self._parse_block(0)
        tail = self._peek()
        if tail is not None:
            raise self._error(
                f"unexpected dedent to column {tail.indent}", tail.number
            )
        if not isinstance(node, MappingNode):
            raise self._error("scenario document must be a mapping", head.number)
        return node

    def _parse_block(self, min_indent: int):
        head = self._peek()
        assert head is not None and head.indent >= min_indent
        if head.text == "-" or head.text.startswith("- "):
            return self._parse_sequence(head.indent)
        return self._parse_mapping(head.indent)

    def _parse_mapping(self, indent: int) -> MappingNode:
        head = self._peek()
        node = MappingNode(line=head.number)
        while True:
            current = self._peek()
            if current is None or current.indent < indent:
                break
            if current.indent > indent:
                raise self._error(
                    f"unexpected indent (expected column {indent})",
                    current.number,
                )
            if current.text == "-" or current.text.startswith("- "):
                raise self._error(
                    "sequence item in a mapping block", current.number
                )
            colon = _find_key_colon(current.text)
            if colon < 0:
                raise self._error(
                    "expected `key: value` or `key:`", current.number
                )
            key = self._parse_key(current.text[:colon], current.number)
            if key in node:
                raise self._error(
                    f"duplicate key `{key}` (first defined on line "
                    f"{node.key_line(key)})",
                    current.number,
                )
            rest = current.text[colon + 1:].strip()
            self._advance()
            node.set(key, current.number, self._parse_value(rest, current, indent))
        return node

    def _parse_value(self, rest: str, owner: _Line, indent: int):
        if rest:
            value = self._parse_flow_or_scalar(rest, owner.number)
            trailing = self._peek()
            if trailing is not None and trailing.indent > indent:
                raise self._error(
                    "unexpected indented block under a scalar value",
                    trailing.number,
                )
            return value
        child = self._peek()
        if child is not None and child.indent > indent:
            return self._parse_block(indent + 1)
        return ScalarNode(None, owner.number)

    def _parse_sequence(self, indent: int) -> SequenceNode:
        head = self._peek()
        node = SequenceNode(line=head.number)
        while True:
            current = self._peek()
            if current is None or current.indent < indent:
                break
            if current.indent > indent:
                raise self._error(
                    f"unexpected indent (expected column {indent})",
                    current.number,
                )
            if not (current.text == "-" or current.text.startswith("- ")):
                raise self._error(
                    "mapping entry in a sequence block", current.number
                )
            self._advance()
            rest = current.text[1:].lstrip()
            if not rest:
                child = self._peek()
                if child is not None and child.indent > indent:
                    node.items.append(self._parse_block(indent + 1))
                else:
                    node.items.append(ScalarNode(None, current.number))
                continue
            colon = _find_key_colon(rest)
            if colon >= 0 and _KEY_RE.match(rest[:colon].strip()):
                # Inline mapping item: re-enter the mapping parser with a
                # synthetic line at the inline key's actual column, so
                # continuation keys must align with it.
                item_indent = current.indent + (
                    len(current.text) - len(rest)
                )
                self.lines.insert(
                    self.pos, _Line(current.number, item_indent, rest)
                )
                node.items.append(self._parse_mapping(item_indent))
            else:
                node.items.append(
                    self._parse_flow_or_scalar(rest, current.number)
                )
        return node

    # -- terminals ---------------------------------------------------------

    def _parse_key(self, text: str, number: int) -> str:
        key = text.strip()
        if key.startswith(("'", '"')) and key.endswith(key[0]) and len(key) >= 2:
            key = key[1:-1]
        if not _KEY_RE.match(key):
            raise self._error(f"invalid mapping key {key!r}", number)
        return key

    def _parse_flow_or_scalar(self, text: str, number: int):
        if text.startswith("["):
            if not text.endswith("]"):
                raise self._error("unterminated flow sequence", number)
            inner = text[1:-1].strip()
            seq = SequenceNode(line=number)
            if inner:
                for part in inner.split(","):
                    part = part.strip()
                    if not part:
                        raise self._error(
                            "empty element in flow sequence", number
                        )
                    if part.startswith("["):
                        raise self._error(
                            "nested flow sequences are not supported", number
                        )
                    seq.items.append(self._parse_scalar(part, number))
            return seq
        return self._parse_scalar(text, number)

    def _parse_scalar(self, text: str, number: int) -> ScalarNode:
        if text.startswith(("'", '"')):
            if len(text) < 2 or not text.endswith(text[0]):
                raise self._error("unterminated quoted string", number)
            return ScalarNode(text[1:-1], number)
        lowered = text.lower()
        if lowered in ("null", "~"):
            return ScalarNode(None, number)
        if lowered == "true":
            return ScalarNode(True, number)
        if lowered == "false":
            return ScalarNode(False, number)
        if _INT_RE.match(text):
            return ScalarNode(int(text), number)
        if _FLOAT_RE.match(text):
            return ScalarNode(float(text), number)
        return ScalarNode(text, number)


def parse_text(text: str, path: str = "<scenario>") -> MappingNode:
    """Parse scenario source text into a line-annotated node tree."""
    return _Parser(_logical_lines(text, path), path).parse_document()


def parse_file(path: str) -> MappingNode:
    """Parse one scenario file from disk."""
    with open(path, encoding="utf-8") as fh:
        return parse_text(fh.read(), path)

"""Matrix runner: execute compiled scenario cells and cross-check them.

A :class:`~repro.scenarios.compiler.Scenario` is a list of lowered
:class:`~repro.fleet.config.FleetConfig` cells; this module runs them
through the fleet substrate's three execution modes and (optionally)
asserts the substrate's correctness contract per cell -- that the
partitioned run's per-vehicle blake2b trace hashes are byte-identical to
the single-process heap reference of the same config.

Modes:

* ``inline`` -- :func:`~repro.fleet.coordinator.run_inline`: the full
  round protocol with every partition runtime hosted in-process (the
  default; exercises shard geometry without process spawn cost);
* ``processes`` -- :class:`~repro.fleet.coordinator.FleetCoordinator`:
  real worker processes, fault plans armed;
* ``reference`` -- :func:`~repro.fleet.coordinator.run_single_process`:
  the golden single-partition reference itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fleet.coordinator import (
    FleetCoordinator,
    FleetResult,
    run_inline,
    run_single_process,
)
from .compiler import CompiledCell, Scenario

__all__ = ["CellOutcome", "MODES", "run_cell", "run_matrix"]

MODES: tuple[str, ...] = ("inline", "processes", "reference")


@dataclass
class CellOutcome:
    """One executed cell: its result plus the optional reference verdict."""

    cell: CompiledCell
    result: FleetResult
    #: None when the cell ran unchecked; True/False is the hash verdict.
    reference_ok: bool | None = None

    @property
    def name(self) -> str:
        return self.cell.name


def run_cell(cell: CompiledCell, mode: str = "inline",
             check: bool = False) -> CellOutcome:
    """Execute one cell; ``check`` re-runs the reference and compares."""
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r} (have: {', '.join(MODES)})")
    if mode == "inline":
        result = run_inline(cell.config)
    elif mode == "processes":
        with FleetCoordinator(cell.config) as coordinator:
            result = coordinator.run()
    else:
        result = run_single_process(cell.config)
    verdict: bool | None = None
    if check:
        reference = run_single_process(cell.config)
        verdict = reference.vehicle_hashes == result.vehicle_hashes
    return CellOutcome(cell=cell, result=result, reference_ok=verdict)


def run_matrix(scenario: Scenario, mode: str = "inline",
               check: bool = False) -> list[CellOutcome]:
    """Execute every cell of a scenario's matrix, in matrix order."""
    return [run_cell(cell, mode=mode, check=check)
            for cell in scenario.cells]

"""Scenario document schema: structure, units, and cross-references.

This module is the *static semantics* of the scenario DSL.  It knows the
section layout (``fleet:``, ``links:``, ``styles:``, ``vehicles:``,
``faults:``, ``plan:``, ``sweep:``, ``budget:``), the type/positivity
constraints of every field, and how a ``sweep:`` block expands into
matrix cells -- and it reports violations as line-anchored
:class:`Issue` records that the lint pack (:mod:`repro.analysis.scenario`)
turns into findings and the compiler (:mod:`.compiler`) refuses to build
past.

Three rule families live here (the graph-backed SCN004/SCN005 live in
the analysis pack, which needs the whole-program call graph):

* **SCN001** -- schema violations: unknown keys, wrong types, missing
  required fields, and constraint breaches (negative durations,
  ``partitions > vehicles`` in some matrix cell, roster/count mismatch).
* **SCN002** -- unit errors: a key whose quantity stem matches a known
  field but whose unit suffix disagrees in dimension or scale
  (``barrier_ms`` for ``barrier_s``, ``v2v_latency_bytes``), resolved
  through the PR-5 unit vocabulary.
* **SCN003** -- dangling cross-references: undefined workload styles,
  plan shards naming unknown/duplicate/unassigned vehicles, fault kills
  aimed at partitions or rounds no matrix cell ever runs.

Field names double as the compiler's :class:`~repro.fleet.config.
FleetConfig` keyword names, and defaults are read off the dataclass
itself, so schema and runtime can never drift apart.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import MISSING, dataclass, fields as dataclass_fields
from typing import Optional

from ..analysis.units import Unit, split_name_unit
from ..fleet.config import FleetConfig
from ..sim.queues import QUEUE_BACKENDS
from ..workloads.styles import STYLES
from .yamlish import MappingNode, ScalarNode, SequenceNode

__all__ = [
    "CellSpec",
    "FieldSpec",
    "Issue",
    "Setting",
    "FLEET_FIELDS",
    "LINK_FIELDS",
    "KILL_PHASES",
    "base_settings",
    "config_defaults",
    "effective_vehicles",
    "expand_cells",
    "sweep_axes",
    "validate",
]

#: Fault phases the scheduler understands (see ``repro.faults.prockill``).
KILL_PHASES: tuple[str, ...] = ("on-advance", "before-ack")


@dataclass(frozen=True, order=True)
class Issue:
    """One schema/unit/reference diagnostic, anchored to a source line."""

    line: int
    rule: str
    message: str


@dataclass(frozen=True)
class FieldSpec:
    """One scalar field's static contract."""

    name: str
    kind: str  # "int" | "float" | "bool" | "str"
    required: bool = False
    positive: bool = False
    nonnegative: bool = False
    choices: tuple[str, ...] = ()

    @property
    def unit(self) -> Optional[Unit]:
        """The unit the field's own suffix declares, if any."""
        return split_name_unit(self.name)[1]


def _table(*specs: FieldSpec) -> dict[str, FieldSpec]:
    return {spec.name: spec for spec in specs}


#: ``fleet:`` section -- geometry and cadence.  Names are FleetConfig
#: keyword names verbatim.
FLEET_FIELDS: dict[str, FieldSpec] = _table(
    FieldSpec("seed", "int"),
    FieldSpec("vehicles", "int", positive=True),
    FieldSpec("partitions", "int", positive=True),
    FieldSpec("duration_s", "float", positive=True),
    FieldSpec("tick_s", "float", positive=True),
    FieldSpec("barrier_s", "float", positive=True),
    FieldSpec("barrier_deadline_s", "float", positive=True),
    FieldSpec("scheduler", "str", choices=tuple(sorted(QUEUE_BACKENDS))),
    FieldSpec("workload", "str"),
    FieldSpec("with_services", "bool"),
    FieldSpec("edge_count", "int", positive=True),
    FieldSpec("edge_spacing_m", "float", positive=True),
)

#: ``links:`` section -- V2V/cellular link parameters.
LINK_FIELDS: dict[str, FieldSpec] = _table(
    FieldSpec("v2v_latency_s", "float", positive=True),
    FieldSpec("beacon_period_s", "float", positive=True),
)

#: Every key a ``sweep:`` axis may name (fleet + links, one namespace).
_FLAT_FIELDS: dict[str, FieldSpec] = {**FLEET_FIELDS, **LINK_FIELDS}

_STYLE_FIELDS: dict[str, FieldSpec] = _table(
    FieldSpec("services", "int", required=True, nonnegative=True),
    FieldSpec("cost_weight", "float", positive=True),
)

_VEHICLE_FIELDS: dict[str, FieldSpec] = _table(
    FieldSpec("id", "int", required=True, nonnegative=True),
    FieldSpec("style", "str"),
    FieldSpec("services", "int", nonnegative=True),
)

_KILL_FIELDS: dict[str, FieldSpec] = _table(
    FieldSpec("partition", "int", required=True, nonnegative=True),
    FieldSpec("round", "int", required=True, nonnegative=True),
    FieldSpec("phase", "str", choices=KILL_PHASES),
)

_BUDGET_FIELDS: dict[str, FieldSpec] = _table(
    FieldSpec("cost", "float", positive=True),
    FieldSpec("cells", "int", positive=True),
)

_TOP_SECTIONS: tuple[str, ...] = (
    "name", "description", "fleet", "links", "styles", "vehicles",
    "faults", "plan", "sweep", "budget",
)


def config_defaults() -> dict[str, object]:
    """FleetConfig's own field defaults (schema never restates them)."""
    out: dict[str, object] = {}
    for field in dataclass_fields(FleetConfig):
        if field.default is not MISSING:
            out[field.name] = field.default
    return out


@dataclass(frozen=True)
class Setting:
    """One resolved scalar setting and where it was written."""

    key: str
    value: object
    line: int


@dataclass(frozen=True)
class CellSpec:
    """One matrix cell: merged settings plus the axis values that made it."""

    name: str
    overrides: tuple[tuple[str, object], ...]

    def __post_init__(self):
        object.__setattr__(self, "overrides", tuple(self.overrides))


# ---------------------------------------------------------------------------
# value extraction (robust against invalid documents)
# ---------------------------------------------------------------------------


def _scalar_ok(node, spec: FieldSpec) -> bool:
    """True when ``node`` is a scalar whose value satisfies ``spec``."""
    if not isinstance(node, ScalarNode):
        return False
    value = node.value
    if spec.kind == "bool":
        return isinstance(value, bool)
    if isinstance(value, bool):
        return False
    if spec.kind == "int":
        if not isinstance(value, int):
            return False
    elif spec.kind == "float":
        if not isinstance(value, (int, float)):
            return False
    elif spec.kind == "str":
        if not isinstance(value, str):
            return False
        if spec.choices and value not in spec.choices:
            return False
        return True
    if spec.positive and value <= 0:
        return False
    if spec.nonnegative and value < 0:
        return False
    return True


def base_settings(doc: MappingNode) -> dict[str, Setting]:
    """Well-formed scalar settings from ``fleet:`` + ``links:``.

    Malformed entries are skipped (they already carry SCN001 issues);
    callers get only values the compiler could actually use.
    """
    out: dict[str, Setting] = {}
    for section_name, table in (("fleet", FLEET_FIELDS), ("links", LINK_FIELDS)):
        section = doc.get(section_name)
        if not isinstance(section, MappingNode):
            continue
        for key, node in section.items():
            spec = table.get(key)
            if spec is not None and _scalar_ok(node, spec):
                out[key] = Setting(key, node.value, node.line)
    return out


def sweep_axes(doc: MappingNode) -> list[tuple[str, list[Setting]]]:
    """Well-formed sweep axes, sorted by key (the expansion order)."""
    sweep = doc.get("sweep")
    if not isinstance(sweep, MappingNode):
        return []
    axes: list[tuple[str, list[Setting]]] = []
    for key in sorted(sweep.keys()):
        spec = _FLAT_FIELDS.get(key)
        node = sweep.get(key)
        if spec is None or not isinstance(node, SequenceNode):
            continue
        values = [
            Setting(key, item.value, item.line)
            for item in node.items
            if _scalar_ok(item, spec)
        ]
        if values and len(values) == len(node.items):
            axes.append((key, values))
    return axes


def expand_cells(doc: MappingNode) -> list[CellSpec]:
    """Deterministic matrix expansion: axes sorted by key, values in
    document order, cartesian product in row-major order."""
    axes = sweep_axes(doc)
    if not axes:
        return [CellSpec("base", ())]
    cells: list[CellSpec] = []
    for combo in itertools.product(*(values for _key, values in axes)):
        overrides = tuple(
            (key, setting.value)
            for (key, _values), setting in zip(axes, combo)
        )
        name = "/".join(f"{key}={value}" for key, value in overrides)
        cells.append(CellSpec(name, overrides))
    return cells


def _cell_value_maps(doc: MappingNode) -> list[dict[str, object]]:
    """Per-cell resolved ``{key: value}`` maps (explicit settings only)."""
    base = {key: setting.value for key, setting in base_settings(doc).items()}
    maps: list[dict[str, object]] = []
    for cell in expand_cells(doc):
        merged = dict(base)
        merged.update(dict(cell.overrides))
        maps.append(merged)
    return maps


def effective_vehicles(doc: MappingNode,
                       values: dict[str, object]) -> Optional[int]:
    """Vehicle count for one cell: roster length wins, else ``vehicles``."""
    roster = doc.get("vehicles")
    if isinstance(roster, SequenceNode) and roster.items:
        return len(roster.items)
    count = values.get("vehicles", config_defaults().get("vehicles"))
    return count if isinstance(count, int) and count >= 1 else None


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


class _Checker:
    def __init__(self, doc: MappingNode):
        self.doc = doc
        self.issues: list[Issue] = []

    def report(self, rule: str, line: int, message: str) -> None:
        issue = Issue(line=line, rule=rule, message=message)
        if issue not in self.issues:
            self.issues.append(issue)

    # -- generic field machinery ------------------------------------------

    def unknown_key(self, key: str, line: int,
                    table: dict[str, FieldSpec], where: str) -> None:
        """SCN002 when the stem matches a known quantity field with a
        conflicting unit suffix; SCN001 otherwise."""
        key_stem, key_unit = split_name_unit(key)
        if key_unit is not None:
            for spec in table.values():
                field_unit = spec.unit
                if field_unit is None:
                    continue
                field_stem, _ = split_name_unit(spec.name)
                if field_stem != key_stem:
                    continue
                if not key_unit.same_dimension(field_unit):
                    self.report(
                        "SCN002", line,
                        f"`{key}` is {key_unit.render()} but {where} "
                        f"expects `{spec.name}` ({field_unit.render()}); "
                        "fix the suffix and convert the value",
                    )
                    return
                if not key_unit.same_scale(field_unit):
                    self.report(
                        "SCN002", line,
                        f"`{key}` is scaled {key_unit.render()} but "
                        f"{where} expects `{spec.name}` "
                        f"({field_unit.render()}); convert the value",
                    )
                    return
                self.report(
                    "SCN001", line,
                    f"unknown key `{key}` in {where}; did you mean "
                    f"`{spec.name}`?",
                )
                return
        known = ", ".join(sorted(table))
        self.report(
            "SCN001", line,
            f"unknown key `{key}` in {where} (known keys: {known})",
        )

    def check_scalar(self, node, spec: FieldSpec, line: int,
                     where: str) -> bool:
        if not isinstance(node, ScalarNode):
            self.report(
                "SCN001", getattr(node, "line", line),
                f"`{spec.name}` in {where} must be a {spec.kind} scalar, "
                "not a block",
            )
            return False
        value = node.value
        if spec.kind == "bool":
            if not isinstance(value, bool):
                self.report(
                    "SCN001", node.line,
                    f"`{spec.name}` in {where} must be true or false, "
                    f"got {value!r}",
                )
                return False
            return True
        if spec.kind == "str":
            if not isinstance(value, str):
                self.report(
                    "SCN001", node.line,
                    f"`{spec.name}` in {where} must be a string, "
                    f"got {value!r}",
                )
                return False
            if spec.choices and value not in spec.choices:
                self.report(
                    "SCN001", node.line,
                    f"`{spec.name}` in {where} must be one of "
                    f"{', '.join(spec.choices)}; got {value!r}",
                )
                return False
            return True
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self.report(
                "SCN001", node.line,
                f"`{spec.name}` in {where} must be a number, got {value!r}",
            )
            return False
        if spec.kind == "int" and not isinstance(value, int):
            self.report(
                "SCN001", node.line,
                f"`{spec.name}` in {where} must be an integer, "
                f"got {value!r}",
            )
            return False
        if spec.positive and value <= 0:
            self.report(
                "SCN001", node.line,
                f"`{spec.name}` in {where} must be positive, got {value!r}",
            )
            return False
        if spec.nonnegative and value < 0:
            self.report(
                "SCN001", node.line,
                f"`{spec.name}` in {where} must be non-negative, "
                f"got {value!r}",
            )
            return False
        return True

    def check_mapping_fields(self, mapping: MappingNode,
                             table: dict[str, FieldSpec],
                             where: str) -> None:
        for key, node in mapping.items():
            spec = table.get(key)
            if spec is None:
                self.unknown_key(key, mapping.key_line(key), table, where)
                continue
            self.check_scalar(node, spec, mapping.key_line(key), where)
        for spec in table.values():
            if spec.required and spec.name not in mapping:
                self.report(
                    "SCN001", mapping.line,
                    f"{where} is missing the required field `{spec.name}`",
                )

    def require_mapping(self, key: str) -> Optional[MappingNode]:
        node = self.doc.get(key)
        if node is None:
            return None
        if not isinstance(node, MappingNode):
            self.report(
                "SCN001", self.doc.key_line(key),
                f"`{key}:` must be a mapping block",
            )
            return None
        return node

    # -- sections ----------------------------------------------------------

    def run(self) -> list[Issue]:
        for key in self.doc.keys():
            if key not in _TOP_SECTIONS:
                self.report(
                    "SCN001", self.doc.key_line(key),
                    f"unknown top-level section `{key}` (known: "
                    f"{', '.join(_TOP_SECTIONS)})",
                )
        for meta in ("name", "description"):
            node = self.doc.get(meta)
            if node is not None and not (
                isinstance(node, ScalarNode) and isinstance(node.value, str)
            ):
                self.report(
                    "SCN001", self.doc.key_line(meta),
                    f"`{meta}` must be a string",
                )
        fleet = self.require_mapping("fleet")
        if "fleet" not in self.doc:
            self.report(
                "SCN001", self.doc.line,
                "scenario is missing the required `fleet:` section",
            )
        if fleet is not None:
            self.check_mapping_fields(fleet, FLEET_FIELDS, "fleet")
        links = self.require_mapping("links")
        if links is not None:
            self.check_mapping_fields(links, LINK_FIELDS, "links")
        self.check_styles()
        self.check_roster()
        self.check_sweep()
        self.check_style_refs()
        self.check_plan()
        self.check_faults()
        self.check_budget()
        self.check_cells()
        return sorted(self.issues)

    def check_styles(self) -> None:
        styles = self.require_mapping("styles")
        if styles is None:
            return
        for style_id, node in styles.items():
            line = styles.key_line(style_id)
            if style_id in STYLES:
                self.report(
                    "SCN001", line,
                    f"style `{style_id}` redefines a built-in style",
                )
            if not isinstance(node, MappingNode):
                self.report(
                    "SCN001", line,
                    f"style `{style_id}` must be a mapping of style fields",
                )
                continue
            self.check_mapping_fields(node, _STYLE_FIELDS,
                                      f"style `{style_id}`")

    def check_roster(self) -> None:
        roster = self.doc.get("vehicles")
        if roster is None:
            return
        if not isinstance(roster, SequenceNode):
            self.report(
                "SCN001", self.doc.key_line("vehicles"),
                "`vehicles:` must be a sequence of vehicle entries",
            )
            return
        seen_ids: dict[int, int] = {}
        for item in roster.items:
            if not isinstance(item, MappingNode):
                self.report(
                    "SCN001", getattr(item, "line", roster.line),
                    "each vehicle entry must be a mapping with an `id`",
                )
                continue
            self.check_mapping_fields(item, _VEHICLE_FIELDS, "vehicle entry")
            if "style" in item and "services" in item:
                self.report(
                    "SCN001", item.key_line("services"),
                    "vehicle entry sets both `style` and `services`; "
                    "pick one",
                )
            id_node = item.get("id")
            if isinstance(id_node, ScalarNode) and isinstance(
                id_node.value, int
            ) and not isinstance(id_node.value, bool):
                vehicle_id = id_node.value
                if vehicle_id in seen_ids:
                    self.report(
                        "SCN003", id_node.line,
                        f"duplicate vehicle id {vehicle_id} (first "
                        f"defined on line {seen_ids[vehicle_id]})",
                    )
                else:
                    seen_ids[vehicle_id] = id_node.line
        count = len(roster.items)
        expected = set(range(count))
        stray = sorted(set(seen_ids) - expected)
        if stray:
            self.report(
                "SCN003", roster.line,
                f"roster ids must cover 0..{count - 1}; "
                f"{stray} are out of range",
            )
        fleet = self.doc.get("fleet")
        if isinstance(fleet, MappingNode):
            declared = fleet.get("vehicles")
            if isinstance(declared, ScalarNode) and isinstance(
                declared.value, int
            ) and declared.value != count:
                self.report(
                    "SCN001", declared.line,
                    f"fleet.vehicles={declared.value} but the roster "
                    f"lists {count} vehicles",
                )

    def check_sweep(self) -> None:
        sweep = self.require_mapping("sweep")
        if sweep is None:
            return
        roster = self.doc.get("vehicles")
        has_roster = isinstance(roster, SequenceNode) and bool(roster.items)
        for key, node in sweep.items():
            line = sweep.key_line(key)
            spec = _FLAT_FIELDS.get(key)
            if spec is None:
                self.unknown_key(key, line, _FLAT_FIELDS, "sweep")
                continue
            if key == "vehicles" and has_roster:
                self.report(
                    "SCN001", line,
                    "`vehicles` cannot be swept when a vehicle roster "
                    "pins the fleet size",
                )
            if not isinstance(node, SequenceNode):
                self.report(
                    "SCN001", line,
                    f"sweep axis `{key}` must be a sequence of values",
                )
                continue
            if not node.items:
                self.report(
                    "SCN001", line,
                    f"sweep axis `{key}` is empty",
                )
            for item in node.items:
                self.check_scalar(item, spec, line, f"sweep axis `{key}`")

    def _styles_available(self) -> set[str]:
        available = set(STYLES)
        styles = self.doc.get("styles")
        if isinstance(styles, MappingNode):
            available.update(styles.keys())
        return available

    def check_style_refs(self) -> None:
        available = self._styles_available()

        def check_ref(node) -> None:
            if isinstance(node, ScalarNode) and isinstance(node.value, str):
                if node.value not in available:
                    self.report(
                        "SCN003", node.line,
                        f"undefined workload style `{node.value}` "
                        f"(known: {', '.join(sorted(available))})",
                    )

        fleet = self.doc.get("fleet")
        if isinstance(fleet, MappingNode):
            check_ref(fleet.get("workload"))
        sweep = self.doc.get("sweep")
        if isinstance(sweep, MappingNode):
            axis = sweep.get("workload")
            if isinstance(axis, SequenceNode):
                for item in axis.items:
                    check_ref(item)
        roster = self.doc.get("vehicles")
        if isinstance(roster, SequenceNode):
            for item in roster.items:
                if isinstance(item, MappingNode):
                    check_ref(item.get("style"))

    def _swept(self, key: str) -> bool:
        sweep = self.doc.get("sweep")
        return isinstance(sweep, MappingNode) and key in sweep

    def check_plan(self) -> None:
        plan = self.require_mapping("plan")
        if plan is None:
            return
        for key in plan.keys():
            if key != "shards":
                self.report(
                    "SCN001", plan.key_line(key),
                    f"unknown key `{key}` in plan (known keys: shards)",
                )
        shards_node = plan.get("shards")
        if shards_node is None:
            self.report(
                "SCN001", plan.line,
                "plan is missing the required field `shards`",
            )
            return
        if not isinstance(shards_node, SequenceNode):
            self.report(
                "SCN001", plan.key_line("shards"),
                "`plan.shards` must be a sequence of per-partition "
                "vehicle-id lists",
            )
            return
        shards_line = plan.key_line("shards")
        for blocker in ("partitions", "vehicles"):
            if self._swept(blocker):
                self.report(
                    "SCN003", shards_line,
                    f"plan pins {len(shards_node.items)} shards but "
                    f"`{blocker}` is swept; drop the plan or the axis",
                )
                return
        shards: list[list[int]] = []
        for shard_node in shards_node.items:
            if not isinstance(shard_node, SequenceNode):
                self.report(
                    "SCN001", getattr(shard_node, "line", shards_line),
                    "each plan shard must be a sequence of vehicle ids",
                )
                return
            shard: list[int] = []
            for entry in shard_node.items:
                if not (
                    isinstance(entry, ScalarNode)
                    and isinstance(entry.value, int)
                    and not isinstance(entry.value, bool)
                ):
                    self.report(
                        "SCN001", getattr(entry, "line", shard_node.line),
                        "plan shard entries must be integer vehicle ids",
                    )
                    return
                shard.append(entry.value)
            shards.append(shard)
        maps = _cell_value_maps(self.doc)
        vehicles = effective_vehicles(self.doc, maps[0]) if maps else None
        if vehicles is None:
            return
        partitions = maps[0].get(
            "partitions", config_defaults().get("partitions")
        )
        if isinstance(partitions, int) and len(shards) != partitions:
            self.report(
                "SCN003", shards_line,
                f"plan has {len(shards)} shards for {partitions} "
                "partitions",
            )
        flat = [vehicle for shard in shards for vehicle in shard]
        unknown = sorted({v for v in flat if not 0 <= v < vehicles})
        if unknown:
            self.report(
                "SCN003", shards_line,
                f"plan shards name unknown vehicle ids {unknown} "
                f"(valid ids are 0..{vehicles - 1})",
            )
        duplicates = sorted({v for v in flat if flat.count(v) > 1})
        if duplicates:
            self.report(
                "SCN003", shards_line,
                f"plan shards assign vehicle ids {duplicates} more "
                "than once",
            )
        missing = sorted(set(range(vehicles)) - set(flat))
        if missing and not unknown:
            self.report(
                "SCN003", shards_line,
                f"plan shards leave vehicle ids {missing} unassigned",
            )

    def _max_over_cells(self, key: str) -> Optional[int]:
        values = [
            value for value_map in _cell_value_maps(self.doc)
            for value in [value_map.get(key, config_defaults().get(key))]
            if isinstance(value, int)
        ]
        return max(values) if values else None

    def _max_barrier_rounds(self) -> Optional[int]:
        """Most barrier rounds any cell runs, when statically known."""
        counts: list[int] = []
        for value_map in _cell_value_maps(self.doc):
            duration = value_map.get(
                "duration_s", config_defaults().get("duration_s")
            )
            step = value_map.get("barrier_s")
            if step is None:
                step = value_map.get("v2v_latency_s")
            if step is None:
                step = config_defaults().get("v2v_latency_s")
            if not isinstance(duration, (int, float)) or not isinstance(
                step, (int, float)
            ) or isinstance(duration, bool) or isinstance(step, bool):
                return None
            if step <= 0 or duration <= 0:
                return None
            counts.append(max(1, math.ceil(duration / step - 1e-9)))
        return max(counts) if counts else None

    def check_faults(self) -> None:
        faults = self.require_mapping("faults")
        if faults is None:
            return
        for key in faults.keys():
            if key != "kills":
                self.report(
                    "SCN001", faults.key_line(key),
                    f"unknown key `{key}` in faults (known keys: kills)",
                )
        kills = faults.get("kills")
        if kills is None:
            return
        if not isinstance(kills, SequenceNode):
            self.report(
                "SCN001", faults.key_line("kills"),
                "`faults.kills` must be a sequence of kill entries",
            )
            return
        max_partitions = self._max_over_cells("partitions")
        max_rounds = self._max_barrier_rounds()
        seen: dict[tuple[int, int], int] = {}
        for item in kills.items:
            if not isinstance(item, MappingNode):
                self.report(
                    "SCN001", getattr(item, "line", kills.line),
                    "each kill entry must be a mapping with `partition` "
                    "and `round`",
                )
                continue
            self.check_mapping_fields(item, _KILL_FIELDS, "kill entry")
            partition_node = item.get("partition")
            round_node = item.get("round")
            partition = (
                partition_node.value
                if isinstance(partition_node, ScalarNode)
                and isinstance(partition_node.value, int)
                and not isinstance(partition_node.value, bool)
                else None
            )
            round_index = (
                round_node.value
                if isinstance(round_node, ScalarNode)
                and isinstance(round_node.value, int)
                and not isinstance(round_node.value, bool)
                else None
            )
            if partition is None or round_index is None:
                continue
            if max_partitions is not None and partition >= max_partitions:
                self.report(
                    "SCN003", partition_node.line,
                    f"kill targets partition {partition} but no matrix "
                    f"cell runs more than {max_partitions} partitions",
                )
            if max_rounds is not None and round_index >= max_rounds:
                self.report(
                    "SCN003", round_node.line,
                    f"kill targets barrier round {round_index} but no "
                    f"matrix cell runs more than {max_rounds} rounds",
                )
            kill_key = (partition, round_index)
            if kill_key in seen:
                self.report(
                    "SCN003", item.line,
                    f"duplicate kill for partition {partition} round "
                    f"{round_index} (first defined on line "
                    f"{seen[kill_key]})",
                )
            else:
                seen[kill_key] = item.line

    def check_budget(self) -> None:
        budget = self.require_mapping("budget")
        if budget is None:
            return
        self.check_mapping_fields(budget, _BUDGET_FIELDS, "budget")
        if "cost" not in budget and "cells" not in budget:
            self.report(
                "SCN001", budget.line,
                "budget must declare `cost:` and/or `cells:`",
            )

    def check_cells(self) -> None:
        """Per-cell constraint checks (the bad-matrix-cell early warning)."""
        axes = dict(sweep_axes(self.doc))
        for cell in expand_cells(self.doc):
            values = dict(
                {k: s.value for k, s in base_settings(self.doc).items()},
                **dict(cell.overrides),
            )
            vehicles = effective_vehicles(self.doc, values)
            partitions = values.get(
                "partitions", config_defaults().get("partitions")
            )
            if not isinstance(vehicles, int) or not isinstance(
                partitions, int
            ):
                continue
            if partitions > vehicles:
                line = self._cell_anchor(cell, "partitions", axes)
                self.report(
                    "SCN001", line,
                    f"cell `{cell.name}`: partitions={partitions} exceeds "
                    f"vehicles={vehicles}",
                )

    def _cell_anchor(self, cell: CellSpec, key: str,
                     axes: dict[str, list[Setting]]) -> int:
        """The line of the axis value (or base setting) behind one cell key."""
        overridden = dict(cell.overrides)
        if key in overridden and key in axes:
            for setting in axes[key]:
                if setting.value == overridden[key]:
                    return setting.line
        base = base_settings(self.doc).get(key)
        if base is not None:
            return base.line
        return self.doc.line


def validate(doc: MappingNode) -> list[Issue]:
    """All SCN001/SCN002/SCN003 issues in one parsed scenario document."""
    return _Checker(doc).run()

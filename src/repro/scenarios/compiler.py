"""Scenario compiler: validated documents -> runnable ``FleetConfig``\\ s.

The lowering contract is deliberately boring: every scalar field in
``fleet:`` and ``links:`` is a :class:`~repro.fleet.config.FleetConfig`
keyword of the same name, so a scenario that only sets those fields
compiles to a config *equal* (dataclass equality) to the one a test
would build in Python -- which is what makes the byte-identical
trace-hash acceptance check meaningful rather than coincidental.

On top of that the compiler lowers:

* the ``vehicles:`` roster and ``styles:`` section into a
  :class:`~repro.workloads.styles.WorkloadStyle` with an explicit
  per-vehicle ``service_table`` (carried via ``FleetConfig.style_spec``);
* ``faults.kills`` into a picklable :class:`~repro.faults.prockill.
  KillPlan`;
* ``plan.shards`` into an explicit shard assignment;
* ``sweep:`` axes into the deterministic cell matrix (axes sorted by
  key, values in document order).

A document with schema issues never compiles: :func:`load_scenario`
raises :class:`ScenarioError` carrying the same line-anchored issues the
lint pack reports, so scenario errors surface as findings either way --
never as a runtime stack trace halfway into a fleet run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..faults.prockill import KillPhase, KillPlan, WorkerKill
from ..fleet.config import FleetConfig
from ..workloads.styles import STYLES, WorkloadStyle
from . import schema
from .yamlish import MappingNode, ScalarNode, SequenceNode, parse_text

__all__ = ["CompiledCell", "Scenario", "ScenarioError", "build_cell_config",
           "load_scenario", "compile_text"]


class ScenarioError(ValueError):
    """A scenario failed validation or lowering; carries its issues."""

    def __init__(self, path: str, issues: list[schema.Issue]):
        self.path = path
        self.issues = list(issues)
        lines = [
            f"{path}:{issue.line}: {issue.rule} {issue.message}"
            for issue in issues
        ]
        super().__init__(
            "scenario failed validation:\n" + "\n".join(lines)
        )


@dataclass(frozen=True)
class CompiledCell:
    """One matrix cell, lowered to a runnable config."""

    name: str
    overrides: tuple[tuple[str, object], ...]
    config: FleetConfig


@dataclass(frozen=True)
class Scenario:
    """A validated, fully lowered scenario document."""

    name: str
    description: str
    path: str
    cells: tuple[CompiledCell, ...]
    budget_cost: float | None = None
    budget_cells: int | None = None

    def cell(self, index: int) -> CompiledCell:
        """One cell by matrix position (the ``--cell N`` accessor)."""
        if not 0 <= index < len(self.cells):
            raise IndexError(
                f"scenario {self.name!r} has {len(self.cells)} cells; "
                f"cell {index} does not exist"
            )
        return self.cells[index]


def _scalar(doc: MappingNode, key: str, default):
    node = doc.get(key)
    if isinstance(node, ScalarNode) and node.value is not None:
        return node.value
    return default


def _roster_entries(doc: MappingNode) -> list[MappingNode]:
    roster = doc.get("vehicles")
    if not isinstance(roster, SequenceNode):
        return []
    return [item for item in roster.items if isinstance(item, MappingNode)]


def _custom_styles(doc: MappingNode) -> dict[str, tuple[int, float]]:
    """``styles:`` section as ``{id: (services, cost_weight)}``."""
    styles = doc.get("styles")
    out: dict[str, tuple[int, float]] = {}
    if not isinstance(styles, MappingNode):
        return out
    for style_id, node in styles.items():
        if not isinstance(node, MappingNode):
            continue
        services = node.get("services")
        weight = node.get("cost_weight")
        count = services.value if isinstance(services, ScalarNode) else 1
        out[style_id] = (
            int(count),
            float(weight.value) if isinstance(weight, ScalarNode) else 1.0,
        )
    return out


def _style_lowering(
    doc: MappingNode, workload: str, vehicles: int,
) -> tuple[str, WorkloadStyle | None]:
    """(workload name, style_spec) for one cell.

    Plain scenarios (built-in workload, no roster styling) lower to
    ``style_spec=None`` so the config stays dataclass-equal to a
    hand-built one; anything custom gets an explicit service table.
    """
    custom = _custom_styles(doc)
    entries = _roster_entries(doc)
    styled = any("style" in e or "services" in e for e in entries)
    if workload not in custom and not styled:
        return workload, None
    table: list[int] = []
    weight = custom[workload][1] if workload in custom else 1.0
    by_id: dict[int, MappingNode] = {}
    for entry in entries:
        id_node = entry.get("id")
        if isinstance(id_node, ScalarNode) and isinstance(id_node.value, int):
            by_id[id_node.value] = entry
    for vehicle in range(vehicles):
        entry = by_id.get(vehicle)
        services_node = entry.get("services") if entry is not None else None
        style_node = entry.get("style") if entry is not None else None
        if isinstance(services_node, ScalarNode) and isinstance(
            services_node.value, int
        ):
            table.append(services_node.value)
            continue
        style_name = workload
        if isinstance(style_node, ScalarNode) and isinstance(
            style_node.value, str
        ):
            style_name = style_node.value
        if style_name in custom:
            table.append(custom[style_name][0])
        elif style_name in STYLES:
            table.append(STYLES[style_name].service_count(vehicle))
        else:
            table.append(1)
    spec = WorkloadStyle(
        name=workload, service_table=tuple(table),
        service_cost_weight=weight,
    )
    return workload, spec


def _kill_plan(doc: MappingNode) -> KillPlan | None:
    faults = doc.get("faults")
    if not isinstance(faults, MappingNode):
        return None
    kills = faults.get("kills")
    if not isinstance(kills, SequenceNode) or not kills.items:
        return None
    events = []
    for item in kills.items:
        if not isinstance(item, MappingNode):
            continue
        partition = _scalar(item, "partition", None)
        round_index = _scalar(item, "round", None)
        phase = _scalar(item, "phase", KillPhase.ON_ADVANCE)
        if isinstance(partition, int) and isinstance(round_index, int):
            events.append(
                WorkerKill(
                    partition=partition, barrier_index=round_index,
                    phase=str(phase),
                )
            )
    return KillPlan(kills=tuple(events)) if events else None


def _plan_shards(doc: MappingNode) -> tuple[tuple[int, ...], ...] | None:
    plan = doc.get("plan")
    if not isinstance(plan, MappingNode):
        return None
    shards_node = plan.get("shards")
    if not isinstance(shards_node, SequenceNode):
        return None
    shards = []
    for shard_node in shards_node.items:
        if not isinstance(shard_node, SequenceNode):
            return None
        shard = []
        for entry in shard_node.items:
            if not isinstance(entry, ScalarNode) or not isinstance(
                entry.value, int
            ):
                return None
            shard.append(entry.value)
        shards.append(tuple(shard))
    return tuple(shards)


def build_cell_config(doc: MappingNode, cell: schema.CellSpec) -> FleetConfig:
    """Lower one validated matrix cell into a runnable ``FleetConfig``.

    Also the static cost model's entry point: SCN005 budgets estimate a
    matrix by building each cell's config exactly as the runner would.
    Raises ``ValueError`` (from ``FleetConfig``) when the cell's merged
    settings are not runnable.
    """
    values = {
        key: setting.value
        for key, setting in schema.base_settings(doc).items()
    }
    values.update(dict(cell.overrides))
    vehicles = schema.effective_vehicles(doc, values)
    if vehicles is not None:
        values["vehicles"] = vehicles
    workload = values.get("workload")
    if not isinstance(workload, str):
        workload = str(schema.config_defaults().get("workload", "uniform"))
    workload, style_spec = _style_lowering(
        doc, workload, values.get("vehicles", 0) or 1
    )
    values["workload"] = workload
    kwargs = {
        key: value for key, value in values.items()
        if key in schema.FLEET_FIELDS or key in schema.LINK_FIELDS
    }
    kill_plan = _kill_plan(doc)
    if kill_plan is not None:
        kwargs["kill_plan"] = kill_plan
    shards = _plan_shards(doc)
    if shards is not None:
        kwargs["plan"] = shards
    if style_spec is not None:
        kwargs["style_spec"] = style_spec
    # Scenario values are data: SCN004 re-proves barrier safety per
    # document, and FleetConfig validates at runtime -- so this site
    # must not poison the planner's tree-wide latency proof.
    return FleetConfig(**kwargs)  # vdaplint: dynamic-config


def compile_text(text: str, path: str = "<scenario>") -> Scenario:
    """Parse, validate, and lower scenario source text.

    Raises :class:`~repro.scenarios.yamlish.ScenarioSyntaxError` on
    malformed text and :class:`ScenarioError` on validation or lowering
    failures; a returned :class:`Scenario` is runnable.
    """
    doc = parse_text(text, path)
    issues = schema.validate(doc)
    if issues:
        raise ScenarioError(path, issues)
    cells = []
    for cell in schema.expand_cells(doc):
        try:
            config = build_cell_config(doc, cell)
        except ValueError as exc:
            raise ScenarioError(path, [
                schema.Issue(
                    line=doc.line, rule="SCN001",
                    message=f"cell `{cell.name}` fails to lower: {exc}",
                )
            ]) from exc
        cells.append(CompiledCell(cell.name, cell.overrides, config))
    budget = doc.get("budget")
    budget_cost = budget_cells = None
    if isinstance(budget, MappingNode):
        cost = _scalar(budget, "cost", None)
        cap = _scalar(budget, "cells", None)
        budget_cost = float(cost) if isinstance(cost, (int, float)) else None
        budget_cells = cap if isinstance(cap, int) else None
    default_name = os.path.splitext(os.path.basename(path))[0]
    return Scenario(
        name=str(_scalar(doc, "name", default_name)),
        description=str(_scalar(doc, "description", "")),
        path=path,
        cells=tuple(cells),
        budget_cost=budget_cost,
        budget_cells=budget_cells,
    )


def load_scenario(path: str) -> Scenario:
    """Compile one scenario file from disk."""
    with open(path, encoding="utf-8") as fh:
        return compile_text(fh.read(), path)

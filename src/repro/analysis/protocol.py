"""Resource-protocol checking: path-sensitive state machines over grants.

The DES kernel's resources (:mod:`repro.sim.resources`) follow a strict
protocol: ``grant = resource.request()`` enqueues, ``yield grant`` waits
for the grant, ``resource.release(grant)`` returns the slot (releasing a
still-queued grant cancels it).  A grant that escapes a function without
a release leaks a slot forever -- and because sim processes can be
interrupted *at any yield*, the leak-free pattern is ``try:``/``finally:``
around everything between request and release.

This module interprets each function as a path-sensitive state machine
over its grant tokens (``REQUESTED -> HELD -> RELEASED``), forking on
``if``/``try`` and modeling exception paths by snapshotting the token
state before every statement that can raise.  Sanctioned escapes are
recognized: returning a grant hands ownership to the caller (the
``DSF.acquire`` idiom), and storing it on an object or passing it to
another call transfers ownership out of the function's scope.

Rules emitted here:

* **RES101** -- a grant can leave the function unreleased on some path
  (normal or exception).
* **RES102** -- a grant is released twice, or released before it was
  ever yielded outside of an exception-cleanup context.
* **PROTO001** -- a sim process generator yields a value that cannot be
  an :class:`~repro.sim.core.Event` (a literal, tuple, comparison, ...),
  which the kernel rejects at runtime with ``SimulationError``.

These rules only run on modules that import the sim layer, and never on
``test_*``/``bench_*``/``conftest`` modules (tests exercise the kernel's
misuse handling on purpose).
"""

from __future__ import annotations

import ast
from typing import Callable, Optional

from .engine import Finding, Rule
from .units import ModuleSummary, _param_nodes

__all__ = [
    "ResLeakRule",
    "ResDoubleReleaseRule",
    "ProtoYieldRule",
    "PROTOCOL_RULE_CLASSES",
    "ProtocolChecker",
]

#: Method names whose call result is a grant token.
REQUEST_ATTRS = frozenset({"request", "acquire"})
#: Method names that consume a grant token.
RELEASE_ATTRS = frozenset({"release"})
#: Attribute calls whose yield marks a generator as a sim process.
SIM_YIELD_ATTRS = frozenset(
    {"timeout", "request", "acquire", "event", "process", "all_of", "any_of"}
)
#: Module basename prefixes exempt from protocol rules.
TEST_PREFIXES = ("test_", "bench_")

# Token states.
REQUESTED = "requested"
HELD = "held"
RELEASED = "released"
ESCAPED = "escaped"

#: Fork-explosion guard: beyond this many simultaneous paths per function
#: the interpreter keeps the first ``MAX_PATHS`` (soundness over the kept
#: paths is preserved; dropped paths simply go unchecked).
MAX_PATHS = 64


class ResLeakRule(Rule):
    """RES101: a grant escapes the function without a matching release."""

    id = "RES101"
    name = "resource-leak"
    description = (
        "a Resource.request() grant can escape the function without "
        "release() on some path (including exception paths); wrap the "
        "yield/use in try/finally"
    )


class ResDoubleReleaseRule(Rule):
    """RES102: double release, or release of a never-yielded grant."""

    id = "RES102"
    name = "resource-double-release"
    description = (
        "a grant is released twice, or released before ever being "
        "yielded (an immediate cancel) outside exception cleanup"
    )


class ProtoYieldRule(Rule):
    """PROTO001: sim process generator yields a non-Event value."""

    id = "PROTO001"
    name = "protocol-yield"
    description = (
        "sim process generator yields a value that cannot be an Event "
        "(literal/tuple/comparison); the kernel raises SimulationError"
    )


PROTOCOL_RULE_CLASSES = [ResLeakRule, ResDoubleReleaseRule, ProtoYieldRule]


def module_in_protocol_scope(summary: ModuleSummary) -> bool:
    """Protocol rules apply to non-test modules that touch the sim layer."""
    basename = summary.module.rsplit(".", 1)[-1]
    if basename.startswith(TEST_PREFIXES) or basename == "conftest":
        return False
    for target in summary.imports.values():
        if "sim" in target.lstrip(".").split("."):
            return True
    return False


class _State:
    """Token states along one execution path."""

    __slots__ = ("tokens", "exceptional")

    def __init__(self, tokens: Optional[dict[str, tuple[str, int]]] = None,
                 exceptional: bool = False):
        self.tokens = tokens if tokens is not None else {}
        self.exceptional = exceptional

    def copy(self, exceptional: Optional[bool] = None) -> "_State":
        return _State(
            dict(self.tokens),
            self.exceptional if exceptional is None else exceptional,
        )

    def active(self) -> list[str]:
        return [n for n, (s, _) in self.tokens.items() if s in (REQUESTED, HELD)]


_Sink = Callable[[_State, ast.AST], None]


def _dotted_leaf(node: ast.expr) -> Optional[str]:
    return node.attr if isinstance(node, ast.Attribute) else None


def _is_request_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in REQUEST_ATTRS
    )


def _release_target(stmt: ast.stmt) -> Optional[tuple[ast.Call, Optional[str]]]:
    """``(call, token_name)`` when ``stmt`` is a bare ``x.release(name)``."""
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return None
    call = stmt.value
    if not isinstance(call.func, ast.Attribute) or call.func.attr not in RELEASE_ATTRS:
        return None
    if len(call.args) == 1 and isinstance(call.args[0], ast.Name):
        return call, call.args[0].id
    return call, None


def _names_in(expr: ast.expr) -> set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _can_raise(stmt: ast.stmt) -> bool:
    """Conservatively: does executing ``stmt`` possibly raise?

    Yields can deliver :class:`Interrupt`, calls can throw, subscripts can
    ``KeyError``.  Pure release statements are exempt so ``finally:
    resource.release(grant)`` is not itself treated as a leak point.
    """
    if _release_target(stmt) is not None:
        return False
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Yield, ast.YieldFrom, ast.Raise,
                             ast.Subscript, ast.Await)):
            return True
    return False


_NON_EVENT_NODES = (
    ast.Constant, ast.Tuple, ast.List, ast.Dict, ast.Set, ast.JoinedStr,
    ast.Compare, ast.BoolOp, ast.BinOp, ast.GeneratorExp, ast.ListComp,
    ast.DictComp, ast.SetComp, ast.Lambda,
)


class ProtocolChecker:
    """Runs RES101/RES102/PROTO001 over one file."""

    def __init__(self, rules: Optional[dict[str, Rule]] = None):
        catalogue = {cls.id: cls() for cls in PROTOCOL_RULE_CLASSES}
        self.rules = rules if rules is not None else catalogue

    def check_module(self, summary: ModuleSummary, source: str,
                     tree: ast.Module) -> list[Finding]:
        if not module_in_protocol_scope(summary):
            return []
        self._summary = summary
        self._lines = source.splitlines()
        self.findings: list[Finding] = []
        process_targets = self._process_registrations(tree)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if "RES101" in self.rules or "RES102" in self.rules:
                    _FunctionInterp(self, node).run()
                if "PROTO001" in self.rules:
                    self._check_yields(node, process_targets)
        return sorted(set(self.findings))

    # -- PROTO001 ----------------------------------------------------------

    @staticmethod
    def _process_registrations(tree: ast.Module) -> set[str]:
        """Function names passed (called or bare) into ``.process(...)``."""
        targets: set[str] = set()
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "process"):
                continue
            for arg in node.args:
                inner = arg.func if isinstance(arg, ast.Call) else arg
                if isinstance(inner, ast.Name):
                    targets.add(inner.id)
                elif isinstance(inner, ast.Attribute):
                    targets.add(inner.attr)
        return targets

    def _own_yields(self, func: ast.AST) -> list[ast.Yield]:
        """Yields belonging to ``func`` itself, not nested defs/lambdas.

        Statements after a ``return``/``raise`` in the same block are
        unreachable and skipped -- the ``return; yield`` generator-marker
        idiom never executes its yield.
        """
        out: list[ast.Yield] = []

        def visit_node(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                return
            if isinstance(node, ast.Yield):
                out.append(node)
            for _field, value in ast.iter_fields(node):
                if isinstance(value, ast.AST):
                    visit_node(value)
                elif isinstance(value, list):
                    if value and all(isinstance(i, ast.stmt) for i in value):
                        visit_block(value)
                    else:
                        for item in value:
                            if isinstance(item, ast.AST):
                                visit_node(item)

        def visit_block(stmts: list) -> None:
            for stmt in stmts:
                visit_node(stmt)
                if isinstance(stmt, (ast.Return, ast.Raise)):
                    break  # rest of this block is unreachable

        visit_block(list(getattr(func, "body", [])))
        return out

    def _check_yields(self, func: ast.AST, process_targets: set[str]) -> None:
        yields = self._own_yields(func)
        if not yields:
            return
        sim_like = func.name in process_targets
        if not sim_like:
            for node in yields:
                value = node.value
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Attribute)
                        and value.func.attr in SIM_YIELD_ATTRS):
                    sim_like = True
                    break
        if not sim_like:
            return
        for node in yields:
            value = node.value
            if value is None:
                self.report("PROTO001", node,
                            f"sim process `{func.name}` has a bare `yield` "
                            "(yields None, not an Event)")
            elif isinstance(value, _NON_EVENT_NODES):
                kind = type(value).__name__
                self.report("PROTO001", node,
                            f"sim process `{func.name}` yields a {kind}, "
                            "which is not an Event")

    # -- reporting ---------------------------------------------------------

    def report(self, rule_id: str, node: ast.AST, message: str,
               line: Optional[int] = None) -> None:
        rule = self.rules.get(rule_id)
        if rule is None:
            return
        lineno = line if line is not None else getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) if line is None else 0
        snippet = ""
        if 1 <= lineno <= len(self._lines):
            snippet = self._lines[lineno - 1].strip()
        self.findings.append(
            Finding(path=self._summary.path, line=lineno, col=col,
                    rule=rule.id, message=message, snippet=snippet)
        )


class _FunctionInterp:
    """Path-sensitive interpreter over one function's grant tokens."""

    def __init__(self, checker: ProtocolChecker, func: ast.AST):
        self.checker = checker
        self.func = func
        self.params = {a.arg for a in _param_nodes(func)}
        self._reported: set[tuple[str, str, int, str]] = set()

    def run(self) -> None:
        states = [_State()]
        out = self._exec_block(self.func.body, states, self._exit_exception,
                               self._exit_return)
        for state in out:
            self._exit_return(state, self.func)

    # -- exits -------------------------------------------------------------

    def _exit_return(self, state: _State, node: ast.AST) -> None:
        self._check_leaks(state, "normal")

    def _exit_exception(self, state: _State, node: ast.AST) -> None:
        self._check_leaks(state, "exception")

    def _check_leaks(self, state: _State, kind: str) -> None:
        for name, (status, req_line) in state.tokens.items():
            if status not in (REQUESTED, HELD):
                continue
            detail = ("while still queued" if status == REQUESTED
                      else "while holding the grant")
            self._report_once(
                "RES101", name, req_line, kind,
                f"grant `{name}` (requested at line {req_line}) can leave "
                f"`{self.func.name}` on a {kind} path {detail} without "
                "release(); wrap the section in try/finally",
            )

    def _report_once(self, rule_id: str, token: str, line: int, kind: str,
                     message: str) -> None:
        # One finding per (token, anchor line): a grant that leaks on both a
        # normal and an exception path is still one bug with one fix.
        key = (rule_id, token, line)
        if key in self._reported:
            return
        self._reported.add(key)
        self.checker.report(rule_id, self.func, message, line=line)

    # -- statement interpretation ------------------------------------------

    def _exec_block(self, stmts, states: list[_State], exc: _Sink,
                    ret: _Sink) -> list[_State]:
        for stmt in stmts:
            if not states:
                break
            states = self._exec_stmt(stmt, states, exc, ret)
            if len(states) > MAX_PATHS:
                states = states[:MAX_PATHS]
        return states

    def _exec_stmt(self, stmt: ast.stmt, states: list[_State], exc: _Sink,
                   ret: _Sink) -> list[_State]:
        # Exception-escape snapshot *before* the statement's effects: the
        # token is still live if this statement raises mid-flight.
        if _can_raise(stmt) and not isinstance(stmt, (ast.Try, ast.Raise)):
            for state in states:
                if state.active():
                    exc(state.copy(exceptional=True), stmt)

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return states  # nested defs are interpreted separately
        if isinstance(stmt, ast.Return):
            for state in states:
                if stmt.value is not None:
                    self._mark_escaped(state, _names_in(stmt.value))
                ret(state, stmt)
            return []
        if isinstance(stmt, ast.Raise):
            for state in states:
                exc(state.copy(exceptional=True), stmt)
            return []
        if isinstance(stmt, ast.Assign):
            return self._exec_assign(stmt, states)
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            for state in states:
                self._scan_expr(stmt.value, state, is_release_stmt=False)
            return states
        if isinstance(stmt, ast.Expr):
            return self._exec_expr_stmt(stmt, states)
        if isinstance(stmt, ast.If):
            then = self._exec_block(stmt.body, [s.copy() for s in states], exc, ret)
            other = self._exec_block(stmt.orelse, states, exc, ret)
            return then + other
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            for state in states:
                expr = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
                self._scan_expr(expr, state, is_release_stmt=False)
            once = self._exec_block(stmt.body, [s.copy() for s in states], exc, ret)
            merged = states + once
            return self._exec_block(stmt.orelse, merged, exc, ret)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for state in states:
                for item in stmt.items:
                    self._scan_expr(item.context_expr, state, is_release_stmt=False)
            return self._exec_block(stmt.body, states, exc, ret)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, states, exc, ret)
        return states

    def _exec_try(self, stmt: ast.Try, states: list[_State], exc: _Sink,
                  ret: _Sink) -> list[_State]:
        if stmt.finalbody:
            final = stmt.finalbody

            def through_finally(sink: _Sink) -> _Sink:
                def wrapped(state: _State, node: ast.AST) -> None:
                    for out in self._exec_block(final, [state.copy()], exc, ret):
                        sink(out, node)
                return wrapped

            outer_exc = through_finally(exc)
            outer_ret = through_finally(ret)
        else:
            outer_exc, outer_ret = exc, ret

        snapshots: list[_State] = []

        def collect(state: _State, node: ast.AST) -> None:
            if len(snapshots) < MAX_PATHS:
                snapshots.append(state)

        body_out = self._exec_block(stmt.body, [s.copy() for s in states],
                                    collect, outer_ret)
        body_out = self._exec_block(stmt.orelse, body_out, collect, outer_ret)

        handled: list[_State] = []
        for handler in stmt.handlers:
            entry = [s.copy(exceptional=True) for s in snapshots]
            handled.extend(
                self._exec_block(handler.body, entry, outer_exc, outer_ret)
            )
        # With no handlers the exception propagates past this try (through
        # finally if present).  When handlers exist we assume one matches:
        # modelling the no-match path too would flag the standard
        # ``except: release(); raise`` cleanup idiom as a leak.
        if not stmt.handlers:
            for state in snapshots:
                outer_exc(state.copy(exceptional=True), stmt)

        normal = body_out + handled
        if stmt.finalbody:
            normal = self._exec_block(stmt.finalbody, normal, exc, ret)
        if len(normal) > MAX_PATHS:
            normal = normal[:MAX_PATHS]
        return normal

    # -- expression-level semantics ----------------------------------------

    def _exec_assign(self, stmt: ast.Assign, states: list[_State]) -> list[_State]:
        value = stmt.value
        target = stmt.targets[0] if len(stmt.targets) == 1 else None
        if _is_request_call(value) and isinstance(target, ast.Name):
            for state in states:
                prior = state.tokens.get(target.id)
                if prior is not None and prior[0] in (REQUESTED, HELD):
                    self._report_once(
                        "RES101", target.id, prior[1], "overwrite",
                        f"grant `{target.id}` (requested at line {prior[1]}) "
                        "is overwritten by a new request() without release()",
                    )
                state.tokens[target.id] = (REQUESTED, stmt.lineno)
            return states
        for state in states:
            self._scan_expr(value, state, is_release_stmt=False)
            if isinstance(value, ast.Yield) and value.value is not None:
                self._note_yield(value.value, state)
            # Aliasing or storing a token elsewhere transfers ownership
            # out of this function's tracking.
            tracked = _names_in(value) & set(state.tokens)
            if tracked and not (isinstance(target, ast.Name)
                                and target.id in state.tokens
                                and value is not None
                                and isinstance(value, ast.Name)
                                and value.id == target.id):
                self._mark_escaped(state, tracked)
            if isinstance(target, ast.Name):
                state.tokens.pop(target.id, None)
        return states

    def _exec_expr_stmt(self, stmt: ast.Expr, states: list[_State]) -> list[_State]:
        release = _release_target(stmt)
        if release is not None:
            call, token = release
            for state in states:
                self._apply_release(call, token, state)
            return states
        value = stmt.value
        for state in states:
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                if value.value is not None:
                    self._note_yield(value.value, state)
            else:
                self._scan_expr(value, state, is_release_stmt=False)
        return states

    def _note_yield(self, value: ast.expr, state: _State) -> None:
        """``yield grant`` transitions the token REQUESTED -> HELD."""
        if isinstance(value, ast.Name) and value.id in state.tokens:
            status, line = state.tokens[value.id]
            if status == REQUESTED:
                state.tokens[value.id] = (HELD, line)
        else:
            self._scan_expr(value, state, is_release_stmt=False)

    def _apply_release(self, call: ast.Call, token: Optional[str],
                       state: _State) -> None:
        if token is None or token not in state.tokens:
            return  # releasing a parameter/foreign grant: caller's business
        status, line = state.tokens[token]
        if status == RELEASED:
            self._report_once(
                "RES102", token, call.lineno, "double",
                f"grant `{token}` is released again at line {call.lineno} "
                f"(already released; first requested at line {line})",
            )
        elif status == REQUESTED and not state.exceptional:
            self._report_once(
                "RES102", token, call.lineno, "early",
                f"grant `{token}` is released at line {call.lineno} before "
                "ever being yielded -- this cancels the request immediately",
            )
            state.tokens[token] = (RELEASED, line)
        else:
            state.tokens[token] = (RELEASED, line)

    def _scan_expr(self, expr: ast.expr, state: _State,
                   is_release_stmt: bool) -> None:
        """Passing a token into any call transfers ownership (no leak FPs)."""
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr in RELEASE_ATTRS:
                continue  # handled by _apply_release at statement level
            passed = set()
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id in state.tokens:
                    passed.add(arg.id)
            if passed:
                self._mark_escaped(state, passed)

    def _mark_escaped(self, state: _State, names: set[str]) -> None:
        for name in names:
            if name in state.tokens:
                status, line = state.tokens[name]
                if status in (REQUESTED, HELD):
                    state.tokens[name] = (ESCAPED, line)

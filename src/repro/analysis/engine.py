"""Single-pass AST lint engine with a rule registry and pragma suppression.

The engine parses each file once and performs **one** tree walk per file.
Rules do not walk the AST themselves: they register ``visit_<NodeType>``
methods, the engine builds a dispatch table mapping node types to the
interested rules, and every node is offered to each registered handler as
the shared walk passes over it.  Linting all of ``src/repro`` therefore
costs one parse plus one traversal per file regardless of how many rules
are enabled.

Suppression pragmas:

* ``# vdaplint: disable=DET001,RES001`` on a line suppresses those rules
  (or ``all``) for findings reported on that line.
* ``# vdaplint: disable-file=DET002`` anywhere in the file suppresses the
  listed rules for the whole file.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "Finding",
    "FileContext",
    "Pragmas",
    "Rule",
    "LintEngine",
    "SKIP_MARKER",
    "discover_files",
    "lint_source",
    "lint_paths",
]

#: Matches both line pragmas and file pragmas; group 1 is the scope
#: (``disable`` or ``disable-file``), group 2 the comma-separated rule ids.
PRAGMA_RE = re.compile(
    r"#\s*vdaplint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)"
)

#: Rule id used for files that fail to parse.
PARSE_ERROR_RULE = "E999"

#: Dropping this marker file in a directory exempts it (and everything
#: below it) from directory-walk discovery -- the opt-out for fixture
#: corpora whose violations are deliberate.  Explicitly-named files are
#: still linted.
SKIP_MARKER = ".vdaplint-skip"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation: where it is, which rule fired, and why.

    ``snippet`` carries the stripped source line so baselines can
    fingerprint a finding in a way that survives line-number drift.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""

    def location(self) -> str:
        """``path:line:col`` for human-readable reports."""
        return f"{self.path}:{self.line}:{self.col}"


class Pragmas:
    """Parsed suppression pragmas for one file."""

    def __init__(self, source: str):
        self.line_rules: dict[int, set[str]] = {}
        self.file_rules: set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = PRAGMA_RE.search(text)
            if not match:
                continue
            scope, raw = match.groups()
            rules = {part.strip() for part in raw.split(",") if part.strip()}
            if scope == "disable":
                self.line_rules.setdefault(lineno, set()).update(rules)
            else:
                self.file_rules.update(rules)

    def suppressed(self, line: int, rule: str) -> bool:
        if "all" in self.file_rules or rule in self.file_rules:
            return True
        rules = self.line_rules.get(line)
        return rules is not None and ("all" in rules or rule in rules)


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` / ``name`` / ``description`` and define
    ``visit_<NodeType>(self, node, ctx)`` methods; the engine discovers
    those by introspection and calls them from its single shared walk.
    Rules must be stateless across files -- per-file scratch space lives
    in :attr:`FileContext.scratch`.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    #: Bump when a rule's semantics change without its id changing; the
    #: incremental cache keys on ``id@version`` so edited rules re-run.
    version: int = 1

    def handlers(self) -> dict[type, Callable]:
        """Map AST node types to this rule's bound visitor methods."""
        table: dict[type, Callable] = {}
        for attr in dir(self):
            if not attr.startswith("visit_"):
                continue
            node_type = getattr(ast, attr[len("visit_"):], None)
            if node_type is not None and isinstance(node_type, type):
                table[node_type] = getattr(self, attr)
        return table


class FileContext:
    """Everything a rule can know about the file being linted."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.imports = self._collect_imports(tree)
        #: Per-rule scratch space, reset per file (keyed by rule id).
        self.scratch: dict[str, object] = {}
        self.findings: list[Finding] = []
        self._func_stack: list[ast.AST] = []
        self._generator_funcs: set[ast.AST] = self._find_generators(tree)

    # -- derived metadata --------------------------------------------------

    @property
    def module_name(self) -> str:
        """Module basename without extension (``uplink``, ``__init__``)."""
        return os.path.splitext(os.path.basename(self.path))[0]

    @property
    def subsystem(self) -> Optional[str]:
        """The ``repro`` subpackage this file lives in, if discernible.

        ``src/repro/edgeos/elastic.py`` -> ``edgeos``; paths that do not
        contain a ``repro`` component return ``None`` (standalone files are
        treated as in-scope by subsystem-scoped rules).
        """
        parts = self.path.replace(os.sep, "/").split("/")
        for i, part in enumerate(parts[:-1]):
            if part == "repro":
                remainder = parts[i + 1 : -1]
                return remainder[0] if remainder else None
        return None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # -- name resolution ---------------------------------------------------

    @staticmethod
    def _collect_imports(tree: ast.Module) -> dict[str, str]:
        imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                module = "." * node.level + (node.module or "")
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports[local] = f"{module}.{alias.name}" if module else alias.name
        return imports

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain through the file's imports.

        ``np.random.seed`` with ``import numpy as np`` resolves to
        ``numpy.random.seed``; ``monotonic`` with ``from time import
        monotonic`` resolves to ``time.monotonic``.  Returns ``None`` for
        expressions that are not simple dotted chains (calls, subscripts).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.imports.get(node.id, node.id))
        return ".".join(reversed(parts))

    # -- generator / scope tracking ---------------------------------------

    @staticmethod
    def _find_generators(tree: ast.Module) -> set[ast.AST]:
        generators: set[ast.AST] = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack: list[ast.AST] = list(node.body)
            while stack:
                inner = stack.pop()
                if isinstance(inner, (ast.Yield, ast.YieldFrom)):
                    generators.add(node)
                    break
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue  # yields inside nested functions belong to them
                stack.extend(ast.iter_child_nodes(inner))
        return generators

    def in_generator(self) -> bool:
        """True when the innermost enclosing def is a generator (sim process)."""
        for func in reversed(self._func_stack):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return func in self._generator_funcs
        return False

    # -- reporting ---------------------------------------------------------

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        """File a finding anchored at ``node``'s source position."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.report_at(rule, line, col, message)

    def report_at(self, rule: "Rule", line: int, col: int, message: str) -> None:
        """File a finding at an explicit position (module-level findings)."""
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=col,
                rule=rule.id,
                message=message,
                snippet=self.line_text(line),
            )
        )


class LintEngine:
    """Runs a rule pack over files with one shared AST walk per file."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules = list(rules)
        self._dispatch: dict[type, list[Callable]] = {}
        for rule in self.rules:
            for node_type, handler in rule.handlers().items():
                self._dispatch.setdefault(node_type, []).append(handler)

    def lint_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one unit of source text; returns sorted, pragma-filtered findings."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as err:
            return [
                Finding(
                    path=path,
                    line=err.lineno or 1,
                    col=(err.offset or 1) - 1,
                    rule=PARSE_ERROR_RULE,
                    message=f"syntax error: {err.msg}",
                )
            ]
        return self.lint_parsed(path, source, tree)

    def lint_parsed(self, path: str, source: str,
                    tree: ast.Module) -> list[Finding]:
        """Lint an already-parsed module (the cache parses each file once)."""
        ctx = FileContext(path, source, tree)
        self._walk(tree, ctx)
        pragmas = Pragmas(source)
        kept = [f for f in ctx.findings if not pragmas.suppressed(f.line, f.rule)]
        return sorted(kept)

    def lint_file(self, path: str) -> list[Finding]:
        """Read and lint one file; unreadable files become E999 findings."""
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, UnicodeDecodeError) as err:
            return [
                Finding(path=path, line=1, col=0, rule=PARSE_ERROR_RULE,
                        message=f"cannot read file: {err}")
            ]
        return self.lint_source(source, path=path)

    def lint_paths(self, paths: Iterable[str]) -> list[Finding]:
        """Lint every python file under ``paths`` (files or directories)."""
        findings: list[Finding] = []
        for path in discover_files(paths):
            findings.extend(self.lint_file(path))
        return sorted(findings)

    def _walk(self, node: ast.AST, ctx: FileContext) -> None:
        for handler in self._dispatch.get(type(node), ()):  # single dispatch point
            handler(node, ctx)
        is_func = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        if is_func:
            ctx._func_stack.append(node)
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]
            self._walk(child, ctx)
        if is_func:
            ctx._func_stack.pop()


def discover_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises ``FileNotFoundError`` for paths that do not exist so the CLI can
    turn that into a usage error rather than silently linting nothing.
    """
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.append(path)
        elif os.path.isdir(path):
            # dirnames.sort() pins the walk order deterministically.
            for dirpath, dirnames, filenames in os.walk(path):  # vdaplint: disable=DET004
                dirnames.sort()
                if SKIP_MARKER in filenames:
                    dirnames[:] = []  # do not descend further either
                    continue
                for fname in sorted(filenames):
                    if fname.endswith(".py"):
                        out.append(os.path.join(dirpath, fname))
        else:
            raise FileNotFoundError(path)
    return sorted(set(out))


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence[Rule]] = None) -> list[Finding]:
    """Convenience wrapper: lint source text with ``rules`` (default pack)."""
    from .rules import default_rules

    return LintEngine(rules if rules is not None else default_rules()).lint_source(
        source, path=path
    )


def lint_paths(paths: Iterable[str],
               rules: Optional[Sequence[Rule]] = None) -> list[Finding]:
    """Convenience wrapper: lint files/directories with ``rules`` (default pack)."""
    from .rules import default_rules

    return LintEngine(rules if rules is not None else default_rules()).lint_paths(paths)

"""Runtime determinism sanitizer: the dynamic half of the contract check.

Static analysis proves the *code* cannot reach nondeterminism sources;
this module checks the *execution*.  A :class:`DeterminismSanitizer`
wraps a live :class:`~repro.sim.core.Simulator` and records, for every
event the loop fires, a :class:`TraceRecord` of (sequence number, sim
time, event kind, process name) folded into a rolling BLAKE2 hash.  Two
runs of the same seeded scenario must produce identical ``trace_hash``
values; when they do not, :meth:`DeterminismSanitizer.diff` walks the
two traces to the **first diverging event**, which is almost always the
component that smuggled in wall-clock time, an unseeded RNG, or
hash-order iteration.

RNG discipline is watched the same way: :meth:`watch_rng` wraps a
:class:`~repro.sim.random.RngRegistry` so every draw increments a
per-(stream, method) counter -- same seed, same code path => identical
draw counts, and a drifted counter names the stream that diverged.

The sanitizer is opt-in and zero-cost when absent: it installs a single
kernel trace tap (:meth:`~repro.sim.core.Simulator.add_trace_tap`) on the
simulator handed to it and removes it on :meth:`detach` (or
context-manager exit) -- no per-event wrapper objects are allocated.
"""

from __future__ import annotations

import hashlib
from typing import Any, NamedTuple, Optional

__all__ = [
    "Divergence",
    "DeterminismSanitizer",
    "TraceRecord",
]


class TraceRecord(NamedTuple):
    """One fired event, as the sanitizer saw it."""

    seq: int
    time: float
    kind: str
    name: str

    def text(self) -> str:
        return f"#{self.seq} t={self.time!r} {self.kind}({self.name})"


class Divergence(NamedTuple):
    """The first point where two traces disagree."""

    index: int
    left: Optional[TraceRecord]
    right: Optional[TraceRecord]

    def explain(self) -> str:
        left = self.left.text() if self.left else "<trace ended>"
        right = self.right.text() if self.right else "<trace ended>"
        return f"first divergence at event {self.index}: {left} != {right}"


class _CountingRng:
    """Duck-typed RNG proxy that counts draws per method name."""

    def __init__(self, stream_name: str, rng: Any, counts: dict[tuple[str, str], int]):
        self._stream_name = stream_name
        self._rng = rng
        self._counts = counts

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._rng, attr)
        if not callable(value):
            return value

        def counted(*args: Any, **kwargs: Any) -> Any:
            key = (self._stream_name, attr)
            self._counts[key] = self._counts.get(key, 0) + 1
            return value(*args, **kwargs)

        return counted


class DeterminismSanitizer:
    """Records a rolling trace hash of every event a Simulator fires.

    Usage::

        sim = Simulator()
        san = DeterminismSanitizer(sim)
        ... build scenario, sim.run() ...
        print(san.trace_hash)        # identical across same-seed runs
        div = san.diff(other_san)    # None, or the first divergent event

    ``keep_records=False`` keeps only the rolling hash (O(1) memory) for
    long soak runs where a pass/fail bit is enough.
    """

    def __init__(self, sim: Any, keep_records: bool = True):
        self.sim = sim
        self.keep_records = keep_records
        self.records: list[TraceRecord] = []
        self.event_count = 0
        self.rng_counts: dict[tuple[str, str], int] = {}
        self._hash = hashlib.blake2b(digest_size=16)
        self._watched: list[tuple[Any, Any]] = []
        sim.add_trace_tap(self._record)
        self._attached = True

    # -- event recording ---------------------------------------------------

    def _record(self, event: Any, when: float) -> None:
        seq = self.event_count
        self.event_count = seq + 1
        name = getattr(event, "name", "") or ""
        kind = type(event).__name__
        # The f-string *is* the hashed trace line -- it cannot be hoisted.
        line = f"{seq}|{when!r}|{kind}|{name}\n"  # vdaplint: disable=PERF005
        self._hash.update(line.encode())
        if self.keep_records:
            self.records.append(TraceRecord(seq=seq, time=when, kind=kind, name=name))

    # -- rng watching ------------------------------------------------------

    def watch_rng(self, registry: Any) -> Any:
        """Count draws on every stream handed out by ``registry``.

        Works on any object with a ``stream(name)`` method (the
        platform's :class:`~repro.sim.random.RngRegistry`); returns the
        registry for chaining.
        """
        original_stream = registry.stream

        def counting_stream(name: str) -> Any:
            return _CountingRng(name, original_stream(name), self.rng_counts)

        self._watched.append((registry, original_stream))
        registry.stream = counting_stream
        return registry

    def draw_counts(self) -> dict[str, int]:
        """Total draws per stream name (summed over methods)."""
        totals: dict[str, int] = {}
        for (stream_name, _method), count in sorted(self.rng_counts.items()):
            totals[stream_name] = totals.get(stream_name, 0) + count
        return totals

    # -- results -----------------------------------------------------------

    @property
    def trace_hash(self) -> str:
        """Hex digest of everything recorded so far (rolling, O(1) state)."""
        return self._hash.copy().hexdigest()

    def diff(self, other: "DeterminismSanitizer") -> Optional[Divergence]:
        """First divergent event between two recorded traces, or None.

        Requires both sides to have kept records; trace-hash-only
        sanitizers can still be compared via :attr:`trace_hash`.
        """
        if not self.keep_records or not other.keep_records:
            raise ValueError("diff() needs keep_records=True on both sides")
        for index, (left, right) in enumerate(zip(self.records, other.records)):
            if left != right:
                return Divergence(index, left, right)
        if len(self.records) != len(other.records):
            index = min(len(self.records), len(other.records))
            left = self.records[index] if index < len(self.records) else None
            right = other.records[index] if index < len(other.records) else None
            return Divergence(index, left, right)
        return None

    def summary(self) -> dict[str, Any]:
        """A JSON-friendly digest for bench reports."""
        return {
            "events": self.event_count,
            "trace_hash": self.trace_hash,
            "rng_draws": self.draw_counts(),
        }

    # -- lifecycle ---------------------------------------------------------

    def detach(self) -> None:
        """Restore the simulator (and any watched registries)."""
        if self._attached:
            self.sim.remove_trace_tap(self._record)
            self._attached = False
        while self._watched:
            registry, original_stream = self._watched.pop()
            registry.stream = original_stream

    def __enter__(self) -> "DeterminismSanitizer":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.detach()

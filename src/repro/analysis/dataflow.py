"""Interprocedural nondeterminism taint over the project call graph.

The single-file rules (DET001/DET002/SIM001) flag a nondeterminism
*source* at the line that contains it.  This pass answers the question
they cannot: does sim-reachable code **transitively** hit such a source
through any chain of project-internal calls?  Taint starts at external
calls that match a source category and propagates backwards over the
call graph to a fixpoint; each tainted function remembers the edge the
taint arrived through, so findings can print the full witness chain
(``drive -> helpers.stamp -> time.time()``).

Flow rules emitted here:

* **DET101** — a sim-reachable function calls a project function that
  transitively reads the wall clock or global RNG state.
* **SIM101** — a sim-reachable function calls a project function that
  transitively performs blocking I/O, or itself blocks outside the
  generator context the single-file SIM001 can see.
* **RACE001** — a heuristic shared-state race detector: an attribute of
  an object reachable from two or more sim processes is written without
  an intervening resource acquisition.

Findings are anchored at the call/write site (where a maintainer can
act), deduplicated per (site, rule), and honor the same ``# vdaplint:``
pragmas as the single-file pass.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .callgraph import AttrWrite, CallSite, ProjectGraph, build_graph
from .engine import Finding, Pragmas, Rule
from .rules import BlockingCallRule, WallClockRule

__all__ = [
    "TAINT_BLOCKING",
    "TAINT_RNG",
    "TAINT_WALL_CLOCK",
    "FLOW_RULE_CLASSES",
    "SimWallClockFlowRule",
    "SimBlockingFlowRule",
    "SharedStateRaceRule",
    "TaintAnalysis",
    "WholeProgramAnalyzer",
    "flow_rules",
    "flow_rules_by_id",
]

TAINT_WALL_CLOCK = "wall-clock"
TAINT_RNG = "global-rng"
TAINT_BLOCKING = "blocking-io"

#: External blocking entry points; SIM001's generator set plus time.sleep.
_BLOCKING = BlockingCallRule.GENERATOR_BANNED | BlockingCallRule.ALWAYS_BANNED


def classify_source(external: str) -> Optional[str]:
    """Taint category for an external dotted call target, if any."""
    if external in WallClockRule.BANNED:
        return TAINT_WALL_CLOCK
    parts = external.split(".")
    if parts[0] == "random" and len(parts) == 2:
        return TAINT_RNG
    if len(parts) == 3 and parts[:2] == ["numpy", "random"]:
        from .rules import GlobalRngRule

        if parts[2] in GlobalRngRule.NUMPY_GLOBAL:
            return TAINT_RNG
    if external in _BLOCKING:
        return TAINT_BLOCKING
    return None


class SimWallClockFlowRule(Rule):
    """DET101: sim-reachable code transitively reads wall clock / global RNG."""

    id = "DET101"
    name = "sim-taint-clock-rng"
    description = (
        "sim-reachable code calls a function that transitively reads the "
        "wall clock or global RNG state (whole-program; needs --whole-program)"
    )


class SimBlockingFlowRule(Rule):
    """SIM101: a sim process transitively performs blocking I/O."""

    id = "SIM101"
    name = "sim-taint-blocking"
    description = (
        "a sim process transitively calls blocking I/O through helper "
        "functions (whole-program; needs --whole-program)"
    )


class SharedStateRaceRule(Rule):
    """RACE001: unguarded attribute write on state shared by >= 2 processes."""

    id = "RACE001"
    name = "shared-state-race"
    description = (
        "an attribute reachable from two or more sim processes is written "
        "without an intervening resource acquisition (heuristic; "
        "whole-program; needs --whole-program)"
    )


FLOW_RULE_CLASSES = [SimWallClockFlowRule, SimBlockingFlowRule, SharedStateRaceRule]


def flow_rules() -> list[Rule]:
    """Fresh instances of the whole-program rule pack."""
    return [cls() for cls in FLOW_RULE_CLASSES]


def flow_rules_by_id() -> dict[str, Rule]:
    """The whole-program rule catalogue, keyed by rule id."""
    return {rule.id: rule for rule in flow_rules()}


class TaintAnalysis:
    """Backward taint propagation over a :class:`ProjectGraph`.

    After :meth:`run`, ``taints[qualname]`` maps each tainted function to
    ``{category: witness}`` where the witness is either the external
    source name (direct) or the callee qualname the taint flowed in
    through (transitive).
    """

    def __init__(self, graph: ProjectGraph):
        self.graph = graph
        self.taints: dict[str, dict[str, str]] = {}

    def run(self) -> "TaintAnalysis":
        worklist: list[str] = []
        # Seed: functions whose own bodies hit an external source.
        for caller in sorted(self.graph.calls):
            for site in self.graph.calls[caller]:
                if site.external is None:
                    continue
                category = classify_source(site.external)
                if category is None:
                    continue
                slot = self.taints.setdefault(caller, {})
                if category not in slot:
                    slot[category] = site.external
                    worklist.append(caller)
        # Fixpoint: taint flows from callee to caller.
        while worklist:
            tainted = worklist.pop()
            for caller in sorted(self.graph.callers.get(tainted, ())):
                slot = self.taints.setdefault(caller, {})
                changed = False
                for category in sorted(self.taints.get(tainted, {})):
                    if category not in slot:
                        slot[category] = tainted
                        changed = True
                if changed:
                    worklist.append(caller)
        return self

    def categories(self, qualname: str) -> set[str]:
        return set(self.taints.get(qualname, ()))

    def witness_chain(self, qualname: str, category: str,
                      limit: int = 12) -> list[str]:
        """The call chain from ``qualname`` down to the external source."""
        chain = [qualname]
        current = qualname
        for _ in range(limit):
            witness = self.taints.get(current, {}).get(category)
            if witness is None:
                break
            chain.append(witness)
            if witness not in self.taints:
                break  # reached the external source
            current = witness
        return chain

    def to_debug_dict(self) -> dict:
        """JSON-friendly dump for the reporter's ``--dump-taint``."""
        return {
            qual: {cat: self.taints[qual][cat] for cat in sorted(self.taints[qual])}
            for qual in sorted(self.taints)
        }


class WholeProgramAnalyzer:
    """Runs the flow rule pack over a linked project graph."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None):
        selected = list(rules) if rules is not None else flow_rules()
        self.rules = {rule.id: rule for rule in selected}
        self.graph: Optional[ProjectGraph] = None
        self.taint: Optional[TaintAnalysis] = None

    # -- entry points ------------------------------------------------------

    def analyze_paths(self, paths: Iterable[str]) -> list[Finding]:
        return self.analyze_graph(build_graph(paths))

    def analyze_graph(self, graph: ProjectGraph) -> list[Finding]:
        self.graph = graph
        self.taint = TaintAnalysis(graph).run()
        findings: list[Finding] = []
        sim_set = graph.sim_reachable()
        if "DET101" in self.rules or "SIM101" in self.rules:
            findings.extend(self._taint_findings(sim_set))
        if "RACE001" in self.rules:
            findings.extend(self._race_findings(sim_set))
        return sorted(self._apply_pragmas(findings))

    # -- DET101 / SIM101 ---------------------------------------------------

    def _taint_findings(self, sim_set: set[str]) -> list[Finding]:
        graph, taint = self.graph, self.taint
        findings = []
        seen: set[tuple[str, int, str]] = set()
        for func in sorted(sim_set):
            for site in graph.calls.get(func, ()):
                findings.extend(self._check_site(func, site, taint, seen))
        return findings

    def _check_site(self, func: str, site: CallSite, taint: TaintAnalysis,
                    seen: set) -> list[Finding]:
        out = []
        if site.callee is not None:
            categories = taint.categories(site.callee)
            if "DET101" in self.rules and (
                TAINT_WALL_CLOCK in categories or TAINT_RNG in categories
            ):
                category = (
                    TAINT_WALL_CLOCK
                    if TAINT_WALL_CLOCK in categories
                    else TAINT_RNG
                )
                what = (
                    "the wall clock" if category == TAINT_WALL_CLOCK
                    else "global RNG state"
                )
                out.extend(self._emit(
                    self.rules["DET101"], site, seen,
                    f"sim-reachable `{func}` transitively reads {what} via "
                    f"{self._chain(site.callee, category)}",
                ))
            if "SIM101" in self.rules and TAINT_BLOCKING in categories:
                out.extend(self._emit(
                    self.rules["SIM101"], site, seen,
                    f"sim process code `{func}` transitively blocks via "
                    f"{self._chain(site.callee, TAINT_BLOCKING)}",
                ))
        elif site.external is not None and "SIM101" in self.rules:
            # Direct blocking call in a sim-reachable *non-generator* helper:
            # SIM001 only sees generators, so this is whole-program-only.
            info = self.graph.functions.get(func)
            if (
                info is not None
                and not info.is_generator
                and site.external in BlockingCallRule.GENERATOR_BANNED
            ):
                out.extend(self._emit(
                    self.rules["SIM101"], site, seen,
                    f"`{func}` is reachable from a sim process and calls "
                    f"blocking `{site.external}()` directly",
                ))
        return out

    def _chain(self, start: str, category: str) -> str:
        chain = self.taint.witness_chain(start, category)
        return " -> ".join([*chain[:-1], f"{chain[-1]}()"])

    def _emit(self, rule: Rule, site: CallSite, seen: set,
              message: str) -> list[Finding]:
        key = (site.path, site.line, rule.id)
        if key in seen:
            return []
        seen.add(key)
        return [self._finding(rule, site.path, site.line, site.col, message)]

    # -- RACE001 -----------------------------------------------------------

    def _race_findings(self, sim_set: set[str]) -> list[Finding]:
        graph = self.graph
        # Which process roots reach each function?  (Only generator
        # functions keep process identity; helpers inherit every caller's.)
        roots_reaching: dict[str, set[str]] = {}
        for root in sorted(graph.process_roots):
            for func in graph.reachable_from([root]):
                roots_reaching.setdefault(func, set()).add(root)
        # Group candidate writes by the slot they touch.  Only writes in
        # *generator* functions count: those are the process bodies whose
        # interleaving the event loop controls, whereas constructor and
        # plain-method writes (object setup, kernel bookkeeping) complete
        # atomically within one event.
        groups: dict[tuple[str, str], list[tuple[AttrWrite, set[str]]]] = {}
        for func in sorted(graph.attr_writes):
            roots = roots_reaching.get(func)
            info = graph.functions.get(func)
            if not roots or info is None or not info.is_generator:
                continue
            for write in graph.attr_writes[func]:
                groups.setdefault(write.share_key, []).append((write, roots))
        rule = self.rules["RACE001"]
        findings = []
        seen: set[tuple[str, int, str]] = set()
        for share_key in sorted(groups):
            writes = groups[share_key]
            all_roots = sorted(set().union(*(roots for _w, roots in writes)))
            if len(all_roots) < 2:
                continue
            for write, _roots in writes:
                if write.guarded:
                    continue
                key = (write.path, write.line, rule.id)
                if key in seen:
                    continue
                seen.add(key)
                owner, attr = share_key
                findings.append(self._finding(
                    rule, write.path, write.line, write.col,
                    f"`{write.base}.{attr}` (shared slot `{owner}.{attr}`) is "
                    f"written in `{write.function}` reachable from "
                    f"{len(all_roots)} sim processes "
                    f"({', '.join(all_roots[:3])}) without an intervening "
                    "acquire; event-order dependent",
                ))
        return findings

    # -- plumbing ----------------------------------------------------------

    def _finding(self, rule: Rule, path: str, line: int, col: int,
                 message: str) -> Finding:
        module = self.graph.modules_by_path().get(path)
        snippet = ""
        if module is not None:
            lines = module.source.splitlines()
            if 1 <= line <= len(lines):
                snippet = lines[line - 1].strip()
        return Finding(
            path=path, line=line, col=col, rule=rule.id,
            message=message, snippet=snippet,
        )

    def _apply_pragmas(self, findings: list[Finding]) -> list[Finding]:
        by_path = self.graph.modules_by_path()
        pragmas: dict[str, Pragmas] = {}
        kept = []
        for finding in findings:
            module = by_path.get(finding.path)
            if module is not None:
                if finding.path not in pragmas:
                    pragmas[finding.path] = Pragmas(module.source)
                if pragmas[finding.path].suppressed(finding.line, finding.rule):
                    continue
            kept.append(finding)
        return kept

"""Static per-vehicle cost model for the fleet planner.

Layer (b) of the planning compiler: estimate how much kernel work each
vehicle generates per simulated second, so the partitioner can balance
shards by cost instead of count.  The estimate has two factors:

* **Role weights** -- how expensive one invocation of each per-vehicle
  process role (drive tick, beacon, envelope receive, service submit)
  is, measured statically as call-graph breadth discounted by BFS depth
  from the role's root, with hot-path functions (PR-7
  :class:`~repro.analysis.perf.HotPathIndex`) counted double
  (:class:`RoleWeights`).  When a cProfile pstats
  dump is supplied the measured cumulative seconds replace the static
  weight for every profiled role (a ``BENCH_fleet.json`` profile has no
  per-function data and leaves the static weights in place).
* **Role rates** -- how often each role fires for a given vehicle,
  derived from the fleet configuration (tick period, beacon period,
  ring-neighbour count) and the workload style's per-vehicle service
  multiplicity (:func:`vehicle_costs`).

Costs are relative, not wall-clock seconds: greedy-LPT only needs the
ratios, and keeping them unit-free means static and profiled weights can
be swapped without rescaling the plan format.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .callgraph import ProjectGraph
from .perf import HotPathIndex, ProfileData

__all__ = ["ROLE_ROOTS", "RoleWeights", "vehicle_costs"]

#: Per-vehicle process roles -> the qualname suffix of the function that
#: roots the role's work.  The drive suffix is annotated at the source
#: (:data:`repro.scenario.PLANNER_DRIVE_ROOT`); it is duplicated here as
#: a plain string so this module never imports the simulation stack.
ROLE_ROOTS: dict[str, str] = {
    "drive": "DriveScenario.launch.control_loop",
    "beacon": "PartitionRuntime._beacon_loop",
    "receive": "V2VBus._deliver_one",
    "service": "DSF.submit",
}


class RoleWeights:
    """Relative per-invocation cost of each process role.

    Static weight of a role = sum over every function reachable from the
    role root of ``1 / (1 + depth)`` (depth = BFS hops from the root):
    wide, shallow call trees cost more than narrow, deep ones.  Functions
    on the :class:`HotPathIndex` hot set count double -- they sit inside a
    simulation loop, so a role that reaches them fires that work every
    round, not once.  Weights are normalized so the drive loop is 1.0; a
    role whose root is not in the analyzed tree weighs 0.0 (it cannot
    fire there).
    """

    def __init__(self, graph: ProjectGraph,
                 hot: Optional[HotPathIndex] = None,
                 profile: Optional[ProfileData] = None):
        self.graph = graph
        self.hot = hot if hot is not None else HotPathIndex(graph)
        self.roots: dict[str, Optional[str]] = {
            role: self._find_root(suffix)
            for role, suffix in ROLE_ROOTS.items()
        }
        static = {
            role: self._breadth(root) if root is not None else 0.0
            for role, root in self.roots.items()
        }
        self.profiled: set[str] = set()
        blended = dict(static)
        if profile is not None and profile.kind == "pstats":
            measured: dict[str, float] = {}
            for role, root in self.roots.items():
                info = graph.functions.get(root) if root else None
                weight = profile.weight_for(info) if info is not None else None
                if weight is not None and weight > 0:
                    measured[role] = weight
            # Only blend when the drive loop itself was profiled: it is
            # the normalization anchor for both weight sources.
            if measured.get("drive"):
                for role, weight in measured.items():
                    blended[role] = weight / measured["drive"] * (
                        static["drive"] or 1.0
                    )
                self.profiled = set(measured)
        anchor = blended["drive"] or 1.0
        self.weights: dict[str, float] = {
            role: round(value / anchor, 6) for role, value in blended.items()
        }

    def _find_root(self, suffix: str) -> Optional[str]:
        matches = sorted(
            qual for qual in self.graph.functions
            if qual == suffix or qual.endswith("." + suffix)
        )
        return matches[0] if len(matches) == 1 else None

    def _breadth(self, root: str) -> float:
        depth = {root: 0}
        queue = deque([root])
        while queue:
            current = queue.popleft()
            for site in self.graph.calls.get(current, ()):
                callee = site.callee
                if callee and callee in self.graph.functions \
                        and callee not in depth:
                    depth[callee] = depth[current] + 1
                    queue.append(callee)
        hot = self.hot.hot
        return sum(
            (2.0 if qual in hot else 1.0) / (1 + d)
            for qual, d in depth.items()
        )

    def to_debug_dict(self) -> dict:
        return {
            "roots": {role: self.roots[role] for role in sorted(self.roots)},
            "weights": {role: self.weights[role] for role in sorted(self.weights)},
            "profiled_roles": sorted(self.profiled),
        }


def vehicle_costs(config, weights: RoleWeights) -> list[float]:
    """Relative per-vehicle cost under ``config`` (any FleetConfig-shaped
    object: needs vehicles/tick_s/beacon_period_s/with_services,
    ``neighbors(v)``, ``service_count(v)`` and the workload ``style``).
    """
    w = weights.weights
    costs = []
    for vehicle in range(config.vehicles):
        fanout = len(config.neighbors(vehicle))
        tick_rate = 1.0 / config.tick_s
        beacon_rate = fanout / config.beacon_period_s
        services = config.service_count(vehicle) if config.with_services else 0
        service_rate = services * config.style.service_cost_weight
        cost = (
            tick_rate * (w["drive"] + service_rate * w["service"])
            + beacon_rate * w["beacon"]
            # Ring beacons are symmetric: each neighbour beacons back.
            + beacon_rate * w["receive"]
        )
        costs.append(round(cost, 6))
    return costs

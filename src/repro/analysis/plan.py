"""Static fleet planner: FLEET barrier-safety rules + plan emission.

Layer (c) of the planning compiler, and the ``--plan`` entry point.  It
composes the other two layers -- the communication graph / lookahead
proof (:mod:`~repro.analysis.commgraph`) and the per-vehicle cost model
(:mod:`~repro.analysis.cost`) -- into two products:

* **FLEET rules** (:class:`FleetPlanAnalyzer`), graph-level barrier
  geometry checks that need no AST visitors of their own:

  * **FLEET001** -- a call site configures ``barrier_s=`` larger than
    the lookahead bound the site can prove (the site's own latency
    keyword if it carries one, else the tree-wide provable lookahead):
    conservative sync would deliver envelopes into a partition's past
    and per-vehicle trace hashes diverge between partition layouts;
  * **FLEET002** -- a cross-partition send edge whose link latency is
    zero or statically unresolvable: the lookahead proof fails, so the
    barrier step has no safe positive value (stall/deadlock risk);
  * **FLEET003** -- a sim process reaches a *barrier-only* delivery
    entry point (``V2VBus.deliver``/``drain_outbox``) directly: the
    message bypasses the coordinator's canonical envelope exchange and
    its partition-invariant delivery order.

* **Plan emission** (:func:`emit_plan` / :func:`plan_for_config`):
  greedy-LPT cost-balanced shards wrapped in a
  :class:`~repro.fleet.config.PartitionPlan` JSON document stamped with
  the proved lookahead, for ``FleetConfig.plan`` to execute.

The fleet package imports this package's sanitizer, so everything from
``repro.fleet`` is imported lazily inside the emission functions.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Optional

from .callgraph import FunctionInfo, ProjectGraph, build_graph
from .commgraph import CommEdge, CommGraph, is_latency_name
from .cost import RoleWeights, vehicle_costs
from .engine import Finding, Pragmas, Rule
from .perf import ProfileData

__all__ = [
    "FLEET_RULE_CLASSES",
    "FleetPlanAnalyzer",
    "emit_plan",
    "fleet_rules",
    "fleet_rules_by_id",
    "parse_fleet_spec",
    "plan_for_config",
]

#: The analyzed tree when the caller does not pick one: this package.
_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_EPS = 1e-9


class BarrierExceedsLookahead(Rule):
    """A configured barrier step the lookahead proof cannot cover."""

    id = "FLEET001"
    name = "barrier-exceeds-lookahead"
    description = (
        "a call site configures barrier_s= beyond the provable "
        "cross-partition lookahead; envelopes become due in a "
        "partition's past and trace hashes diverge"
    )
    version = 1


class UnboundedCrossPartitionEdge(Rule):
    """A cross-partition send edge with no usable latency bound."""

    id = "FLEET002"
    name = "unbounded-cross-partition-edge"
    description = (
        "a cross-partition send edge carries a zero or statically "
        "unresolvable link latency, so conservative sync has no safe "
        "barrier step (stall/deadlock risk)"
    )
    version = 1


class BarrierExchangeBypass(Rule):
    """A sim process delivering cross-partition traffic directly."""

    id = "FLEET003"
    name = "barrier-exchange-bypass"
    description = (
        "a sim process reaches a barrier-only delivery entry point "
        "directly, bypassing the coordinator's canonical envelope "
        "exchange and its partition-invariant delivery order"
    )
    version = 1


FLEET_RULE_CLASSES: tuple[type[Rule], ...] = (
    BarrierExceedsLookahead,
    UnboundedCrossPartitionEdge,
    BarrierExchangeBypass,
)


def fleet_rules() -> list[Rule]:
    """One instance of every FLEET rule."""
    return [cls() for cls in FLEET_RULE_CLASSES]


def fleet_rules_by_id() -> dict[str, Rule]:
    """The FLEET catalogue keyed by rule id."""
    return {rule.id: rule for rule in fleet_rules()}


class FleetPlanAnalyzer:
    """Run the FLEET pack over a project graph's communication graph.

    The rules are graph-level (no per-node visitors): each check walks
    the extracted :class:`CommGraph` edges or the call-site table, so
    one analyzer pass covers every file at once.  Findings honor the
    same ``# vdaplint:`` pragmas as the AST packs.
    """

    def __init__(self, graph: ProjectGraph,
                 rules: Optional[Iterable[Rule]] = None):
        self.graph = graph
        selected = fleet_rules() if rules is None else list(rules)
        self.rules: dict[str, Rule] = {rule.id: rule for rule in selected}

    def analyze(self, comm: Optional[CommGraph] = None) -> list[Finding]:
        comm = comm if comm is not None else CommGraph(self.graph)
        findings: list[Finding] = []
        if "FLEET001" in self.rules:
            findings.extend(self._barrier_overruns(comm))
        if "FLEET002" in self.rules:
            findings.extend(self._unbounded_edges(comm))
        if "FLEET003" in self.rules:
            findings.extend(self._barrier_bypasses(comm))
        unique: dict[tuple, Finding] = {}
        for finding in findings:
            key = (finding.path, finding.line, finding.col, finding.rule)
            unique.setdefault(key, finding)
        ordered = sorted(unique.values(),
                         key=lambda f: (f.path, f.line, f.col, f.rule))
        return self._apply_pragmas(ordered)

    # -- FLEET001 ----------------------------------------------------------

    def _barrier_overruns(self, comm: CommGraph) -> list[Finding]:
        out: list[Finding] = []
        lookahead_s, _ = comm.lookahead()
        resolver = comm.resolver
        for caller in sorted(self.graph.calls):
            caller_info = self.graph.functions.get(caller)
            if caller_info is not None:
                module = self.graph.modules.get(caller_info.module)
            else:
                module = self.graph.modules.get(caller.split("#", 1)[0])
            for site in self.graph.calls[caller]:
                node = site.node
                if node is None:
                    continue
                barrier_kw = next(
                    (kw for kw in node.keywords if kw.arg == "barrier_s"),
                    None,
                )
                if barrier_kw is None:
                    continue
                value = resolver.resolve_expr(
                    barrier_kw.value, module, caller_info
                )
                if value is None:
                    continue  # runtime-chosen step: FleetConfig re-checks it
                # A site that also fixes its own link latency proves a
                # tighter, local bound; otherwise the tree-wide proof.
                local = [
                    resolver.resolve_expr(kw.value, module, caller_info)
                    for kw in node.keywords
                    if kw.arg is not None
                    and kw.arg != "barrier_s"
                    and "latency" in kw.arg
                    and is_latency_name(kw.arg)
                ]
                local = [v for v in local if v is not None]
                if local:
                    bound, source = min(local), "the site's own link latency"
                else:
                    bound, source = lookahead_s, "the provable min link latency"
                if bound is None or value <= bound + _EPS:
                    continue
                out.append(self._finding(
                    "FLEET001",
                    site.path, site.line, site.col,
                    f"barrier_s={value:g} exceeds {source} ({bound:g}s): "
                    "conservative sync can deliver envelopes into a "
                    "partition's past and trace hashes diverge",
                ))
        return out

    # -- FLEET002 ----------------------------------------------------------

    def _unbounded_edges(self, comm: CommGraph) -> list[Finding]:
        out: list[Finding] = []
        for edge in comm.send_edges():
            if edge.latency_s is None:
                out.append(self._finding(
                    "FLEET002",
                    edge.path, edge.line, edge.col,
                    f"cross-partition {edge.kind} via `{edge.sink}` carries "
                    "a statically unresolvable link latency; the lookahead "
                    "proof fails, so no barrier step is provably safe",
                ))
            elif edge.latency_s <= 0:
                out.append(self._finding(
                    "FLEET002",
                    edge.path, edge.line, edge.col,
                    f"zero-latency cross-partition {edge.kind} via "
                    f"`{edge.sink}`: conservative sync needs a positive "
                    "lookahead and cannot advance (deadlock)",
                ))
        return out

    # -- FLEET003 ----------------------------------------------------------

    def _barrier_bypasses(self, comm: CommGraph) -> list[Finding]:
        out: list[Finding] = []
        for edge in comm.edges:
            if not edge.barrier_only:
                continue
            out.append(self._finding(
                "FLEET003",
                edge.path, edge.line, edge.col,
                f"sim process `{edge.root}` reaches barrier-only "
                f"`{edge.sink}` directly; cross-partition delivery must go "
                "through the coordinator's envelope exchange to keep "
                "delivery order partition-invariant",
            ))
        return out

    # -- plumbing ----------------------------------------------------------

    def _finding(self, rule_id: str, path: str, line: int, col: int,
                 message: str) -> Finding:
        module = self.graph.modules_by_path().get(path)
        snippet = ""
        if module is not None:
            lines = module.source.splitlines()
            if 1 <= line <= len(lines):
                snippet = lines[line - 1].strip()
        return Finding(path=path, line=line, col=col, rule=rule_id,
                       message=message, snippet=snippet)

    def _apply_pragmas(self, findings: list[Finding]) -> list[Finding]:
        by_path = self.graph.modules_by_path()
        pragmas: dict[str, Pragmas] = {}
        kept = []
        for finding in findings:
            module = by_path.get(finding.path)
            if module is not None:
                if finding.path not in pragmas:
                    pragmas[finding.path] = Pragmas(module.source)
                if pragmas[finding.path].suppressed(finding.line, finding.rule):
                    continue
            kept.append(finding)
        return kept


# -- plan emission ---------------------------------------------------------

#: ``--plan-fleet`` spec vocabulary: key -> (FleetConfig kwarg, parser).
#: Deliberately excludes the latency/barrier geometry -- those come from
#: the config's defaults so the planner's own FleetConfig construction
#: never injects an unprovable link latency into the tree it analyzes.
_FLEET_SPEC_KEYS: dict[str, tuple[str, type]] = {
    "vehicles": ("vehicles", int),
    "partitions": ("partitions", int),
    "seed": ("seed", int),
    "duration": ("duration_s", float),
    "workload": ("workload", str),
}

_FLEET_SPEC_DEFAULTS: dict[str, object] = {
    "vehicles": 8,
    "partitions": 4,
    "seed": 0,
    "duration_s": 30.0,
    "workload": "uniform",
}


def parse_fleet_spec(spec: str) -> dict:
    """``"vehicles=8,partitions=4,seed=17,duration=30,workload=skewed"``
    -> FleetConfig keyword dict (unspecified keys keep planner defaults).
    """
    settings = dict(_FLEET_SPEC_DEFAULTS)
    for part in filter(None, (p.strip() for p in spec.split(","))):
        key, sep, raw = part.partition("=")
        entry = _FLEET_SPEC_KEYS.get(key.strip())
        if not sep or entry is None:
            known = ", ".join(sorted(_FLEET_SPEC_KEYS))
            raise ValueError(
                f"bad fleet spec item {part!r} (expected key=value with "
                f"key one of: {known})"
            )
        kwarg, parse = entry
        try:
            settings[kwarg] = parse(raw.strip())
        except ValueError as exc:
            raise ValueError(f"bad fleet spec value {part!r}: {exc}") from exc
    return settings


def plan_for_config(config, graph: Optional[ProjectGraph] = None,
                    paths: Optional[list[str]] = None,
                    profile: Optional[ProfileData] = None,
                    comm: Optional[CommGraph] = None):
    """Emit a cost-balanced :class:`~repro.fleet.config.PartitionPlan`
    for an existing :class:`~repro.fleet.config.FleetConfig`.

    Without ``graph``/``paths`` the cost model and lookahead proof run
    over this installed package -- the tree the config will execute.
    """
    from ..fleet.config import PartitionPlan, shard_vehicles

    if graph is None:
        graph = build_graph(paths if paths is not None else [_PACKAGE_ROOT])
    comm = comm if comm is not None else CommGraph(graph)
    weights = RoleWeights(graph, profile=profile)
    costs = vehicle_costs(config, weights)
    shards = shard_vehicles(config.vehicles, config.partitions, costs)
    return PartitionPlan(
        vehicles=config.vehicles,
        partitions=config.partitions,
        shards=tuple(shards),
        costs=tuple(costs),
        method="greedy-lpt",
        seed=config.seed,
        workload=config.workload,
        lookahead_s=comm.lookahead_s,
        barrier_s=config.barrier_step_s,
    )


def emit_plan(graph: ProjectGraph, fleet: Optional[dict] = None,
              profile: Optional[ProfileData] = None,
              comm: Optional[CommGraph] = None):
    """Emit a plan for a fleet described by :func:`parse_fleet_spec` output."""
    from ..fleet.config import FleetConfig

    settings = dict(_FLEET_SPEC_DEFAULTS)
    settings.update(fleet or {})
    config = FleetConfig(
        seed=settings["seed"],
        vehicles=settings["vehicles"],
        partitions=settings["partitions"],
        duration_s=settings["duration_s"],
        workload=settings["workload"],
    )
    return plan_for_config(config, graph=graph, profile=profile, comm=comm)

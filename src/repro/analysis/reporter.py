"""Finding reporters: grep-able text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Sequence

from .engine import Finding

__all__ = ["render_text", "render_json"]


def render_text(
    findings: Sequence[Finding],
    files_scanned: int = 0,
    baselined: int = 0,
) -> str:
    """One ``path:line:col: RULE message`` line per finding plus a summary."""
    lines = [
        f"{finding.location()}: {finding.rule} {finding.message}"
        for finding in sorted(findings)
    ]
    summary = (
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
        f"in {files_scanned} file{'s' if files_scanned != 1 else ''}"
    )
    if baselined:
        summary += f" ({baselined} baselined, not shown)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    files_scanned: int = 0,
    baselined: int = 0,
) -> str:
    """A stable JSON document: counts plus one object per finding."""
    payload = {
        "version": 1,
        "files_scanned": files_scanned,
        "baselined": baselined,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "message": finding.message,
                "snippet": finding.snippet,
            }
            for finding in sorted(findings)
        ],
    }
    return json.dumps(payload, indent=2)

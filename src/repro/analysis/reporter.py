"""Finding reporters: grep-able text and machine-readable JSON.

The JSON document's top-level keys (``version``, ``files_scanned``,
``baselined``, ``stale_baseline``, ``findings`` and the per-finding keys)
are consumed by CI tooling and pinned by
``tests/analysis/test_reporter_schema.py`` -- extend, never rename.
Whole-program debug dumps (``callgraph``, ``taint``, ``hotpaths``) appear
only when requested on the CLI; ``perf_ranking`` appears only on
``--perf`` runs (the ordered optimization worklist).
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from .engine import Finding

__all__ = ["render_text", "render_json"]


def render_text(
    findings: Sequence[Finding],
    files_scanned: int = 0,
    baselined: int = 0,
    stale: int = 0,
    debug: Optional[dict] = None,
    ranking: Optional[Sequence[dict]] = None,
) -> str:
    """One ``path:line:col: RULE message`` line per finding plus a summary."""
    lines = [
        f"{finding.location()}: {finding.rule} {finding.message}"
        for finding in sorted(findings)
    ]
    summary = (
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
        f"in {files_scanned} file{'s' if files_scanned != 1 else ''}"
    )
    if baselined:
        summary += f" ({baselined} baselined, not shown)"
    if stale:
        summary += (
            f" [{stale} stale baseline fingerprint{'s' if stale != 1 else ''}; "
            "re-run --write-baseline to garbage-collect]"
        )
    lines.append(summary)
    if ranking is not None:
        lines.append("-- perf worklist (highest expected payoff first) --")
        if not ranking:
            lines.append("(no perf findings)")
        for entry in ranking:
            where = f"{entry['path']}:{entry['line']}"
            who = f" in {entry['function']}" if entry["function"] else ""
            lines.append(
                f"{entry['rank']:>3}. {entry['rule']} {where}{who} "
                f"[score={entry['score']} via {entry['source']}]"
            )
    if debug:
        for section in sorted(debug):
            lines.append(f"-- {section} --")
            lines.append(json.dumps(debug[section], indent=2, sort_keys=True))
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    files_scanned: int = 0,
    baselined: int = 0,
    stale: int = 0,
    debug: Optional[dict] = None,
    ranking: Optional[Sequence[dict]] = None,
) -> str:
    """A stable JSON document: counts plus one object per finding."""
    payload = {
        "version": 1,
        "files_scanned": files_scanned,
        "baselined": baselined,
        "stale_baseline": stale,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "message": finding.message,
                "snippet": finding.snippet,
            }
            for finding in sorted(findings)
        ],
    }
    if ranking is not None:
        payload["perf_ranking"] = [dict(entry) for entry in ranking]
    if debug:
        payload.update(debug)
    return json.dumps(payload, indent=2)

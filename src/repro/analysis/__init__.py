"""Static analysis layer: the ``vdaplint`` determinism & safety linter.

Everything the reproduction claims -- Fig 2/3 and Table I regeneration,
seeded fault storms, "same seed => byte-identical trace" -- rests on the
sim kernel's determinism contract.  This package makes that contract a
property checked on every commit instead of a convention in DESIGN.md: a
from-scratch, stdlib-``ast`` lint engine (:mod:`.engine`), a rule pack
encoding the platform invariants (:mod:`.rules`), inline suppression
pragmas, a baseline file for grandfathered findings (:mod:`.baseline`),
and a CLI with stable exit codes (:mod:`.cli`)::

    python -m repro.analysis src/repro --strict
    vdaplint --list-rules
"""

from .baseline import Baseline, fingerprint_findings
from .engine import (
    FileContext,
    Finding,
    LintEngine,
    Rule,
    discover_files,
    lint_paths,
    lint_source,
)
from .reporter import render_json, render_text
from .rules import RULE_CLASSES, default_rules, rules_by_id
from .cli import main

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "LintEngine",
    "RULE_CLASSES",
    "Rule",
    "default_rules",
    "discover_files",
    "fingerprint_findings",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
    "rules_by_id",
]

"""Static analysis layer: the ``vdaplint`` determinism & safety linter.

Everything the reproduction claims -- Fig 2/3 and Table I regeneration,
seeded fault storms, "same seed => byte-identical trace" -- rests on the
sim kernel's determinism contract.  This package makes that contract a
property checked on every commit instead of a convention in DESIGN.md:

* a from-scratch, stdlib-``ast`` lint engine (:mod:`.engine`) with a
  single-file rule pack encoding the platform invariants (:mod:`.rules`),
  inline suppression pragmas, and a baseline file for grandfathered
  findings (:mod:`.baseline`);
* a **whole-program** layer: a project-wide symbol table and call graph
  (:mod:`.callgraph`) feeding an interprocedural nondeterminism taint
  pass (:mod:`.dataflow`) -- DET101/SIM101/RACE001 catch cross-module
  violations no single file can show;
* a **semantic** tier: a forward abstract interpreter inferring
  physical units from naming conventions and ``# unit:`` pragmas
  (:mod:`.units` -- UNIT001/UNIT002/UNIT003) and a path-sensitive
  resource-protocol checker over ``sim.resources`` grants
  (:mod:`.protocol` -- RES101/RES102/PROTO001), both wrapped in an
  incremental analysis cache (:mod:`.cache`, ``.vdaplint-cache/``) so
  warm runs re-analyze only changed files and their dependents with
  byte-identical output;
* a **performance** tier (:mod:`.perf`, :mod:`.mp`): sim-hot path
  classification over the call graph, PERF001-005 rules (per-event
  allocation, hoistable invariants, quadratic patterns, vectorization
  candidates, hot-path formatting), MP001-003 multiprocess-safety rules
  for the fleet layer, and profile-guided ranking (``--perf
  --profile run.pstats``) that orders findings by expected payoff;
* a **planning** tier (:mod:`.commgraph`, :mod:`.cost`, :mod:`.plan`):
  static extraction of the cross-vehicle communication graph with link
  latencies recovered by bounded constant propagation + unit inference,
  a provable cross-partition lookahead, FLEET001-003 barrier-safety
  rules, and a greedy-LPT cost-balanced partition plan the fleet layer
  executes (``--plan``);
* a **scenario** tier (:mod:`.scenario`): SCN001-005 static validation
  of declarative fleet scenario files (:mod:`repro.scenarios`) --
  schema, unit suffixes, cross-references, per-cell barrier
  feasibility re-proved through the planning tier's ConstResolver, and
  matrix cost budgets from the static cost model (``--scenarios``);
* a **runtime** cross-check (:mod:`.sanitizer`): an opt-in
  ``DeterminismSanitizer`` that hashes the live event trace so two
  same-seed runs can be diffed to the first diverging event;
* a CLI with stable exit codes (:mod:`.cli`)::

    python -m repro.analysis src/repro --strict
    python -m repro.analysis --whole-program --jobs 4 src/repro tests --strict
    python -m repro.analysis --cache src/repro tests --strict
    python -m repro.analysis --perf --profile run.pstats src/repro
    python -m repro.analysis --plan --dump-plan --format json src/repro
    vdaplint --list-rules
"""

from .baseline import Baseline, fingerprint_findings
from .cache import (
    DEFAULT_CACHE_DIR,
    SEMANTIC_RULE_CLASSES,
    CachedRun,
    IncrementalAnalyzer,
    catalogue_fingerprint,
    semantic_rules,
    semantic_rules_by_id,
)
from .callgraph import ProjectGraph, build_graph, infer_module_name
from .commgraph import (
    COMM_SINKS,
    CommEdge,
    CommGraph,
    CommSinkSpec,
    ConstResolver,
    is_latency_name,
)
from .cost import ROLE_ROOTS, RoleWeights, vehicle_costs
from .dataflow import (
    FLOW_RULE_CLASSES,
    TaintAnalysis,
    WholeProgramAnalyzer,
    flow_rules,
    flow_rules_by_id,
)
from .engine import (
    FileContext,
    Finding,
    LintEngine,
    Pragmas,
    Rule,
    SKIP_MARKER,
    discover_files,
    lint_paths,
    lint_source,
)
from .mp import MP_RULE_CLASSES, MpAnalyzer, mp_rules, mp_rules_by_id
from .plan import (
    FLEET_RULE_CLASSES,
    FleetPlanAnalyzer,
    emit_plan,
    fleet_rules,
    fleet_rules_by_id,
    parse_fleet_spec,
    plan_for_config,
)
from .perf import (
    HOT_ROOT_SUFFIXES,
    PERF_RULE_CLASSES,
    HotPathIndex,
    PerfAnalyzer,
    ProfileData,
    load_profile,
    perf_rules,
    perf_rules_by_id,
    rank_findings,
)
from .protocol import PROTOCOL_RULE_CLASSES, ProtocolChecker
from .reporter import render_json, render_text
from .rules import RULE_CLASSES, default_rules, rules_by_id
from .sanitizer import DeterminismSanitizer, Divergence, TraceRecord
from .scenario import (
    SCENARIO_RULE_CLASSES,
    ScenarioAnalyzer,
    ScenarioCache,
    discover_scenario_files,
    scenario_rules,
    scenario_rules_by_id,
)
from .units import (
    UNIT_RULE_CLASSES,
    ModuleSummary,
    SignatureIndex,
    Unit,
    UnitChecker,
    parse_name_unit,
    parse_unit_expr,
    summarize_module,
)
from .cli import main

__all__ = [
    "Baseline",
    "COMM_SINKS",
    "CachedRun",
    "CommEdge",
    "CommGraph",
    "CommSinkSpec",
    "ConstResolver",
    "DEFAULT_CACHE_DIR",
    "DeterminismSanitizer",
    "Divergence",
    "FLEET_RULE_CLASSES",
    "FLOW_RULE_CLASSES",
    "FileContext",
    "Finding",
    "FleetPlanAnalyzer",
    "HOT_ROOT_SUFFIXES",
    "HotPathIndex",
    "IncrementalAnalyzer",
    "LintEngine",
    "MP_RULE_CLASSES",
    "ModuleSummary",
    "MpAnalyzer",
    "PERF_RULE_CLASSES",
    "PROTOCOL_RULE_CLASSES",
    "PerfAnalyzer",
    "ProfileData",
    "Pragmas",
    "ProjectGraph",
    "ProtocolChecker",
    "ROLE_ROOTS",
    "RULE_CLASSES",
    "RoleWeights",
    "Rule",
    "SCENARIO_RULE_CLASSES",
    "SEMANTIC_RULE_CLASSES",
    "SKIP_MARKER",
    "ScenarioAnalyzer",
    "ScenarioCache",
    "SignatureIndex",
    "TaintAnalysis",
    "TraceRecord",
    "UNIT_RULE_CLASSES",
    "Unit",
    "UnitChecker",
    "WholeProgramAnalyzer",
    "build_graph",
    "catalogue_fingerprint",
    "default_rules",
    "discover_files",
    "discover_scenario_files",
    "emit_plan",
    "fingerprint_findings",
    "fleet_rules",
    "fleet_rules_by_id",
    "flow_rules",
    "flow_rules_by_id",
    "infer_module_name",
    "is_latency_name",
    "lint_paths",
    "lint_source",
    "load_profile",
    "main",
    "mp_rules",
    "mp_rules_by_id",
    "parse_fleet_spec",
    "parse_name_unit",
    "parse_unit_expr",
    "perf_rules",
    "perf_rules_by_id",
    "plan_for_config",
    "rank_findings",
    "render_json",
    "render_text",
    "rules_by_id",
    "scenario_rules",
    "scenario_rules_by_id",
    "semantic_rules",
    "semantic_rules_by_id",
    "summarize_module",
    "vehicle_costs",
]

"""Static analysis layer: the ``vdaplint`` determinism & safety linter.

Everything the reproduction claims -- Fig 2/3 and Table I regeneration,
seeded fault storms, "same seed => byte-identical trace" -- rests on the
sim kernel's determinism contract.  This package makes that contract a
property checked on every commit instead of a convention in DESIGN.md:

* a from-scratch, stdlib-``ast`` lint engine (:mod:`.engine`) with a
  single-file rule pack encoding the platform invariants (:mod:`.rules`),
  inline suppression pragmas, and a baseline file for grandfathered
  findings (:mod:`.baseline`);
* a **whole-program** layer: a project-wide symbol table and call graph
  (:mod:`.callgraph`) feeding an interprocedural nondeterminism taint
  pass (:mod:`.dataflow`) -- DET101/SIM101/RACE001 catch cross-module
  violations no single file can show;
* a **runtime** cross-check (:mod:`.sanitizer`): an opt-in
  ``DeterminismSanitizer`` that hashes the live event trace so two
  same-seed runs can be diffed to the first diverging event;
* a CLI with stable exit codes (:mod:`.cli`)::

    python -m repro.analysis src/repro --strict
    python -m repro.analysis --whole-program --jobs 4 src/repro tests --strict
    vdaplint --list-rules
"""

from .baseline import Baseline, fingerprint_findings
from .callgraph import ProjectGraph, build_graph, infer_module_name
from .dataflow import (
    FLOW_RULE_CLASSES,
    TaintAnalysis,
    WholeProgramAnalyzer,
    flow_rules,
    flow_rules_by_id,
)
from .engine import (
    FileContext,
    Finding,
    LintEngine,
    Pragmas,
    Rule,
    SKIP_MARKER,
    discover_files,
    lint_paths,
    lint_source,
)
from .reporter import render_json, render_text
from .rules import RULE_CLASSES, default_rules, rules_by_id
from .sanitizer import DeterminismSanitizer, Divergence, TraceRecord
from .cli import main

__all__ = [
    "Baseline",
    "DeterminismSanitizer",
    "Divergence",
    "FLOW_RULE_CLASSES",
    "FileContext",
    "Finding",
    "LintEngine",
    "Pragmas",
    "ProjectGraph",
    "RULE_CLASSES",
    "Rule",
    "SKIP_MARKER",
    "TaintAnalysis",
    "TraceRecord",
    "WholeProgramAnalyzer",
    "build_graph",
    "default_rules",
    "discover_files",
    "fingerprint_findings",
    "flow_rules",
    "flow_rules_by_id",
    "infer_module_name",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
    "rules_by_id",
]

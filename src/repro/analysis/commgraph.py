"""Static communication-graph extraction for the fleet planner.

Layer (a) of the planning compiler (``--plan``): walk the project call
graph from every ``sim.process`` root to the cross-vehicle communication
sinks (V2V bus send/deliver, the barrier envelope exchange, cellular
sends), attach the minimum link latency each edge can carry, and derive
the *provable* cross-partition lookahead -- the largest barrier step the
conservative time-sync protocol can use without ever delivering an
envelope into a partition's past.

Latencies are recovered statically by :class:`ConstResolver`, a bounded
constant-propagation pass over the same symbol table the call graph
already built: literal -> local -> module constant -> dataclass field
default -> constructor argument, with PR-5 unit inference
(:func:`~repro.analysis.units.parse_name_unit`) deciding which names are
latency-dimensioned in the first place.  Resolution is deliberately
conservative: a value only resolves when *every* path to it resolves,
and the lookahead is only "provable" when every cross-partition send
edge carries a resolved, positive latency.

One escape hatch exists: a call site marked ``# vdaplint:
dynamic-config`` on its line is dropped from the min-over-sites
resolution entirely.  The marker declares that the values flowing
through that site are data, not code -- proven by a *different* tier
(the scenario compiler's SCN004 barrier re-proof plus ``FleetConfig``'s
own runtime validation) -- so the site must not poison the tree-wide
proof for every statically-written config.  Use it only on sites whose
inputs are independently validated; it is a visible, per-line contract,
not a convenience suppression.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

from .callgraph import CallSite, FunctionInfo, ModuleInfo, ProjectGraph
from .units import parse_name_unit

__all__ = [
    "COMM_SINKS",
    "CommEdge",
    "CommGraph",
    "CommSinkSpec",
    "ConstResolver",
    "DYNAMIC_CONFIG_RE",
    "is_latency_name",
]

#: Marks a call site whose argument values are externally validated
#: data; the site is excluded from min-over-sites constant resolution.
DYNAMIC_CONFIG_RE = re.compile(r"#\s*vdaplint:\s*dynamic-config\b")

_TIME_DIMS = (("time", 1),)


def is_latency_name(name: str) -> bool:
    """True when ``name`` is unit-inferred to carry a time dimension."""
    unit = parse_name_unit(name)
    return unit is not None and unit.dims == _TIME_DIMS


@dataclass(frozen=True)
class CommSinkSpec:
    """One cross-vehicle communication primitive the walker looks for.

    ``class_name``/``method`` identify the sink; ``cross_partition``
    marks traffic that crosses partition boundaries (and therefore
    bounds the barrier step); ``barrier_only`` marks entry points that
    must run with the sim clock parked (calling them from inside a sim
    process bypasses the canonical barrier exchange -- FLEET003);
    ``latency_attr`` names the instance attribute holding the link
    latency the sink schedules with.
    """

    class_name: str
    method: str
    kind: str
    cross_partition: bool
    barrier_only: bool
    latency_attr: Optional[str] = None


#: The sink vocabulary: the fleet V2V bus (send side bounds the
#: lookahead; deliver/drain are the barrier-side exchange) plus the net
#: layer's cellular uplink (intra-vehicle, informational).
COMM_SINKS: tuple[CommSinkSpec, ...] = (
    CommSinkSpec("V2VBus", "send", "v2v-send",
                 cross_partition=True, barrier_only=False,
                 latency_attr="latency_s"),
    CommSinkSpec("V2VBus", "deliver", "v2v-deliver",
                 cross_partition=True, barrier_only=True,
                 latency_attr="latency_s"),
    CommSinkSpec("V2VBus", "drain_outbox", "envelope-exchange",
                 cross_partition=True, barrier_only=True),
    CommSinkSpec("CellularUplink", "send_packet", "cellular-send",
                 cross_partition=False, barrier_only=False),
)


@dataclass(frozen=True)
class CommEdge:
    """One path from a sim-process root to a communication sink."""

    root: str
    sink: str
    kind: str
    cross_partition: bool
    barrier_only: bool
    #: Witness chain ``root -> ... -> calling function``.
    chain: tuple[str, ...]
    path: str
    line: int
    col: int
    #: Minimum link latency this edge can schedule with (None: unproven).
    latency_s: Optional[float] = None

    def to_debug_dict(self) -> dict:
        return {
            "root": self.root,
            "sink": self.sink,
            "kind": self.kind,
            "cross_partition": self.cross_partition,
            "barrier_only": self.barrier_only,
            "chain": list(self.chain),
            "site": f"{self.path}:{self.line}",
            "latency_s": self.latency_s,
        }


class ConstResolver:
    """Bounded constant propagation over the project symbol table.

    ``resolve_expr`` maps an expression (in a module/function context)
    to a float when the value is statically forced; ``resolve_param``
    takes the *minimum* over every call site (plus the default), which
    is exactly the conservative bound a lookahead proof needs.  Any
    unresolvable contributor -- ``*args``/``**kwargs`` at a site, a
    loop-carried local, an ambiguous attribute -- poisons the result to
    ``None`` rather than guessing.
    """

    MAX_DEPTH = 10

    def __init__(self, graph: ProjectGraph):
        self.graph = graph
        #: class qualname -> attr -> ("param", init FunctionInfo, name)
        #: or ("expr", value node, enclosing FunctionInfo | None).
        self._class_attrs: dict[str, dict[str, tuple]] = {}
        #: attr name -> class qualnames that define/assign it.
        self._attr_owners: dict[str, set[str]] = {}
        #: class qualname -> attr -> class qualname of ``self.attr = Cls(...)``.
        self.attr_types: dict[str, dict[str, str]] = {}
        #: class qualname -> dataclass-style field declaration order.
        self._field_order: dict[str, list[str]] = {}
        self._module_consts: dict[str, dict[str, ast.expr]] = {}
        #: callee qualname (function, and class for constructors) -> sites.
        self._sites_of: dict[str, list[CallSite]] = {}
        self._memo: dict[tuple, Optional[float]] = {}
        self._index()

    # -- indexing ----------------------------------------------------------

    def _index(self) -> None:
        for name in sorted(self.graph.modules):
            module = self.graph.modules[name]
            consts = self._module_consts.setdefault(name, {})
            for stmt in module.tree.body:
                for target, value in _simple_bindings(stmt):
                    consts.setdefault(target, value)
        for class_qual in sorted(self.graph.classes):
            self._index_class(class_qual)
        lines_by_path = {
            module.path: module.source.splitlines()
            for module in self.graph.modules.values()
        }
        for caller in sorted(self.graph.calls):
            for site in self.graph.calls[caller]:
                if not site.callee:
                    continue
                if self._is_dynamic_site(site, lines_by_path):
                    continue
                self._sites_of.setdefault(site.callee, []).append(site)
                if site.callee.endswith(".__init__"):
                    class_qual = site.callee.rsplit(".", 1)[0]
                    self._sites_of.setdefault(class_qual, []).append(site)

    @staticmethod
    def _is_dynamic_site(site: CallSite,
                         lines_by_path: dict[str, list[str]]) -> bool:
        """True when the site's line carries ``# vdaplint: dynamic-config``."""
        lines = lines_by_path.get(site.path)
        if lines is None or not 1 <= site.line <= len(lines):
            return False
        return DYNAMIC_CONFIG_RE.search(lines[site.line - 1]) is not None

    def _index_class(self, class_qual: str) -> None:
        cls = self.graph.classes[class_qual]
        attrs = self._class_attrs.setdefault(class_qual, {})
        order = self._field_order.setdefault(class_qual, [])
        for stmt in cls.node.body:
            for target, value in _simple_bindings(stmt):
                attrs.setdefault(target, ("expr", _unwrap_field(value), None))
                self._attr_owners.setdefault(target, set()).add(class_qual)
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                order.append(stmt.target.id)
        init = cls.methods.get("__init__")
        if init is None:
            return
        params = _param_names(init.node)
        self_name = params[0] if params else "self"
        sites_by_node = {
            id(site.node): site
            for site in self.graph.calls.get(init.qualname, ())
            if site.node is not None
        }
        for node in ast.walk(init.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self_name
            ):
                continue
            self._attr_owners.setdefault(target.attr, set()).add(class_qual)
            if isinstance(node.value, ast.Name) and node.value.id in params:
                attrs[target.attr] = ("param", init, node.value.id)
            else:
                attrs[target.attr] = ("expr", node.value, init)
            if isinstance(node.value, ast.Call):
                site = sites_by_node.get(id(node.value))
                callee = site.callee if site is not None else None
                if callee and callee.endswith(".__init__"):
                    callee = callee.rsplit(".", 1)[0]
                if callee in self.graph.classes:
                    self.attr_types.setdefault(class_qual, {})[target.attr] = callee

    # -- resolution --------------------------------------------------------

    def resolve_expr(
        self,
        expr: Optional[ast.AST],
        module: Optional[ModuleInfo],
        func: Optional[FunctionInfo],
        depth: int = 0,
    ) -> Optional[float]:
        if expr is None or depth > self.MAX_DEPTH:
            return None
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (int, float)) and not isinstance(expr.value, bool):
                return float(expr.value)
            return None
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, (ast.USub, ast.UAdd)):
            value = self.resolve_expr(expr.operand, module, func, depth + 1)
            if value is None:
                return None
            return -value if isinstance(expr.op, ast.USub) else value
        if isinstance(expr, ast.BinOp):
            return self._resolve_binop(expr, module, func, depth)
        if isinstance(expr, ast.Name):
            return self._resolve_name(expr.id, module, func, depth)
        if isinstance(expr, ast.Attribute):
            return self._resolve_attribute(expr, module, func, depth)
        return None

    def _resolve_binop(self, expr, module, func, depth) -> Optional[float]:
        ops = {ast.Add: float.__add__, ast.Sub: float.__sub__,
               ast.Mult: float.__mul__}
        op = ops.get(type(expr.op))
        left = self.resolve_expr(expr.left, module, func, depth + 1)
        right = self.resolve_expr(expr.right, module, func, depth + 1)
        if left is None or right is None:
            return None
        if op is not None:
            return op(left, right)
        if isinstance(expr.op, ast.Div) and right != 0:
            return left / right
        return None

    def _resolve_name(self, name, module, func, depth) -> Optional[float]:
        if func is not None:
            if name in _param_names(func.node):
                return self.resolve_param(func, name, depth + 1)
            binding = _single_local_binding(func.node, name)
            if binding is not _NO_BINDING:
                return self.resolve_expr(binding, module, func, depth + 1)
        if module is None:
            return None
        const = self._module_consts.get(module.name, {}).get(name)
        if const is not None:
            return self.resolve_expr(const, module, None, depth + 1)
        target = module.imports.get(name)
        if target is not None:
            dotted = ProjectGraph._absolutize(target, module)
            return self._resolve_dotted_const(dotted, depth + 1)
        return None

    def _resolve_dotted_const(self, dotted: str, depth: int) -> Optional[float]:
        """``pkg.module.NAME`` -> the module-level constant, if indexed."""
        mod_name, _, const = dotted.rpartition(".")
        target_module = self.graph.modules.get(mod_name)
        if target_module is None or not const:
            return None
        value = self._module_consts.get(mod_name, {}).get(const)
        if value is None:
            return None
        return self.resolve_expr(value, target_module, None, depth + 1)

    def _resolve_attribute(self, expr, module, func, depth) -> Optional[float]:
        dotted = ProjectGraph._dotted(expr)
        if dotted is not None and module is not None:
            root = dotted.split(".", 1)[0]
            if root in module.imports:
                target = ProjectGraph._absolutize(module.imports[root], module)
                rest = dotted.split(".", 1)[1]
                value = self._resolve_dotted_const(f"{target}.{rest}", depth + 1)
                if value is not None:
                    return value
        # ``self.attr`` inside a method: the enclosing class scopes the
        # lookup, so an attr name shared across classes stays precise.
        if (
            isinstance(expr.value, ast.Name)
            and func is not None
            and func.class_name is not None
        ):
            params = _param_names(func.node)
            if params and expr.value.id == params[0]:
                class_qual = func.qualname.rsplit(".", 1)[0]
                if class_qual in self.graph.classes:
                    return self.resolve_class_attr(class_qual, expr.attr, depth + 1)
        # Unique-attribute fallback: every owning class must agree.
        owners = sorted(self._attr_owners.get(expr.attr, ()))
        if not owners:
            return None
        values = {
            self.resolve_class_attr(owner, expr.attr, depth + 1)
            for owner in owners
        }
        if len(values) == 1 and None not in values:
            return values.pop()
        return None

    def resolve_class_attr(self, class_qual: str, attr: str,
                           depth: int = 0) -> Optional[float]:
        """The value ``<instance>.attr`` is statically forced to carry."""
        key = ("attr", class_qual, attr)
        if key in self._memo:
            return self._memo[key]
        self._memo[key] = None  # cycle guard: in-progress resolves to None
        if depth > self.MAX_DEPTH:
            return None
        entry = self._class_attrs.get(class_qual, {}).get(attr)
        cls = self.graph.classes.get(class_qual)
        if entry is None or cls is None:
            return None
        module = self.graph.modules.get(cls.module)
        if entry[0] == "param":
            value = self.resolve_param(entry[1], entry[2], depth + 1)
        elif "__init__" not in cls.methods and attr in self._field_order.get(
            class_qual, ()
        ):
            # Dataclass-style field: constructor keywords override the
            # declared default, so the bound is the min over both.
            value = self._resolve_field(class_qual, attr, entry[1], module, depth)
        else:
            value = self.resolve_expr(entry[1], module, entry[2], depth + 1)
        self._memo[key] = value
        return value

    def resolve_param(self, func: FunctionInfo, name: str,
                      depth: int = 0) -> Optional[float]:
        """Min over every resolvable value call sites pass for ``name``."""
        key = ("param", func.qualname, name)
        if key in self._memo:
            return self._memo[key]
        self._memo[key] = None
        if depth > self.MAX_DEPTH:
            return None
        default = _param_default(func.node, name)
        module = self.graph.modules.get(func.module)
        candidates: list[Optional[float]] = []
        sites = self._sites_of.get(func.qualname, ())
        for site in sorted(sites, key=lambda s: (s.path, s.line, s.col)):
            arg = self._site_arg(site, func, name)
            if arg is _OMITTED:
                arg = default
            candidates.append(self._resolve_site_expr(site, arg, depth))
        if not sites:
            if default is None:
                return None
            candidates.append(self.resolve_expr(default, module, None, depth + 1))
        if candidates and None not in candidates:
            self._memo[key] = min(candidates)
        return self._memo[key]

    def _resolve_field(self, class_qual, attr, default, module,
                       depth) -> Optional[float]:
        fields = self._field_order.get(class_qual, [])
        candidates: list[Optional[float]] = []
        sites = self._sites_of.get(class_qual, ())
        for site in sorted(sites, key=lambda s: (s.path, s.line, s.col)):
            arg = _ctor_arg(site.node, fields, attr)
            if arg is _OMITTED:
                arg = default
            candidates.append(self._resolve_site_expr(site, arg, depth))
        if not sites:
            candidates.append(self.resolve_expr(default, module, None, depth + 1))
        if candidates and None not in candidates:
            return min(candidates)
        return None

    def _resolve_site_expr(self, site: CallSite, expr,
                           depth: int) -> Optional[float]:
        if expr is None or expr is _UNKNOWN:
            return None
        caller = self.graph.functions.get(site.caller)
        if caller is not None:
            module = self.graph.modules.get(caller.module)
        else:
            # Module-body callers are recorded as ``<module>#<body>``.
            module = self.graph.modules.get(site.caller.split("#", 1)[0])
        return self.resolve_expr(expr, module, caller, depth + 1)

    def _site_arg(self, site: CallSite, func: FunctionInfo, name: str):
        node = site.node
        if node is None:
            return _UNKNOWN
        if any(isinstance(a, ast.Starred) for a in node.args) or any(
            kw.arg is None for kw in node.keywords
        ):
            return _UNKNOWN
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        params = _param_names(func.node)
        if func.class_name is not None and params:
            params = params[1:]
        if name in params:
            index = params.index(name)
            if index < len(node.args):
                return node.args[index]
        return _OMITTED


#: Sentinels: the site passes something unresolvable / omits the argument.
_UNKNOWN = object()
_OMITTED = object()
_NO_BINDING = object()


def _simple_bindings(stmt: ast.stmt):
    """``NAME = expr`` / ``NAME: T = expr`` bindings in one statement."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        if isinstance(stmt.targets[0], ast.Name):
            yield stmt.targets[0].id, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        if isinstance(stmt.target, ast.Name):
            yield stmt.target.id, stmt.value


def _unwrap_field(value: ast.expr) -> Optional[ast.expr]:
    """``field(default=X)`` -> ``X``; other factories stay unresolved."""
    if isinstance(value, ast.Call):
        dotted = ProjectGraph._dotted(value.func) or ""
        if dotted.split(".")[-1] == "field":
            for kw in value.keywords:
                if kw.arg == "default":
                    return kw.value
            return None
    return value


def _param_names(node: ast.AST) -> list[str]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]


def _param_default(node: ast.AST, name: str) -> Optional[ast.expr]:
    args = getattr(node, "args", None)
    if args is None:
        return None
    positional = args.posonlyargs + args.args
    defaults = args.defaults
    for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
        if arg.arg == name:
            return default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == name and default is not None:
            return default
    return None


def _single_local_binding(func_node: ast.AST, name: str):
    """The RHS when ``name`` is bound exactly once, by a plain assignment."""
    simple: list[ast.expr] = []
    other = 0
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    simple.append(node.value)
                elif isinstance(target, (ast.Tuple, ast.List)) and any(
                    isinstance(el, ast.Name) and el.id == name
                    for el in target.elts
                ):
                    other += 1
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                if node.value is not None:
                    simple.append(node.value)
        elif isinstance(node, (ast.AugAssign, ast.For, ast.comprehension)):
            target = getattr(node, "target", None)
            for sub in ast.walk(target) if target is not None else ():
                if isinstance(sub, ast.Name) and sub.id == name:
                    other += 1
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for sub in ast.walk(node.optional_vars):
                if isinstance(sub, ast.Name) and sub.id == name:
                    other += 1
    if len(simple) == 1 and not other:
        return simple[0]
    return _NO_BINDING


def _ctor_arg(node: Optional[ast.Call], fields: list[str], name: str):
    """The expression a dataclass constructor call passes for ``name``."""
    if node is None:
        return _UNKNOWN
    if any(isinstance(a, ast.Starred) for a in node.args) or any(
        kw.arg is None for kw in node.keywords
    ):
        return _UNKNOWN
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    if name in fields:
        index = fields.index(name)
        if index < len(node.args):
            return node.args[index]
    return _OMITTED


class CommGraph:
    """The extracted communication graph plus the lookahead proof."""

    def __init__(self, graph: ProjectGraph):
        self.graph = graph
        self.resolver = ConstResolver(graph)
        #: (spec, class qualname, method qualname) per sink found in-tree.
        self._sinks: list[tuple[CommSinkSpec, str, str]] = []
        self._by_method: dict[str, list[tuple[CommSinkSpec, str, str]]] = {}
        for spec in COMM_SINKS:
            for class_qual in sorted(self.graph.classes):
                cls = self.graph.classes[class_qual]
                if cls.name != spec.class_name or spec.method not in cls.methods:
                    continue
                entry = (spec, class_qual, cls.methods[spec.method].qualname)
                self._sinks.append(entry)
                self._by_method.setdefault(spec.method, []).append(entry)
        self._latency_memo: dict[tuple[str, str], Optional[float]] = {}
        self.sim_reachable = graph.sim_reachable()
        self.edges: list[CommEdge] = self._extract()

    # -- sink matching -----------------------------------------------------

    def _match_sink(
        self, site: CallSite, caller: Optional[FunctionInfo]
    ) -> Optional[tuple[CommSinkSpec, str]]:
        if site.callee:
            for spec, class_qual, method_qual in self._sinks:
                if site.callee == method_qual:
                    return spec, class_qual
            return None
        node = site.node
        if node is None or not isinstance(node.func, ast.Attribute):
            return None
        entries = self._by_method.get(node.func.attr)
        if not entries:
            return None
        receiver = self._receiver_type(node.func.value, caller)
        if receiver is not None:
            for spec, class_qual, _ in entries:
                if class_qual == receiver:
                    return spec, class_qual
            return None
        # Unique-owner fallback: safe only when no *other* class in the
        # project defines a method with this name.
        owners = {
            qual
            for qual, cls in self.graph.classes.items()
            if node.func.attr in cls.methods
        }
        if len(entries) == 1 and owners == {entries[0][1]}:
            return entries[0][0], entries[0][1]
        return None

    def _receiver_type(
        self, expr: ast.AST, caller: Optional[FunctionInfo]
    ) -> Optional[str]:
        """Class qualname of a call receiver, via ctor-assignment typing."""
        if caller is None:
            return None
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and caller.class_name is not None
        ):
            params = _param_names(caller.node)
            if params and expr.value.id == params[0]:
                class_qual = caller.qualname.rsplit(".", 1)[0]
                return self.resolver.attr_types.get(class_qual, {}).get(expr.attr)
        if isinstance(expr, ast.Name):
            binding = _single_local_binding(caller.node, expr.id)
            if binding is not _NO_BINDING and isinstance(binding, ast.Call):
                for site in self.graph.calls.get(caller.qualname, ()):
                    if site.node is binding and site.callee:
                        callee = site.callee
                        if callee.endswith(".__init__"):
                            callee = callee.rsplit(".", 1)[0]
                        if callee in self.graph.classes:
                            return callee
        return None

    # -- extraction --------------------------------------------------------

    def _sink_latency(self, spec: CommSinkSpec, class_qual: str) -> Optional[float]:
        if spec.latency_attr is None:
            return None
        key = (class_qual, spec.latency_attr)
        if key not in self._latency_memo:
            self._latency_memo[key] = self.resolver.resolve_class_attr(
                class_qual, spec.latency_attr
            )
        return self._latency_memo[key]

    def _extract(self) -> list[CommEdge]:
        edges: dict[tuple, CommEdge] = {}
        for root in sorted(self.graph.process_roots):
            parents: dict[str, Optional[str]] = {root: None}
            queue = deque([root])
            while queue:
                current = queue.popleft()
                for site in self.graph.calls.get(current, ()):
                    match = self._match_sink(
                        site, self.graph.functions.get(current)
                    )
                    if match is not None:
                        spec, class_qual = match
                        chain: list[str] = []
                        walk: Optional[str] = current
                        while walk is not None:
                            chain.append(walk)
                            walk = parents[walk]
                        sink_qual = f"{class_qual}.{spec.method}"
                        key = (root, sink_qual, site.path, site.line, site.col)
                        if key not in edges:
                            edges[key] = CommEdge(
                                root=root,
                                sink=sink_qual,
                                kind=spec.kind,
                                cross_partition=spec.cross_partition,
                                barrier_only=spec.barrier_only,
                                chain=tuple(reversed(chain)),
                                path=site.path,
                                line=site.line,
                                col=site.col,
                                latency_s=self._sink_latency(spec, class_qual),
                            )
                    if (
                        site.callee
                        and site.callee in self.graph.functions
                        and site.callee not in parents
                    ):
                        parents[site.callee] = current
                        queue.append(site.callee)
        return sorted(
            edges.values(),
            key=lambda e: (e.path, e.line, e.col, e.kind, e.root),
        )

    # -- the lookahead proof -----------------------------------------------

    def send_edges(self) -> list[CommEdge]:
        """Cross-partition edges that inject latency-bounded traffic."""
        return [
            e for e in self.edges if e.cross_partition and not e.barrier_only
        ]

    def lookahead(self) -> tuple[Optional[float], str]:
        """(provable lookahead seconds, reason) for this tree."""
        sends = self.send_edges()
        if not sends:
            return None, "no cross-partition send edges found"
        for edge in sends:
            if edge.latency_s is None:
                return None, (
                    "unresolved link latency on cross-partition edge at "
                    f"{edge.path}:{edge.line}"
                )
        bound = min(e.latency_s for e in sends)
        if bound <= 0:
            return None, (
                "zero-latency cross-partition edge: conservative sync "
                "cannot advance"
            )
        return bound, f"min link latency over {len(sends)} send edge(s)"

    @property
    def lookahead_s(self) -> Optional[float]:
        return self.lookahead()[0]

    # -- reporting ---------------------------------------------------------

    def to_debug_dict(self) -> dict:
        lookahead_s, reason = self.lookahead()
        return {
            "roots": sorted(self.graph.process_roots),
            "sinks": [
                {
                    "sink": f"{class_qual}.{spec.method}",
                    "kind": spec.kind,
                    "cross_partition": spec.cross_partition,
                    "barrier_only": spec.barrier_only,
                    "latency_s": self._sink_latency(spec, class_qual),
                }
                for spec, class_qual, _ in sorted(
                    self._sinks, key=lambda s: (s[1], s[0].method)
                )
            ],
            "edges": [edge.to_debug_dict() for edge in self.edges],
            "lookahead_s": lookahead_s,
            "lookahead_reason": reason,
        }
